package doctagger

import "repro/internal/dataset"

// CorpusDoc is one synthetic document with its ground-truth tags.
type CorpusDoc struct {
	ID   int
	User int
	Text string
	Tags []string
}

// CorpusConfig shapes a synthetic delicious-style corpus — the stand-in
// for the del.icio.us crawl the paper demonstrates on. Zero values take
// the defaults noted on each field.
type CorpusConfig struct {
	// Users is the number of distinct document owners; default 16.
	Users int
	// DocsPerUserMin/Max bound collection sizes; default 40..80 (the
	// demo filtered delicious users to 50..200 bookmarks).
	DocsPerUserMin, DocsPerUserMax int
	// NumTags is the size of the tag universe; default 20.
	NumTags int
	// UserBias controls per-user tag specialization: large (>=10) means
	// everyone uses all tags, small (<1) means each user focuses on a
	// few; default 10.
	UserBias float64
	// Seed makes generation deterministic; default 1.
	Seed int64
}

// GenerateCorpus synthesizes a tagged corpus. Each tag behaves as a topic
// with its own vocabulary; documents mix the topics of their 1-4 tags with
// background noise, and tag popularity follows a Zipf law — the properties
// that make social-bookmarking data learnable.
func GenerateCorpus(cfg CorpusConfig) ([]CorpusDoc, []string, error) {
	dc := dataset.DefaultConfig()
	if cfg.Users > 0 {
		dc.Users = cfg.Users
	}
	dc.DocsPerUserMin, dc.DocsPerUserMax = 40, 80
	if cfg.DocsPerUserMin > 0 {
		dc.DocsPerUserMin = cfg.DocsPerUserMin
	}
	if cfg.DocsPerUserMax > 0 {
		dc.DocsPerUserMax = cfg.DocsPerUserMax
	}
	if cfg.NumTags > 0 {
		dc.NumTags = cfg.NumTags
	}
	if cfg.UserBias > 0 {
		dc.UserBias = cfg.UserBias
	}
	if cfg.Seed != 0 {
		dc.Seed = cfg.Seed
	}
	dc.RealWords = true
	corpus, err := dataset.Generate(dc)
	if err != nil {
		return nil, nil, err
	}
	docs := make([]CorpusDoc, len(corpus.Docs))
	for i, d := range corpus.Docs {
		docs[i] = CorpusDoc{ID: d.ID, User: d.User, Text: d.Text, Tags: d.Tags}
	}
	return docs, corpus.Tags, nil
}

// SplitCorpus partitions docs into labeled and unlabeled sets per user
// with the given training fraction (the demo used 0.2), deterministically
// for a seed.
func SplitCorpus(docs []CorpusDoc, trainFrac float64, seed int64) (train, test []CorpusDoc) {
	conv := make([]dataset.Document, len(docs))
	for i, d := range docs {
		conv[i] = dataset.Document{ID: d.ID, User: d.User, Text: d.Text, Tags: d.Tags}
	}
	tr, te := dataset.SplitTrainTest(conv, trainFrac, seed)
	back := func(ds []dataset.Document) []CorpusDoc {
		out := make([]CorpusDoc, len(ds))
		for i, d := range ds {
			out[i] = CorpusDoc{ID: d.ID, User: d.User, Text: d.Text, Tags: d.Tags}
		}
		return out
	}
	return back(tr), back(te)
}
