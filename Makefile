# Local targets mirror the CI job (.github/workflows/ci.yml) exactly, so
# a green `make check` predicts a green required-checks run.

.PHONY: build test race lint vet fuzz check bench

build:
	go build ./...

test:
	go test ./...

# The CI test tier: race detector + -short gating.
race:
	go test -race -short ./...

vet:
	go vet ./...

# dmtvet: the repo's custom determinism/safety analyzers (internal/lint),
# a required CI step. Run it the same way CI does. Repeat runs are cheap:
# dmtvet caches its diagnostics keyed on the analyzer set, source file
# hashes and dependency export data, so an unchanged tree replays
# instantly (-nocache opts out).
lint:
	go run ./cmd/dmtvet ./...

# Fuzz the wire decoders: first replay the committed seed corpus
# (deterministic, what CI runs on every push), then a short live fuzzing
# smoke against ReadModelSet. Grow the corpus with -fuzztime as needed;
# new crashers land under internal/wire/testdata/fuzz/ — commit them.
fuzz:
	go test ./internal/wire -run 'Fuzz' -count=1
	go test ./internal/wire -run '^$$' -fuzz 'FuzzReadModelSet' -fuzztime 10s

check: build vet lint race

# The benchmark artifacts the CI bench job uploads.
bench:
	go run ./cmd/p2pserve -loadgen -peers 4 -shards 2 -clients 1,8,64 -requests 256 -repeat 0.9 -cache 1024 -json BENCH_serving.json
	go run ./cmd/p2pserve -loadgen-cluster -protocol local -peers 4 -shards 2 -cluster-nodes 3 -requests 256 -json BENCH_cluster.json
	go run ./cmd/simbench -peers 512 -shards 1,2,4,8 -reps 3 -json BENCH_simnet.json
	go run ./cmd/tagbench -queries 400 -json BENCH_tagging.json
