package doctagger

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// buildTrained returns a trained 4-peer CEMPaR tagger over the shared test
// corpus; calling it repeatedly yields identically trained instances.
func buildTrained(t *testing.T) *Tagger {
	t.Helper()
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	return tg
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("no taggers accepted")
	}
	if _, err := NewServer(ServerConfig{}, nil); err == nil {
		t.Error("nil tagger accepted")
	}
	untrained, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{}, untrained); err == nil {
		t.Error("untrained tagger accepted")
	}
	trained := buildTrained(t)
	if _, err := NewServer(ServerConfig{}, trained, trained); err == nil {
		t.Error("duplicate tagger accepted")
	}
	if _, err := NewReplicatedServer(0, ServerConfig{}, nil); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewReplicatedServer(1, ServerConfig{}, func(int) (*Tagger, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Error("builder error swallowed")
	}
}

// TestServerMatchesSerialUnderLoad is the serving acceptance test: 64
// concurrent clients against a 2-shard pool must get exactly the answers
// serial single-document AutoTag calls give for the same inputs, and the
// dispatcher's own counters must show real batching (mean batch size > 1).
func TestServerMatchesSerialUnderLoad(t *testing.T) {
	queries := []string{
		"a new album with a soft piano melody",
		"booking a flight and a hotel for the island",
		"a bread recipe with yeast and flour",
		"drum track with a heavy bass rhythm",
		"a map of the city museum tour",
		"grill the steak with garlic sauce",
	}
	serial := buildTrained(t)
	want := make([]string, len(queries))
	for i, q := range queries {
		tags, err := serial.AutoTag(q)
		if err != nil {
			t.Fatalf("serial AutoTag(%q): %v", q, err)
		}
		want[i] = fmt.Sprint(tags)
	}

	srv, err := NewReplicatedServer(2, ServerConfig{MaxBatch: 16, MaxDelay: 0}, func(int) (*Tagger, error) {
		return buildTrained(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for r := 0; r < len(queries); r++ {
				i := (c + r) % len(queries)
				tags, err := srv.Tag(context.Background(), queries[i])
				if err != nil {
					errc <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if got := fmt.Sprint(tags); got != want[i] {
					errc <- fmt.Errorf("client %d: query %d: batched %v != serial %v", c, i, got, want[i])
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	total := int64(clients * len(queries))
	if st.Requests != total || st.Served != total {
		t.Errorf("requests %d served %d, want %d", st.Requests, st.Served, total)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 under %d concurrent clients", st.MeanBatchSize, clients)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
	if st.Network.Messages == 0 || st.Network.Bytes == 0 {
		t.Errorf("no swarm traffic aggregated: %+v", st.Network)
	}
	if st.Shards != 2 {
		t.Errorf("shards = %d", st.Shards)
	}

	srv.Close()
	if _, err := srv.Tag(context.Background(), "late"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Tag after Close = %v, want ErrServerClosed", err)
	}
	if st := srv.Stats(); st.Served != st.Requests {
		t.Errorf("Close left work undone: %+v", st)
	}
}
