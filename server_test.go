package doctagger

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// buildTrained returns a trained 4-peer CEMPaR tagger over the shared test
// corpus; calling it repeatedly yields identically trained instances.
func buildTrained(t *testing.T) *Tagger {
	t.Helper()
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	return tg
}

// serialWant returns fmt-printed serial AutoTag answers for queries — the
// byte-identical yardstick every serving path is pinned against.
func serialWant(t *testing.T, queries []string) []string {
	t.Helper()
	serial := buildTrained(t)
	want := make([]string, len(queries))
	for i, q := range queries {
		tags, err := serial.AutoTag(q)
		if err != nil {
			t.Fatalf("serial AutoTag(%q): %v", q, err)
		}
		want[i] = fmt.Sprint(tags)
	}
	return want
}

var servingQueries = []string{
	"a new album with a soft piano melody",
	"booking a flight and a hotel for the island",
	"a bread recipe with yeast and flour",
	"drum track with a heavy bass rhythm",
	"a map of the city museum tour",
	"grill the steak with garlic sauce",
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Error("no taggers accepted")
	}
	if _, err := NewServer(ServerConfig{}, nil); err == nil {
		t.Error("nil tagger accepted")
	}
	untrained, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{}, untrained); err == nil {
		t.Error("untrained tagger accepted")
	}
	trained := buildTrained(t)
	if _, err := NewServer(ServerConfig{}, trained, trained); err == nil {
		t.Error("duplicate tagger accepted")
	}
	if _, err := NewReplicatedServer(0, ServerConfig{}, nil); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := NewReplicatedServer(1, ServerConfig{}, func(int) (*Tagger, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Error("builder error swallowed")
	}
}

// TestServerMatchesSerialUnderLoad is the serving acceptance test: 64
// concurrent clients against a 2-shard pool must get exactly the answers
// serial single-document AutoTag calls give for the same inputs, and the
// dispatcher's own counters must show real batching (mean batch size > 1).
func TestServerMatchesSerialUnderLoad(t *testing.T) {
	queries := servingQueries
	want := serialWant(t, queries)

	srv, err := NewReplicatedServer(2, ServerConfig{MaxBatch: 16, MaxDelay: 0}, func(int) (*Tagger, error) {
		return buildTrained(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 64
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for r := 0; r < len(queries); r++ {
				i := (c + r) % len(queries)
				tags, err := srv.Tag(context.Background(), queries[i])
				if err != nil {
					errc <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if got := fmt.Sprint(tags); got != want[i] {
					errc <- fmt.Errorf("client %d: query %d: batched %v != serial %v", c, i, got, want[i])
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	st := srv.Stats()
	total := int64(clients * len(queries))
	// Identical texts in flight coalesce (single-flight dedup), so the
	// books balance as issued = Requests + Coalesced = Served + Coalesced.
	if st.Requests+st.Coalesced != total || st.Served+st.Coalesced != total {
		t.Errorf("requests %d served %d coalesced %d, want %d issued", st.Requests, st.Served, st.Coalesced, total)
	}
	if st.Coalesced == 0 {
		t.Errorf("no coalesced requests with %d clients cycling %d texts", clients, len(queries))
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 under %d concurrent clients", st.MeanBatchSize, clients)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
	if st.Network.Messages == 0 || st.Network.Bytes == 0 {
		t.Errorf("no swarm traffic aggregated: %+v", st.Network)
	}
	if st.Shards != 2 {
		t.Errorf("shards = %d", st.Shards)
	}

	srv.Close()
	if _, err := srv.Tag(context.Background(), "late"); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Tag after Close = %v, want ErrServerClosed", err)
	}
	if st := srv.Stats(); st.Served != st.Requests {
		t.Errorf("Close left work undone: %+v", st)
	}
}

// TestServerCacheMatchesSerial is the cache determinism acceptance test:
// with the result cache on, 64 concurrent clients replaying a small query
// set must get answers byte-identical to uncached serial AutoTag calls —
// hits and misses alike — while the cache visibly absorbs the repeats.
// Run with -race.
func TestServerCacheMatchesSerial(t *testing.T) {
	queries := servingQueries
	want := serialWant(t, queries)

	srv, err := NewReplicatedServer(2, ServerConfig{MaxBatch: 16, MaxDelay: 0, CacheSize: 64}, func(int) (*Tagger, error) {
		return buildTrained(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 64, 12
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for r := 0; r < perClient; r++ {
				i := (c + r) % len(queries)
				tags, err := srv.Tag(context.Background(), queries[i])
				if err != nil {
					errc <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if got := fmt.Sprint(tags); got != want[i] {
					errc <- fmt.Errorf("client %d: query %d: cached serving %v != serial %v", c, i, got, want[i])
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	total := int64(clients * perClient)
	if st.Served+st.CacheHits+st.Coalesced != total {
		t.Errorf("served %d + hits %d + coalesced %d != %d issued: requests lost", st.Served, st.CacheHits, st.Coalesced, total)
	}
	if st.CacheHits == 0 {
		t.Errorf("no cache hits replaying %d queries %d times: %+v", len(queries), total, st)
	}
	// The cache must absorb the bulk of the replayed load. (Concurrent
	// first requests for the same text can each miss — there is no
	// single-flight — so the swarm may see a given query more than once,
	// but only during the initial stampede.)
	if st.BatchedDocs*2 > total {
		t.Errorf("swarms processed %d of %d issued docs; cache absorbed too little", st.BatchedDocs, total)
	}
}

// TestServerTagBatchMatchesTag pins TagBatch to per-document Tag and to
// serial AutoTag: same inputs, same bytes, in input order, whether rows
// come from the dispatcher or the cache.
func TestServerTagBatchMatchesTag(t *testing.T) {
	queries := servingQueries
	want := serialWant(t, queries)
	srv, err := NewReplicatedServer(2, ServerConfig{MaxBatch: 4, CacheSize: 16}, func(int) (*Tagger, error) {
		return buildTrained(t), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Twice: the first pass misses everywhere, the second is all hits.
	for pass := 0; pass < 2; pass++ {
		got, err := srv.TagBatch(context.Background(), queries)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		for i := range queries {
			if fmt.Sprint(got[i]) != want[i] {
				t.Errorf("pass %d row %d: TagBatch %v != serial %v", pass, i, got[i], want[i])
			}
		}
	}
	for i, q := range queries {
		tags, err := srv.Tag(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(tags) != want[i] {
			t.Errorf("row %d: Tag %v != serial %v", i, tags, want[i])
		}
	}
	if st := srv.Stats(); st.CacheHits == 0 {
		t.Errorf("second batch pass hit nothing: %+v", st)
	}
}

// TestServerRefreshUnderLoad is the live-refresh acceptance test: 64
// clients stream queries while Refresh retrains and swaps in a new tagger
// generation. Zero requests may be dropped or fail, answers stay pinned to
// serial AutoTag (the generations are identically trained), and the
// generation counter advances. Run with -race.
func TestServerRefreshUnderLoad(t *testing.T) {
	queries := servingQueries
	want := serialWant(t, queries)
	build := func(int) (*Tagger, error) { return buildTrained(t), nil }
	srv, err := NewReplicatedServer(2, ServerConfig{MaxBatch: 16, MaxDelay: 0, CacheSize: 64}, build)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 64
	stop := make(chan struct{})
	var issued, answered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (c + r) % len(queries)
				issued.Add(1)
				tags, err := srv.Tag(context.Background(), queries[i])
				if err != nil {
					t.Errorf("client %d during refresh: %v", c, err)
					return
				}
				if got := fmt.Sprint(tags); got != want[i] {
					t.Errorf("client %d: query %d: %v != serial %v across refresh", c, i, got, want[i])
					return
				}
				answered.Add(1)
				// Mostly cache hits: yield so the concurrent retrain is
				// not starved on small machines.
				time.Sleep(200 * time.Microsecond)
			}
		}(c)
	}
	gen, err := srv.Refresh(build)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Errorf("Refresh installed generation %d, want 2", gen)
	}
	close(stop)
	wg.Wait()
	if issued.Load() != answered.Load() {
		t.Errorf("answered %d of %d issued: requests dropped across Refresh", answered.Load(), issued.Load())
	}
	st := srv.Stats()
	if st.Generation != 2 {
		t.Errorf("generation = %d after Refresh, want 2", st.Generation)
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d across Refresh", st.Errors)
	}
	if st.Served+st.CacheHits+st.Coalesced != issued.Load() {
		t.Errorf("served %d + hits %d + coalesced %d != %d issued", st.Served, st.CacheHits, st.Coalesced, issued.Load())
	}
}

// TestServerSwapReturnsRetiredGeneration: Swap hands back the drained old
// taggers — the refine-offline-swap-back-in loop — and refuses a tagger
// that is still serving.
func TestServerSwapReturnsRetiredGeneration(t *testing.T) {
	first := []*Tagger{buildTrained(t), buildTrained(t)}
	srv, err := NewServer(ServerConfig{MaxBatch: 4}, first...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Tag(context.Background(), servingQueries[0]); err != nil {
		t.Fatal(err)
	}
	// A tagger of the live generation cannot join the next one.
	if _, err := srv.Swap(first[0], buildTrained(t)); err == nil {
		t.Error("Swap accepted a tagger that is still serving")
	}
	second := []*Tagger{buildTrained(t), buildTrained(t)}
	old, err := srv.Swap(second...)
	if err != nil {
		t.Fatal(err)
	}
	if len(old) != 2 || old[0] != first[0] || old[1] != first[1] {
		t.Errorf("Swap returned %v, want the retired first generation", old)
	}
	// The retired taggers are drained: refining them offline is safe and
	// they can come back as a third generation.
	if err := old[0].Refine(servingQueries[0], "music"); err != nil {
		t.Fatal(err)
	}
	if err := old[1].Refine(servingQueries[0], "music"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Swap(old...); err != nil {
		t.Fatalf("swapping the refined retirees back in: %v", err)
	}
	st := srv.Stats()
	if st.Generation != 3 {
		t.Errorf("generation = %d, want 3", st.Generation)
	}
	// Network traffic stays cumulative across retired generations.
	if st.Network.Messages == 0 {
		t.Errorf("retired generations' traffic lost: %+v", st.Network)
	}
	// Round-tripping generations with no traffic in between must leave
	// the cumulative counters exactly unchanged (regression: a retiree's
	// traffic used to be re-added on every swap-back).
	if _, err := srv.Swap(second...); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Swap(old...); err != nil {
		t.Fatal(err)
	}
	if net := srv.Stats().Network; net != st.Network {
		t.Errorf("idle generation round-trip inflated traffic: %+v -> %+v", st.Network, net)
	}
}
