package doctagger

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// labelEngine is a deterministic stand-in for an externally built engine
// (e.g. an ensemble over gossiped model sets): it answers every text with
// its generation label, so tests can see exactly which generation served.
type labelEngine struct {
	label string
	calls int // serial-use witness: the Server must never race this
}

func (e *labelEngine) AutoTagBatch(texts []string) ([][]string, error) {
	e.calls++
	out := make([][]string, len(texts))
	for i := range texts {
		out[i] = []string{e.label}
	}
	return out, nil
}

func TestNewEngineServerValidation(t *testing.T) {
	if _, err := NewEngineServer(ServerConfig{}); err == nil {
		t.Error("no engines accepted")
	}
	if _, err := NewEngineServer(ServerConfig{}, nil); err == nil {
		t.Error("nil engine accepted")
	}
	e := &labelEngine{label: "v1"}
	if _, err := NewEngineServer(ServerConfig{}, e, e); err == nil {
		t.Error("duplicate engine accepted")
	}
}

// TestEngineServerSwapsGenerations drives a generic-engine server through
// a live SwapEngines: answers flip from the old generation's to the new
// one's, nothing is dropped, installing an already-serving engine is
// refused, Refresh (a tagger-only operation) is refused, and the serving
// accounting identity Issued = Served + CacheHits + Coalesced + Deduped
// holds against a client-side count of rows asked for.
func TestEngineServerSwapsGenerations(t *testing.T) {
	srv, err := NewEngineServer(ServerConfig{MaxBatch: 4, CacheSize: 64},
		&labelEngine{label: "v1"}, &labelEngine{label: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	var issued int64
	var mu sync.Mutex
	ask := func(text string) string {
		tags, err := srv.Tag(ctx, text)
		if err != nil {
			t.Errorf("Tag(%q): %v", text, err)
			return ""
		}
		mu.Lock()
		issued++
		mu.Unlock()
		return tags[0]
	}

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if got := ask(fmt.Sprintf("doc-%d-%d", i, j)); got != "v1" {
					t.Errorf("generation 1 answered %q, want v1", got)
				}
			}
		}()
	}
	wg.Wait()

	v2 := []Engine{&labelEngine{label: "v2"}, &labelEngine{label: "v2"}}
	if err := srv.SwapEngines(v2...); err != nil {
		t.Fatal(err)
	}
	// The cache flushed with the generation: a text answered by v1 must be
	// re-answered by v2, not served stale.
	if got := ask("doc-0-0"); got != "v2" {
		t.Errorf("after swap, answered %q, want v2", got)
	}
	if err := srv.SwapEngines(v2[0], &labelEngine{label: "v3"}); err == nil {
		t.Error("engine already serving was accepted into a new generation")
	}
	if _, err := srv.Refresh(func(int) (*Tagger, error) { return buildTrained(t), nil }); err == nil {
		t.Error("Refresh succeeded on a generic engine generation")
	}

	st := srv.Stats()
	if st.Generation != 2 || st.Shards != 2 {
		t.Errorf("generation %d shards %d, want 2/2", st.Generation, st.Shards)
	}
	if st.Issued != st.Served+st.CacheHits+st.Coalesced+st.Deduped {
		t.Errorf("identity broken: Issued %d != Served %d + CacheHits %d + Coalesced %d + Deduped %d",
			st.Issued, st.Served, st.CacheHits, st.Coalesced, st.Deduped)
	}
	if st.Issued != issued {
		t.Errorf("Issued = %d, client asked for %d rows", st.Issued, issued)
	}
	if st.Network.Messages != 0 {
		t.Errorf("generic engines reported swarm traffic: %+v", st.Network)
	}
}

// TestSwapEnginesFromTaggerGeneration crosses the two worlds: a
// tagger-backed server swaps to generic engines (retiring the taggers and
// keeping their swarm traffic in Network) and then back to taggers (Swap
// accepts them again, and Refresh works once more).
func TestSwapEnginesFromTaggerGeneration(t *testing.T) {
	tg := buildTrained(t)
	srv, err := NewServer(ServerConfig{}, tg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	if _, err := srv.Tag(ctx, servingQueries[0]); err != nil {
		t.Fatal(err)
	}
	served := srv.Stats().Network
	if served.Messages == 0 {
		t.Fatal("tagger generation served without swarm traffic")
	}

	if err := srv.SwapEngines(&labelEngine{label: "gen2"}); err != nil {
		t.Fatal(err)
	}
	tags, err := srv.Tag(ctx, servingQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 1 || tags[0] != "gen2" {
		t.Errorf("after SwapEngines, answered %v, want [gen2]", tags)
	}
	// The retired tagger generation's traffic survives the transition.
	if got := srv.Stats().Network; got.Messages < served.Messages {
		t.Errorf("Network lost retired traffic: %+v < %+v", got, served)
	}

	// Back to taggers: the previously retired tagger is reusable.
	if _, err := srv.Swap(tg); err != nil {
		t.Fatal(err)
	}
	want, err := tg.AutoTag(servingQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Tag(ctx, servingQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after swapping taggers back: %v, want %v", got, want)
	}
	if _, err := srv.Refresh(func(int) (*Tagger, error) { return buildTrained(t), nil }); err != nil {
		t.Errorf("Refresh on restored tagger generation: %v", err)
	}
}
