// Quickstart: the whole P2PDocTagger pipeline in one file — manual
// tagging, collaborative learning, tag suggestion, automatic tagging and
// refinement, exactly the flow of the paper's Fig. 1.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	doctagger "repro"
)

func main() {
	// A swarm of 8 peers running CEMPaR; you are peer 0.
	tagger, err := doctagger.New(doctagger.Config{
		Protocol: doctagger.ProtocolCEMPaR,
		Peers:    8,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bootstrap: every peer manually tags a few of its documents. In a
	// real deployment each peer's user does this independently; here we
	// play all of them.
	type doc struct {
		peer int
		text string
		tags []string
	}
	bootstrap := []doc{
		{0, "the guitar melody and chords on this album are stunning", []string{"music"}},
		{1, "a piano concert with a full symphony orchestra", []string{"music"}},
		{2, "drum and bass rhythm tracks for the new song", []string{"music"}},
		{3, "booked a flight and hotel, passport and itinerary ready", []string{"travel"}},
		{4, "the island beach resort had a wonderful sunset", []string{"travel"}},
		{5, "train across the border with a backpack and a visa", []string{"travel"}},
		{6, "knead the dough, add butter flour and sugar, then bake", []string{"cooking"}},
		{7, "grill the steak with pepper garlic and a red sauce", []string{"cooking"}},
		{0, "a simmering broth with noodles and chili spice", []string{"cooking"}},
		{1, "mix the song in the studio and master the vinyl", []string{"music"}},
		{2, "the museum tour and the city landmarks were crowded", []string{"travel"}},
		{3, "a recipe for bread crust that needs a hot oven", []string{"cooking"}},
	}
	for _, d := range bootstrap {
		if err := tagger.AddDocument(d.peer, d.text, d.tags...); err != nil {
			log.Fatal(err)
		}
	}

	// Collaborative learning: models travel the simulated P2P network.
	if err := tagger.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained a %s swarm; traffic so far: %+v\n\n", tagger.Protocol(), tagger.Stats())

	// Suggestion cloud (the "Suggest Tag" button).
	text := "last night's concert had an amazing guitar solo and a long melody"
	fmt.Printf("document: %q\n", text)
	fmt.Printf("preprocessed terms: %v\n", tagger.ExplainDocument(text, 5))
	suggestions, err := tagger.Suggest(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("suggestion cloud:")
	for _, s := range suggestions {
		fmt.Printf("  %-10s %.3f\n", s.Tag, s.Confidence)
	}

	// Automatic tagging (the "AutoTag" button).
	tags, err := tagger.AutoTag(text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-assigned tags: %v\n\n", tags)

	// Refinement: correct the system and watch it adapt.
	correction := "the hiking trail to the waterfall was steep but worth it"
	for i := 0; i < 4; i++ {
		if err := tagger.Refine(correction, "hiking"); err != nil {
			log.Fatal(err)
		}
	}
	after, err := tagger.Suggest("a steep hiking trail with a view of the waterfall")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after refining with a brand-new tag 'hiking':")
	for _, s := range after[:min(3, len(after))] {
		fmt.Printf("  %-10s %.3f\n", s.Tag, s.Confidence)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
