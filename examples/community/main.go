// Community: the paper's demonstration scenario end to end — a
// delicious-style corpus spread over a peer swarm, 20% of documents
// manually tagged (the demo's split), the remaining 80% auto-tagged, with
// accuracy and traffic compared across all four protocol engines.
//
// Run with:
//
//	go run ./examples/community
package main

import (
	"fmt"
	"log"

	doctagger "repro"
)

const (
	peers    = 12
	evalDocs = 80
)

func main() {
	// One corpus, shared by every engine so numbers are comparable.
	docs, tags, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users:   peers,
		NumTags: 12,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := doctagger.SplitCorpus(docs, 0.2, 7)
	fmt.Printf("corpus: %d documents, %d tags; %d labeled (20%%), %d to auto-tag\n\n",
		len(docs), len(tags), len(train), len(test))

	fmt.Printf("%-12s  %8s  %9s  %7s  %12s\n", "protocol", "microF1", "precision", "recall", "train-traffic")
	for _, proto := range []string{
		doctagger.ProtocolLocal,
		doctagger.ProtocolCentralized,
		doctagger.ProtocolPACE,
		doctagger.ProtocolCEMPaR,
	} {
		f1, p, r, traffic := evaluate(proto, train, test)
		fmt.Printf("%-12s  %8.4f  %9.4f  %7.4f  %9d KB\n", proto, f1, p, r, traffic/1024)
	}
	fmt.Println("\nExpected shape: CEMPaR tracks the centralized ceiling; PACE trades")
	fmt.Println("some accuracy for zero-traffic queries; local-only cannot know tags")
	fmt.Println("its user never assigned.")
}

func evaluate(proto string, train, test []doctagger.CorpusDoc) (f1, precision, recall float64, bytes int64) {
	// Shards parallelizes the swarm's event loop (conservative PDES); the
	// measured numbers are byte-identical at any shard count.
	tg, err := doctagger.New(doctagger.Config{Protocol: proto, Peers: peers, Seed: 7, Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range train {
		if err := tg.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
			log.Fatal(err)
		}
	}
	if err := tg.Train(); err != nil {
		log.Fatal(err)
	}
	var tp, fp, fn float64
	n := evalDocs
	if n > len(test) {
		n = len(test)
	}
	for _, d := range test[:n] {
		got, err := tg.AutoTag(d.Text)
		if err != nil {
			log.Fatal(err)
		}
		gold := map[string]bool{}
		for _, t := range d.Tags {
			gold[t] = true
		}
		for _, t := range got {
			if gold[t] {
				tp++
			} else {
				fp++
			}
			delete(gold, t)
		}
		fn += float64(len(gold))
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return f1, precision, recall, tg.Stats().Bytes
}
