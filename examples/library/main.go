// Library: the browsing side of the demo (Figs. 3 and 4) — auto-tag a
// collection into the persistent library, search and filter by tags, and
// render the co-occurrence tag cloud with its concept clusters and
// bridging tags.
//
// Run with:
//
//	go run ./examples/library
package main

import (
	"fmt"
	"log"

	doctagger "repro"
)

func main() {
	const peers = 8
	tagger, err := doctagger.New(doctagger.Config{
		Protocol: doctagger.ProtocolCEMPaR,
		Peers:    peers,
		Regions:  2,
		Seed:     21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The community's labeled documents train the swarm.
	docs, _, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users: peers, NumTags: 8, Seed: 21,
		DocsPerUserMin: 30, DocsPerUserMax: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, test := doctagger.SplitCorpus(docs, 0.3, 21)
	for _, d := range train {
		if err := tagger.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
			log.Fatal(err)
		}
	}
	if err := tagger.Train(); err != nil {
		log.Fatal(err)
	}

	// Auto-tag untagged documents into the library (Fig. 3's AutoTag on a
	// multi-selection).
	lib := doctagger.NewMemoryLibrary()
	n := 120
	if n > len(test) {
		n = len(test)
	}
	for _, d := range test[:n] {
		tags, err := tagger.AutoTag(d.Text)
		if err != nil {
			log.Fatal(err)
		}
		lib.SetTags(fmt.Sprintf("doc-%04d.txt", d.ID), tags, true)
	}
	fmt.Printf("auto-tagged %d documents into the library\n\n", lib.Len())

	// The Library panel: search and filter.
	counts := lib.TagCounts()
	fmt.Println("most used tags:")
	for i, tc := range counts {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-14s %d docs\n", tc.Tag, tc.Count)
	}
	top := counts[0].Tag
	hits := lib.Search(top)
	fmt.Printf("\nsearch %q: %d documents; first few:\n", top, len(hits))
	for i, e := range hits {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-16s %v\n", e.Path, e.Tags)
	}
	if len(counts) > 1 {
		second := counts[1].Tag
		both := lib.Search(top, second)
		fmt.Printf("search %q AND %q: %d documents\n", top, second, len(both))
		without := lib.Search(top, "-"+second)
		fmt.Printf("search %q NOT %q: %d documents\n", top, second, len(without))
	}

	// The Tag Cloud panel (Fig. 4): co-occurrence edges, concept clusters
	// and bridging tags.
	fmt.Println()
	cloud := lib.Cloud(2)
	fmt.Print(cloud)
}
