// Refinement: the personalization loop of §2 — "users can use the tagging
// interface to modify the assigned tags ... P2PDocTagger will automatically
// update the classification model(s) in the back-end, to adapt to their
// personal preference for future tagging."
//
// A user who disagrees with the community's idea of a tag corrects a few
// documents; the example measures how quickly suggestions adapt.
//
// Run with:
//
//	go run ./examples/refinement
package main

import (
	"fmt"
	"log"

	doctagger "repro"
)

func main() {
	const peers = 8
	tagger, err := doctagger.New(doctagger.Config{
		Protocol: doctagger.ProtocolCEMPaR,
		Peers:    peers,
		Regions:  2,
		Seed:     33,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Community knowledge: a generated corpus labels peers 0..7.
	docs, _, err := doctagger.GenerateCorpus(doctagger.CorpusConfig{
		Users: peers, NumTags: 10, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	train, _ := doctagger.SplitCorpus(docs, 0.2, 33)
	for _, d := range train {
		if err := tagger.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
			log.Fatal(err)
		}
	}
	if err := tagger.Train(); err != nil {
		log.Fatal(err)
	}

	// The user's pet topic, unknown to the community: birdwatching notes.
	notes := []string{
		"spotted a heron at the marsh with binoculars at dawn",
		"the warbler migration passed the estuary this morning",
		"a kestrel hovered over the meadow hunting voles",
		"counted twelve curlews on the mudflats at low tide",
		"the owl roost in the old oak had fresh pellets below",
	}
	probe := "binoculars ready for the dawn heron watch at the marsh"

	fmt.Println("confidence that the probe note is 'birding', round by round:")
	printConfidence(tagger, probe, 0)
	for round, note := range notes {
		if err := tagger.Refine(note, "birding"); err != nil {
			log.Fatal(err)
		}
		printConfidence(tagger, probe, round+1)
	}

	tags, err := tagger.AutoTag(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal auto-tags for the probe: %v\n", tags)
}

func printConfidence(t *doctagger.Tagger, text string, round int) {
	suggestions, err := t.Suggest(text)
	if err != nil {
		log.Fatal(err)
	}
	conf := 0.0
	for _, s := range suggestions {
		if s.Tag == "birding" {
			conf = s.Confidence
		}
	}
	bar := ""
	for i := 0; i < int(conf*40); i++ {
		bar += "█"
	}
	fmt.Printf("  after %d refinements: %.3f %s\n", round, conf, bar)
}
