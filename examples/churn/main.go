// Churn: the fault-tolerance demonstration of §3 — the same tagging
// workload run against increasingly unstable networks, showing why the
// paper argues against centralization: "system failures can result in
// catastrophic outcomes ... peers are autonomous and hence there is no
// single point of failure".
//
// This example drives the P2PDMT toolkit directly (the in-repo simulation
// layer; the public doctagger API hides the network on purpose).
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/p2pdmt"
	"repro/internal/simnet"
)

func main() {
	levels := []struct {
		name  string
		model simnet.SessionModel
	}{
		{"stable", nil},
		{"mild (10m up / 1m down)", simnet.ExponentialChurn{MeanUptime: 10 * time.Minute, MeanDowntime: time.Minute}},
		{"heavy (2m up / 1m down)", simnet.ExponentialChurn{MeanUptime: 2 * time.Minute, MeanDowntime: time.Minute}},
		{"pareto (heavy-tailed)", simnet.ParetoChurn{MinUptime: time.Minute, Alpha: 1.5, MeanDowntime: time.Minute}},
	}

	fmt.Println("32 peers, 60 tag queries per cell; 'failed' counts queries the")
	fmt.Println("protocol could not answer (the owner being offline is excluded —")
	fmt.Println("an off machine asks no questions).")
	fmt.Println()
	fmt.Printf("%-26s %-12s %9s %7s %8s\n", "churn", "protocol", "answered", "failed", "microF1")
	for _, lvl := range levels {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoCentralized, p2pdmt.ProtoCEMPaR, p2pdmt.ProtoPACE,
		} {
			res, err := p2pdmt.Run(p2pdmt.Config{
				Peers:    32,
				Protocol: proto,
				EvalDocs: 60,
				Churn:    lvl.model,
				Seed:     99,
				// Shard the simulated network over the cores (conservative
				// PDES). Results are byte-identical at any shard count —
				// delete the line and the table does not change.
				Shards: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-26s %-12s %9d %7d %8.4f\n",
				lvl.name, res.Protocol,
				res.TotalQueries-res.FailedQueries, res.FailedQueries,
				res.Eval.MicroF1())
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: the centralized tagger loses every query issued")
	fmt.Println("while its coordinator is down; CEMPaR re-elects super-peers after")
	fmt.Println("stabilization; PACE predicts from local model copies and never")
	fmt.Println("fails an issued query.")
}
