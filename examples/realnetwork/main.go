// Realnetwork: collaborative tagging over actual TCP sockets — the
// deployment path behind the paper's claim that "code written for P2PDMT
// is reusable in real applications". Three peers start on loopback,
// discover each other through one seed address, train on their own tagged
// documents, broadcast calibrated models, and then every peer answers tag
// queries locally — including for topics only other peers know.
//
// Run with:
//
//	go run ./examples/realnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/realnet"
)

func main() {
	// Peer A starts first; B and C join through A's address.
	a, err := realnet.Start(realnet.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer a.Close()
	b, err := realnet.Start(realnet.Config{Seeds: []string{a.Addr()}, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Close()
	c, err := realnet.Start(realnet.Config{Seeds: []string{a.Addr()}, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("peers: A=%s B=%s C=%s\n", a.Addr(), b.Addr(), c.Addr())

	// Each user tags their own documents on their own machine.
	tagAll := func(n *realnet.Node, tag string, texts ...string) {
		for _, t := range texts {
			if err := n.AddDocument(t, tag); err != nil {
				log.Fatal(err)
			}
		}
	}
	tagAll(a, "music",
		"the guitar melody and the piano chords carried the song",
		"a symphony concert with a full orchestra and a choir",
		"drum and bass rhythm with an acoustic guitar riff",
		"the new album has a wonderful chorus and vocal harmony",
		"the band recorded a jazz tune with a long piano riff",
		"a singer with a perfect vocal scale and a soft melody")
	tagAll(a, "cooking",
		"a recipe with flour butter and sugar baked in the oven",
		"grill the steak with garlic pepper and a simple sauce",
		"simmer the broth with noodles and fresh chili spice",
		"whisk the batter and season the pan before you roast")
	tagAll(b, "travel",
		"booked the flight and hotel with the passport and itinerary ready",
		"the island beach resort and the sunset cruise were perfect",
		"a train across the border with a backpack and a visa",
		"the museum tour covered every landmark in the old city",
		"the airport terminal and the luggage belt were crowded",
		"a cruise voyage to the island with a stop at the resort")
	tagAll(b, "music",
		"mixing the track in the studio for the vinyl release",
		"the lyric and the verse fit the tempo of the tune",
		"an acoustic guitar chord under a quiet vocal harmony",
		"the orchestra tuned before the symphony began")
	tagAll(c, "cooking",
		"knead the dough for the bread crust and let the yeast work",
		"season the stew and roast the vegetables in the pan",
		"a marinade of garlic and pepper for the grilled steak",
		"bake the bread with flour yeast and a pinch of sugar",
		"the broth simmered while the noodles soaked in spice",
		"butter the crust and bake the dough in a hot oven")
	tagAll(c, "travel",
		"the luggage and the currency exchange at the airport terminal",
		"an excursion with a guide to the ancient landmark",
		"the itinerary covered the museum the resort and the beach",
		"a passport a visa and a booking for the next voyage")

	// Wait for transitive membership, then publish models.
	waitUntil(func() bool {
		return len(a.Peers()) >= 2 && len(b.Peers()) >= 2 && len(c.Peers()) >= 2
	}, "membership")
	for name, n := range map[string]*realnet.Node{"A": a, "B": b, "C": c} {
		sum, err := n.Publish()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s published models to %d peers\n", name, sum.Reached)
		for peer, err := range sum.Failed {
			fmt.Printf("  failed to reach %s: %v\n", peer, err)
		}
	}
	waitUntil(func() bool {
		return a.ModelsKnown() >= 2 && b.ModelsKnown() >= 2 && c.ModelsKnown() >= 2
	}, "model propagation")

	// Peer A has never tagged anything "travel" — but the swarm has.
	fmt.Println("\npeer A asks about a travel note it could never tag alone:")
	scores, err := a.Suggest("the flight to the island and the beach hotel are booked")
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range scores {
		if i >= 3 {
			break
		}
		fmt.Printf("  %-10s %.3f\n", s.Tag, s.Score)
	}
	tags, err := a.AutoTag("the flight to the island and the beach hotel are booked", 0.5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-tags at peer A: %v\n", tags)
}

func waitUntil(cond func() bool, what string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	log.Fatalf("timeout waiting for %s", what)
}
