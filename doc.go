// Package doctagger is a from-scratch reproduction of P2PDocTagger (Ang,
// Gopalkrishnan, Ng, Hoi — PVLDB 3(2):1601-1604, VLDB 2010): an automated,
// distributed collaborative document tagging system based on classification
// in P2P networks.
//
// The package exposes the full pipeline of the paper's Fig. 1:
//
//	select documents → preprocess → manual tagging →
//	P2P collaborative learning → automatic tagging → tag refinement
//
// A Tagger embeds a simulated peer swarm (the paper's own demonstrations
// ran on the P2PDMT simulator for the same reason: realistic P2P testing
// needs hundreds of machines). The local user is peer 0; the remaining
// peers contribute their own labeled documents, and the configured P2P
// classification protocol — CEMPaR (cascade kernel SVMs at DHT-elected
// super-peers) or PACE (linear SVM ensembles indexed by LSH) — pools their
// knowledge. Centralized and local-only engines are included as the
// baselines every experiment compares against.
//
// A Library persists tag metadata, answers tag searches, and builds the
// co-occurrence tag cloud of the paper's Fig. 4.
//
// The experiment harness reproducing the paper's demonstration scenarios
// lives in bench_test.go (one benchmark per experiment; see EXPERIMENTS.md)
// and is driven by the P2PDMT toolkit under internal/p2pdmt.
package doctagger
