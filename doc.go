// Package doctagger is a from-scratch reproduction of P2PDocTagger (Ang,
// Gopalkrishnan, Ng, Hoi — PVLDB 3(2):1601-1604, VLDB 2010): an automated,
// distributed collaborative document tagging system based on classification
// in P2P networks.
//
// The package exposes the full pipeline of the paper's Fig. 1:
//
//	select documents → preprocess → manual tagging →
//	P2P collaborative learning → automatic tagging → tag refinement
//
// A Tagger embeds a simulated peer swarm (the paper's own demonstrations
// ran on the P2PDMT simulator for the same reason: realistic P2P testing
// needs hundreds of machines). The local user is peer 0; the remaining
// peers contribute their own labeled documents, and the configured P2P
// classification protocol — CEMPaR (cascade kernel SVMs at DHT-elected
// super-peers) or PACE (linear SVM ensembles indexed by LSH) — pools their
// knowledge. Centralized and local-only engines are included as the
// baselines every experiment compares against.
//
// A Library persists tag metadata, answers tag searches, and builds the
// co-occurrence tag cloud of the paper's Fig. 4.
//
// The experiment harness reproducing the paper's demonstration scenarios
// lives in bench_test.go (one benchmark per experiment; see EXPERIMENTS.md)
// and is driven by the P2PDMT toolkit under internal/p2pdmt.
//
// # Parallel execution
//
// CPU-bound work throughout the system runs on internal/runner, a
// deterministic parallel execution subsystem: independent jobs fan out
// over a GOMAXPROCS-sized worker pool and results are collected in
// submission order, so parallel output is byte-identical to a serial run.
// Three layers use it:
//
//   - Experiment sweeps (internal/experiments): every (experiment, config)
//     cell is an independent job building its own simulated network from
//     its own seed. Rows append in declaration order. Run sweeps with
//     "cmd/experiments -parallel N" (0 = all cores, 1 = serial); "-seed S"
//     re-seeds a sweep, deriving an independent seed per cell via
//     runner.DeriveSeed(S, experimentID, cellCoordinates...) — FNV-1a over
//     the cell's identity finished with the SplitMix64 avalanche, so no
//     two cells share a random stream and neither scheduling order nor
//     worker count can change any cell's result.
//   - Per-peer training (internal/p2pdmt and the protocols): each peer's
//     local SVM training reads only that peer's shard, so peers train
//     concurrently; only the protocol message exchange stays on the
//     simulator's virtual clock. CEMPaR's per-tag regional cascades and
//     the centralized baseline's per-tag global models parallelize the
//     same way. See p2pdmt.Config.Parallel.
//   - Batch tagging (AutoTagBatch): term extraction fans out per document
//     while lexicon id assignment stays serial in input order, and all
//     swarm queries are issued before the network runs once.
//
// The determinism contract — parallel execution is bit-identical to
// serial — is enforced by tests at all three layers (see
// internal/experiments/determinism_test.go, TestRunParallelMatchesSerial,
// TestAutoTagBatchMatchesSerial) and the suite is race-clean under
// "go test -race ./...".
//
// # Parallel simulation
//
// The simulator itself (internal/simnet) is a sharded conservative
// parallel discrete-event engine (PDES), so one large network can also be
// split across cores — orthogonal to the sweep- and peer-level parallelism
// above, and the piece that makes >512-peer message-heavy simulations
// tractable. Nodes partition over Config.Shards shards by id; each shard
// owns an event heap and clock. Virtual time advances in barrier-
// synchronized windows one lookahead wide — the lookahead is the latency
// model's minimum link delay, so no message sent inside a window can be
// due before the window ends — and within a window the shards execute
// concurrently on internal/runner workers, exchanging cross-shard messages
// through mailboxes that merge at the barrier. System events (churn,
// stabilizers) run alone at global barriers.
//
// The determinism contract is the same as everywhere else in the repo:
// stats, experiment tables and tag assignments are byte-identical at every
// shard count, because events are ordered by (time, creating node,
// per-node counter) rather than by arrival, and every node draws latency
// jitter, drop decisions and churn sessions from a private stream derived
// via runner.DeriveSeed(seed, nodeID). The knob threads through every
// layer: doctagger.Config.Shards, p2pdmt.Config.Shards,
// experiments.Scale.Shards, "cmd/experiments -shards" and
// "cmd/p2pdmt -shards"; cmd/simbench measures the wall-clock scaling and
// verifies the checksums agree (BenchmarkSimnetShards is the in-tree
// equivalent).
//
// # Serving
//
// A Tagger is not safe for concurrent use; a Server is. Server (backed by
// internal/serving) turns a pool of identically trained Taggers into a
// concurrent serving front-end: goroutines submit single documents with
// Tag (or many at once with TagBatch, which enters the dispatcher as
// pre-formed batches and pays no coalescing delay), a micro-batching
// dispatcher coalesces them — flushing at MaxBatch requests or MaxDelay
// after the first, whichever comes first — and fans the batches over the
// shard pool with one goroutine per shard, bounded queueing for
// backpressure, per-request error propagation and a graceful drain on
// Close. Batched answers are exactly what serial AutoTag calls would
// return for the same inputs; the Stats snapshot (batch counts, batch-size
// histogram, queue waits, cache counters, aggregate swarm traffic) shows
// what the batching bought. See ExampleServer, and cmd/p2pserve for the
// HTTP/JSON face of the same layer (POST /v1/tag, /v1/tag/batch,
// /v1/refresh, GET /v1/stats, /healthz, /readyz).
//
// Two serving capabilities ride on the determinism contract:
//
//   - Request-level caching (ServerConfig.CacheSize): a sharded, bounded
//     LRU keyed on document text answers repeated queries without
//     re-entering a swarm. Sound because queries never feed back into the
//     models — identical text means identical tags for as long as one
//     model generation serves. Cached answers are test-pinned
//     byte-identical to uncached serial AutoTag.
//   - Live model refresh (Server.Swap / Server.Refresh): a new identically
//     trained tagger generation is installed under traffic — new shards
//     start, the dispatcher switches between batches, old shards drain
//     in-flight work and exit, the cache flushes so no answer outlives its
//     models, and no accepted request is dropped. This is how
//     (*Tagger).Refine reaches live serving: refine a retired (or freshly
//     built) generation offline, then swap it in — the paper's "upon the
//     refinement of tags, P2PDocTagger will automatically update the
//     classification model(s)", made concurrent.
//   - Single-flight dedup (always on): concurrent Tag calls for identical
//     text coalesce onto one in-flight swarm query per model generation;
//     followers wait for the leader's answer instead of issuing their own
//     (ServerStats.Coalesced counts them). Same soundness argument as the
//     cache, same generation purity: Swap discards the in-flight table.
//
// # Distributed serving cluster
//
// Serving is not tied to Taggers: Engine is the minimal contract the
// dispatcher needs (AutoTagBatch over texts), NewEngineServer fronts any
// engines with the same micro-batching/caching/backpressure machinery,
// and Server.SwapEngines live-swaps a generation of them in — the same
// drain/flush discipline as Swap, usable in either direction between
// tagger-backed and generic generations. ServerStats.Issued exposes the
// serving accounting identity (Issued = Served + CacheHits + Coalesced +
// Deduped), the invariant cluster tests check per node.
//
// internal/realnet composes with this into a distributed serving cluster:
// real TCP peers gossip whole model generations (wire-encoded calibrated
// model sets, flooded with (sequence, origin) dedup and periodic
// anti-entropy rebroadcast by the origin), and every node installs an
// arriving generation through SwapEngines as a realnet.Ensemble — an
// accuracy-weighted vote over the gossiped per-tag models, deterministic
// in (corpus, seed), so every node answers byte-identically. The realnet
// transport is hardened for that role: per-peer retry budgets with
// seed-derived exponential backoff, dead-peer quarantine with re-probe,
// per-frame read deadlines, frame corruption and sender-address
// validation, bounded peer tables, and per-peer counters (sends, retries,
// failures, frames and bytes in/out) surfaced through Node.Transport().
// Publish and PublishGeneration report per-peer partial failure instead
// of a single error.
//
// cmd/p2pserve ties it together ("-mesh", "-mesh-join"): N processes form
// a mesh, POST /v1/publish trains and floods a generation cluster-wide,
// GET /v1/stats adds the transport counters and installed generation, and
// the cluster chaos test (cmd/p2pserve/cluster_test.go) pins the
// acceptance story — a node killed and restarted and a partition healed
// while every query keeps answering byte-identically to a serial
// reference with zero dropped requests. "-loadgen-cluster" benchmarks the
// composition in-process and writes BENCH_cluster.json.
//
// # Adversarial resilience
//
// The mesh assumes Byzantine peers, not just crashed ones. Every inbound
// generation runs a validation pipeline before it touches any state: a
// wire-size budget, a content digest carried in the frame (wire.Checksum
// over the encoded set — corrupt or tampered bytes fail before the
// decoder runs), hardened wire decoders whose allocations grow
// incrementally against claimed lengths (fuzzed, with a committed seed
// corpus), structural validation (tag/dimension caps, finite-weight scan
// rejecting NaN/Inf), and a holdout probe scoring the set against a small
// local corpus — plausible-looking but systematically wrong models
// (weight-scaled, label-flipped) fail here. Rejections feed a per-origin
// trust ledger: a rejected origin's score halves and it is quarantined
// for a seed-jittered window (runner.DeriveSeed per origin), after which
// the next generation it gossips is re-probed; accepted generations
// rebuild score. Only trust-admitted generations install, relay, or reach
// the serving swap — and trust scores multiply into the Ensemble vote
// (NewWeightedEnsemble), with full trust exactly bit-invisible so the
// byte-determinism pins hold. Stale (sequence, origin) echoes are normal
// gossip traffic, deduplicated without charging trust.
//
// realnet.Adversary is the attack side: a deterministic scripted
// Byzantine peer (NaN bombs, weight-scaled poison, label-flipped
// retrains, stale replays, forged-origin floods — every corruption drawn
// from runner.DeriveSeed streams) that folds each frame it builds into a
// digest, so a dry run pins byte-for-byte what a live run injected.
// TestClusterByzantine (cmd/p2pserve) drives it against a serving cluster
// under continuous load: every answer stays byte-identical to the serial
// reference, nothing poisoned installs, and /v1/stats shows the rejects
// and demoted trust.
//
// # Inference fast path
//
// Every cache miss runs the zero-allocation inference fast path:
//
//   - Pooled preprocessing: Vectorize tokenizes, filters, stems (in place,
//     on bytes) and counts terms on a sync.Pool workspace — zero
//     allocations in steady state except the returned vector itself (two
//     allocations; terms new to the lexicon add O(1) amortized more).
//     Workspaces must never escape the call that took them from the pool;
//     everything handed to callers is copied out.
//   - Fused multi-tag scoring: each protocol packs its per-tag linear
//     models into one svm.FusedLinear inverted score matrix (feature id ->
//     per-tag weights; CSR cells for sparse pruned ensembles, dense or
//     8-wide blocked rows for shared-pool banks), so scoring T tags is one
//     ascending pass over the document's non-zero entries instead of T dot
//     products. The matrix is immutable derived data, rebuilt wherever the
//     bank changes (retraining, Refine, serving Swap/Refresh).
//   - Cached kernel norms: RBF KernelModels precompute their support
//     vectors' squared norms (KernelModel.Precompute, called at every
//     construction site) and hoist the query norm, so each kernel
//     evaluation is a single sparse dot product.
//
// Every stage is pinned byte-identical to the straightforward
// implementation it replaced — reference copies of the seed tokenizer,
// vectorizer and kernel evaluation live in the tests and must agree on
// exact float64 bit patterns — so the fast path changes latency, never
// answers. cmd/tagbench measures the trajectory (docs/sec, p50/p99,
// allocs/op, fused-vs-per-tag scoring) and writes BENCH_tagging.json.
//
// # Streaming execution
//
// The local score path chains those stages with no materialized
// intermediates: Preprocessor.VectorizeInto hands the pooled, sorted,
// weighted entries directly to FusedLinear.ScoreEntriesInto, and
// protocol.SelectTagsInto thresholds out of reused scratch, so a whole
// AutoTag runs in at most two allocations (the returned tags) and
// AutoTagBatch/serving.TagBatch stream documents with O(1) intermediate
// state. Three contracts make it safe:
//
//   - Layout selection: NewFusedLinear keeps banks under 25% fill in CSR;
//     denser banks with at least four tags use the blocked layout (rows
//     zero-padded to multiples of eight, scored in register-resident
//     accumulator blocks with bounds-check-free unrolled loops), scalar
//     dense rows otherwise. NewFusedLinearLayout forces a layout.
//   - Bit-identity: every layout accumulates each tag's partial sums over
//     entries in ascending feature-id order and padding lanes only add
//     v*0, so all three layouts reproduce per-tag Decision exactly.
//   - Scratch lifetime: the entries VectorizeInto passes to its visitor
//     (and the scores a protocol.StreamScorer hands its callback) live in
//     pooled scratch, valid only until the visit returns — consume or
//     copy, never retain. dmtvet/scratchescape enforces this mechanically.
//
// # Static analysis / invariants
//
// The contracts above are not just prose: cmd/dmtvet (internal/lint) is a
// suite of custom analyzers — built on internal/lint/analysis, an
// offline, API-compatible stand-in for golang.org/x/tools/go/analysis
// grown into a flow-aware interprocedural engine (intra-module call graph
// plus deterministic per-function summaries, so facts cross call
// boundaries) — that enforces them at vet time, as a required CI step
// next to go vet:
//
//   - detrand: no wall-clock reads (time.Now/Since/Until), global
//     math/rand draws, or rand generators whose seed does not flow from
//     runner.DeriveSeed or a Config/Options seed field, inside the
//     deterministic packages (simnet, p2pdmt, cempar, pace, baseline,
//     experiments, textproc, svm, runner and the simulation substrate) —
//     including nondeterminism smuggled in through helpers elsewhere in
//     the module.
//   - maprange: no order-dependent reductions over map iteration (float
//     accumulation, string concatenation, unsorted appends) — the latent
//     MacroF1 bug class fixed by hand in PR 1.
//   - scratchescape: pooled scratch workspaces must not escape the
//     borrowing call (the preprocessing contract above), even through a
//     helper that returns or retains its parameter.
//   - enginerules: node event handlers must not call serial-point engine
//     APIs (AddNode/RemoveNode/Kill/Revive/ScheduleSystem) or the setup
//     stream Rand — the PDES discipline, previously a runtime panic, as a
//     compile-time diagnostic.
//   - fusedmut: svm.FusedLinear is immutable outside NewFusedLinear (the
//     rebuild-on-swap contract above), even when its backing memory is
//     handed to a helper that mutates its parameter.
//   - lockdiscipline: no blocking operation (channel op, select,
//     WaitGroup.Wait, sleep, network/file I/O — directly or through a
//     callee whose summary blocks) while a mutex is held, no lock-order
//     inversions against the program-wide observed acquisition order, no
//     re-acquiring a held lock class, no copying values containing sync
//     primitives.
//   - goroleak: every spawned goroutine has a join or cancel path (a
//     channel op, select, close, WaitGroup.Done, or context-done) so
//     Close/drain can wait for it — the drain contracts above.
//   - waiverstale: a waiver comment that no longer suppresses anything is
//     itself a diagnostic, so suppressions stay honest.
//
// Run `go run ./cmd/dmtvet ./...` (or `make lint`) locally — identical to
// CI (runs are content-hash cached; -nocache opts out, -json and
// -diff <ref> serve machine consumers and review workflows). Surgical
// exceptions use a mandatory-reason waiver comment on or directly above
// the offending line:
//
//	//dmtvet:allow <analyzer> <reason>
package doctagger
