package doctagger_test

// One benchmark per experiment of the evaluation suite (see DESIGN.md for
// the experiment index and EXPERIMENTS.md for the committed results). The
// paper is a demonstration paper without numeric result tables, so each
// benchmark regenerates the table its demo scenario would have produced.
// Benchmarks print their table on the first iteration and report the
// headline metric via b.ReportMetric.
//
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// The full suite takes a few minutes; individual experiments run with
// -bench=BenchmarkE1 etc.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	doctagger "repro"
	"repro/internal/experiments"
	"repro/internal/p2pdmt"
)

// benchScale holds experiment sizes for benchmarks. Override the sweep cap
// with REPRO_MAX_PEERS for larger machines.
func benchScale() experiments.Scale {
	sc := experiments.DefaultScale()
	if v := os.Getenv("REPRO_MAX_PEERS"); v != "" {
		var n int
		if _, err := fmt.Sscan(v, &n); err == nil && n > 0 {
			sc.MaxPeers = n
		}
	}
	return sc
}

// printOnce renders each experiment table a single time even when the
// benchmark framework re-runs the function with growing b.N.
var printedTables sync.Map

func emit(b *testing.B, tbl *p2pdmt.Table) {
	b.Helper()
	if _, already := printedTables.LoadOrStore(tbl.Title, true); !already {
		fmt.Printf("\n%s\n", tbl)
	}
}

// lastF1 extracts the final row's value in the named column as the
// benchmark's headline metric.
func lastF1(tbl *p2pdmt.Table, col int) float64 {
	if len(tbl.Rows) == 0 {
		return 0
	}
	var f float64
	fmt.Sscan(tbl.Rows[len(tbl.Rows)-1][col], &f)
	return f
}

func BenchmarkE1AccuracyVsPeers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E1AccuracyVsPeers(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkE2CommunicationCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E2CommunicationCost(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkE3TrainingFraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E3TrainingFraction(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkE4Churn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E4Churn(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkE5SizeSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E5SizeSkew(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkE6ClassSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E6ClassSkew(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkE7Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E7Topology(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkE8PaceTopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E8PaceTopK(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkE9ConfidenceSlider(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E9ConfidenceSlider(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkE10Refinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.E10Refinement(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
		b.ReportMetric(lastF1(tbl, 2), "microF1")
	}
}

func BenchmarkF4TagCloud(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, cloud, err := experiments.F4TagCloud(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		if _, already := printedTables.LoadOrStore("F4-cloud", true); !already {
			fmt.Printf("\n%s\n%s\n", tbl, cloud)
		}
	}
}

func BenchmarkA1CEMPaRAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.A1CEMPaRAblations(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkA2Weighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.A2Weighting(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkA3DropRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.A3DropRate(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

func BenchmarkA4Privacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.A4Privacy(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		emit(b, tbl)
	}
}

// BenchmarkParallelSpeedup runs the E1 sweep fully serially and then
// fanned out over all cores, reporting the wall-clock ratio as the
// "speedup" metric (1.0 on a single-core machine; ≥ 2 expected on 4+
// cores). Both runs produce byte-identical tables — that contract is
// enforced by the determinism tests; this benchmark measures what the
// parallelism buys.
func BenchmarkParallelSpeedup(b *testing.B) {
	sc := experiments.QuickScale()
	var serialTotal, parallelTotal time.Duration
	for i := 0; i < b.N; i++ {
		serialScale := sc
		serialScale.Parallel = 1
		start := time.Now()
		if _, err := experiments.E1AccuracyVsPeers(serialScale); err != nil {
			b.Fatal(err)
		}
		serialTotal += time.Since(start)

		parallelScale := sc
		parallelScale.Parallel = 0 // all cores
		start = time.Now()
		if _, err := experiments.E1AccuracyVsPeers(parallelScale); err != nil {
			b.Fatal(err)
		}
		parallelTotal += time.Since(start)
	}
	if parallelTotal > 0 {
		b.ReportMetric(float64(serialTotal)/float64(parallelTotal), "speedup")
	}
}

// benchTagger builds one trained 8-peer CEMPaR swarm on a small two-topic
// corpus; repeated calls yield identically trained instances, which is what
// the serving pool requires of its shards.
func benchTagger(b *testing.B) *doctagger.Tagger {
	return benchProtoTagger(b, doctagger.ProtocolCEMPaR)
}

// BenchmarkTaggerSuggest measures the latency of one suggestion query on a
// trained swarm — the interactive cost a demo visitor would feel clicking
// "Suggest Tag".
func BenchmarkTaggerSuggest(b *testing.B) {
	tg := benchTagger(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.Suggest("a new album with a guitar melody"); err != nil {
			b.Fatal(err)
		}
	}
}

var servingQueries = []string{
	"a new album with a soft piano melody",
	"booking a flight and a hotel for the island",
	"drum track with a heavy bass rhythm",
	"train luggage on the station platform",
	"a symphony concert at the city hall",
	"passport and itinerary for the beach",
}

// runServingClients spreads b.N tagging calls over the given number of
// concurrent client goroutines, each cycling through the query mix.
func runServingClients(b *testing.B, clients int, tag func(q string) error) {
	b.Helper()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		share := b.N / clients
		if c < b.N%clients {
			share++
		}
		wg.Add(1)
		go func(c, share int) {
			defer wg.Done()
			for r := 0; r < share; r++ {
				if err := tag(servingQueries[(c+r)%len(servingQueries)]); err != nil {
					b.Error(err)
					return
				}
			}
		}(c, share)
	}
	wg.Wait()
}

// BenchmarkServing compares three ways to put a trained swarm behind
// concurrent clients: "serial" funnels every request one at a time through
// a mutex-guarded Tagger (the baseline a naive service would ship),
// "batched" goes through the doctagger.Server micro-batching pool, and
// "cached" adds the request-level result cache in front of the same pool
// (the query mix cycles a small hot set, so most requests are hits). The
// batched variants also report the mean batch size the dispatcher
// observed and the cached variant its hit count — the quantities that
// explain the throughput gaps.
func BenchmarkServing(b *testing.B) {
	for _, clients := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("serial/clients=%d", clients), func(b *testing.B) {
			tg := benchTagger(b)
			var mu sync.Mutex
			b.ResetTimer()
			runServingClients(b, clients, func(q string) error {
				mu.Lock()
				defer mu.Unlock()
				_, err := tg.AutoTag(q)
				return err
			})
		})
		b.Run(fmt.Sprintf("batched/clients=%d", clients), func(b *testing.B) {
			srv, err := doctagger.NewReplicatedServer(2, doctagger.ServerConfig{},
				func(int) (*doctagger.Tagger, error) { return benchTagger(b), nil })
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ctx := context.Background()
			b.ResetTimer()
			runServingClients(b, clients, func(q string) error {
				_, err := srv.Tag(ctx, q)
				return err
			})
			b.StopTimer()
			b.ReportMetric(srv.Stats().MeanBatchSize, "batchsize")
		})
		b.Run(fmt.Sprintf("cached/clients=%d", clients), func(b *testing.B) {
			srv, err := doctagger.NewReplicatedServer(2, doctagger.ServerConfig{CacheSize: 64},
				func(int) (*doctagger.Tagger, error) { return benchTagger(b), nil })
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ctx := context.Background()
			b.ResetTimer()
			runServingClients(b, clients, func(q string) error {
				_, err := srv.Tag(ctx, q)
				return err
			})
			b.StopTimer()
			st := srv.Stats()
			b.ReportMetric(st.MeanBatchSize, "batchsize")
			b.ReportMetric(float64(st.CacheHits), "hits")
		})
	}
}

// BenchmarkAutoTag measures single-document tagging — preprocess + scoring
// + tag selection — on a trained swarm. The cempar variant includes the
// simulated super-peer query round-trip (event scheduling dominates); the
// local variant predicts synchronously, isolating the pure
// preprocess+score fast path whose allocation budget this PR pins.
func BenchmarkAutoTag(b *testing.B) {
	for _, proto := range []string{doctagger.ProtocolCEMPaR, doctagger.ProtocolLocal} {
		b.Run(proto, func(b *testing.B) {
			tg := benchProtoTagger(b, proto)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tg.AutoTag("a new album with a guitar melody and a piano track"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchProtoTagger is benchTagger with a protocol choice.
func benchProtoTagger(b *testing.B, proto string) *doctagger.Tagger {
	b.Helper()
	tg, err := doctagger.New(doctagger.Config{Protocol: proto, Peers: 8, Regions: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	texts := []struct {
		tag  string
		docs []string
	}{
		{"music", []string{"guitar melody chord song album track", "piano concert symphony orchestra"}},
		{"travel", []string{"flight hotel passport beach island", "train station luggage itinerary map"}},
	}
	peer := 0
	for _, topic := range texts {
		for _, text := range topic.docs {
			for rep := 0; rep < 3; rep++ {
				if err := tg.AddDocument(peer%8, text, topic.tag); err != nil {
					b.Fatal(err)
				}
				peer++
			}
		}
	}
	if err := tg.Train(); err != nil {
		b.Fatal(err)
	}
	return tg
}
