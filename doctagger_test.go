package doctagger

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/protocol"
)

// corpusFor stages a small three-topic corpus across the swarm's peers.
func corpusFor(t *testing.T, tg *Tagger, peers int) {
	t.Helper()
	topics := []struct {
		tag   string
		texts []string
	}{
		{"music", []string{"guitar melody chord song album", "piano concert symphony melody", "drum bass rhythm song track", "vinyl album melody chorus tune"}},
		{"travel", []string{"flight hotel passport itinerary beach", "backpack hostel visa train border", "island beach resort luggage sunset", "map itinerary museum city tour"}},
		{"food", []string{"recipe oven butter flour sugar", "grill steak pepper garlic sauce", "noodle broth spice chili bowl", "bread yeast dough crust bake"}},
	}
	peer := 0
	for _, topic := range topics {
		for i, text := range topic.texts {
			// Spread documents across peers deterministically. The first
			// document of every topic also trains peer 0 (the querying
			// peer), so the local-only baseline knows every tag.
			target := peer % peers
			if i == 0 {
				target = 0
			}
			if err := tg.AddDocument(target, text+" "+text, topic.tag); err != nil {
				t.Fatal(err)
			}
			peer++
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Protocol: "bogus"}); err == nil {
		t.Error("bogus protocol accepted")
	}
	tg, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Protocol() != "CEMPaR" {
		t.Errorf("default protocol = %q", tg.Protocol())
	}
}

func TestConfigSentinels(t *testing.T) {
	// Out-of-range values are rejected instead of silently accepted.
	for _, cfg := range []Config{
		{Threshold: -0.5},
		{Threshold: 1.5},
		{MaxTags: -2},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted an out-of-range value", cfg)
		}
	}
	// Zero values keep the paper defaults.
	tg, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Threshold() != 0.5 || tg.cfg.MaxTags != 4 {
		t.Errorf("defaults = threshold %v, maxTags %d", tg.Threshold(), tg.cfg.MaxTags)
	}
	// The sentinels request what the zero value cannot: threshold 0 and no
	// tag cap.
	tg, err = New(Config{Peers: 4, Seed: 1, Threshold: ThresholdNone, MaxTags: MaxTagsUnlimited})
	if err != nil {
		t.Fatal(err)
	}
	if tg.Threshold() != 0 {
		t.Errorf("ThresholdNone resolved to %v, want 0", tg.Threshold())
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	// Threshold 0 with no cap returns every tag the swarm knows (3 topics).
	tags, err := tg.AutoTag("song melody on the beach with a recipe for the hotel grill")
	if err != nil {
		t.Fatal(err)
	}
	if len(tags) != 3 {
		t.Errorf("threshold 0, no cap: AutoTag = %v, want all 3 known tags", tags)
	}
}

func TestLifecycleGuards(t *testing.T) {
	tg, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.Suggest("anything"); err != ErrNotTrained {
		t.Errorf("Suggest before train = %v", err)
	}
	if _, err := tg.AutoTag("anything"); err != ErrNotTrained {
		t.Errorf("AutoTag before train = %v", err)
	}
	if err := tg.Refine("x", "tag"); err != ErrNotTrained {
		t.Errorf("Refine before train = %v", err)
	}
	if err := tg.Train(); err == nil {
		t.Error("training with no documents should fail")
	}
	if err := tg.AddDocument(99, "text", "tag"); err == nil {
		t.Error("out-of-range peer accepted")
	}
	if err := tg.AddDocument(0, "text"); err == nil {
		t.Error("document without tags accepted")
	}
}

func TestEndToEndPerProtocol(t *testing.T) {
	for _, proto := range []string{ProtocolCEMPaR, ProtocolPACE, ProtocolCentralized, ProtocolLocal} {
		t.Run(proto, func(t *testing.T) {
			tg, err := New(Config{Protocol: proto, Peers: 6, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			corpusFor(t, tg, 6)
			if err := tg.Train(); err != nil {
				t.Fatal(err)
			}
			sugg, err := tg.Suggest("festival song with guitar and melody on a new album")
			if err != nil {
				t.Fatal(err)
			}
			if len(sugg) == 0 {
				t.Fatal("empty suggestion cloud")
			}
			if sugg[0].Tag != "music" {
				t.Errorf("top suggestion = %+v, want music", sugg[0])
			}
			tags, err := tg.AutoTag("bake the dough with butter sugar and flour in the oven")
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, tag := range tags {
				if tag == "food" {
					found = true
				}
			}
			if !found {
				t.Errorf("AutoTag = %v, want food included", tags)
			}
		})
	}
}

// TestAutoTagBatchMatchesSerial pins AutoTagBatch's contract: for every
// protocol, batching must return exactly what per-document AutoTag calls
// return, in input order, on an identically built swarm.
func TestAutoTagBatchMatchesSerial(t *testing.T) {
	queries := []string{
		"a new album with a soft piano melody",
		"booking a flight and a hotel for the island",
		"a bread recipe with yeast and flour",
		"drum track with a heavy bass rhythm",
	}
	for _, proto := range []string{ProtocolCEMPaR, ProtocolPACE, ProtocolCentralized, ProtocolLocal} {
		build := func() *Tagger {
			tg, err := New(Config{Protocol: proto, Peers: 4, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			corpusFor(t, tg, 4)
			if err := tg.Train(); err != nil {
				t.Fatal(err)
			}
			return tg
		}
		serial := build()
		want := make([][]string, len(queries))
		for i, q := range queries {
			tags, err := serial.AutoTag(q)
			if err != nil {
				t.Fatalf("%s: AutoTag(%q): %v", proto, q, err)
			}
			want[i] = tags
		}
		got, err := build().AutoTagBatch(queries)
		if err != nil {
			t.Fatalf("%s: AutoTagBatch: %v", proto, err)
		}
		for i := range queries {
			if strings.Join(got[i], ",") != strings.Join(want[i], ",") {
				t.Errorf("%s: doc %d: batch %v != serial %v", proto, i, got[i], want[i])
			}
		}
	}
}

// TestStreamingMatchesMaterialized pins the streaming fast path — pooled
// workspace straight into fused scoring, no intermediate vector — against
// a manually materialized Vectorize+Predict+SelectTags reference on a
// twin swarm, for every protocol that streams. Scores compare on exact
// float64 equality: streaming must not change a single bit.
func TestStreamingMatchesMaterialized(t *testing.T) {
	queries := []string{
		"a new album with a soft piano melody",
		"booking a flight and a hotel for the island",
		"a bread recipe with yeast and flour",
		"",
	}
	for _, proto := range []string{ProtocolPACE, ProtocolCentralized, ProtocolLocal} {
		build := func() *Tagger {
			tg, err := New(Config{Protocol: proto, Peers: 4, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			corpusFor(t, tg, 4)
			if err := tg.Train(); err != nil {
				t.Fatal(err)
			}
			return tg
		}
		streaming := build()
		if streaming.stream == nil {
			t.Fatalf("%s: streaming path not wired", proto)
		}
		ref := build()
		for _, q := range queries {
			gotSuggest, err := streaming.Suggest(q)
			if err != nil {
				t.Fatalf("%s: Suggest(%q): %v", proto, q, err)
			}
			gotTags, err := streaming.AutoTag(q)
			if err != nil {
				t.Fatalf("%s: AutoTag(%q): %v", proto, q, err)
			}

			// Materialized reference: the pre-streaming pipeline, by hand.
			x := ref.pre.Vectorize(q)
			var scores []metrics.ScoredTag
			answered := false
			ref.clf.Predict(ref.self, x, func(sc []metrics.ScoredTag, ok bool) {
				scores = append([]metrics.ScoredTag(nil), sc...)
				answered = ok
			})
			ref.run()
			if !answered {
				t.Fatalf("%s: reference swarm did not answer %q", proto, q)
			}
			wantTags := protocol.SelectTags(scores, ref.cfg.Threshold, ref.cfg.MaxTags)

			if strings.Join(gotTags, ",") != strings.Join(wantTags, ",") {
				t.Errorf("%s %q: streamed tags %v != materialized %v", proto, q, gotTags, wantTags)
			}
			sort.Slice(scores, func(i, j int) bool {
				if scores[i].Score != scores[j].Score {
					return scores[i].Score > scores[j].Score
				}
				return scores[i].Tag < scores[j].Tag
			})
			if len(gotSuggest) != len(scores) {
				t.Fatalf("%s %q: %d streamed suggestions, %d materialized", proto, q, len(gotSuggest), len(scores))
			}
			for i := range gotSuggest {
				if gotSuggest[i].Tag != scores[i].Tag || gotSuggest[i].Confidence != scores[i].Score {
					t.Errorf("%s %q suggestion %d: streamed %+v != materialized %+v",
						proto, q, i, gotSuggest[i], scores[i])
				}
			}
		}
	}
	// CEMPaR routes queries over the swarm; it must stay on the
	// materialized path.
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if tg.stream != nil {
		t.Error("CEMPaR wired a streaming path it cannot honor")
	}
}

func TestAutoTagBatchGuards(t *testing.T) {
	tg, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.AutoTagBatch([]string{"anything"}); err != ErrNotTrained {
		t.Errorf("AutoTagBatch before train = %v", err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	out, err := tg.AutoTagBatch(nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestRefinementPersonalizes(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 6)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	// The user repeatedly refines documents about gardening — a tag the
	// swarm has never seen.
	for i := 0; i < 5; i++ {
		text := "soil seedling compost prune watering bed " + strings.Repeat("mulch ", i+1)
		if err := tg.Refine(text, "gardening"); err != nil {
			t.Fatal(err)
		}
	}
	sugg, err := tg.Suggest("compost the soil and prune the seedling bed")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugg {
		if s.Tag == "gardening" {
			return // refined tag became suggestible
		}
	}
	t.Errorf("gardening never suggested: %+v", sugg)
}

func TestAddDocumentAfterTrainRefines(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolPACE, Peers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	// Post-training AddDocument behaves as refinement (peer 2's user also
	// corrects tags).
	for i := 0; i < 4; i++ {
		if err := tg.AddDocument(2, "telescope nebula galaxy star orbit", "astronomy"); err != nil {
			t.Fatal(err)
		}
	}
	sugg, err := tg.Suggest("the telescope shows a distant galaxy and nebula")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sugg {
		if s.Tag == "astronomy" {
			return
		}
	}
	t.Errorf("astronomy never suggested: %+v", sugg)
}

func TestThresholdSliderChangesTagCount(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolCentralized, Peers: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	text := "song melody on the beach with a recipe for the hotel grill"
	if err := tg.SetThreshold(0.05); err != nil {
		t.Fatal(err)
	}
	loose, err := tg.AutoTag(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := tg.SetThreshold(0.95); err != nil {
		t.Fatal(err)
	}
	strict, err := tg.AutoTag(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(loose) {
		t.Errorf("strict threshold gave more tags (%v) than loose (%v)", strict, loose)
	}
	if tg.Threshold() != 0.95 {
		t.Error("threshold not stored")
	}
}

// TestSetThresholdRejectsOutOfRange pins the slider's validation: values
// outside [0,1] — which Config.Threshold already rejects at construction —
// must not sneak in through the setter and silently pin tagging to
// "everything" or "nothing".
func TestSetThresholdRejectsOutOfRange(t *testing.T) {
	tg, err := New(Config{Peers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{7, -3, 1.0001, -0.0001} {
		if err := tg.SetThreshold(th); err == nil {
			t.Errorf("SetThreshold(%v) accepted an out-of-range value", th)
		}
	}
	if got := tg.Threshold(); got != 0.5 {
		t.Errorf("rejected SetThreshold changed the threshold to %v", got)
	}
	for _, th := range []float64{0, 1, 0.5} {
		if err := tg.SetThreshold(th); err != nil {
			t.Errorf("SetThreshold(%v): %v", th, err)
		}
		if got := tg.Threshold(); got != th {
			t.Errorf("Threshold() = %v after SetThreshold(%v)", got, th)
		}
	}
}

func TestStatsAndExplain(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 4)
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	if s := tg.Stats(); s.Messages == 0 || s.Bytes == 0 {
		t.Errorf("no traffic recorded: %+v", s)
	}
	terms := tg.ExplainDocument("The guitars were playing beautiful melodies", 3)
	joined := strings.Join(terms, " ")
	if !strings.Contains(joined, "guitar") || !strings.Contains(joined, "melodi") {
		t.Errorf("explain = %v (stemming/stop-words expected)", terms)
	}
}

// TestStatsConcurrentWithParallelTraining reads Stats from another
// goroutine while the swarm trains over all cores and then serves a batch —
// the monitoring pattern a serving front-end's stats endpoint uses. Under
// -race this pins the simnet stats counters being properly synchronized.
func TestStatsConcurrentWithParallelTraining(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolCEMPaR, Peers: 8, Seed: 21, Parallel: 0})
	if err != nil {
		t.Fatal(err)
	}
	corpusFor(t, tg, 8)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if s := tg.Stats(); s.Messages < 0 {
					t.Error("negative message count")
					return
				}
			}
		}
	}()
	if err := tg.Train(); err != nil {
		t.Fatal(err)
	}
	if _, err := tg.AutoTagBatch([]string{
		"a new album with a soft piano melody",
		"a bread recipe with yeast and flour",
	}); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if s := tg.Stats(); s.Messages == 0 {
		t.Errorf("no traffic recorded: %+v", s)
	}
}

func TestSensitiveWordsNeverReachModels(t *testing.T) {
	tg, err := New(Config{Protocol: ProtocolLocal, Peers: 2, SensitiveWords: []string{"projectx"}, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	terms := tg.ExplainDocument("the secret projectx launch guitar", 10)
	for _, term := range terms {
		if strings.Contains(term, "projectx") {
			t.Error("sensitive word leaked into features")
		}
	}
}

func TestLibraryRoundTrip(t *testing.T) {
	lib := NewMemoryLibrary()
	lib.SetTags("/a", []string{"go", "db"}, false)
	lib.AddTags("/a", []string{"perf"}, true)
	lib.SetTags("/b", []string{"go"}, false)
	if lib.Len() != 2 {
		t.Fatalf("len = %d", lib.Len())
	}
	e, err := lib.Get("/a")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Auto["perf"] || e.Auto["go"] {
		t.Errorf("auto = %v", e.Auto)
	}
	if got := lib.Search("go", "-db"); len(got) != 1 || got[0].Path != "/b" {
		t.Errorf("search = %v", got)
	}
	if err := lib.RemoveTag("/a", "db"); err != nil {
		t.Fatal(err)
	}
	counts := lib.TagCounts()
	if counts[0].Tag != "go" || counts[0].Count != 2 {
		t.Errorf("counts = %v", counts)
	}
	cloud := lib.Cloud(1)
	if cloud.String() == "" {
		t.Error("empty cloud rendering")
	}
	lib.Delete("/b")
	if lib.Len() != 1 {
		t.Error("delete failed")
	}
	if err := lib.Save(); err != nil {
		t.Errorf("memory save = %v", err)
	}
}

func TestLibraryPersistence(t *testing.T) {
	path := t.TempDir() + "/lib.json"
	lib, err := OpenLibrary(path)
	if err != nil {
		t.Fatal(err)
	}
	lib.SetTags("/x", []string{"alpha"}, false)
	if err := lib.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenLibrary(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 1 {
		t.Error("persistence failed")
	}
}

// TestFastPathPinnedOnStandardCorpus pins the inference fast path on the
// standard synthetic corpus: for every protocol, Suggest's score cloud is
// byte-identical across identically built twin swarms (pooled
// preprocessing, fused linear scoring and cached-norm kernel decisions
// introduce no nondeterminism), and AutoTag / AutoTagBatch / the
// tag-selection rule applied to Suggest all agree document by document.
// The layer-level slow-path equality lives in the textproc and svm
// reference pins; this test guards the composed vertical slice.
func TestFastPathPinnedOnStandardCorpus(t *testing.T) {
	docs, _, err := GenerateCorpus(CorpusConfig{Users: 6, NumTags: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	train, test := SplitCorpus(docs, 0.2, 3)
	if len(test) > 12 {
		test = test[:12]
	}
	for _, proto := range []string{ProtocolCEMPaR, ProtocolPACE, ProtocolCentralized, ProtocolLocal} {
		t.Run(proto, func(t *testing.T) {
			build := func() *Tagger {
				tg, err := New(Config{Protocol: proto, Peers: 6, Seed: 7})
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range train {
					if err := tg.AddDocument(d.User%6, d.Text, d.Tags...); err != nil {
						t.Fatal(err)
					}
				}
				if err := tg.Train(); err != nil {
					t.Fatal(err)
				}
				return tg
			}
			a, b := build(), build()
			queries := make([]string, len(test))
			for i, d := range test {
				queries[i] = d.Text
			}
			batch, err := b.AutoTagBatch(queries)
			if err != nil {
				t.Fatalf("AutoTagBatch: %v", err)
			}
			for i, d := range test {
				sugg, err := a.Suggest(d.Text)
				if err != nil {
					t.Fatalf("Suggest(doc %d): %v", i, err)
				}
				sugg2, err := b.Suggest(d.Text)
				if err != nil {
					t.Fatalf("twin Suggest(doc %d): %v", i, err)
				}
				if len(sugg) != len(sugg2) {
					t.Fatalf("doc %d: twin clouds differ in size: %d != %d", i, len(sugg), len(sugg2))
				}
				for j := range sugg {
					if sugg[j] != sugg2[j] {
						t.Fatalf("doc %d: twin swarms diverge at %d: %+v != %+v", i, j, sugg[j], sugg2[j])
					}
				}
				tags, err := a.AutoTag(d.Text)
				if err != nil {
					t.Fatalf("AutoTag(doc %d): %v", i, err)
				}
				if strings.Join(tags, ",") != strings.Join(batch[i], ",") {
					t.Errorf("doc %d: AutoTag %v != AutoTagBatch %v", i, tags, batch[i])
				}
			}
		})
	}
}
