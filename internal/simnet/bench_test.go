package simnet

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEventLoop measures the serial event hot path — heap push/pop,
// latency draw, delivery dispatch — with a two-node ping-pong that does no
// handler work. The value-based event heap keeps this allocation free
// (the old container/heap engine paid one *event plus one *Message
// allocation per message).
func BenchmarkEventLoop(b *testing.B) {
	n := New(Options{Latency: FixedLatency(time.Millisecond), Seed: 1})
	n.AddNode(0, HandlerFunc(func(nn *Network, m Message) {
		nn.Send(Message{From: 0, To: 1, Kind: "pong", Size: 8})
	}))
	remaining := b.N
	n.AddNode(1, HandlerFunc(func(nn *Network, m Message) {
		if remaining--; remaining > 0 {
			nn.Send(Message{From: 1, To: 0, Kind: "ping", Size: 8})
		}
	}))
	b.ReportAllocs()
	b.ResetTimer()
	n.Send(Message{From: 1, To: 0, Kind: "ping", Size: 8})
	n.Run(0)
}

// BenchmarkSimnetShards is the headline PDES benchmark: a 512-peer
// message-heavy token-passing workload (every delivery pays a fixed
// handler-CPU cost, as real protocol handlers do) executed at 1, 2, 4 and
// 8 shards. On a multi-core machine the ns/op ratio between shards=1 and
// shards=4 is the engine's wall-clock speedup; every run is checked
// against the serial checksum, so the numbers are only reported for
// byte-identical results.
func BenchmarkSimnetShards(b *testing.B) {
	cfg := WorkloadConfig{Nodes: 512, TTL: 40, Work: 64, Seed: 1}
	ref := NewWorkload(cfg)
	ref.Run()
	want := ref.Checksum()
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			events := 0
			for i := 0; i < b.N; i++ {
				c := cfg
				c.Shards = k
				w := NewWorkload(c)
				events = w.Run()
				if sum := w.Checksum(); sum != want {
					b.Fatalf("shards=%d checksum %x, want %x", k, sum, want)
				}
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
