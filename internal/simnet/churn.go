package simnet

import (
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/runner"
)

// SessionModel draws node session (up) and downtime durations for a churn
// process, mirroring OverSim's lifetime churn models.
type SessionModel interface {
	// Uptime returns how long a node stays up before failing.
	Uptime(rng *rand.Rand) time.Duration
	// Downtime returns how long it stays down before rejoining.
	Downtime(rng *rand.Rand) time.Duration
}

// NoChurn never takes nodes down.
type NoChurn struct{}

// Uptime returns an effectively infinite session.
func (NoChurn) Uptime(*rand.Rand) time.Duration { return math.MaxInt64 / 4 }

// Downtime returns zero.
func (NoChurn) Downtime(*rand.Rand) time.Duration { return 0 }

// ExponentialChurn draws exponentially distributed session lengths, the
// classic memoryless churn model.
type ExponentialChurn struct {
	MeanUptime   time.Duration
	MeanDowntime time.Duration
}

// Uptime draws an exponential session length.
func (c ExponentialChurn) Uptime(rng *rand.Rand) time.Duration {
	return expDraw(rng, c.MeanUptime)
}

// Downtime draws an exponential downtime.
func (c ExponentialChurn) Downtime(rng *rand.Rand) time.Duration {
	return expDraw(rng, c.MeanDowntime)
}

func expDraw(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// ParetoChurn draws heavy-tailed session lengths (shape Alpha > 1), which
// measurement studies report for real file-sharing networks: most sessions
// are short but some nodes stay up very long.
type ParetoChurn struct {
	MinUptime    time.Duration
	Alpha        float64
	MeanDowntime time.Duration
}

// Uptime draws a Pareto session length.
func (c ParetoChurn) Uptime(rng *rand.Rand) time.Duration {
	alpha := c.Alpha
	if alpha <= 1 {
		alpha = 1.5
	}
	u := rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	return time.Duration(float64(c.MinUptime) / math.Pow(u, 1/alpha))
}

// Downtime draws an exponential downtime.
func (c ParetoChurn) Downtime(rng *rand.Rand) time.Duration {
	return expDraw(rng, c.MeanDowntime)
}

// ChurnProcess drives a set of nodes up and down on a Network using a
// SessionModel. Create one with StartChurn; it schedules itself using
// system events so it keeps running while nodes are down. Every node's
// session lengths come from a private random stream derived from the run
// seed and the node id, so the churn schedule is independent of message
// traffic and of the network's shard count.
type ChurnProcess struct {
	net     *Network
	model   SessionModel
	nodes   []NodeID
	rngs    map[NodeID]*rand.Rand
	stopped bool
}

// StartChurn begins churning the given nodes (all current nodes when nil).
// Each node receives an initial uptime drawn from the model.
func StartChurn(net *Network, model SessionModel, nodes []NodeID) *ChurnProcess {
	if nodes == nil {
		nodes = net.Nodes()
	}
	cp := &ChurnProcess{net: net, model: model, nodes: nodes, rngs: make(map[NodeID]*rand.Rand, len(nodes))}
	if _, ok := model.(NoChurn); ok {
		return cp // nothing to schedule
	}
	for _, id := range nodes {
		cp.rngs[id] = rand.New(rand.NewSource(runner.DeriveSeed(net.seed, "churn", strconv.Itoa(int(id)))))
		cp.scheduleFailure(id)
	}
	return cp
}

// Stop halts the churn process; nodes stay in their current state.
func (cp *ChurnProcess) Stop() { cp.stopped = true }

func (cp *ChurnProcess) scheduleFailure(id NodeID) {
	up := cp.model.Uptime(cp.rngs[id])
	cp.net.ScheduleSystem(up, func() {
		if cp.stopped {
			return
		}
		cp.net.Kill(id)
		cp.scheduleRecovery(id)
	})
}

func (cp *ChurnProcess) scheduleRecovery(id NodeID) {
	down := cp.model.Downtime(cp.rngs[id])
	if down <= 0 {
		down = time.Millisecond
	}
	cp.net.ScheduleSystem(down, func() {
		if cp.stopped {
			return
		}
		cp.net.Revive(id)
		cp.scheduleFailure(id)
	})
}
