package simnet

import (
	"sync"
	"testing"
	"time"
)

// recorder collects delivered messages.
type recorder struct {
	got  []Message
	down int
	up   int
}

func (r *recorder) HandleMessage(_ *Network, msg Message) { r.got = append(r.got, msg) }
func (r *recorder) NodeDown(*Network)                     { r.down++ }
func (r *recorder) NodeUp(*Network)                       { r.up++ }

func TestSendDeliversWithLatency(t *testing.T) {
	n := New(Options{Latency: FixedLatency(10 * time.Millisecond)})
	r := &recorder{}
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, r)
	n.Send(Message{From: 1, To: 2, Kind: "ping", Size: 100})
	if len(r.got) != 0 {
		t.Fatal("message delivered synchronously")
	}
	n.Run(0)
	if len(r.got) != 1 {
		t.Fatalf("delivered %d messages", len(r.got))
	}
	if n.Now() != 10*time.Millisecond {
		t.Errorf("Now = %v, want 10ms", n.Now())
	}
	s := n.Stats()
	if s.MessagesSent != 1 || s.MessagesDelivered != 1 || s.BytesSent != 100 {
		t.Errorf("stats = %+v", s)
	}
	if s.BytesByKind["ping"] != 100 || s.MessagesByKind["ping"] != 1 {
		t.Errorf("kind stats = %+v", s)
	}
	if s.BytesByNode[1] != 100 {
		t.Errorf("per-node bytes = %+v", s.BytesByNode)
	}
}

// TestStatsConcurrentWithRun pins the one concurrency guarantee the
// simulator makes: Stats and ResetStats may run on other goroutines while
// the simulation executes. Run under -race (the CI short tier does) this
// catches any unguarded counter access.
func TestStatsConcurrentWithRun(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Millisecond), Seed: 7})
	const nodes = 4
	for id := 0; id < nodes; id++ {
		id := NodeID(id)
		n.AddNode(id, HandlerFunc(func(net *Network, msg Message) {
			// Keep traffic flowing for a while: each delivery forwards the
			// message to the next node until its TTL payload runs out.
			ttl := msg.Payload.(int)
			if ttl > 0 {
				net.Send(Message{From: msg.To, To: (msg.To + 1) % nodes, Kind: "fwd", Size: 64, Payload: ttl - 1})
			}
		}))
	}
	for id := 0; id < nodes; id++ {
		n.Send(Message{From: NodeID(id), To: NodeID((id + 1) % nodes), Kind: "fwd", Size: 64, Payload: 500})
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					s := n.Stats()
					if s.MessagesDelivered > s.MessagesSent {
						t.Error("delivered more than sent")
						return
					}
				}
			}
		}()
	}
	n.Run(0)
	close(done)
	wg.Wait()
	n.ResetStats()
	if s := n.Stats(); s.MessagesSent != 0 {
		t.Errorf("after reset: %+v", s)
	}
}

func TestSendToDeadNodeDrops(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Millisecond)})
	r := &recorder{}
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, r)
	n.Kill(2)
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 10})
	n.Run(0)
	if len(r.got) != 0 {
		t.Error("dead node received message")
	}
	if s := n.Stats(); s.MessagesDropped != 1 {
		t.Errorf("dropped = %d, want 1", s.MessagesDropped)
	}
}

func TestSendFromDeadNodePanics(t *testing.T) {
	n := New(Options{})
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.Kill(1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	n.Send(Message{From: 1, To: 1})
}

func TestInFlightMessageLostWhenDestDies(t *testing.T) {
	n := New(Options{Latency: FixedLatency(100 * time.Millisecond)})
	r := &recorder{}
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, r)
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 1})
	// Kill node 2 at t=50ms, before delivery at t=100ms.
	n.ScheduleSystem(50*time.Millisecond, func() { n.Kill(2) })
	n.Run(0)
	if len(r.got) != 0 {
		t.Error("message delivered to node that died in flight")
	}
}

func TestDropRate(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Millisecond), DropRate: 1.0, Seed: 1})
	r := &recorder{}
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, r)
	for i := 0; i < 10; i++ {
		n.Send(Message{From: 1, To: 2, Kind: "x", Size: 1})
	}
	n.Run(0)
	if len(r.got) != 0 {
		t.Errorf("drop rate 1.0 still delivered %d", len(r.got))
	}
	if s := n.Stats(); s.MessagesDropped != 10 {
		t.Errorf("dropped = %d", s.MessagesDropped)
	}
}

func TestScheduleRespectsLiveness(t *testing.T) {
	n := New(Options{})
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	fired := 0
	n.Schedule(1, 10*time.Millisecond, func() { fired++ })
	n.Schedule(1, 30*time.Millisecond, func() { fired++ })
	n.ScheduleSystem(20*time.Millisecond, func() { n.Kill(1) })
	n.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (second timer owner was dead)", fired)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int64) {
		n := New(Options{Latency: UniformLatency{Min: time.Millisecond, Max: 50 * time.Millisecond}, Seed: 42})
		var last time.Duration
		n.AddNode(1, HandlerFunc(func(net *Network, m Message) { last = net.Now() }))
		n.AddNode(2, HandlerFunc(func(net *Network, m Message) {
			net.Send(Message{From: 2, To: 1, Kind: "pong", Size: 8})
		}))
		for i := 0; i < 20; i++ {
			n.Send(Message{From: 1, To: 2, Kind: "ping", Size: 8})
		}
		n.Run(0)
		return last, n.Stats().BytesDelivered
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestRunUntilBoundary(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Second)})
	r := &recorder{}
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, r)
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 1})
	n.Run(500 * time.Millisecond)
	if len(r.got) != 0 {
		t.Error("event past the horizon was processed")
	}
	if n.Now() != 500*time.Millisecond {
		t.Errorf("Now = %v", n.Now())
	}
	n.RunFor(time.Second)
	if len(r.got) != 1 {
		t.Error("event not processed after extending the horizon")
	}
}

func TestKillReviveLifecycle(t *testing.T) {
	n := New(Options{})
	r := &recorder{}
	n.AddNode(1, r)
	n.Kill(1)
	n.Kill(1) // idempotent
	n.Revive(1)
	n.Revive(1) // idempotent
	if r.down != 1 || r.up != 1 {
		t.Errorf("down=%d up=%d, want 1/1", r.down, r.up)
	}
	s := n.Stats()
	if s.Failures != 1 || s.Recoveries != 1 {
		t.Errorf("stats failures=%d recoveries=%d", s.Failures, s.Recoveries)
	}
}

func TestAliveNodes(t *testing.T) {
	n := New(Options{})
	for i := 1; i <= 4; i++ {
		n.AddNode(NodeID(i), HandlerFunc(func(*Network, Message) {}))
	}
	n.Kill(2)
	alive := n.AliveNodes()
	if len(alive) != 3 {
		t.Fatalf("alive = %v", alive)
	}
	for i := 1; i < len(alive); i++ {
		if alive[i] <= alive[i-1] {
			t.Error("alive nodes not sorted")
		}
	}
	if n.Alive(2) || !n.Alive(3) || n.Alive(99) {
		t.Error("Alive() wrong")
	}
}

func TestResetStats(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Millisecond)})
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, HandlerFunc(func(*Network, Message) {}))
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 10})
	n.Run(0)
	n.ResetStats()
	s := n.Stats()
	if s.MessagesSent != 0 || s.BytesSent != 0 || len(s.BytesByKind) != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
}

func TestStatsSnapshotIsolation(t *testing.T) {
	n := New(Options{Latency: FixedLatency(time.Millisecond)})
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, HandlerFunc(func(*Network, Message) {}))
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 10})
	s := n.Stats()
	s.BytesByKind["x"] = 999999
	if n.Stats().BytesByKind["x"] == 999999 {
		t.Error("Stats() exposes internal map")
	}
}

func TestClusteredLatency(t *testing.T) {
	n := New(Options{Latency: ClusteredLatency{ClusterSize: 4, Local: time.Millisecond, Remote: 100 * time.Millisecond}})
	var localAt, remoteAt time.Duration
	n.AddNode(0, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(1, HandlerFunc(func(net *Network, m Message) { localAt = net.Now() }))
	n.AddNode(5, HandlerFunc(func(net *Network, m Message) { remoteAt = net.Now() }))
	n.Send(Message{From: 0, To: 1, Kind: "x", Size: 1}) // same cluster (0-3)
	n.Send(Message{From: 0, To: 5, Kind: "x", Size: 1}) // other cluster
	n.Run(0)
	if localAt != time.Millisecond {
		t.Errorf("local delay = %v", localAt)
	}
	if remoteAt != 100*time.Millisecond {
		t.Errorf("remote delay = %v", remoteAt)
	}
}

func TestExponentialChurnTakesNodesUpAndDown(t *testing.T) {
	n := New(Options{Seed: 3})
	r := &recorder{}
	n.AddNode(1, r)
	StartChurn(n, ExponentialChurn{MeanUptime: 10 * time.Second, MeanDowntime: 5 * time.Second}, nil)
	n.Run(10 * time.Minute)
	if r.down == 0 || r.up == 0 {
		t.Errorf("churn never cycled: down=%d up=%d", r.down, r.up)
	}
	// Downs and ups interleave, so they differ by at most one.
	if d := r.down - r.up; d < 0 || d > 1 {
		t.Errorf("down=%d up=%d", r.down, r.up)
	}
}

func TestNoChurnIsQuiet(t *testing.T) {
	n := New(Options{Seed: 3})
	r := &recorder{}
	n.AddNode(1, r)
	StartChurn(n, NoChurn{}, nil)
	n.Run(time.Hour)
	if r.down != 0 {
		t.Errorf("NoChurn produced %d failures", r.down)
	}
}

func TestChurnStop(t *testing.T) {
	n := New(Options{Seed: 4})
	r := &recorder{}
	n.AddNode(1, r)
	cp := StartChurn(n, ExponentialChurn{MeanUptime: time.Second, MeanDowntime: time.Second}, nil)
	n.Run(10 * time.Second)
	cp.Stop()
	down := r.down
	n.Run(10 * time.Minute)
	// One already-scheduled event may fire a state change before the stop
	// flag is observed, but cycling must cease.
	if r.down > down+1 {
		t.Errorf("churn continued after Stop: %d -> %d", down, r.down)
	}
}

func TestParetoChurnHeavyTail(t *testing.T) {
	n := New(Options{Seed: 5})
	model := ParetoChurn{MinUptime: time.Second, Alpha: 1.5, MeanDowntime: time.Second}
	// All draws must be >= MinUptime.
	for i := 0; i < 1000; i++ {
		if u := model.Uptime(n.Rand()); u < time.Second {
			t.Fatalf("Pareto uptime %v below minimum", u)
		}
	}
}
