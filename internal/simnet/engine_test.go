package simnet

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestRunAdvancesClockWhenDrained is the regression test for the RunFor
// under-advance bug: when the queue drains before the horizon, the clock
// must still land exactly on the horizon, so consecutive RunFor calls
// advance the clock by exactly their sum.
func TestRunAdvancesClockWhenDrained(t *testing.T) {
	n := New(Options{Latency: FixedLatency(10 * time.Millisecond)})
	n.AddNode(1, HandlerFunc(func(*Network, Message) {}))
	n.AddNode(2, HandlerFunc(func(*Network, Message) {}))
	n.Send(Message{From: 1, To: 2, Kind: "x", Size: 1})
	n.Run(time.Second) // queue drains at 10ms
	if n.Now() != time.Second {
		t.Fatalf("Now after Run(1s) with drained queue = %v, want 1s", n.Now())
	}
	n.RunFor(time.Second)
	if n.Now() != 2*time.Second {
		t.Fatalf("Now after RunFor(1s) = %v, want 2s", n.Now())
	}
	// A timer scheduled now must fire relative to the advanced clock.
	var firedAt time.Duration
	n.Schedule(1, 50*time.Millisecond, func() { firedAt = n.Now() })
	n.Run(0)
	if want := 2*time.Second + 50*time.Millisecond; firedAt != want {
		t.Fatalf("timer fired at %v, want %v", firedAt, want)
	}
}

// TestEventHeapOrdering pins the value heap's ordering: events pop in
// (time, source, sequence) order regardless of push order.
func TestEventHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h eventHeap
	var want []event
	for i := 0; i < 500; i++ {
		e := event{
			at:  time.Duration(rng.Intn(20)) * time.Millisecond,
			src: NodeID(rng.Intn(5) - 1),
			seq: uint64(rng.Intn(50)),
		}
		want = append(want, e)
	}
	sort.SliceStable(want, func(i, j int) bool { return want[i].before(&want[j]) })
	for _, i := range rng.Perm(len(want)) {
		h.push(want[i])
	}
	for i := range want {
		got := h.pop()
		if got.at != want[i].at || got.src != want[i].src || got.seq != want[i].seq {
			t.Fatalf("pop %d = (%v,%d,%d), want (%v,%d,%d)",
				i, got.at, got.src, got.seq, want[i].at, want[i].src, want[i].seq)
		}
	}
	if !h.empty() {
		t.Fatal("heap not drained")
	}
}

// shardCounts are the shard settings every invariance test sweeps.
var shardCounts = []int{1, 2, 4, 8}

// TestShardCountInvariance is the PDES determinism contract at the simnet
// layer: the same message-heavy workload run at 1, 2, 4 and 8 shards must
// produce identical per-node delivery digests, identical Stats and an
// identical final clock.
func TestShardCountInvariance(t *testing.T) {
	type outcome struct {
		sum    uint64
		events int
		now    time.Duration
		stats  Stats
	}
	var ref outcome
	for i, k := range shardCounts {
		w := NewWorkload(WorkloadConfig{Nodes: 96, TTL: 12, Work: 8, Shards: k, Seed: 42})
		events := w.Run()
		got := outcome{sum: w.Checksum(), events: events, now: w.Net.Now(), stats: w.Net.Stats()}
		if i == 0 {
			ref = got
			continue
		}
		if got.sum != ref.sum {
			t.Errorf("shards=%d checksum %x, want %x (shards=%d)", k, got.sum, ref.sum, shardCounts[0])
		}
		if got.events != ref.events || got.now != ref.now {
			t.Errorf("shards=%d processed %d events to %v, want %d to %v",
				k, got.events, got.now, ref.events, ref.now)
		}
		if !reflect.DeepEqual(got.stats, ref.stats) {
			t.Errorf("shards=%d stats diverge:\n got %+v\nwant %+v", k, got.stats, ref.stats)
		}
	}
}

// TestShardCountInvarianceWithDrops covers the per-node drop decision: the
// same loss pattern must emerge at every shard count even though each
// shard draws from its nodes' streams in real-time-dependent order.
func TestShardCountInvarianceWithDrops(t *testing.T) {
	run := func(k int) (uint64, Stats) {
		w := NewWorkloadWithNetwork(WorkloadConfig{Nodes: 64, TTL: 10, Work: 4, Seed: 9},
			New(Options{Latency: UniformLatency{Min: 8 * time.Millisecond, Max: 20 * time.Millisecond},
				Seed: 9, Shards: k, DropRate: 0.1}))
		w.Run()
		return w.Checksum(), w.Net.Stats()
	}
	refSum, refStats := run(1)
	if refStats.MessagesDropped == 0 {
		t.Fatal("workload produced no drops; the test exercises nothing")
	}
	for _, k := range shardCounts[1:] {
		sum, stats := run(k)
		if sum != refSum || !reflect.DeepEqual(stats, refStats) {
			t.Errorf("shards=%d diverges under message loss (sum %x vs %x, dropped %d vs %d)",
				k, sum, refSum, stats.MessagesDropped, refStats.MessagesDropped)
		}
	}
}

// TestShardCountInvarianceUnderChurn drives Kill/Revive/RemoveNode — both
// from a churn process and from explicit system events — and demands
// identical Stats at every shard count. Run under -race (the CI short
// tier) this also proves the barriers isolate lifecycle mutation from
// concurrent window execution.
func TestShardCountInvarianceUnderChurn(t *testing.T) {
	run := func(k int) (uint64, Stats, time.Duration) {
		w := NewWorkloadWithNetwork(WorkloadConfig{Nodes: 64, TTL: 200, Work: 4, Seed: 5},
			New(Options{Latency: UniformLatency{Min: 8 * time.Millisecond, Max: 20 * time.Millisecond},
				Seed: 5, Shards: k}))
		n := w.Net
		StartChurn(n, ExponentialChurn{MeanUptime: 300 * time.Millisecond, MeanDowntime: 100 * time.Millisecond}, nil)
		// Explicit lifecycle edits at scripted times, hitting several shards.
		n.ScheduleSystem(40*time.Millisecond, func() { n.Kill(3); n.Kill(10) })
		n.ScheduleSystem(90*time.Millisecond, func() { n.Revive(3); n.RemoveNode(17) })
		n.RunFor(2 * time.Second)
		return w.Checksum(), n.Stats(), n.Now()
	}
	refSum, refStats, refNow := run(1)
	if refStats.Failures == 0 || refStats.Recoveries == 0 {
		t.Fatalf("churn never cycled: %+v", refStats)
	}
	if refStats.MessagesDropped == 0 {
		t.Fatal("no in-flight message ever hit a dead node; the test exercises nothing")
	}
	for _, k := range shardCounts[1:] {
		sum, stats, now := run(k)
		if sum != refSum {
			t.Errorf("shards=%d checksum %x, want %x", k, sum, refSum)
		}
		if now != refNow {
			t.Errorf("shards=%d final clock %v, want %v", k, now, refNow)
		}
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("shards=%d stats diverge under churn:\n got %+v\nwant %+v", k, stats, refStats)
		}
	}
}

// TestStepMatchesRunObservables pins that Step-driven execution reaches
// the same end state as windowed Run.
func TestStepMatchesRunObservables(t *testing.T) {
	build := func() *Workload {
		return NewWorkload(WorkloadConfig{Nodes: 32, TTL: 6, Work: 4, Shards: 4, Seed: 3})
	}
	a := build()
	a.Run()
	b := build()
	steps := 0
	for b.Net.Step() {
		steps++
	}
	if a.Checksum() != b.Checksum() {
		t.Error("Step execution diverges from Run execution")
	}
	if !reflect.DeepEqual(a.Net.Stats(), b.Net.Stats()) {
		t.Error("Step stats diverge from Run stats")
	}
}

// TestSerialOnlyGuards pins the engine's misuse panics: lifecycle and
// system scheduling from inside a node handler would race with concurrent
// shards, so they must fail loudly at every shard count — including 1,
// where they would happen to work, because allowing them there would break
// the shard-invariance contract.
func TestSerialOnlyGuards(t *testing.T) {
	for _, call := range []struct {
		name string
		do   func(n *Network)
	}{
		{"ScheduleSystem", func(n *Network) { n.ScheduleSystem(time.Second, func() {}) }},
		{"Kill", func(n *Network) { n.Kill(2) }},
		{"Revive", func(n *Network) { n.Revive(2) }},
		{"AddNode", func(n *Network) { n.AddNode(9, HandlerFunc(func(*Network, Message) {})) }},
		{"RemoveNode", func(n *Network) { n.RemoveNode(2) }},
	} {
		t.Run(call.name, func(t *testing.T) {
			n := New(Options{Latency: FixedLatency(time.Millisecond)})
			recovered := false
			n.AddNode(1, HandlerFunc(func(nn *Network, _ Message) {
				defer func() {
					if recover() != nil {
						recovered = true
					}
				}()
				call.do(nn)
			}))
			n.AddNode(2, HandlerFunc(func(*Network, Message) {}))
			n.Send(Message{From: 1, To: 2, Kind: "x", Size: 1})
			n.Send(Message{From: 2, To: 1, Kind: "x", Size: 1})
			n.Run(0)
			if !recovered {
				t.Errorf("%s inside a handler did not panic", call.name)
			}
		})
	}
}

// TestActAsOwnNodeGuard pins the engine contract that a handler may only
// send or schedule as its own node: impersonating another node from
// inside a window must panic loudly (silently it would corrupt that
// node's stream and event counter under sharding) — at shard count 1 too,
// where it would happen to work, because allowing it there would break
// shard invariance.
func TestActAsOwnNodeGuard(t *testing.T) {
	for _, call := range []struct {
		name string
		do   func(nn *Network)
	}{
		{"Send", func(nn *Network) { nn.Send(Message{From: 2, To: 1, Kind: "forged", Size: 1}) }},
		{"Schedule", func(nn *Network) { nn.Schedule(2, time.Millisecond, func() {}) }},
	} {
		t.Run(call.name, func(t *testing.T) {
			n := New(Options{Latency: FixedLatency(time.Millisecond)})
			recovered := false
			n.AddNode(1, HandlerFunc(func(nn *Network, _ Message) {
				defer func() {
					if recover() != nil {
						recovered = true
					}
				}()
				call.do(nn)
			}))
			n.AddNode(2, HandlerFunc(func(*Network, Message) {}))
			n.Send(Message{From: 2, To: 1, Kind: "x", Size: 1})
			n.Run(0)
			if !recovered {
				t.Errorf("handler of node 1 acting as node 2 via %s did not panic", call.name)
			}
		})
	}
}

// TestStatsConsistentAcrossShards reads Stats concurrently with a sharded
// run: because the snapshot holds every shard's lock, it must never
// observe more deliveries than sends even while four shards count
// independently.
func TestStatsConsistentAcrossShards(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Nodes: 64, TTL: 50, Work: 16, Shards: 4, Seed: 2})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := w.Net.Stats()
			if s.MessagesDelivered > s.MessagesSent {
				t.Errorf("snapshot tore: delivered %d > sent %d", s.MessagesDelivered, s.MessagesSent)
				return
			}
			if s.BytesDelivered > s.BytesSent {
				t.Errorf("snapshot tore: bytes delivered %d > sent %d", s.BytesDelivered, s.BytesSent)
				return
			}
		}
	}()
	w.Run()
	close(stop)
	wg.Wait()
	if s := w.Net.Stats(); s.MessagesDelivered == 0 {
		t.Fatal("workload delivered nothing")
	}
}

// TestLookaheadZeroStillDeterministic: a latency model without a positive
// minimum delay forces serial stepping; results must still be identical at
// every shard count.
func TestLookaheadZeroStillDeterministic(t *testing.T) {
	run := func(k int) (uint64, Stats) {
		w := NewWorkloadWithNetwork(WorkloadConfig{Nodes: 32, TTL: 8, Work: 4, Seed: 13},
			New(Options{Latency: UniformLatency{Min: 0, Max: 10 * time.Millisecond}, Seed: 13, Shards: k}))
		w.Run()
		return w.Checksum(), w.Net.Stats()
	}
	refSum, refStats := run(1)
	for _, k := range shardCounts[1:] {
		sum, stats := run(k)
		if sum != refSum || !reflect.DeepEqual(stats, refStats) {
			t.Errorf("shards=%d diverges with zero lookahead", k)
		}
	}
}

// TestMinDelayModels pins the lookahead each built-in model reports.
func TestMinDelayModels(t *testing.T) {
	cases := []struct {
		model LatencyModel
		want  time.Duration
	}{
		{FixedLatency(50 * time.Millisecond), 50 * time.Millisecond},
		{UniformLatency{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}, 10 * time.Millisecond},
		{ClusteredLatency{Local: 5 * time.Millisecond, Remote: 60 * time.Millisecond, Jitter: 2 * time.Millisecond}, 3 * time.Millisecond},
		{ClusteredLatency{Local: time.Millisecond, Remote: 60 * time.Millisecond, Jitter: 5 * time.Millisecond}, 0},
	}
	for _, c := range cases {
		if got := c.model.(MinDelayer).MinDelay(); got != c.want {
			t.Errorf("%T MinDelay = %v, want %v", c.model, got, c.want)
		}
	}
}
