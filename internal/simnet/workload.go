package simnet

import (
	"hash/fnv"
	"time"
)

// WorkloadConfig parameterizes a synthetic message-heavy traffic pattern:
// Tokens tokens hop TTL times between random nodes, and every delivery
// burns Work rounds of hash mixing — a stand-in for the per-message CPU a
// real protocol handler spends. The shard-scaling benchmark, the
// shard-invariance tests and cmd/simbench all drive simulations through
// it.
type WorkloadConfig struct {
	// Nodes is the network size; default 64.
	Nodes int
	// Tokens is how many tokens circulate concurrently; default Nodes.
	Tokens int
	// TTL is the number of hops each token makes; default 16.
	TTL int
	// Work is the number of mix rounds per delivery; default 64.
	Work int
	// Size is the wire size charged per message; default 128.
	Size int
	// Latency is the delay model; default UniformLatency{8ms, 20ms}.
	Latency LatencyModel
	// Shards and Seed pass through to the Network.
	Shards int
	Seed   int64
}

// Workload is a network populated with token-passing nodes. Each node
// keeps a running hash of every token value it sees; Checksum folds those
// per-node digests together, giving a single value that any reordering,
// loss or miscount of deliveries would change.
type Workload struct {
	Net *Network

	cfg  WorkloadConfig
	acc  []uint64
	recv []int64
}

type token struct {
	ttl int
	val uint64
}

// mix is one round of SplitMix64 — cheap, deterministic, unoptimizable.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (cfg *WorkloadConfig) defaults() {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 64
	}
	if cfg.Nodes < 2 {
		cfg.Nodes = 2 // tokens need a sender and a distinct receiver
	}
	if cfg.Tokens <= 0 {
		cfg.Tokens = cfg.Nodes
	}
	if cfg.TTL <= 0 {
		cfg.TTL = 16
	}
	if cfg.Work <= 0 {
		cfg.Work = 64
	}
	if cfg.Size <= 0 {
		cfg.Size = 128
	}
	if cfg.Latency == nil {
		cfg.Latency = UniformLatency{Min: 8 * time.Millisecond, Max: 20 * time.Millisecond}
	}
}

// NewWorkload builds the network and its nodes and injects the initial
// tokens; call Run to execute the traffic.
func NewWorkload(cfg WorkloadConfig) *Workload {
	cfg.defaults()
	return NewWorkloadWithNetwork(cfg, New(Options{Latency: cfg.Latency, Seed: cfg.Seed, Shards: cfg.Shards}))
}

// NewWorkloadWithNetwork populates an existing (empty) network with the
// workload's nodes and tokens — for tests that need extra Options such as
// DropRate or a custom latency model.
func NewWorkloadWithNetwork(cfg WorkloadConfig, net *Network) *Workload {
	cfg.defaults()
	w := &Workload{
		Net:  net,
		cfg:  cfg,
		acc:  make([]uint64, cfg.Nodes),
		recv: make([]int64, cfg.Nodes),
	}
	for i := 0; i < cfg.Nodes; i++ {
		self := NodeID(i)
		w.Net.AddNode(self, HandlerFunc(func(nn *Network, m Message) {
			tk := m.Payload.(token)
			// Burn the per-delivery CPU budget into this node's digest.
			v := tk.val ^ uint64(self)
			for r := 0; r < w.cfg.Work; r++ {
				v = mix(v)
			}
			w.acc[self] ^= v
			w.recv[self]++
			if tk.ttl <= 0 {
				return
			}
			// Forward to a random other node, drawn from this node's
			// private stream so the route is shard-placement independent.
			next := NodeID((int(self) + 1 + nn.NodeRand(self).Intn(w.cfg.Nodes-1)) % w.cfg.Nodes)
			nn.Send(Message{From: self, To: next, Kind: "tok", Size: w.cfg.Size,
				Payload: token{ttl: tk.ttl - 1, val: v}})
		}))
	}
	for t := 0; t < cfg.Tokens; t++ {
		from := NodeID(t % cfg.Nodes)
		to := NodeID((t + 1 + t/cfg.Nodes) % cfg.Nodes)
		if to == from {
			to = (to + 1) % NodeID(cfg.Nodes)
		}
		w.Net.Send(Message{From: from, To: to, Kind: "tok", Size: cfg.Size,
			Payload: token{ttl: cfg.TTL, val: mix(uint64(t))}})
	}
	return w
}

// Run executes the workload to quiescence and returns the number of events
// processed.
func (w *Workload) Run() int { return w.Net.Run(0) }

// Checksum digests every node's accumulated state and delivery count. Two
// runs of the same config agree on it if and only if every node saw the
// same token values the same number of times — the workload's
// shard-invariance witness.
func (w *Workload) Checksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for i := range w.acc {
		write(w.acc[i])
		write(uint64(w.recv[i]))
	}
	return h.Sum64()
}

// Deliveries reports the total number of messages handled so far.
func (w *Workload) Deliveries() int64 {
	var n int64
	for _, c := range w.recv {
		n += c
	}
	return n
}
