package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// systemSrc is the pseudo-source of system events (churn, stabilizers).
// It sorts before every node id, so at equal timestamps system events run
// before node events — at every shard count.
const systemSrc = NodeID(-1)

type eventKind uint8

const (
	evTimer eventKind = iota
	evMsg
	evSys
)

// event is a scheduled occurrence: a message delivery, a node timer, or a
// system callback. Events are stored by value in per-shard heaps.
//
// The ordering key is (at, src, seq), where src is the node that created
// the event and seq is that node's private creation counter. Because a
// node's events execute in a deterministic order on its own shard, each
// source's counter — and therefore the global order of every event — is
// independent of the shard count and of how shards interleave in real time.
// (The old engine tie-broke on a single global counter, which a parallel
// run cannot reproduce.)
type event struct {
	at    time.Duration
	src   NodeID // creating node; systemSrc for system-context events
	seq   uint64 // per-source creation counter
	kind  eventKind
	owner NodeID // timers: skipped if owner is down
	fn    func()
	msg   Message
}

func (e event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.seq < o.seq
}

type eventHeap = minHeap[event]

// noNode marks a shard as not currently executing any node's event.
const noNode = int64(-1) << 32

// shard owns the events and traffic counters of the nodes assigned to it
// (NodeID mod shard count). During a window its heap, clock and stats are
// touched only by the worker executing it; cross-shard events produced in
// the window land in inbox under inboxMu and merge at the barrier.
type shard struct {
	heap  eventHeap
	now   time.Duration // time of the last event executed on this shard
	count int           // events executed in the current window

	// current is the node whose event this shard is executing (noNode
	// otherwise). push consults it to enforce the engine contract that a
	// handler acts only as its own node; atomic because the check may read
	// another shard's marker while that shard's worker writes it.
	current atomic.Int64

	inboxMu sync.Mutex
	inbox   []event

	statsMu sync.Mutex // guards stats; see Network.Stats
	stats   Stats
}

func (n *Network) shardOf(id NodeID) *shard {
	i := int(id) % len(n.shards)
	if i < 0 {
		i += len(n.shards)
	}
	return n.shards[i]
}

// timeAt returns the current virtual time as seen from sh: the time of the
// event sh is executing inside a window, or the network's committed clock
// at serial points. It is the base for Send/Schedule delays.
func (n *Network) timeAt(sh *shard) time.Duration {
	if sh.now > n.now {
		return sh.now
	}
	return n.now
}

// push files an event created by the acting node nd (== n.nodes[acting]).
// Inside a window the acting node must be the node whose event is
// executing — push panics otherwise — so its seq counter and its shard's
// heap are touched race-free; events whose target lives on another shard
// divert to that shard's mailbox and become visible at the barrier.
func (n *Network) push(acting NodeID, nd *node, e event) {
	if n.inWindow && n.shardOf(acting).current.Load() != int64(acting) {
		panic(fmt.Sprintf("simnet: a handler sent or scheduled as node %d, which it does not own; "+
			"during a window a handler may only act as its own node", acting))
	}
	e.src = acting
	e.seq = nd.seq
	nd.seq++
	var target *shard
	if e.kind == evMsg {
		target = n.shardOf(e.msg.To)
	} else {
		target = n.shardOf(e.owner)
	}
	if n.inWindow && target != n.shardOf(acting) {
		target.inboxMu.Lock()
		target.inbox = append(target.inbox, e)
		target.inboxMu.Unlock()
		return
	}
	target.heap.push(e)
}

// nextEventTime returns the earliest pending event time across the system
// queue and every shard.
func (n *Network) nextEventTime() (time.Duration, bool) {
	var best *event
	if top := n.sysHeap.peek(); top != nil {
		best = top
	}
	for _, sh := range n.shards {
		if top := sh.heap.peek(); top != nil && (best == nil || top.before(best)) {
			best = top
		}
	}
	if best == nil {
		return 0, false
	}
	return best.at, true
}

// Run processes events until the queue is empty or virtual time exceeds
// until (zero means run to quiescence). It returns the number of events
// processed. When until is positive the clock always lands exactly on
// until, even if the queue drains earlier, so back-to-back RunFor calls
// advance the clock by exactly their sum.
//
// Time advances in conservative-PDES windows of the lookahead width: every
// shard executes its own events inside the window (in parallel when
// Options.Shards > 1 and no activity logger is installed), cross-shard
// messages become visible at the window barrier, and system events run
// alone at a global barrier at their exact timestamp. With zero lookahead
// the engine degrades to serial global-order stepping. Observable results
// are byte-identical at every shard count either way.
func (n *Network) Run(until time.Duration) int {
	processed := 0
	for {
		t, ok := n.nextEventTime()
		if !ok {
			if until > 0 && n.now < until {
				n.now = until
			}
			break
		}
		if until > 0 && t > until {
			n.now = until
			break
		}
		if n.now < t {
			n.now = t
		}
		// System events run serially at a global barrier: they may touch
		// any node's state (churn kills, stabilizers), which is only safe
		// while no shard is executing.
		if top := n.sysHeap.peek(); top != nil && top.at == t {
			for {
				top := n.sysHeap.peek()
				if top == nil || top.at != t {
					break
				}
				e := n.sysHeap.pop()
				e.fn()
				processed++
			}
			continue
		}
		if n.lookahead <= 0 {
			// No safe window exists (a zero-latency link could deliver
			// within any window): step the global minimum event.
			e, sh := n.popMinNodeEvent()
			if e.at > sh.now {
				sh.now = e.at
			}
			n.execNode(sh, &e)
			processed++
			continue
		}
		wEnd := t + n.lookahead
		if top := n.sysHeap.peek(); top != nil && top.at < wEnd {
			wEnd = top.at
		}
		if until > 0 && until+1 < wEnd {
			wEnd = until + 1 // events at exactly until still run
		}
		processed += n.runWindow(wEnd)
	}
	return processed
}

// runWindow executes every pending event with at < wEnd, one worker per
// shard that has work, then merges the mailboxes at the barrier.
func (n *Network) runWindow(wEnd time.Duration) int {
	active := n.scratch[:0]
	for _, sh := range n.shards {
		if top := sh.heap.peek(); top != nil && top.at < wEnd {
			active = append(active, sh)
		}
	}
	n.scratch = active[:0]
	n.inWindow = true
	if len(active) > 1 && n.logf == nil {
		_ = runner.ForEach(len(active), len(active), func(i int) error {
			n.runShardWindow(active[i], wEnd)
			return nil
		})
	} else {
		// One busy shard, or an activity logger is installed (logging from
		// concurrent shards would interleave nondeterministically): execute
		// the shards inline. Mailbox visibility — and therefore every
		// observable result — is identical to the parallel path.
		for _, sh := range active {
			n.runShardWindow(sh, wEnd)
		}
	}
	n.inWindow = false
	total := 0
	for _, sh := range active {
		total += sh.count
		if sh.now > n.now {
			n.now = sh.now
		}
	}
	for _, sh := range n.shards {
		for i := range sh.inbox {
			e := sh.inbox[i]
			if e.at < wEnd {
				panic(fmt.Sprintf(
					"simnet: event from node %d at %v violates the lookahead window ending at %v; "+
						"the latency model's MinDelay overstates its true minimum, or a handler "+
						"sent/scheduled as a node it does not own", e.src, e.at, wEnd))
			}
			sh.heap.push(e)
		}
		sh.inbox = sh.inbox[:0]
	}
	return total
}

func (n *Network) runShardWindow(sh *shard, wEnd time.Duration) {
	count := 0
	for {
		top := sh.heap.peek()
		if top == nil || top.at >= wEnd {
			break
		}
		e := sh.heap.pop()
		if e.at > sh.now {
			sh.now = e.at
		}
		n.execNode(sh, &e)
		count++
	}
	sh.count = count
}

// popMinNodeEvent removes and returns the globally minimal node event.
// Only called when at least one shard has work and no system event is due
// first.
func (n *Network) popMinNodeEvent() (event, *shard) {
	var best *shard
	for _, sh := range n.shards {
		if top := sh.heap.peek(); top != nil {
			if best == nil || top.before(best.heap.peek()) {
				best = sh
			}
		}
	}
	return best.heap.pop(), best
}

// execNode executes one message delivery or timer on its shard.
func (n *Network) execNode(sh *shard, e *event) {
	switch e.kind {
	case evMsg:
		dst, ok := n.nodes[e.msg.To]
		if !ok || !dst.alive {
			sh.statsMu.Lock()
			sh.stats.MessagesDropped++
			sh.statsMu.Unlock()
			n.logAt(e.at, "LOST %s %d->%d (dest down)", e.msg.Kind, e.msg.From, e.msg.To)
			return
		}
		sh.statsMu.Lock()
		sh.stats.MessagesDelivered++
		sh.stats.BytesDelivered += int64(e.msg.Size)
		sh.statsMu.Unlock()
		sh.current.Store(int64(e.msg.To))
		dst.handler.HandleMessage(n, e.msg)
		sh.current.Store(noNode)
	default: // evTimer
		if nd, ok := n.nodes[e.owner]; ok && nd.alive {
			sh.current.Store(int64(e.owner))
			e.fn()
			sh.current.Store(noNode)
		}
	}
}

// Step processes the single globally next event in canonical order. It
// reports false when no events are pending. Unlike Run it never groups
// events into windows, so Now() is exact after every step; results are
// nevertheless identical because windows only reorder causally independent
// events.
func (n *Network) Step() bool {
	var bestShard *shard
	var best *event
	if top := n.sysHeap.peek(); top != nil {
		best = top
	}
	for _, sh := range n.shards {
		if top := sh.heap.peek(); top != nil && (best == nil || top.before(best)) {
			best, bestShard = top, sh
		}
	}
	if best == nil {
		return false
	}
	if bestShard == nil {
		e := n.sysHeap.pop()
		if e.at > n.now {
			n.now = e.at
		}
		e.fn()
		return true
	}
	e := bestShard.heap.pop()
	if e.at > n.now {
		n.now = e.at
	}
	if e.at > bestShard.now {
		bestShard.now = e.at
	}
	n.execNode(bestShard, &e)
	return true
}

// RunFor advances the simulation by d from the current time.
func (n *Network) RunFor(d time.Duration) int { return n.Run(n.now + d) }
