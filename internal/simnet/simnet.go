// Package simnet is a deterministic discrete-event simulator of a physical
// P2P network — the bottom layer of the P2PDMT toolkit (Fig. 2 of the
// paper: "Configure physical network / Simulate physical network / Simulate
// node failures"). Nodes exchange messages with configurable latency, every
// message is charged its wire size, and churn processes take nodes up and
// down according to session-length distributions.
//
// The simulator is single-threaded and driven by a virtual clock, so runs
// are exactly reproducible for a given seed.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// NodeID identifies a simulated node.
type NodeID int

// Message is a simulated datagram. Size is the number of wire bytes charged
// to the network; Payload is passed to the destination handler by reference
// (the simulator models transfer cost, not marshaling).
type Message struct {
	From, To NodeID
	Kind     string
	Size     int
	Payload  any
}

// Handler receives messages delivered to a node.
type Handler interface {
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

// LifecycleHandler is an optional extension: nodes implementing it are told
// when churn takes them down or brings them back.
type LifecycleHandler interface {
	NodeDown(net *Network)
	NodeUp(net *Network)
}

// LatencyModel yields the one-way delay for a message.
type LatencyModel interface {
	Delay(rng *rand.Rand, from, to NodeID) time.Duration
}

// FixedLatency delays every message by a constant.
type FixedLatency time.Duration

// Delay returns the constant delay.
func (f FixedLatency) Delay(*rand.Rand, NodeID, NodeID) time.Duration {
	return time.Duration(f)
}

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay returns a uniform random delay.
func (u UniformLatency) Delay(rng *rand.Rand, _, _ NodeID) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// ClusteredLatency models a two-level topology: nodes in the same cluster
// (id / ClusterSize) see Local delay, others see Remote delay, both with
// ±Jitter uniform noise. It approximates OverSim's grouped underlay.
type ClusteredLatency struct {
	ClusterSize   int
	Local, Remote time.Duration
	Jitter        time.Duration
}

// Delay returns the topology-dependent delay.
func (c ClusteredLatency) Delay(rng *rand.Rand, from, to NodeID) time.Duration {
	base := c.Remote
	if c.ClusterSize > 0 && int(from)/c.ClusterSize == int(to)/c.ClusterSize {
		base = c.Local
	}
	if c.Jitter > 0 {
		base += time.Duration(rng.Int63n(int64(2*c.Jitter))) - c.Jitter
	}
	if base < 0 {
		base = 0
	}
	return base
}

// event is a scheduled occurrence: either a message delivery or a timer.
type event struct {
	at    time.Duration
	seq   uint64 // tie-break for determinism
	msg   *Message
	fn    func()
	owner NodeID // for timers: skip if owner is down (unless system timer)
	sys   bool   // system events (churn) fire regardless of liveness
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

type node struct {
	handler Handler
	alive   bool
}

// Stats accumulates traffic and liveness counters for a run.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64 // dead destination or random loss
	BytesSent         int64
	BytesDelivered    int64
	BytesByKind       map[string]int64
	MessagesByKind    map[string]int64
	BytesByNode       map[NodeID]int64 // bytes sent per node
	Failures          int64            // churn down events
	Recoveries        int64            // churn up events
}

func newStats() Stats {
	return Stats{
		BytesByKind:    make(map[string]int64),
		MessagesByKind: make(map[string]int64),
		BytesByNode:    make(map[NodeID]int64),
	}
}

// Options configures a Network.
type Options struct {
	// Latency is the delay model; default FixedLatency(50ms).
	Latency LatencyModel
	// DropRate is the probability a message is silently lost in transit.
	DropRate float64
	// Seed drives latency jitter, drops and churn.
	Seed int64
}

// Network is the simulated physical network. All methods must be called
// from a single goroutine (handlers run inline during Run), with one
// exception: Stats and ResetStats are safe to call concurrently with a
// running simulation, so monitoring goroutines (a serving front-end's
// /v1/stats endpoint, a benchmark's progress reader) can observe traffic
// counters while another goroutine drives the virtual clock.
type Network struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	nodes   map[NodeID]*node
	latency LatencyModel
	rng     *rand.Rand
	drop    float64
	statsMu sync.Mutex // guards stats; see Stats/ResetStats
	stats   Stats
	logf    func(format string, args ...any)
}

// New returns an empty network.
func New(opts Options) *Network {
	lat := opts.Latency
	if lat == nil {
		lat = FixedLatency(50 * time.Millisecond)
	}
	return &Network{
		nodes:   make(map[NodeID]*node),
		latency: lat,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		drop:    opts.DropRate,
		stats:   newStats(),
	}
}

// SetLogf installs an activity logger; nil disables logging.
func (n *Network) SetLogf(logf func(format string, args ...any)) { n.logf = logf }

func (n *Network) log(format string, args ...any) {
	if n.logf != nil {
		n.logf("[%8.3fs] "+format, append([]any{n.now.Seconds()}, args...)...)
	}
}

// AddNode registers a node with its message handler. Adding an existing id
// replaces its handler and revives it.
func (n *Network) AddNode(id NodeID, h Handler) {
	n.nodes[id] = &node{handler: h, alive: true}
}

// RemoveNode deletes a node entirely (distinct from churn, which only marks
// it down).
func (n *Network) RemoveNode(id NodeID) { delete(n.nodes, id) }

// Nodes returns all registered node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AliveNodes returns the ids of all currently-up nodes in ascending order.
func (n *Network) AliveNodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id, nd := range n.nodes {
		if nd.alive {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Alive reports whether id exists and is up.
func (n *Network) Alive(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.alive
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Rand exposes the simulation RNG so protocols can make deterministic
// random choices tied to the run seed.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Stats returns a snapshot of the accumulated counters. It is safe to call
// from any goroutine, including while another goroutine runs the
// simulation.
func (n *Network) Stats() Stats {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	s := n.stats
	s.BytesByKind = make(map[string]int64, len(n.stats.BytesByKind))
	for k, v := range n.stats.BytesByKind {
		s.BytesByKind[k] = v
	}
	s.MessagesByKind = make(map[string]int64, len(n.stats.MessagesByKind))
	for k, v := range n.stats.MessagesByKind {
		s.MessagesByKind[k] = v
	}
	s.BytesByNode = make(map[NodeID]int64, len(n.stats.BytesByNode))
	for k, v := range n.stats.BytesByNode {
		s.BytesByNode[k] = v
	}
	return s
}

// ResetStats zeroes the traffic counters (used between the training and
// prediction phases of an experiment so each phase is accounted
// separately). Like Stats, it is safe to call from any goroutine.
func (n *Network) ResetStats() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.stats = newStats()
}

// Send schedules msg for delivery after the model latency. Sending from a
// dead node is a programming error and panics; sending to a dead or unknown
// node silently drops (that is what a real network does).
func (n *Network) Send(msg Message) {
	src, ok := n.nodes[msg.From]
	if !ok || !src.alive {
		panic(fmt.Sprintf("simnet: send from dead or unknown node %d", msg.From))
	}
	n.statsMu.Lock()
	n.stats.MessagesSent++
	n.stats.BytesSent += int64(msg.Size)
	n.stats.BytesByKind[msg.Kind] += int64(msg.Size)
	n.stats.MessagesByKind[msg.Kind]++
	n.stats.BytesByNode[msg.From] += int64(msg.Size)
	n.statsMu.Unlock()
	if n.drop > 0 && n.rng.Float64() < n.drop {
		n.countDrop()
		n.log("DROP %s %d->%d (%dB)", msg.Kind, msg.From, msg.To, msg.Size)
		return
	}
	delay := n.latency.Delay(n.rng, msg.From, msg.To)
	m := msg
	n.push(&event{at: n.now + delay, msg: &m})
}

// Schedule runs fn after delay, provided owner is still alive at that time.
func (n *Network) Schedule(owner NodeID, delay time.Duration, fn func()) {
	n.push(&event{at: n.now + delay, fn: fn, owner: owner})
}

// ScheduleSystem runs fn after delay regardless of node liveness; churn and
// measurement processes use it.
func (n *Network) ScheduleSystem(delay time.Duration, fn func()) {
	n.push(&event{at: n.now + delay, fn: fn, sys: true})
}

// countDrop records a lost message under the stats lock.
func (n *Network) countDrop() {
	n.statsMu.Lock()
	n.stats.MessagesDropped++
	n.statsMu.Unlock()
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.queue, e)
}

// Kill marks a node down, notifying its LifecycleHandler. In-flight
// messages to it are dropped at delivery time.
func (n *Network) Kill(id NodeID) {
	nd, ok := n.nodes[id]
	if !ok || !nd.alive {
		return
	}
	nd.alive = false
	n.statsMu.Lock()
	n.stats.Failures++
	n.statsMu.Unlock()
	n.log("DOWN node %d", id)
	if lh, ok := nd.handler.(LifecycleHandler); ok {
		lh.NodeDown(n)
	}
}

// Revive brings a node back up, notifying its LifecycleHandler.
func (n *Network) Revive(id NodeID) {
	nd, ok := n.nodes[id]
	if !ok || nd.alive {
		return
	}
	nd.alive = true
	n.statsMu.Lock()
	n.stats.Recoveries++
	n.statsMu.Unlock()
	n.log("UP   node %d", id)
	if lh, ok := nd.handler.(LifecycleHandler); ok {
		lh.NodeUp(n)
	}
}

// Step processes the next event. It reports false when the queue is empty.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	e := heap.Pop(&n.queue).(*event)
	if e.at > n.now {
		n.now = e.at
	}
	switch {
	case e.msg != nil:
		dst, ok := n.nodes[e.msg.To]
		if !ok || !dst.alive {
			n.countDrop()
			n.log("LOST %s %d->%d (dest down)", e.msg.Kind, e.msg.From, e.msg.To)
			return true
		}
		n.statsMu.Lock()
		n.stats.MessagesDelivered++
		n.stats.BytesDelivered += int64(e.msg.Size)
		n.statsMu.Unlock()
		dst.handler.HandleMessage(n, *e.msg)
	case e.sys:
		e.fn()
	default:
		if nd, ok := n.nodes[e.owner]; ok && nd.alive {
			e.fn()
		}
	}
	return true
}

// Run processes events until the queue is empty or virtual time exceeds
// until (zero means run to quiescence). It returns the number of events
// processed.
func (n *Network) Run(until time.Duration) int {
	processed := 0
	for len(n.queue) > 0 {
		if until > 0 && n.queue[0].at > until {
			n.now = until
			break
		}
		n.Step()
		processed++
	}
	return processed
}

// RunFor advances the simulation by d from the current time.
func (n *Network) RunFor(d time.Duration) int { return n.Run(n.now + d) }
