// Package simnet is a deterministic discrete-event simulator of a physical
// P2P network — the bottom layer of the P2PDMT toolkit (Fig. 2 of the
// paper: "Configure physical network / Simulate physical network / Simulate
// node failures"). Nodes exchange messages with configurable latency, every
// message is charged its wire size, and churn processes take nodes up and
// down according to session-length distributions.
//
// # Parallel simulation
//
// The engine is a sharded conservative parallel discrete-event simulator
// (PDES). Nodes are partitioned over Options.Shards shards by NodeID; each
// shard owns an event heap, a clock and traffic counters. Virtual time
// advances in barrier-synchronized windows whose width is the lookahead —
// the minimum one-way link latency reported by the latency model — so a
// message sent inside a window can never be due before the window ends,
// and the shards may execute a window concurrently without ever seeing an
// event out of order. Cross-shard messages travel through per-shard
// mailboxes that merge at the window barrier; system events (churn,
// stabilizers) run alone at global barriers at their exact timestamps.
//
// The determinism contract: a run's observable results — Stats, per-node
// message sequences, protocol outcomes — are byte-identical at every shard
// count, including Shards=1, which replaces the earlier serial engine.
// Three disciplines make that hold:
//
//  1. Every event is keyed (time, creating node, per-node counter), so the
//     execution order within a shard — and the merged global order — does
//     not depend on shard count or real-time interleaving.
//  2. Every node draws its latency jitter and message-loss decisions from
//     a private random stream derived via runner.DeriveSeed(seed, node),
//     so a node's draws are a pure function of its own event history, not
//     of shard placement. Churn draws likewise come from per-node streams.
//  3. During a window a handler may act only as its own node: it may Send
//     messages from itself and Schedule timers on itself, but must not
//     call ScheduleSystem, Kill, Revive, AddNode or RemoveNode (the engine
//     panics if it does), and must not touch another node's mutable state.
//     System events and code running between Run calls may act as anyone.
//
// Handlers on different shards execute concurrently, so protocol state
// shared between nodes must be read-only while the clock runs (per-node
// state needs no locking — a node's events never run concurrently with
// each other).
package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/runner"
)

// NodeID identifies a simulated node.
type NodeID int

// Message is a simulated datagram. Size is the number of wire bytes charged
// to the network; Payload is passed to the destination handler by reference
// (the simulator models transfer cost, not marshaling).
type Message struct {
	From, To NodeID
	Kind     string
	Size     int
	Payload  any
}

// Handler receives messages delivered to a node.
type Handler interface {
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

// LifecycleHandler is an optional extension: nodes implementing it are told
// when churn takes them down or brings them back.
type LifecycleHandler interface {
	NodeDown(net *Network)
	NodeUp(net *Network)
}

// LatencyModel yields the one-way delay for a message.
type LatencyModel interface {
	Delay(rng *rand.Rand, from, to NodeID) time.Duration
}

// MinDelayer is an optional LatencyModel extension reporting a lower bound
// on Delay. The sharded engine uses it as the conservative lookahead: with
// a positive minimum delay, shards can execute a window of that width in
// parallel without risking an out-of-order delivery. Models that do not
// implement it (or report a non-positive bound) force serial execution.
type MinDelayer interface {
	MinDelay() time.Duration
}

// FixedLatency delays every message by a constant.
type FixedLatency time.Duration

// Delay returns the constant delay.
func (f FixedLatency) Delay(*rand.Rand, NodeID, NodeID) time.Duration {
	return time.Duration(f)
}

// MinDelay implements MinDelayer.
func (f FixedLatency) MinDelay() time.Duration { return time.Duration(f) }

// UniformLatency draws delays uniformly from [Min, Max].
type UniformLatency struct {
	Min, Max time.Duration
}

// Delay returns a uniform random delay.
func (u UniformLatency) Delay(rng *rand.Rand, _, _ NodeID) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)))
}

// MinDelay implements MinDelayer.
func (u UniformLatency) MinDelay() time.Duration { return u.Min }

// ClusteredLatency models a two-level topology: nodes in the same cluster
// (id / ClusterSize) see Local delay, others see Remote delay, both with
// ±Jitter uniform noise. It approximates OverSim's grouped underlay.
type ClusteredLatency struct {
	ClusterSize   int
	Local, Remote time.Duration
	Jitter        time.Duration
}

// Delay returns the topology-dependent delay.
func (c ClusteredLatency) Delay(rng *rand.Rand, from, to NodeID) time.Duration {
	base := c.Remote
	if c.ClusterSize > 0 && int(from)/c.ClusterSize == int(to)/c.ClusterSize {
		base = c.Local
	}
	if c.Jitter > 0 {
		base += time.Duration(rng.Int63n(int64(2*c.Jitter))) - c.Jitter
	}
	if base < 0 {
		base = 0
	}
	return base
}

// MinDelay implements MinDelayer.
func (c ClusteredLatency) MinDelay() time.Duration {
	min := c.Local
	if c.Remote < min {
		min = c.Remote
	}
	min -= c.Jitter
	if min < 0 {
		min = 0
	}
	return min
}

type node struct {
	handler Handler
	alive   bool
	rng     *rand.Rand // private stream: latency jitter and drop decisions
	seq     uint64     // event-creation counter (the deterministic tie-break)
}

// Stats accumulates traffic and liveness counters for a run.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	MessagesDropped   int64 // dead destination or random loss
	BytesSent         int64
	BytesDelivered    int64
	BytesByKind       map[string]int64
	MessagesByKind    map[string]int64
	BytesByNode       map[NodeID]int64 // bytes sent per node
	Failures          int64            // churn down events
	Recoveries        int64            // churn up events
}

func newStats() Stats {
	return Stats{
		BytesByKind:    make(map[string]int64),
		MessagesByKind: make(map[string]int64),
		BytesByNode:    make(map[NodeID]int64),
	}
}

// Options configures a Network.
type Options struct {
	// Latency is the delay model; default FixedLatency(50ms).
	Latency LatencyModel
	// DropRate is the probability a message is silently lost in transit.
	DropRate float64
	// Seed drives latency jitter, drops and churn. Every node's private
	// stream is derived from it with runner.DeriveSeed.
	Seed int64
	// Shards is the number of event-loop shards the nodes are partitioned
	// over. Values <= 1 keep the event loop on the calling goroutine;
	// larger values execute lookahead windows concurrently on that many
	// workers. Results are byte-identical at every setting — sharding is
	// purely a wall-clock optimization for large, message-heavy networks.
	Shards int
	// Lookahead overrides the conservative window width. 0 derives it from
	// the latency model's MinDelay; models without a positive minimum
	// delay leave the engine serial regardless of Shards.
	Lookahead time.Duration
}

// Network is the simulated physical network. All methods must be called
// from a single goroutine (handlers run inline during Run), with one
// exception: Stats and ResetStats are safe to call concurrently with a
// running simulation, so monitoring goroutines (a serving front-end's
// /v1/stats endpoint, a benchmark's progress reader) can observe traffic
// counters while another goroutine drives the virtual clock.
type Network struct {
	now       time.Duration // committed clock; window start while running
	nodes     map[NodeID]*node
	latency   LatencyModel
	drop      float64
	seed      int64
	rng       *rand.Rand // setup/system stream; see Rand
	shards    []*shard
	scratch   []*shard // reused active-shard list
	lookahead time.Duration
	inWindow  bool // a window is executing; guards serial-only methods
	sysHeap   eventHeap
	sysSeq    uint64
	logf      func(format string, args ...any)
}

// New returns an empty network.
func New(opts Options) *Network {
	lat := opts.Latency
	if lat == nil {
		lat = FixedLatency(50 * time.Millisecond)
	}
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	n := &Network{
		nodes:   make(map[NodeID]*node),
		latency: lat,
		drop:    opts.DropRate,
		seed:    opts.Seed,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		shards:  make([]*shard, k),
	}
	for i := range n.shards {
		n.shards[i] = &shard{stats: newStats()}
		n.shards[i].current.Store(noNode)
	}
	n.lookahead = opts.Lookahead
	if n.lookahead <= 0 {
		if md, ok := lat.(MinDelayer); ok {
			n.lookahead = md.MinDelay()
		}
	}
	return n
}

// SetLogf installs an activity logger; nil disables logging. While a
// logger is installed, window execution stays on the calling goroutine so
// log lines appear in a deterministic order; results are unchanged.
func (n *Network) SetLogf(logf func(format string, args ...any)) { n.logf = logf }

func (n *Network) logAt(at time.Duration, format string, args ...any) {
	if n.logf != nil {
		n.logf("[%8.3fs] "+format, append([]any{at.Seconds()}, args...)...)
	}
}

// serialOnly panics when called during a parallel window: the method
// mutates cross-node state and is only safe at serial points (between Run
// calls, or inside system events, which run at global barriers).
func (n *Network) serialOnly(method string) {
	if n.inWindow {
		panic("simnet: " + method + " called from a node event handler; " +
			"only system events and code between runs may use it")
	}
}

// AddNode registers a node with its message handler. Adding an existing id
// replaces its handler, revives it, and resets its private random stream
// and event counter (a re-added node is a fresh node).
func (n *Network) AddNode(id NodeID, h Handler) {
	n.serialOnly("AddNode")
	n.nodes[id] = &node{
		handler: h,
		alive:   true,
		rng:     rand.New(rand.NewSource(runner.DeriveSeed(n.seed, "node", strconv.Itoa(int(id))))),
	}
}

// RemoveNode deletes a node entirely (distinct from churn, which only marks
// it down).
func (n *Network) RemoveNode(id NodeID) {
	n.serialOnly("RemoveNode")
	delete(n.nodes, id)
}

// Nodes returns all registered node ids in ascending order.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// AliveNodes returns the ids of all currently-up nodes in ascending order.
func (n *Network) AliveNodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id, nd := range n.nodes {
		if nd.alive {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Alive reports whether id exists and is up.
func (n *Network) Alive(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.alive
}

// Now returns the current virtual time. At serial points it is exact;
// while a window executes it reports the window start (handlers needing
// exact event times should carry them in message payloads). Its value is
// identical at every shard count.
func (n *Network) Now() time.Duration { return n.now }

// Rand exposes the setup stream: deterministic randomness tied to the run
// seed for topology construction and other serial-point choices. Handlers
// must not draw from it during a run — use NodeRand(self) instead, whose
// draws stay deterministic under sharding.
func (n *Network) Rand() *rand.Rand { return n.rng }

// NodeRand returns a node's private random stream, derived from the run
// seed and the node id. A handler may draw from its own node's stream
// only; the draws are then a pure function of the node's event history and
// independent of shard placement. NodeRand panics on unknown ids.
func (n *Network) NodeRand(id NodeID) *rand.Rand {
	nd, ok := n.nodes[id]
	if !ok {
		panic(fmt.Sprintf("simnet: NodeRand of unknown node %d", id))
	}
	return nd.rng
}

// Stats returns a snapshot of the accumulated counters, summed over the
// shards. It is safe to call from any goroutine, including while another
// goroutine runs the simulation. All shard locks are held while the
// snapshot is taken, so the totals are mutually consistent (a concurrent
// reader can never observe more deliveries than sends).
func (n *Network) Stats() Stats {
	for _, sh := range n.shards {
		sh.statsMu.Lock()
	}
	out := newStats()
	for _, sh := range n.shards {
		out.MessagesSent += sh.stats.MessagesSent
		out.MessagesDelivered += sh.stats.MessagesDelivered
		out.MessagesDropped += sh.stats.MessagesDropped
		out.BytesSent += sh.stats.BytesSent
		out.BytesDelivered += sh.stats.BytesDelivered
		out.Failures += sh.stats.Failures
		out.Recoveries += sh.stats.Recoveries
		for k, v := range sh.stats.BytesByKind {
			out.BytesByKind[k] += v
		}
		for k, v := range sh.stats.MessagesByKind {
			out.MessagesByKind[k] += v
		}
		for k, v := range sh.stats.BytesByNode {
			out.BytesByNode[k] += v
		}
	}
	for _, sh := range n.shards {
		sh.statsMu.Unlock()
	}
	return out
}

// ResetStats zeroes the traffic counters (used between the training and
// prediction phases of an experiment so each phase is accounted
// separately). Like Stats, it is safe to call from any goroutine.
func (n *Network) ResetStats() {
	for _, sh := range n.shards {
		sh.statsMu.Lock()
	}
	for _, sh := range n.shards {
		sh.stats = newStats()
	}
	for _, sh := range n.shards {
		sh.statsMu.Unlock()
	}
}

// Send schedules msg for delivery after the model latency. Sending from a
// dead node is a programming error and panics; sending to a dead or unknown
// node silently drops (that is what a real network does). During a window a
// handler may send only as its own node.
func (n *Network) Send(msg Message) {
	nd, ok := n.nodes[msg.From]
	if !ok || !nd.alive {
		panic(fmt.Sprintf("simnet: send from dead or unknown node %d", msg.From))
	}
	sh := n.shardOf(msg.From)
	sh.statsMu.Lock()
	sh.stats.MessagesSent++
	sh.stats.BytesSent += int64(msg.Size)
	sh.stats.BytesByKind[msg.Kind] += int64(msg.Size)
	sh.stats.MessagesByKind[msg.Kind]++
	sh.stats.BytesByNode[msg.From] += int64(msg.Size)
	sh.statsMu.Unlock()
	base := n.timeAt(sh)
	if n.drop > 0 && nd.rng.Float64() < n.drop {
		sh.statsMu.Lock()
		sh.stats.MessagesDropped++
		sh.statsMu.Unlock()
		n.logAt(base, "DROP %s %d->%d (%dB)", msg.Kind, msg.From, msg.To, msg.Size)
		return
	}
	delay := n.latency.Delay(nd.rng, msg.From, msg.To)
	n.push(msg.From, nd, event{at: base + delay, kind: evMsg, msg: msg})
}

// Schedule runs fn after delay, provided owner is still alive at that time.
// During a window a handler may schedule only on its own node.
func (n *Network) Schedule(owner NodeID, delay time.Duration, fn func()) {
	e := event{kind: evTimer, owner: owner, fn: fn}
	if nd, ok := n.nodes[owner]; ok {
		sh := n.shardOf(owner)
		e.at = n.timeAt(sh) + delay
		n.push(owner, nd, e)
		return
	}
	// Unknown owner: the timer is filed under the system counter and
	// checked for liveness when it fires (where it will be skipped unless
	// the node appeared in the meantime).
	n.serialOnly("Schedule for an unknown node")
	e.at = n.now + delay
	e.src = systemSrc
	e.seq = n.sysSeq
	n.sysSeq++
	n.shardOf(owner).heap.push(e)
}

// ScheduleSystem runs fn after delay regardless of node liveness; churn and
// measurement processes use it. System events execute alone at a global
// barrier, so — unlike node handlers — they may touch any node's state.
// Handlers must not call it; schedule system work from system events or
// between runs.
func (n *Network) ScheduleSystem(delay time.Duration, fn func()) {
	n.serialOnly("ScheduleSystem")
	n.sysHeap.push(event{at: n.now + delay, src: systemSrc, seq: n.sysSeq, kind: evSys, fn: fn})
	n.sysSeq++
}

// Kill marks a node down, notifying its LifecycleHandler. In-flight
// messages to it are dropped at delivery time. Serial points and system
// events only.
func (n *Network) Kill(id NodeID) {
	n.serialOnly("Kill")
	nd, ok := n.nodes[id]
	if !ok || !nd.alive {
		return
	}
	nd.alive = false
	sh := n.shardOf(id)
	sh.statsMu.Lock()
	sh.stats.Failures++
	sh.statsMu.Unlock()
	n.logAt(n.now, "DOWN node %d", id)
	if lh, ok := nd.handler.(LifecycleHandler); ok {
		lh.NodeDown(n)
	}
}

// Revive brings a node back up, notifying its LifecycleHandler. Serial
// points and system events only.
func (n *Network) Revive(id NodeID) {
	n.serialOnly("Revive")
	nd, ok := n.nodes[id]
	if !ok || nd.alive {
		return
	}
	nd.alive = true
	sh := n.shardOf(id)
	sh.statsMu.Lock()
	sh.stats.Recoveries++
	sh.statsMu.Unlock()
	n.logAt(n.now, "UP   node %d", id)
	if lh, ok := nd.handler.(LifecycleHandler); ok {
		lh.NodeUp(n)
	}
}
