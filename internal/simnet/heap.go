package simnet

// beforer is the ordering constraint of minHeap: a value that knows whether
// it sorts before another value of the same type.
type beforer[E any] interface {
	before(*E) bool
}

// minHeap is a generic value-based binary min-heap. Unlike container/heap it
// stores elements inline — no per-element allocation, no interface boxing on
// push/pop — which is what keeps the simulator's event hot path allocation
// free (see BenchmarkEventLoop).
type minHeap[E beforer[E]] []E

func (h minHeap[E]) empty() bool { return len(h) == 0 }

// peek returns the minimum element in place, or nil when the heap is empty.
// The pointer is invalidated by the next push or pop.
func (h minHeap[E]) peek() *E {
	if len(h) == 0 {
		return nil
	}
	return &h[0]
}

func (h *minHeap[E]) push(e E) {
	q := append(*h, e)
	*h = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q[i].before(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

func (h *minHeap[E]) pop() E {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	var zero E
	q[n] = zero // release references held by the vacated slot
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && q[l].before(&q[s]) {
			s = l
		}
		if r < n && q[r].before(&q[s]) {
			s = r
		}
		if s == i {
			break
		}
		q[i], q[s] = q[s], q[i]
		i = s
	}
	return top
}
