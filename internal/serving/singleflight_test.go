package serving

import (
	"context"
	"sync"
	"testing"
	"time"
)

// gatedEngine signals each batch's arrival on entered and holds it until
// release closes, so tests can deterministically pin what is in flight.
type gatedEngine struct {
	entered chan []string
	release chan struct{}
	mu      sync.Mutex
	rows    []string // every document row ever handed to the engine
}

func newGatedEngine() *gatedEngine {
	return &gatedEngine{
		entered: make(chan []string, 16),
		release: make(chan struct{}),
	}
}

func (e *gatedEngine) AutoTagBatch(texts []string) ([][]string, error) {
	e.entered <- append([]string(nil), texts...)
	<-e.release
	e.mu.Lock()
	e.rows = append(e.rows, texts...)
	e.mu.Unlock()
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = []string{"tag:" + t}
	}
	return out, nil
}

func (e *gatedEngine) rowCount(text string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, r := range e.rows {
		if r == text {
			n++
		}
	}
	return n
}

// waitStats polls the server's counters until cond holds or the deadline
// expires.
func waitStats(t *testing.T, s *Server, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; stats %+v", what, s.Stats())
}

// TestSingleFlightDedup is the deterministic dedup acceptance test: N
// concurrent misses for one text must issue exactly one engine query. The
// leader's batch is held inside the engine while the followers arrive, so
// every follower is guaranteed to find the flight in progress.
func TestSingleFlightDedup(t *testing.T) {
	eng := newGatedEngine()
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const followers = 7
	results := make(chan []string, followers+1)
	errs := make(chan error, followers+1)
	tag := func() {
		tags, err := s.Tag(context.Background(), "dup")
		results <- tags
		errs <- err
	}
	go tag() // leader
	// The leader's query is now inside the engine, blocked on the gate.
	if batch := <-eng.entered; len(batch) != 1 || batch[0] != "dup" {
		t.Fatalf("leader batch = %v, want [dup]", batch)
	}
	for i := 0; i < followers; i++ {
		go tag()
	}
	// Every follower has joined the leader's flight: nothing else can
	// raise Coalesced.
	waitStats(t, s, "followers to coalesce", func(st Stats) bool { return st.Coalesced == followers })
	close(eng.release)

	for i := 0; i < followers+1; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("Tag: %v", err)
		}
		if tags := <-results; len(tags) != 1 || tags[0] != "tag:dup" {
			t.Errorf("tags = %v, want [tag:dup]", tags)
		}
	}
	if n := eng.rowCount("dup"); n != 1 {
		t.Errorf("engine saw %d rows for the text, want exactly 1", n)
	}
	st := s.Stats()
	if st.Requests != 1 || st.Served != 1 || st.Coalesced != followers {
		t.Errorf("requests %d served %d coalesced %d, want 1/1/%d",
			st.Requests, st.Served, st.Coalesced, followers)
	}
}

// TestSingleFlightNoSliceAliasing: the leader's returned slice, every
// follower's slice and the cache's copy must be independent — a caller
// mutating its result must not corrupt anyone else's.
func TestSingleFlightNoSliceAliasing(t *testing.T) {
	eng := newGatedEngine()
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, CacheSize: 8}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	leaderTags := make(chan []string, 1)
	go func() {
		tags, err := s.Tag(context.Background(), "dup")
		if err != nil {
			t.Error(err)
		}
		leaderTags <- tags
	}()
	<-eng.entered
	followerTags := make(chan []string, 2)
	for i := 0; i < 2; i++ {
		go func() {
			tags, err := s.Tag(context.Background(), "dup")
			if err != nil {
				t.Error(err)
			}
			followerTags <- tags
		}()
	}
	waitStats(t, s, "followers to coalesce", func(st Stats) bool { return st.Coalesced == 2 })
	close(eng.release)
	lt := <-leaderTags
	lt[0] = "mutated-by-leader" // caller owns its slice
	f1, f2 := <-followerTags, <-followerTags
	if f1[0] != "tag:dup" || f2[0] != "tag:dup" {
		t.Fatalf("follower slices aliased the leader's: %v / %v", f1, f2)
	}
	f1[0] = "mutated-by-follower"
	if f2[0] != "tag:dup" {
		t.Fatalf("follower slices alias each other: %v", f2)
	}
	// The cached copy survives every mutation above.
	tags, err := s.Tag(context.Background(), "dup")
	if err != nil || tags[0] != "tag:dup" {
		t.Fatalf("cached answer corrupted: %v, %v", tags, err)
	}
}

// TestSingleFlightDistinctTexts: different texts never coalesce.
func TestSingleFlightDistinctTexts(t *testing.T) {
	eng := newGatedEngine()
	s, err := New(Config{MaxBatch: 8, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	go s.Tag(context.Background(), "a")
	go s.Tag(context.Background(), "b")
	seen := 0
	for seen < 2 {
		seen += len(<-eng.entered)
	}
	close(eng.release)
	waitStats(t, s, "both served", func(st Stats) bool { return st.Served == 2 })
	if st := s.Stats(); st.Coalesced != 0 || st.Requests != 2 {
		t.Errorf("requests %d coalesced %d, want 2/0", st.Requests, st.Coalesced)
	}
}

// TestSingleFlightFollowerSurvivesLeaderCancel: a leader that abandons its
// wait after submitting must not strand the followers — the in-flight
// result still reaches them (and the leader's accepted work is what
// answers, not a second query).
func TestSingleFlightFollowerSurvivesLeaderCancel(t *testing.T) {
	eng := newGatedEngine()
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.Tag(leaderCtx, "dup")
		leaderErr <- err
	}()
	if batch := <-eng.entered; batch[0] != "dup" {
		t.Fatalf("unexpected batch %v", batch)
	}
	followerTags := make(chan []string, 1)
	followerErr := make(chan error, 1)
	go func() {
		tags, err := s.Tag(context.Background(), "dup")
		followerTags <- tags
		followerErr <- err
	}()
	waitStats(t, s, "follower to coalesce", func(st Stats) bool { return st.Coalesced == 1 })
	cancelLeader()
	if err := <-leaderErr; err != context.Canceled {
		t.Fatalf("cancelled leader returned %v", err)
	}
	close(eng.release)
	if err := <-followerErr; err != nil {
		t.Fatalf("follower: %v", err)
	}
	if tags := <-followerTags; len(tags) != 1 || tags[0] != "tag:dup" {
		t.Errorf("follower tags = %v, want [tag:dup]", tags)
	}
	if n := eng.rowCount("dup"); n != 1 {
		t.Errorf("engine saw %d rows, want 1", n)
	}
}
