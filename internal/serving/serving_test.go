package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// errNoAnswer stands in for doctagger.ErrNoAnswer as the wrapped cause of a
// failed row.
var errNoAnswer = errors.New("no answer")

// fakeEngine tags every document "tag:<text>" (or "<prefix><text>" when
// prefix is set — distinguishable engine generations for swap tests),
// optionally sleeping per batch and failing configured texts the way
// AutoTagBatch does: nil row + first-failure error wrapping the cause.
type fakeEngine struct {
	delay   time.Duration
	prefix  string
	failOn  map[string]bool
	mu      sync.Mutex
	batches []int
}

func (f *fakeEngine) AutoTagBatch(texts []string) ([][]string, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, len(texts))
	f.mu.Unlock()
	prefix := f.prefix
	if prefix == "" {
		prefix = "tag:"
	}
	out := make([][]string, len(texts))
	var err error
	for i, t := range texts {
		if f.failOn[t] {
			if err == nil {
				err = fmt.Errorf("engine: document %d: %w", i, errNoAnswer)
			}
			continue
		}
		out[i] = []string{prefix + t}
	}
	return out, err
}

func (f *fakeEngine) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{MaxBatch: -1},
		{MaxDelay: -time.Second},
		{MaxQueue: -3},
	} {
		if _, err := New(cfg, &fakeEngine{}); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with no engines accepted")
	}
}

// TestBatchingUnderConcurrency is the acceptance check of the dispatcher:
// 64 concurrent clients against a briefly-busy engine must coalesce — mean
// batch size above 1 — while every client still receives exactly its own
// document's answer.
func TestBatchingUnderConcurrency(t *testing.T) {
	eng := &fakeEngine{delay: time.Millisecond}
	s, err := New(Config{MaxBatch: 16, MaxDelay: 5 * time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients, perClient = 64, 4
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				text := fmt.Sprintf("doc-%d-%d", c, r)
				tags, err := s.Tag(context.Background(), text)
				if err != nil || len(tags) != 1 || tags[0] != "tag:"+text {
					mismatches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d requests got wrong or failed answers", n)
	}
	st := s.Stats()
	if st.Requests != clients*perClient || st.Served != clients*perClient {
		t.Errorf("requests %d served %d, want %d", st.Requests, st.Served, clients*perClient)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 (batches: %v)", st.MeanBatchSize, eng.batchSizes())
	}
	if st.MaxBatchSeen > 16 {
		t.Errorf("batch of %d exceeded MaxBatch", st.MaxBatchSeen)
	}
	var histTotal int64
	for _, b := range st.BatchSizeHist {
		histTotal += b.Count
	}
	if histTotal != st.Batches {
		t.Errorf("histogram sums to %d, want %d batches", histTotal, st.Batches)
	}
	if st.Errors != 0 || st.Rejected != 0 {
		t.Errorf("unexpected errors/rejections: %+v", st)
	}
}

// TestSingleRequestFlushesOnDelay: a lone request must not wait for
// MaxBatch company forever.
func TestSingleRequestFlushesOnDelay(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 64, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tags, err := s.Tag(context.Background(), "solo")
	if err != nil || len(tags) != 1 {
		t.Fatalf("Tag = %v, %v", tags, err)
	}
	if sizes := eng.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Errorf("batch sizes = %v, want [1]", sizes)
	}
	if st := s.Stats(); st.MeanQueueWait <= 0 {
		t.Errorf("queue wait not recorded: %+v", st)
	}
}

// TestPerRequestErrorPropagation: a failed document inside a batch must
// fail only its own request, with the unwrapped cause, while its batch
// mates succeed.
func TestPerRequestErrorPropagation(t *testing.T) {
	eng := &fakeEngine{failOn: map[string]bool{"bad-1": true, "bad-2": true}}
	s, err := New(Config{MaxBatch: 8, MaxDelay: 20 * time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := []string{"ok-1", "bad-1", "ok-2", "bad-2", "ok-3"}
	errs := make([]error, len(texts))
	results := make([][]string, len(texts))
	var wg sync.WaitGroup
	for i, text := range texts {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			results[i], errs[i] = s.Tag(context.Background(), text)
		}(i, text)
	}
	wg.Wait()
	for i, text := range texts {
		if text[:2] == "ok" {
			if errs[i] != nil || len(results[i]) != 1 {
				t.Errorf("%s: got %v, %v", text, results[i], errs[i])
			}
			continue
		}
		if !errors.Is(errs[i], errNoAnswer) {
			t.Errorf("%s: err = %v, want errNoAnswer", text, errs[i])
		}
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Errorf("Errors = %d, want 2", st.Errors)
	}
}

// TestCloseDrains: Close must answer everything already accepted, then
// refuse new work.
func TestCloseDrains(t *testing.T) {
	eng := &fakeEngine{delay: 2 * time.Millisecond}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); err == nil {
				ok.Add(1)
			}
		}(i)
	}
	// Let most submissions land in the queue, then close underneath them.
	time.Sleep(time.Millisecond)
	s.Close()
	wg.Wait()
	st := s.Stats()
	if st.Served != st.Requests {
		t.Errorf("drain incomplete: served %d of %d accepted", st.Served, st.Requests)
	}
	if got := ok.Load(); got != st.Requests {
		t.Errorf("%d successful answers for %d accepted requests", got, st.Requests)
	}
	if _, err := s.Tag(context.Background(), "late"); err != ErrClosed {
		t.Errorf("Tag after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestFailFastBackpressure: with a tiny queue and a slow engine, fail-fast
// submissions are rejected instead of blocking.
func TestFailFastBackpressure(t *testing.T) {
	eng := &fakeEngine{delay: 5 * time.Millisecond}
	s, err := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, MaxQueue: 1, FailFast: true}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Error("no request was rejected under overload")
	}
	if st := s.Stats(); st.Rejected != rejected.Load() {
		t.Errorf("Rejected = %d, want %d", st.Rejected, rejected.Load())
	}
}

// TestContextCancelAbandonsWait: a cancelled waiter returns promptly; its
// request still drains, so Close completes.
func TestContextCancelAbandonsWait(t *testing.T) {
	eng := &fakeEngine{delay: 20 * time.Millisecond}
	s, err := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := s.Tag(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Tag = %v, want deadline exceeded", err)
	}
	s.Close()
	if st := s.Stats(); st.Served != 1 {
		t.Errorf("abandoned request not drained: %+v", st)
	}
}

// TestPreCancelledContextNeverEnqueues: a context that is already
// cancelled must be refused outright, in both blocking and fail-fast
// modes — an unlucky select must not slip the request into the queue
// (regression: the old submission select could pick the queue case even
// for a dead context, and the fail-fast path never looked at ctx at all).
func TestPreCancelledContextNeverEnqueues(t *testing.T) {
	for _, failFast := range []bool{false, true} {
		s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, FailFast: failFast}, &fakeEngine{})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for i := 0; i < 32; i++ {
			if _, err := s.Tag(ctx, "doomed"); !errors.Is(err, context.Canceled) {
				t.Errorf("failFast=%v: Tag = %v, want context.Canceled", failFast, err)
			}
		}
		if _, err := s.TagBatch(ctx, []string{"a", "b"}); !errors.Is(err, context.Canceled) {
			t.Errorf("failFast=%v: TagBatch = %v, want context.Canceled", failFast, err)
		}
		st := s.Stats()
		if st.Requests != 0 || st.Served != 0 || st.Rejected != 0 {
			t.Errorf("failFast=%v: cancelled submissions leaked into the pipeline: %+v", failFast, st)
		}
		s.Close() // must not hang on phantom pending work
	}
}

// TestTagBatchMatchesTag: batch answers are identical to per-document Tag
// calls, in input order, and the documents enter the dispatcher as
// pre-formed chunks of at most MaxBatch.
func TestTagBatchMatchesTag(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := make([]string, 10)
	for i := range texts {
		texts[i] = fmt.Sprintf("doc-%d", i)
	}
	got, err := s.TagBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(texts) {
		t.Fatalf("got %d rows for %d texts", len(got), len(texts))
	}
	for i, text := range texts {
		want, err := s.Tag(context.Background(), text)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got[i]) != fmt.Sprint(want) {
			t.Errorf("row %d: TagBatch %v != Tag %v", i, got[i], want)
		}
	}
	// The first three engine calls are the batch's pre-formed chunks:
	// 10 docs at MaxBatch 4 split 4+4+2, untouched by MaxDelay coalescing.
	sizes := eng.batchSizes()
	if len(sizes) < 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Errorf("chunk sizes = %v, want prefix [4 4 2]", sizes)
	}
	if empty, err := s.TagBatch(context.Background(), nil); empty != nil || err != nil {
		t.Errorf("TagBatch(nil) = %v, %v", empty, err)
	}
}

// TestTagBatchDeduplicates: duplicate texts in one batch are computed
// once — one engine row, every duplicate output row answered (the copies
// independently mutable), errors fanned to all duplicates too.
func TestTagBatchDeduplicates(t *testing.T) {
	eng := &fakeEngine{failOn: map[string]bool{"bad": true}}
	s, err := New(Config{MaxBatch: 16, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := []string{"dup", "other", "dup", "bad", "dup", "bad"}
	got, err := s.TagBatch(context.Background(), texts)
	if !errors.Is(err, errNoAnswer) {
		t.Fatalf("err = %v, want errNoAnswer cause", err)
	}
	for _, i := range []int{0, 2, 4} {
		if len(got[i]) != 1 || got[i][0] != "tag:dup" {
			t.Errorf("row %d = %v, want [tag:dup]", i, got[i])
		}
	}
	for _, i := range []int{3, 5} {
		if got[i] != nil {
			t.Errorf("row %d = %v for a failed duplicate", i, got[i])
		}
	}
	// Duplicate rows are independent copies.
	got[0][0] = "vandalized"
	if got[2][0] != "tag:dup" {
		t.Errorf("duplicate rows share a slice: %v", got[2])
	}
	// The engine saw each distinct text once: dup, other, bad.
	if sizes := eng.batchSizes(); len(sizes) != 1 || sizes[0] != 3 {
		t.Errorf("engine batches = %v, want [3]", sizes)
	}
	// Fan-out rows are visible in the counters: 3 distinct served, 3
	// answered by dedup, so served + deduped covers all 6 issued rows.
	if st := s.Stats(); st.Served != 3 || st.Deduped != 3 {
		t.Errorf("served %d deduped %d, want 3/3", st.Served, st.Deduped)
	}
}

// TestTagBatchErrorRows mirrors the AutoTagBatch contract: failed rows are
// nil, the rest answer, and the returned error names the first failed
// input's index with its unwrapped cause.
func TestTagBatchErrorRows(t *testing.T) {
	eng := &fakeEngine{failOn: map[string]bool{"bad-1": true, "bad-2": true}}
	s, err := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := []string{"ok-0", "bad-1", "bad-2", "ok-3"}
	got, err := s.TagBatch(context.Background(), texts)
	if !errors.Is(err, errNoAnswer) {
		t.Fatalf("err = %v, want errNoAnswer cause", err)
	}
	if want := "serving: document 1:"; err == nil || len(err.Error()) < len(want) || err.Error()[:len(want)] != want {
		t.Errorf("err = %v, want first failure at document 1", err)
	}
	for i, text := range texts {
		failed := eng.failOn[text]
		if failed && got[i] != nil {
			t.Errorf("row %d: got %v for a failed document", i, got[i])
		}
		if !failed && (len(got[i]) != 1 || got[i][0] != "tag:"+text) {
			t.Errorf("row %d: got %v", i, got[i])
		}
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Errorf("Errors = %d, want 2", st.Errors)
	}
}

// TestTagBatchUsesCache: rows with cached answers never reach the engine.
func TestTagBatchUsesCache(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 8, MaxDelay: time.Millisecond, CacheSize: 8}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := []string{"a", "b", "c"}
	first, err := s.TagBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.TagBatch(context.Background(), texts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("cached batch %v != uncached batch %v", second, first)
	}
	if sizes := eng.batchSizes(); len(sizes) != 1 {
		t.Errorf("engine saw %v batches, want 1 (second batch fully cached)", sizes)
	}
	if st := s.Stats(); st.CacheHits != int64(len(texts)) {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, len(texts))
	}
}

// TestSwapSwitchesGenerations: after Swap returns, every answer — cached
// or fresh — comes from the new engines; the retired generation has fully
// drained and the cache holds nothing it produced.
func TestSwapSwitchesGenerations(t *testing.T) {
	g1 := &fakeEngine{prefix: "g1:"}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, CacheSize: 16}, g1)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	tags, err := s.Tag(ctx, "doc")
	if err != nil || tags[0] != "g1:doc" {
		t.Fatalf("generation 1 answer = %v, %v", tags, err)
	}
	g2a, g2b := &fakeEngine{prefix: "g2:"}, &fakeEngine{prefix: "g2:"}
	if err := s.Swap(g2a, g2b); err != nil {
		t.Fatal(err)
	}
	// "doc" was cached under generation 1; the flush on swap must force a
	// fresh answer from generation 2.
	tags, err = s.Tag(ctx, "doc")
	if err != nil || tags[0] != "g2:doc" {
		t.Fatalf("post-swap answer = %v, %v (stale generation served?)", tags, err)
	}
	st := s.Stats()
	if st.Generation != 2 || st.Shards != 2 {
		t.Errorf("generation %d shards %d, want 2/2", st.Generation, st.Shards)
	}
	if len(g1.batchSizes()) != 1 {
		t.Errorf("retired engine saw %v batches, want exactly 1", g1.batchSizes())
	}
	if err := s.Swap(); err == nil {
		t.Error("Swap with no engines accepted")
	}
}

// TestSwapUnderLoad is the refresh acceptance test: 64 clients hammer the
// pool across two generation swaps; not one request may be dropped or
// fail, every answer must belong to a live generation, and once a Swap
// has returned the old generation must never answer again. Run with -race.
func TestSwapUnderLoad(t *testing.T) {
	gen1 := []Engine{&fakeEngine{prefix: "g1:", delay: time.Millisecond}, &fakeEngine{prefix: "g1:", delay: time.Millisecond}}
	s, err := New(Config{MaxBatch: 8, MaxDelay: time.Millisecond, CacheSize: 32}, gen1...)
	if err != nil {
		t.Fatal(err)
	}
	const clients, keys = 64, 8
	stop := make(chan struct{})
	var issued, answered atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				text := fmt.Sprintf("doc-%d", (c+r)%keys)
				issued.Add(1)
				tags, err := s.Tag(context.Background(), text)
				if err != nil || len(tags) != 1 {
					t.Errorf("client %d: Tag = %v, %v", c, tags, err)
					return
				}
				if want1, want2, want3 := "g1:"+text, "g2:"+text, "g3:"+text; tags[0] != want1 && tags[0] != want2 && tags[0] != want3 {
					t.Errorf("client %d: answer %q from no known generation", c, tags[0])
					return
				}
				answered.Add(1)
			}
		}(c)
	}
	for _, prefix := range []string{"g2:", "g3:"} {
		time.Sleep(5 * time.Millisecond)
		next := []Engine{&fakeEngine{prefix: prefix, delay: time.Millisecond}, &fakeEngine{prefix: prefix, delay: time.Millisecond}}
		if err := s.Swap(next...); err != nil {
			t.Fatal(err)
		}
		// The swap has completed and the cache flushed: the very next
		// answer for any key must come from the new generation.
		tags, err := s.Tag(context.Background(), "probe-"+prefix)
		if err != nil || tags[0] != prefix+"probe-"+prefix {
			t.Fatalf("probe after swap to %q = %v, %v", prefix, tags, err)
		}
	}
	close(stop)
	wg.Wait()
	s.Close()
	st := s.Stats()
	if got := st.Served + st.CacheHits + st.Coalesced; got != issued.Load()+2 { // +2 probes
		t.Errorf("served %d + hits %d + coalesced %d != issued %d: requests dropped", st.Served, st.CacheHits, st.Coalesced, issued.Load()+2)
	}
	if answered.Load() != issued.Load() {
		t.Errorf("answered %d of %d issued", answered.Load(), issued.Load())
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d across swaps", st.Errors)
	}
	if st.Generation != 3 {
		t.Errorf("generation = %d, want 3", st.Generation)
	}
}

// TestSwapAfterClose: a closed server refuses new generations and cleans
// up the engines it was offered.
func TestSwapAfterClose(t *testing.T) {
	s, err := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond}, &fakeEngine{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Swap(&fakeEngine{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Swap after Close = %v, want ErrClosed", err)
	}
}

// TestTagBatchCancelledMidSubmission: cancelling while chunks are being
// submitted returns ctx.Err and leaves nothing undrained — Close must not
// hang on phantom pending work.
func TestTagBatchCancelledMidSubmission(t *testing.T) {
	eng := &fakeEngine{delay: 5 * time.Millisecond}
	s, err := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = fmt.Sprintf("doc-%d", i)
	}
	if _, err := s.TagBatch(ctx, texts); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("TagBatch = %v, want deadline exceeded", err)
	}
	s.Close() // drains whatever was submitted; hangs if accounting leaked
	st := s.Stats()
	if st.Served != st.Requests {
		t.Errorf("drain incomplete after cancel: served %d of %d accepted", st.Served, st.Requests)
	}
}

// TestShardPoolParallelism: with several engines, batches run concurrently
// across shards; every engine still sees strictly serial calls (the fake
// engine's slice append would race otherwise under -race).
func TestShardPoolParallelism(t *testing.T) {
	engines := []*fakeEngine{{delay: time.Millisecond}, {delay: time.Millisecond}, {delay: time.Millisecond}}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond},
		engines[0], engines[1], engines[2])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); err != nil {
				t.Errorf("Tag: %v", err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	if st := s.Stats(); st.Shards != 3 || st.Served != 48 {
		t.Errorf("stats = %+v", st)
	}
	used := 0
	for _, e := range engines {
		if len(e.batchSizes()) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d of 3 shards saw traffic", used)
	}
}
