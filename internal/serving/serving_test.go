package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// errNoAnswer stands in for doctagger.ErrNoAnswer as the wrapped cause of a
// failed row.
var errNoAnswer = errors.New("no answer")

// fakeEngine tags every document "tag:<text>", optionally sleeping per
// batch and failing configured texts the way AutoTagBatch does: nil row +
// first-failure error wrapping the cause.
type fakeEngine struct {
	delay   time.Duration
	failOn  map[string]bool
	mu      sync.Mutex
	batches []int
}

func (f *fakeEngine) AutoTagBatch(texts []string) ([][]string, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	f.mu.Lock()
	f.batches = append(f.batches, len(texts))
	f.mu.Unlock()
	out := make([][]string, len(texts))
	var err error
	for i, t := range texts {
		if f.failOn[t] {
			if err == nil {
				err = fmt.Errorf("engine: document %d: %w", i, errNoAnswer)
			}
			continue
		}
		out[i] = []string{"tag:" + t}
	}
	return out, err
}

func (f *fakeEngine) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batches...)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{MaxBatch: -1},
		{MaxDelay: -time.Second},
		{MaxQueue: -3},
	} {
		if _, err := New(cfg, &fakeEngine{}); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with no engines accepted")
	}
}

// TestBatchingUnderConcurrency is the acceptance check of the dispatcher:
// 64 concurrent clients against a briefly-busy engine must coalesce — mean
// batch size above 1 — while every client still receives exactly its own
// document's answer.
func TestBatchingUnderConcurrency(t *testing.T) {
	eng := &fakeEngine{delay: time.Millisecond}
	s, err := New(Config{MaxBatch: 16, MaxDelay: 5 * time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients, perClient = 64, 4
	var wg sync.WaitGroup
	var mismatches atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				text := fmt.Sprintf("doc-%d-%d", c, r)
				tags, err := s.Tag(context.Background(), text)
				if err != nil || len(tags) != 1 || tags[0] != "tag:"+text {
					mismatches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := mismatches.Load(); n != 0 {
		t.Fatalf("%d requests got wrong or failed answers", n)
	}
	st := s.Stats()
	if st.Requests != clients*perClient || st.Served != clients*perClient {
		t.Errorf("requests %d served %d, want %d", st.Requests, st.Served, clients*perClient)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 (batches: %v)", st.MeanBatchSize, eng.batchSizes())
	}
	if st.MaxBatchSeen > 16 {
		t.Errorf("batch of %d exceeded MaxBatch", st.MaxBatchSeen)
	}
	var histTotal int64
	for _, b := range st.BatchSizeHist {
		histTotal += b.Count
	}
	if histTotal != st.Batches {
		t.Errorf("histogram sums to %d, want %d batches", histTotal, st.Batches)
	}
	if st.Errors != 0 || st.Rejected != 0 {
		t.Errorf("unexpected errors/rejections: %+v", st)
	}
}

// TestSingleRequestFlushesOnDelay: a lone request must not wait for
// MaxBatch company forever.
func TestSingleRequestFlushesOnDelay(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 64, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tags, err := s.Tag(context.Background(), "solo")
	if err != nil || len(tags) != 1 {
		t.Fatalf("Tag = %v, %v", tags, err)
	}
	if sizes := eng.batchSizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Errorf("batch sizes = %v, want [1]", sizes)
	}
	if st := s.Stats(); st.MeanQueueWait <= 0 {
		t.Errorf("queue wait not recorded: %+v", st)
	}
}

// TestPerRequestErrorPropagation: a failed document inside a batch must
// fail only its own request, with the unwrapped cause, while its batch
// mates succeed.
func TestPerRequestErrorPropagation(t *testing.T) {
	eng := &fakeEngine{failOn: map[string]bool{"bad-1": true, "bad-2": true}}
	s, err := New(Config{MaxBatch: 8, MaxDelay: 20 * time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	texts := []string{"ok-1", "bad-1", "ok-2", "bad-2", "ok-3"}
	errs := make([]error, len(texts))
	results := make([][]string, len(texts))
	var wg sync.WaitGroup
	for i, text := range texts {
		wg.Add(1)
		go func(i int, text string) {
			defer wg.Done()
			results[i], errs[i] = s.Tag(context.Background(), text)
		}(i, text)
	}
	wg.Wait()
	for i, text := range texts {
		if text[:2] == "ok" {
			if errs[i] != nil || len(results[i]) != 1 {
				t.Errorf("%s: got %v, %v", text, results[i], errs[i])
			}
			continue
		}
		if !errors.Is(errs[i], errNoAnswer) {
			t.Errorf("%s: err = %v, want errNoAnswer", text, errs[i])
		}
	}
	if st := s.Stats(); st.Errors != 2 {
		t.Errorf("Errors = %d, want 2", st.Errors)
	}
}

// TestCloseDrains: Close must answer everything already accepted, then
// refuse new work.
func TestCloseDrains(t *testing.T) {
	eng := &fakeEngine{delay: 2 * time.Millisecond}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var wg sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); err == nil {
				ok.Add(1)
			}
		}(i)
	}
	// Let most submissions land in the queue, then close underneath them.
	time.Sleep(time.Millisecond)
	s.Close()
	wg.Wait()
	st := s.Stats()
	if st.Served != st.Requests {
		t.Errorf("drain incomplete: served %d of %d accepted", st.Served, st.Requests)
	}
	if got := ok.Load(); got != st.Requests {
		t.Errorf("%d successful answers for %d accepted requests", got, st.Requests)
	}
	if _, err := s.Tag(context.Background(), "late"); err != ErrClosed {
		t.Errorf("Tag after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestFailFastBackpressure: with a tiny queue and a slow engine, fail-fast
// submissions are rejected instead of blocking.
func TestFailFastBackpressure(t *testing.T) {
	eng := &fakeEngine{delay: 5 * time.Millisecond}
	s, err := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, MaxQueue: 1, FailFast: true}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	var rejected atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); errors.Is(err, ErrOverloaded) {
				rejected.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Error("no request was rejected under overload")
	}
	if st := s.Stats(); st.Rejected != rejected.Load() {
		t.Errorf("Rejected = %d, want %d", st.Rejected, rejected.Load())
	}
}

// TestContextCancelAbandonsWait: a cancelled waiter returns promptly; its
// request still drains, so Close completes.
func TestContextCancelAbandonsWait(t *testing.T) {
	eng := &fakeEngine{delay: 20 * time.Millisecond}
	s, err := New(Config{MaxBatch: 2, MaxDelay: time.Millisecond}, eng)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := s.Tag(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Tag = %v, want deadline exceeded", err)
	}
	s.Close()
	if st := s.Stats(); st.Served != 1 {
		t.Errorf("abandoned request not drained: %+v", st)
	}
}

// TestShardPoolParallelism: with several engines, batches run concurrently
// across shards; every engine still sees strictly serial calls (the fake
// engine's slice append would race otherwise under -race).
func TestShardPoolParallelism(t *testing.T) {
	engines := []*fakeEngine{{delay: time.Millisecond}, {delay: time.Millisecond}, {delay: time.Millisecond}}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond},
		engines[0], engines[1], engines[2])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Tag(context.Background(), fmt.Sprintf("d%d", i)); err != nil {
				t.Errorf("Tag: %v", err)
			}
		}(i)
	}
	wg.Wait()
	s.Close()
	if st := s.Stats(); st.Shards != 3 || st.Served != 48 {
		t.Errorf("stats = %+v", st)
	}
	used := 0
	for _, e := range engines {
		if len(e.batchSizes()) > 0 {
			used++
		}
	}
	if used < 2 {
		t.Errorf("only %d of 3 shards saw traffic", used)
	}
}
