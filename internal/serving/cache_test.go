package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheRejectsNegativeSize(t *testing.T) {
	if _, err := New(Config{CacheSize: -1}, &fakeEngine{}); err == nil {
		t.Error("negative CacheSize accepted")
	}
}

// TestCacheHitSkipsEngine: the second identical query must be answered
// from the cache — byte-identical to the first answer — without another
// engine call.
func TestCacheHitSkipsEngine(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 4, MaxDelay: time.Millisecond, CacheSize: 8}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	first, err := s.Tag(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Tag(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("cached answer %v != uncached answer %v", second, first)
	}
	if sizes := eng.batchSizes(); len(sizes) != 1 {
		t.Errorf("engine saw %v batches, want exactly 1 (hit must not re-dispatch)", sizes)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.Requests != 1 || st.Served != 1 {
		t.Errorf("hit leaked into the dispatcher counters: %+v", st)
	}
	if st.CacheEntries != 1 || st.CacheCapacity != 8 {
		t.Errorf("entries/capacity = %d/%d", st.CacheEntries, st.CacheCapacity)
	}
}

// TestCacheHitIsACopy: mutating an answer must not corrupt what later
// callers receive.
func TestCacheHitIsACopy(t *testing.T) {
	s, err := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, CacheSize: 8}, &fakeEngine{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Tag(context.Background(), "doc"); err != nil {
		t.Fatal(err)
	}
	tags, err := s.Tag(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	tags[0] = "vandalized"
	again, err := s.Tag(context.Background(), "doc")
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != "tag:doc" {
		t.Errorf("cache corrupted by caller mutation: %v", again)
	}
}

// TestCacheDoesNotCacheErrors: a failed document must be retried, not
// served a cached failure (or a cached nil masquerading as success).
func TestCacheDoesNotCacheErrors(t *testing.T) {
	eng := &fakeEngine{failOn: map[string]bool{"bad": true}}
	s, err := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, CacheSize: 8}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.Tag(context.Background(), "bad"); err == nil {
			t.Fatalf("attempt %d: error not propagated", i)
		}
	}
	if sizes := eng.batchSizes(); len(sizes) != 2 {
		t.Errorf("engine saw %v batches, want 2 (failures must not cache)", sizes)
	}
	if st := s.Stats(); st.CacheHits != 0 {
		t.Errorf("a failure was served from cache: %+v", st)
	}
}

// TestCacheEviction: a cache bounded below the working set must evict LRU
// entries and count them.
func TestCacheEviction(t *testing.T) {
	s, err := New(Config{MaxBatch: 1, MaxDelay: time.Millisecond, CacheSize: 2}, &fakeEngine{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 6; i++ {
		if _, err := s.Tag(context.Background(), fmt.Sprintf("doc-%d", i%3)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheEvictions == 0 {
		t.Errorf("no evictions with capacity 2 and 3 distinct keys: %+v", st)
	}
	if st.CacheEntries > 2 {
		t.Errorf("cache holds %d entries, capacity 2", st.CacheEntries)
	}
}

// TestCacheConcurrentDeterminism is the cache acceptance test: 64 clients
// hammering a small key set must always receive the engine's answer for
// their own document — hit or miss — while the engine sees far fewer
// documents than were requested. Run with -race.
func TestCacheConcurrentDeterminism(t *testing.T) {
	eng := &fakeEngine{}
	s, err := New(Config{MaxBatch: 8, MaxDelay: time.Millisecond, CacheSize: 64}, eng)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const clients, perClient, keys = 64, 16, 8
	var wg sync.WaitGroup
	var wrong atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				text := fmt.Sprintf("doc-%d", (c+r)%keys)
				tags, err := s.Tag(context.Background(), text)
				if err != nil || len(tags) != 1 || tags[0] != "tag:"+text {
					wrong.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d requests got wrong or failed answers", n)
	}
	st := s.Stats()
	total := int64(clients * perClient)
	if st.CacheHits+st.Served+st.Coalesced != total {
		t.Errorf("hits %d + served %d + coalesced %d != %d issued", st.CacheHits, st.Served, st.Coalesced, total)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits on an 8-key working set")
	}
	var docs int64
	for _, n := range eng.batchSizes() {
		docs += int64(n)
	}
	if docs >= total {
		t.Errorf("engine processed %d docs for %d requests; cache absorbed nothing", docs, total)
	}
}
