package serving

import (
	"container/list"
	"slices"
	"sync"
	"sync/atomic"
)

// resultCache is the request-level answer cache: a sharded, bounded LRU
// keyed on document text, sitting in front of the dispatcher. Caching is
// correct here because queries never feed back into the models — identical
// text yields identical tags within one model generation — and every entry
// is stamped with the generation that produced it, so answers from a
// retired generation can neither be served nor inserted after a Swap.
//
// Sharding keeps the hit path cheap under many concurrent clients: a hit
// takes one shard mutex, not a cache-wide one. Each shard runs its own LRU
// over capacity/shards entries, so the bound is global in aggregate while
// eviction decisions stay local.
type resultCache struct {
	shards   []*cacheShard
	capacity int
	// gen is the model generation entries must match. flush bumps it
	// before clearing, so an insert racing a flush can never resurrect a
	// retired generation's answer (the check happens under the shard
	// lock that the clear also takes).
	gen                     atomic.Int64
	hits, misses, evictions atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	cap     int
}

type cacheEntry struct {
	key  string
	tags []string
}

// cacheShardCount bounds lock contention; small capacities use fewer
// shards so every shard still holds at least one entry.
const cacheShardCount = 16

// maxCachedTextBytes keeps pathological documents out of the cache: every
// entry retains its full text as the key, so without a per-text bound the
// count-bounded cache could pin CacheSize× an arbitrarily large document
// in memory. Oversized texts simply bypass the cache (counted as misses).
const maxCachedTextBytes = 64 << 10

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	n := cacheShardCount
	if capacity < n {
		n = capacity
	}
	c := &resultCache{shards: make([]*cacheShard, n), capacity: capacity}
	c.gen.Store(1)
	// Distribute the capacity exactly: the first capacity%n shards hold
	// one extra entry, so the aggregate bound is capacity, not a
	// per-shard ceiling times n.
	for i := range c.shards {
		per := capacity / n
		if i < capacity%n {
			per++
		}
		c.shards[i] = &cacheShard{
			order:   list.New(),
			entries: make(map[string]*list.Element, per),
			cap:     per,
		}
	}
	return c
}

// shardFor hashes the key with FNV-1a.
func (c *resultCache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// get returns the cached tags for text, if present. The returned slice is
// a copy: callers may mutate their answer without corrupting the cache.
func (c *resultCache) get(text string) ([]string, bool) {
	if len(text) > maxCachedTextBytes {
		c.misses.Add(1)
		return nil, false
	}
	sh := c.shardFor(text)
	sh.mu.Lock()
	e, ok := sh.entries[text]
	if !ok {
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	sh.order.MoveToFront(e)
	tags := slices.Clone(e.Value.(*cacheEntry).tags)
	sh.mu.Unlock()
	c.hits.Add(1)
	return tags, true
}

// add inserts a successful answer produced by model generation gen. Inserts
// stamped with a retired generation are dropped: the generation check runs
// under the shard lock, which flush also takes after bumping gen, so no
// interleaving lets a stale answer outlive its models. The stored slice is
// a copy of tags.
func (c *resultCache) add(text string, tags []string, gen int64) {
	if len(text) > maxCachedTextBytes {
		return
	}
	sh := c.shardFor(text)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c.gen.Load() != gen {
		return
	}
	if e, ok := sh.entries[text]; ok {
		sh.order.MoveToFront(e)
		e.Value.(*cacheEntry).tags = slices.Clone(tags)
		return
	}
	sh.entries[text] = sh.order.PushFront(&cacheEntry{key: text, tags: slices.Clone(tags)})
	if sh.order.Len() > sh.cap {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Add(1)
	}
}

// flush retires every entry and installs gen as the new accepted
// generation. Called by Swap after the new engine pool is live.
func (c *resultCache) flush(gen int64) {
	c.gen.Store(gen)
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.order.Init()
		clear(sh.entries)
		sh.mu.Unlock()
	}
}

// len reports the current number of cached entries.
func (c *resultCache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
