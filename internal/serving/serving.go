// Package serving is the concurrent serving front-end of the system: a
// thread-safe micro-batching dispatcher over a sharded pool of batch
// classification engines, with an optional request-level result cache and
// live engine-pool replacement.
//
// Concurrent callers submit single documents with Server.Tag (or many at
// once with Server.TagBatch); a dispatcher goroutine coalesces them into
// batches — flushing when MaxBatch requests are pending or MaxDelay has
// passed since the first one, whichever comes first — and hands each batch
// to one engine of the shard pool. Every engine is driven by exactly one
// goroutine, so engines themselves need no internal locking (a
// *doctagger.Tagger, which is not safe for concurrent use, plugs in
// directly via AutoTagBatch).
//
// Batching is how the pool absorbs heavy traffic: one AutoTagBatch call
// amortizes the swarm's query fan-out and network drain over many
// documents, so the sustained request rate scales with batch size rather
// than per-document round trips. The queue is bounded, giving natural
// backpressure: submitters block (or fail fast, when configured) instead of
// growing memory without limit. Close drains — every accepted request is
// answered before shutdown completes.
//
// With Config.CacheSize > 0 a sharded bounded LRU keyed on document text
// answers repeated queries without touching the dispatcher at all. Caching
// is sound because queries never feed back into the models: identical text
// means identical tags for as long as one engine generation serves. The
// same soundness argument drives single-flight dedup, which is always on:
// concurrent Tag calls for identical text coalesce onto one in-flight
// engine query (Stats.Coalesced counts the riders).
//
// Swap installs a new engine generation under live traffic: new shard
// goroutines start on a fresh batch channel, the dispatcher switches over
// between batches, the old shards drain their in-flight work and exit, and
// the cache flushes so no answer outlives the models that produced it. No
// accepted request is ever dropped by a Swap.
package serving

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"
)

// Engine is the batch classification back-end a Server shards over —
// implemented by (*doctagger.Tagger).AutoTagBatch. The contract mirrors
// AutoTagBatch: one tag list per input text in input order; rows the engine
// cannot answer are nil, and the returned error wraps the underlying cause
// of the first failed row. Answered rows should be non-nil (an empty answer
// as an empty list): when the batch error is set, a nil row cannot be told
// apart from the failed one and is treated as failed. Engines need not be
// safe for concurrent use; the Server serializes all calls to one engine on
// a single goroutine.
type Engine interface {
	AutoTagBatch(texts []string) ([][]string, error)
}

// Errors returned by Tag, TagBatch and Swap.
var (
	// ErrClosed is returned for requests submitted after Close began.
	ErrClosed = errors.New("serving: server is closed")
	// ErrOverloaded is returned in fail-fast mode when the queue is full.
	ErrOverloaded = errors.New("serving: request queue is full")
	// ErrNoResult is returned when the engine produced no row for a
	// document and reported no cause.
	ErrNoResult = errors.New("serving: engine returned no result")
)

// Config tunes the dispatcher.
type Config struct {
	// MaxBatch flushes a batch when this many requests have coalesced;
	// default 32.
	MaxBatch int
	// MaxDelay flushes a batch this long after its first request was
	// dequeued, even if it is smaller than MaxBatch; default 2ms. The
	// delay is the latency price of batching: under light load a request
	// waits at most MaxDelay for company.
	MaxDelay time.Duration
	// MaxQueue bounds the submission queue; default 8*MaxBatch. A full
	// queue blocks Tag (or rejects, with FailFast) — backpressure instead
	// of unbounded memory.
	MaxQueue int
	// FailFast makes Tag return ErrOverloaded immediately when the queue
	// is full instead of blocking until space frees up.
	FailFast bool
	// CacheSize bounds the request-level result cache (entries across all
	// cache shards); 0 disables caching. Repeated queries for the same
	// text are answered from the cache without entering the dispatcher;
	// the cache flushes whenever Swap installs a new engine generation.
	CacheSize int
}

func (c *Config) defaults() error {
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serving: MaxBatch %d < 1", c.MaxBatch)
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("serving: negative MaxDelay %v", c.MaxDelay)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxBatch
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("serving: MaxQueue %d < 1", c.MaxQueue)
	}
	if c.CacheSize < 0 {
		return fmt.Errorf("serving: negative CacheSize %d", c.CacheSize)
	}
	return nil
}

// BatchBucket is one bin of the batch-size histogram: the count of batches
// whose size was <= Le (and greater than the previous bucket's Le). The
// last bucket has Le 0, meaning unbounded.
type BatchBucket struct {
	Le    int
	Count int64
}

// histogram bucket upper bounds; 0 terminates as +inf.
var bucketBounds = [8]int{1, 2, 4, 8, 16, 32, 64, 0}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Shards is the engine pool size of the current generation.
	Shards int
	// Generation counts engine pools installed so far: 1 at New, +1 per
	// successful Swap.
	Generation int64
	// Requests counts submissions accepted into the queue (cache hits are
	// answered before the queue and counted in CacheHits instead).
	Requests int64
	// Issued is the total number of answer rows handed to callers, however
	// produced: Issued = Served + CacheHits + Coalesced + Deduped. This is
	// the serving accounting identity — clients that count the rows they
	// asked for can check it against any node's snapshot.
	Issued int64
	// Served counts completed requests, failed ones included.
	Served int64
	// Deduped counts TagBatch rows answered by intra-batch deduplication:
	// duplicate texts in one call are computed once and fanned out, so
	// rows issued = Served + CacheHits + Coalesced + Deduped.
	Deduped int64
	// Coalesced counts Tag calls answered by single-flight dedup: a miss
	// for a text already in flight waits for that query's result instead
	// of issuing its own. A follower whose context cancels mid-wait stays
	// counted (mirroring how a cancelled-after-submit request stays in
	// Served), so the issued = Served + CacheHits + Coalesced + Deduped
	// identity is exact in the absence of cancellations.
	Coalesced int64
	// Errors counts requests that completed with an error.
	Errors int64
	// Rejected counts fail-fast rejections (never enqueued).
	Rejected int64
	// Batches counts engine invocations; BatchedDocs sums their sizes, so
	// MeanBatchSize = BatchedDocs / Batches.
	Batches       int64
	BatchedDocs   int64
	MeanBatchSize float64
	// MaxBatchSeen is the largest batch dispatched so far.
	MaxBatchSeen int
	// BatchSizeHist bins batch sizes; see BatchBucket.
	BatchSizeHist []BatchBucket
	// QueueWait aggregates the time requests spent between submission and
	// the start of their batch's engine call.
	QueueWaitTotal time.Duration
	QueueWaitMax   time.Duration
	MeanQueueWait  time.Duration
	// Cache counters; all zero when CacheSize is 0. CacheEntries is the
	// current population, CacheCapacity the configured bound.
	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheEntries   int
	CacheCapacity  int
}

type result struct {
	tags []string
	err  error
	gen  int64 // engine generation that produced the answer
}

// flight is one in-flight engine query that concurrent identical misses
// coalesce onto (single-flight dedup): the first miss for a text becomes
// the leader and travels through the dispatcher as usual; later Tag calls
// for the same text while the leader is outstanding just wait for its
// result. tags/err/gen are written once, before done closes.
type flight struct {
	done chan struct{}
	tags []string
	err  error
	gen  int64
}

type request struct {
	text     string
	enqueued time.Time
	ch       chan result // buffered(1): delivery never blocks a shard
}

// generation is one engine pool: a batch channel owned (as sender) solely
// by the dispatcher, and one goroutine per engine reading it. Swapping
// generations closes the old channel from the dispatcher — the only place
// that can do so without racing a send.
type generation struct {
	id      int64
	batches chan []*request
	workers sync.WaitGroup
}

// swapReq asks the dispatcher to retire its current generation in favor of
// gen; the dispatcher answers with the retired generation on reply.
type swapReq struct {
	gen   *generation
	reply chan *generation
}

// Server is the micro-batching front-end. All methods are safe for
// concurrent use.
type Server struct {
	cfg        Config
	queue      chan *request
	prebatched chan []*request // pre-formed TagBatch chunks, dispatcher-forwarded
	swapc      chan swapReq
	cache      *resultCache // nil when CacheSize is 0

	// flightMu guards flights, the single-flight table of in-flight Tag
	// misses by text. Entries are removed when their leader's result
	// arrives; Swap discards the table (leaders still complete their
	// waiters) so a post-swap miss always starts a fresh flight on the
	// new generation.
	flightMu sync.Mutex
	flights  map[string]*flight

	// swapMu serializes Swap calls and excludes them against Close's
	// closed-flag flip: a Swap that passes its closed-check is guaranteed
	// a live dispatcher for the whole installation, so Swap can never
	// "succeed" on a server that has already begun shutting down.
	swapMu sync.Mutex

	// closing mirrors closed for lock-free reads on the cache-hit fast
	// path (which takes no other server-wide lock).
	closing    atomic.Bool
	mu         sync.Mutex // guards closed, shards, generation and the counters
	closed     bool
	shards     int
	generation int64
	ctr        counters
	pending    sync.WaitGroup // accepted-but-unanswered requests
	workers    sync.WaitGroup // dispatcher (which itself awaits its generation)
	done       chan struct{}  // closed when shutdown completes
}

type counters struct {
	requests, served, errors, rejected int64
	deduped, coalesced                 int64
	batches, batchedDocs               int64
	maxBatch                           int
	hist                               [len(bucketBounds)]int64
	waitTotal, waitMax                 time.Duration
}

// New starts a Server over the given engine pool, one goroutine per engine
// plus the dispatcher. The engines must be distinct instances; when callers
// need shard answers to be interchangeable (they usually do), the engines
// must also be identically trained.
func New(cfg Config, engines ...Engine) (*Server, error) {
	if len(engines) == 0 {
		return nil, errors.New("serving: need at least one engine")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		queue:      make(chan *request, cfg.MaxQueue),
		prebatched: make(chan []*request),
		swapc:      make(chan swapReq),
		cache:      newResultCache(cfg.CacheSize),
		flights:    make(map[string]*flight),
		shards:     len(engines),
		generation: 1,
		done:       make(chan struct{}),
	}
	g := s.newGeneration(1, engines)
	s.workers.Add(1)
	go s.dispatch(g)
	return s, nil
}

// newGeneration starts one shard goroutine per engine on a fresh batch
// channel and returns the generation; the caller hands it to the
// dispatcher (at New or through swapc).
func (s *Server) newGeneration(id int64, engines []Engine) *generation {
	g := &generation{id: id, batches: make(chan []*request)}
	g.workers.Add(len(engines))
	for _, e := range engines {
		go s.serve(g, e)
	}
	return g
}

// errFlightAborted is the internal sentinel a flight carries when its
// leader gave up before submitting the query (context cancelled during a
// blocked enqueue); waiting followers re-enter Tag and race to lead a
// fresh flight.
var errFlightAborted = errors.New("serving: flight leader aborted before submitting")

// Tag submits one document and blocks until the swarm answers, the context
// is cancelled, or — in fail-fast mode — the queue is full. An
// already-cancelled context never enqueues work, in either mode. A context
// cancelled after submission abandons the wait but not the work: the
// request still flows through its batch (counted in Served) and its
// result still completes the flight below (and the cache), even though
// this caller no longer reads it.
//
// Concurrent Tag calls for identical text are single-flighted: the first
// miss (the leader) issues the swarm query; identical misses arriving
// while it is outstanding wait for the leader's result instead of issuing
// their own, and are counted in Stats.Coalesced. Dedup shares the cache's
// soundness argument — within one engine generation, identical text means
// identical tags — and like the cache it is generation-pure: Swap discards
// the in-flight table, so a miss after a swap always queries the new
// models. Leaders share server-wide failures (ErrClosed, ErrOverloaded,
// engine errors) with their followers; a leader cancelled before it could
// submit hands the flight back, and its followers transparently retry.
func (s *Server) Tag(ctx context.Context, text string) ([]string, error) {
	for {
		tags, err := s.tagOnce(ctx, text)
		if err == errFlightAborted {
			continue
		}
		return tags, err
	}
}

// tagOnce is one attempt of Tag: answer from cache, join an in-flight
// identical query, or lead a new one. It returns errFlightAborted only
// when a joined flight's leader aborted before submitting, in which case
// Tag retries.
func (s *Server) tagOnce(ctx context.Context, text string) ([]string, error) {
	// A pre-cancelled context must not win the submission select by
	// chance: refuse before touching the queue.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Cache-hit fast path: no server-wide lock, no drain-set membership —
	// a hit answers immediately and owes Close nothing. The lock-free
	// closing check keeps the ErrClosed contract; the miss path re-checks
	// under mu before entering the drain set.
	if s.closing.Load() {
		return nil, ErrClosed
	}
	if s.cache != nil {
		if tags, ok := s.cache.get(text); ok {
			return tags, nil
		}
	}
	// Single-flight: join an identical in-flight miss, or register as the
	// leader. Registration happens before enqueueing, so once a leader's
	// request is visible in the counters every later identical miss is
	// guaranteed to coalesce.
	s.flightMu.Lock()
	if f := s.flights[text]; f != nil {
		s.flightMu.Unlock()
		s.count(func(c *counters) { c.coalesced++ })
		select {
		case <-f.done:
			if f.err == errFlightAborted {
				// The leader never submitted; this join served nothing.
				// Uncount it — the retry will count once wherever it
				// lands (as a fresh leader in Requests, or as a
				// follower of a live flight).
				s.count(func(c *counters) { c.coalesced-- })
				return nil, errFlightAborted
			}
			if f.err != nil {
				return nil, f.err
			}
			// Followers get their own copy so no caller can mutate
			// another waiter's slice.
			return slices.Clone(f.tags), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[text] = f
	s.flightMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.finishFlight(text, f, result{err: ErrClosed})
		return nil, ErrClosed
	}
	// Registering under the lock pairs with Close: once closed is set, no
	// new request can join the drain set.
	s.pending.Add(1)
	s.mu.Unlock()
	req := &request{text: text, enqueued: time.Now(), ch: make(chan result, 1)}
	if s.cfg.FailFast {
		select {
		case s.queue <- req:
		case <-ctx.Done():
			s.pending.Done()
			s.abortFlight(text, f)
			return nil, ctx.Err()
		default:
			s.pending.Done()
			s.count(func(c *counters) { c.rejected++ })
			s.finishFlight(text, f, result{err: ErrOverloaded})
			return nil, ErrOverloaded
		}
	} else {
		select {
		case s.queue <- req:
		case <-ctx.Done():
			s.pending.Done()
			s.abortFlight(text, f)
			return nil, ctx.Err()
		}
	}
	s.count(func(c *counters) { c.requests++ })
	select {
	case r := <-req.ch:
		s.settleFlight(text, f, r)
		return r.tags, r.err
	case <-ctx.Done():
		// The accepted work still completes; hand flight (and cache)
		// settlement to a helper so followers are not stranded.
		go func() {
			s.settleFlight(text, f, <-req.ch)
		}()
		return nil, ctx.Err()
	}
}

// settleFlight records a leader's engine result: successful answers enter
// the cache first (so a new request races toward a hit, not a duplicate
// flight), then the flight completes and leaves the table.
func (s *Server) settleFlight(text string, f *flight, r result) {
	if r.err == nil && s.cache != nil {
		s.cache.add(text, r.tags, r.gen)
	}
	s.finishFlight(text, f, r)
}

// finishFlight publishes r to f's waiters and removes f from the flight
// table (unless a Swap already replaced the table). The flight keeps its
// own copy of the tags: the leader's caller receives (and may mutate) the
// engine's slice, so followers must never alias it.
func (s *Server) finishFlight(text string, f *flight, r result) {
	f.tags, f.err, f.gen = slices.Clone(r.tags), r.err, r.gen
	s.flightMu.Lock()
	if s.flights[text] == f {
		delete(s.flights, text)
	}
	s.flightMu.Unlock()
	close(f.done)
}

// abortFlight withdraws a flight whose leader could not submit its query;
// followers retry against a fresh flight.
func (s *Server) abortFlight(text string, f *flight) {
	s.finishFlight(text, f, result{err: errFlightAborted})
}

// TagBatch submits many documents at once. Unlike len(texts) separate Tag
// calls, the documents skip per-request coalescing and enter the
// dispatcher as pre-formed batches (chunked at MaxBatch), so a bulk caller
// pays no MaxDelay and no queue contention. Answers are identical to
// per-document Tag calls: one tag list per input in input order, rows the
// swarm cannot answer nil, with the first failure reported as the error
// alongside the remaining results (mirroring AutoTagBatch). Documents with
// cached answers are served from the cache, duplicate texts are computed
// once and fanned out to every duplicate row; only distinct misses reach
// the engines. Inside an engine shard each chunk streams one document at
// a time through the shard's reused scratch (see doctagger.AutoTagBatch
// and realnet.Ensemble.AutoTagBatch), so a chunk's intermediate state is
// O(1) regardless of its size.
//
// Submission blocks until the dispatcher accepts every chunk or ctx is
// cancelled; TagBatch does not fail fast. As with Tag, cancelling after
// submission abandons the wait, not the accepted work.
func (s *Server) TagBatch(ctx context.Context, texts []string) ([][]string, error) {
	if len(texts) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.closing.Load() {
		return nil, ErrClosed
	}
	out := make([][]string, len(texts))
	errs := make([]error, len(texts))
	// Resolve cache hits first; only the misses need to join the drain
	// set and travel through the dispatcher. Duplicate texts collapse to
	// one request each — identical text means identical tags within a
	// generation, so one computed answer fans out to every duplicate row.
	var misses []*request
	missIdx := make([][]int, 0, len(texts)) // output rows per miss
	byText := make(map[string]int, len(texts))
	var deduped int64
	now := time.Now()
	for i, text := range texts {
		if j, ok := byText[text]; ok {
			missIdx[j] = append(missIdx[j], i)
			deduped++
			continue
		}
		if s.cache != nil {
			if tags, ok := s.cache.get(text); ok {
				out[i] = tags
				continue
			}
		}
		byText[text] = len(misses)
		misses = append(misses, &request{text: text, enqueued: now, ch: make(chan result, 1)})
		missIdx = append(missIdx, []int{i})
	}
	if len(misses) == 0 {
		return out, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.pending.Add(len(misses))
	s.mu.Unlock()
	submitted := 0
	for start := 0; start < len(misses); start += s.cfg.MaxBatch {
		end := min(start+s.cfg.MaxBatch, len(misses))
		chunk := misses[start:end:end]
		select {
		case s.prebatched <- chunk:
			submitted = end
			s.count(func(c *counters) { c.requests += int64(len(chunk)) })
		case <-ctx.Done():
			// Unsubmitted requests leave the drain set; submitted ones
			// are abandoned but still flow through their batches.
			for range misses[submitted:] {
				s.pending.Done()
			}
			return nil, ctx.Err()
		}
	}
	// Count fan-out rows only once every chunk is admitted, so the
	// served + hits + deduped accounting never includes rows from a call
	// that was cancelled or refused during submission.
	if deduped > 0 {
		s.count(func(c *counters) { c.deduped += deduped })
	}
	for j, r := range misses {
		select {
		case res := <-r.ch:
			for k, i := range missIdx[j] {
				if res.err != nil {
					errs[i] = res.err
					continue
				}
				if k == 0 {
					out[i] = res.tags
				} else {
					// Duplicate rows get their own copy, matching the
					// distinct slices per-row engine calls would return.
					out[i] = slices.Clone(res.tags)
				}
			}
			if res.err == nil && s.cache != nil {
				s.cache.add(r.text, res.tags, res.gen)
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	var firstErr error
	for i, e := range errs {
		if e != nil {
			firstErr = fmt.Errorf("serving: document %d: %w", i, e)
			break
		}
	}
	return out, firstErr
}

// Swap atomically installs a new engine generation under live traffic: the
// new shards start first, the dispatcher switches to them between batches,
// the old shards drain their in-flight batches and exit, and the result
// cache flushes so no cached answer outlives the models that produced it.
// No accepted request is dropped — work queued before the swap is simply
// served by whichever generation its batch dispatches to. Swap returns
// after the old generation has fully drained, so its engines are safe to
// reuse (e.g. to refine offline and swap back in later).
//
// The new engines must answer interchangeably with each other; whether
// they must also match the retired generation is the caller's consistency
// contract, not the dispatcher's.
func (s *Server) Swap(engines ...Engine) error {
	if len(engines) == 0 {
		return errors.New("serving: Swap needs at least one engine")
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	id := s.generation + 1
	s.mu.Unlock()
	g := s.newGeneration(id, engines)
	sw := swapReq{gen: g, reply: make(chan *generation, 1)}
	//dmtvet:allow lockdiscipline swapMu exists to serialize swaps; blocking while holding it is its job, and only Swap/Close contend
	select {
	case s.swapc <- sw:
	case <-s.done:
		// Defensive only: holding swapMu, Close cannot flip closed under
		// us, so a Swap that passed the check above always finds the
		// dispatcher alive. Kept so a future Close refactor degrades to
		// ErrClosed instead of a deadlock.
		close(g.batches)
		//dmtvet:allow lockdiscipline defensive drain of the never-started generation; nothing else can hold swapMu once done is closed
		g.workers.Wait()
		return ErrClosed
	}
	//dmtvet:allow lockdiscipline the dispatcher always replies after taking sw from swapc; swapMu serializes swaps by design
	old := <-sw.reply
	// Flush as soon as the dispatcher has switched, not after the old
	// shards drain: from here on new-generation answers are cacheable,
	// while any straggling old-generation result is rejected by its
	// generation stamp — so a slow draining batch cannot stall or poison
	// the cache.
	if s.cache != nil {
		s.cache.flush(id)
	}
	// Discard the single-flight table for the same reason: a miss from
	// here on must query the new generation, not piggyback on an
	// old-generation leader. Outstanding leaders still complete their
	// already-joined waiters (who submitted before the swap finished).
	s.flightMu.Lock()
	s.flights = make(map[string]*flight)
	s.flightMu.Unlock()
	//dmtvet:allow lockdiscipline Swap's contract is to return only after the old generation drains; swapMu intentionally serializes that wait
	old.workers.Wait() // old shards have drained and exited
	s.mu.Lock()
	s.generation = id
	s.shards = len(engines)
	s.mu.Unlock()
	return nil
}

// dispatch coalesces queued requests into batches: a batch opens with the
// first request pulled from the queue and flushes at MaxBatch requests or
// MaxDelay after opening, whichever comes first. Pre-formed TagBatch
// chunks are forwarded as-is, and swap requests switch cur between
// batches. The dispatcher is the sole sender on every generation's batch
// channel, which is what makes closing one on swap or shutdown safe.
func (s *Server) dispatch(cur *generation) {
	defer func() {
		close(cur.batches)
		cur.workers.Wait()
		s.workers.Done()
	}()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case first, ok := <-s.queue:
			if !ok {
				return
			}
			batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
			timer.Reset(s.cfg.MaxDelay)
			open := true
		collect:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r, ok := <-s.queue:
					if !ok {
						open = false
						break collect
					}
					batch = append(batch, r)
				case <-timer.C:
					break collect
				}
			}
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			cur.batches <- batch
			if !open {
				return
			}
		case chunk := <-s.prebatched:
			cur.batches <- chunk
		case sw := <-s.swapc:
			close(cur.batches)
			old := cur
			cur = sw.gen
			sw.reply <- old
		}
	}
}

// serve drives one engine of generation g: it owns every call into e, so e
// sees strictly serial use. It exits when g's batch channel closes (swap
// or shutdown), after finishing any in-flight batch.
func (s *Server) serve(g *generation, e Engine) {
	defer g.workers.Done()
	for batch := range g.batches {
		start := time.Now()
		texts := make([]string, len(batch))
		for i, r := range batch {
			texts[i] = r.text
		}
		out, err := e.AutoTagBatch(texts)
		// The batch error wraps the cause of the first failed row
		// (e.g. "document 3: no answer"); unwrap it so per-request errors
		// don't carry another request's batch-relative index.
		cause := err
		if err != nil {
			if u := errors.Unwrap(err); u != nil {
				cause = u
			}
		}
		var failed int64
		for i, r := range batch {
			res := result{gen: g.id}
			switch {
			case i < len(out) && out[i] != nil:
				res.tags = out[i]
			case err == nil && i < len(out):
				// A nil row without an error is a legal empty answer;
				// normalize it to an empty non-nil list so that a nil
				// answer always means failure (TagBatch callers rely on
				// the distinction to retry exactly the failed rows).
				res.tags = []string{}
			case err != nil:
				res.err = cause
			default:
				res.err = ErrNoResult
			}
			if res.err != nil {
				failed++
			}
			r.ch <- res
			s.pending.Done()
		}
		var waitTotal, waitMax time.Duration
		for _, r := range batch {
			w := start.Sub(r.enqueued)
			waitTotal += w
			if w > waitMax {
				waitMax = w
			}
		}
		n := len(batch)
		s.count(func(c *counters) {
			c.served += int64(n)
			c.errors += failed
			c.batches++
			c.batchedDocs += int64(n)
			if n > c.maxBatch {
				c.maxBatch = n
			}
			c.hist[bucketFor(n)]++
			c.waitTotal += waitTotal
			if waitMax > c.waitMax {
				c.waitMax = waitMax
			}
		})
	}
}

func bucketFor(n int) int {
	for i, le := range bucketBounds {
		if le == 0 || n <= le {
			return i
		}
	}
	return len(bucketBounds) - 1
}

func (s *Server) count(f func(*counters)) {
	s.mu.Lock()
	f(&s.ctr)
	s.mu.Unlock()
}

// Stats snapshots the counters. Safe to call at any time, including after
// Close.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	c := s.ctr
	shards := s.shards
	gen := s.generation
	s.mu.Unlock()
	st := Stats{
		Shards:         shards,
		Generation:     gen,
		Requests:       c.requests,
		Served:         c.served,
		Deduped:        c.deduped,
		Coalesced:      c.coalesced,
		Errors:         c.errors,
		Rejected:       c.rejected,
		Batches:        c.batches,
		BatchedDocs:    c.batchedDocs,
		MaxBatchSeen:   c.maxBatch,
		QueueWaitTotal: c.waitTotal,
		QueueWaitMax:   c.waitMax,
	}
	if c.batches > 0 {
		st.MeanBatchSize = float64(c.batchedDocs) / float64(c.batches)
	}
	if c.served > 0 {
		st.MeanQueueWait = c.waitTotal / time.Duration(c.served)
	}
	st.BatchSizeHist = make([]BatchBucket, len(bucketBounds))
	for i, le := range bucketBounds {
		st.BatchSizeHist[i] = BatchBucket{Le: le, Count: c.hist[i]}
	}
	if s.cache != nil {
		st.CacheHits = s.cache.hits.Load()
		st.CacheMisses = s.cache.misses.Load()
		st.CacheEvictions = s.cache.evictions.Load()
		st.CacheEntries = s.cache.len()
		st.CacheCapacity = s.cache.capacity
	}
	st.Issued = st.Served + st.CacheHits + st.Coalesced + st.Deduped
	return st
}

// Close drains and shuts down: new submissions fail with ErrClosed, every
// already-accepted request is answered, then the dispatcher and shard
// goroutines exit. Close blocks until the drain completes and is safe to
// call more than once (later calls wait for the first to finish).
func (s *Server) Close() {
	// Taking swapMu excludes an in-flight Swap: either the swap fully
	// installs before we flip closed (and we drain through the new
	// generation), or it starts after and fails its closed-check — Swap
	// can never report success on a server that has begun shutting down.
	s.swapMu.Lock()
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	s.closing.Store(true)
	s.swapMu.Unlock()
	if already {
		<-s.done
		return
	}
	// Every request ever admitted past the closed check is registered in
	// pending, and the dispatcher is still consuming — both the queue and
	// pre-formed chunks — so this terminates.
	s.pending.Wait()
	close(s.queue)
	s.workers.Wait()
	close(s.done)
}
