// Package serving is the concurrent serving front-end of the system: a
// thread-safe micro-batching dispatcher over a sharded pool of batch
// classification engines.
//
// Concurrent callers submit single documents with Server.Tag; a dispatcher
// goroutine coalesces them into batches — flushing when MaxBatch requests
// are pending or MaxDelay has passed since the first one, whichever comes
// first — and hands each batch to one engine of the shard pool. Every
// engine is driven by exactly one goroutine, so engines themselves need no
// internal locking (a *doctagger.Tagger, which is not safe for concurrent
// use, plugs in directly via AutoTagBatch).
//
// Batching is how the pool absorbs heavy traffic: one AutoTagBatch call
// amortizes the swarm's query fan-out and network drain over many
// documents, so the sustained request rate scales with batch size rather
// than per-document round trips. The queue is bounded, giving natural
// backpressure: submitters block (or fail fast, when configured) instead of
// growing memory without limit. Close drains — every accepted request is
// answered before shutdown completes.
package serving

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Engine is the batch classification back-end a Server shards over —
// implemented by (*doctagger.Tagger).AutoTagBatch. The contract mirrors
// AutoTagBatch: one tag list per input text in input order; rows the engine
// cannot answer are nil, and the returned error wraps the underlying cause
// of the first failed row. Engines need not be safe for concurrent use; the
// Server serializes all calls to one engine on a single goroutine.
type Engine interface {
	AutoTagBatch(texts []string) ([][]string, error)
}

// Errors returned by Tag.
var (
	// ErrClosed is returned for requests submitted after Close began.
	ErrClosed = errors.New("serving: server is closed")
	// ErrOverloaded is returned in fail-fast mode when the queue is full.
	ErrOverloaded = errors.New("serving: request queue is full")
	// ErrNoResult is returned when the engine produced no row for a
	// document and reported no cause.
	ErrNoResult = errors.New("serving: engine returned no result")
)

// Config tunes the dispatcher.
type Config struct {
	// MaxBatch flushes a batch when this many requests have coalesced;
	// default 32.
	MaxBatch int
	// MaxDelay flushes a batch this long after its first request was
	// dequeued, even if it is smaller than MaxBatch; default 2ms. The
	// delay is the latency price of batching: under light load a request
	// waits at most MaxDelay for company.
	MaxDelay time.Duration
	// MaxQueue bounds the submission queue; default 8*MaxBatch. A full
	// queue blocks Tag (or rejects, with FailFast) — backpressure instead
	// of unbounded memory.
	MaxQueue int
	// FailFast makes Tag return ErrOverloaded immediately when the queue
	// is full instead of blocking until space frees up.
	FailFast bool
}

func (c *Config) defaults() error {
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("serving: MaxBatch %d < 1", c.MaxBatch)
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("serving: negative MaxDelay %v", c.MaxDelay)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 8 * c.MaxBatch
	}
	if c.MaxQueue < 1 {
		return fmt.Errorf("serving: MaxQueue %d < 1", c.MaxQueue)
	}
	return nil
}

// BatchBucket is one bin of the batch-size histogram: the count of batches
// whose size was <= Le (and greater than the previous bucket's Le). The
// last bucket has Le 0, meaning unbounded.
type BatchBucket struct {
	Le    int
	Count int64
}

// histogram bucket upper bounds; 0 terminates as +inf.
var bucketBounds = [8]int{1, 2, 4, 8, 16, 32, 64, 0}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	// Shards is the engine pool size.
	Shards int
	// Requests counts submissions accepted into the queue.
	Requests int64
	// Served counts completed requests, failed ones included.
	Served int64
	// Errors counts requests that completed with an error.
	Errors int64
	// Rejected counts fail-fast rejections (never enqueued).
	Rejected int64
	// Batches counts engine invocations; BatchedDocs sums their sizes, so
	// MeanBatchSize = BatchedDocs / Batches.
	Batches       int64
	BatchedDocs   int64
	MeanBatchSize float64
	// MaxBatchSeen is the largest batch dispatched so far.
	MaxBatchSeen int
	// BatchSizeHist bins batch sizes; see BatchBucket.
	BatchSizeHist []BatchBucket
	// QueueWait aggregates the time requests spent between submission and
	// the start of their batch's engine call.
	QueueWaitTotal time.Duration
	QueueWaitMax   time.Duration
	MeanQueueWait  time.Duration
}

type result struct {
	tags []string
	err  error
}

type request struct {
	text     string
	enqueued time.Time
	ch       chan result // buffered(1): delivery never blocks a shard
}

// Server is the micro-batching front-end. All methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	shards  int
	queue   chan *request
	batches chan []*request

	mu      sync.Mutex // guards closed and the counters below
	closed  bool
	ctr     counters
	pending sync.WaitGroup // accepted-but-unanswered requests
	workers sync.WaitGroup // dispatcher + shard goroutines
	done    chan struct{}  // closed when shutdown completes
}

type counters struct {
	requests, served, errors, rejected int64
	batches, batchedDocs               int64
	maxBatch                           int
	hist                               [len(bucketBounds)]int64
	waitTotal, waitMax                 time.Duration
}

// New starts a Server over the given engine pool, one goroutine per engine
// plus the dispatcher. The engines must be distinct instances; when callers
// need shard answers to be interchangeable (they usually do), the engines
// must also be identically trained.
func New(cfg Config, engines ...Engine) (*Server, error) {
	if len(engines) == 0 {
		return nil, errors.New("serving: need at least one engine")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		shards:  len(engines),
		queue:   make(chan *request, cfg.MaxQueue),
		batches: make(chan []*request),
		done:    make(chan struct{}),
	}
	s.workers.Add(1 + len(engines))
	go s.dispatch()
	for _, e := range engines {
		go s.serve(e)
	}
	return s, nil
}

// Tag submits one document and blocks until the swarm answers, the context
// is cancelled, or — in fail-fast mode — the queue is full. A context
// cancelled after submission abandons the wait but not the work: the
// request still flows through its batch (counted in Served), its result
// discarded.
func (s *Server) Tag(ctx context.Context, text string) ([]string, error) {
	req := &request{text: text, enqueued: time.Now(), ch: make(chan result, 1)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	// Registering under the lock pairs with Close: once closed is set, no
	// new request can join the drain set.
	s.pending.Add(1)
	s.mu.Unlock()
	if s.cfg.FailFast {
		select {
		case s.queue <- req:
		default:
			s.pending.Done()
			s.count(func(c *counters) { c.rejected++ })
			return nil, ErrOverloaded
		}
	} else {
		select {
		case s.queue <- req:
		case <-ctx.Done():
			s.pending.Done()
			return nil, ctx.Err()
		}
	}
	s.count(func(c *counters) { c.requests++ })
	select {
	case r := <-req.ch:
		return r.tags, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dispatch coalesces queued requests into batches: a batch opens with the
// first request pulled from the queue and flushes at MaxBatch requests or
// MaxDelay after opening, whichever comes first.
func (s *Server) dispatch() {
	defer s.workers.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
		timer.Reset(s.cfg.MaxDelay)
		open := true
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.queue:
				if !ok {
					open = false
					break collect
				}
				batch = append(batch, r)
			case <-timer.C:
				break collect
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		s.batches <- batch
		if !open {
			return
		}
	}
}

// serve drives one engine: it owns every call into e, so e sees strictly
// serial use.
func (s *Server) serve(e Engine) {
	defer s.workers.Done()
	for batch := range s.batches {
		start := time.Now()
		texts := make([]string, len(batch))
		for i, r := range batch {
			texts[i] = r.text
		}
		out, err := e.AutoTagBatch(texts)
		// The batch error wraps the cause of the first failed row
		// (e.g. "document 3: no answer"); unwrap it so per-request errors
		// don't carry another request's batch-relative index.
		cause := err
		if err != nil {
			if u := errors.Unwrap(err); u != nil {
				cause = u
			}
		}
		var failed int64
		for i, r := range batch {
			var res result
			switch {
			case i < len(out) && out[i] != nil:
				res.tags = out[i]
			case err == nil && i < len(out):
				// A nil row without an error is a legal empty answer.
			case err != nil:
				res.err = cause
			default:
				res.err = ErrNoResult
			}
			if res.err != nil {
				failed++
			}
			r.ch <- res
			s.pending.Done()
		}
		var waitTotal, waitMax time.Duration
		for _, r := range batch {
			w := start.Sub(r.enqueued)
			waitTotal += w
			if w > waitMax {
				waitMax = w
			}
		}
		n := len(batch)
		s.count(func(c *counters) {
			c.served += int64(n)
			c.errors += failed
			c.batches++
			c.batchedDocs += int64(n)
			if n > c.maxBatch {
				c.maxBatch = n
			}
			c.hist[bucketFor(n)]++
			c.waitTotal += waitTotal
			if waitMax > c.waitMax {
				c.waitMax = waitMax
			}
		})
	}
}

func bucketFor(n int) int {
	for i, le := range bucketBounds {
		if le == 0 || n <= le {
			return i
		}
	}
	return len(bucketBounds) - 1
}

func (s *Server) count(f func(*counters)) {
	s.mu.Lock()
	f(&s.ctr)
	s.mu.Unlock()
}

// Stats snapshots the counters. Safe to call at any time, including after
// Close.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	c := s.ctr
	s.mu.Unlock()
	st := Stats{
		Shards:         s.shards,
		Requests:       c.requests,
		Served:         c.served,
		Errors:         c.errors,
		Rejected:       c.rejected,
		Batches:        c.batches,
		BatchedDocs:    c.batchedDocs,
		MaxBatchSeen:   c.maxBatch,
		QueueWaitTotal: c.waitTotal,
		QueueWaitMax:   c.waitMax,
	}
	if c.batches > 0 {
		st.MeanBatchSize = float64(c.batchedDocs) / float64(c.batches)
	}
	if c.served > 0 {
		st.MeanQueueWait = c.waitTotal / time.Duration(c.served)
	}
	st.BatchSizeHist = make([]BatchBucket, len(bucketBounds))
	for i, le := range bucketBounds {
		st.BatchSizeHist[i] = BatchBucket{Le: le, Count: c.hist[i]}
	}
	return st
}

// Close drains and shuts down: new submissions fail with ErrClosed, every
// already-accepted request is answered, then the dispatcher and shard
// goroutines exit. Close blocks until the drain completes and is safe to
// call more than once (later calls wait for the first to finish).
func (s *Server) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		<-s.done
		return
	}
	// Every request ever admitted past the closed check is registered in
	// pending, and the dispatcher is still consuming, so this terminates.
	s.pending.Wait()
	close(s.queue)
	s.workers.Wait()
	close(s.done)
}
