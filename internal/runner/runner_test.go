package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 0} {
		got, err := Map(100, parallel, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: got[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 8, func(i int) (int, error) { t.Fatal("job ran"); return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("job 3 failed")
	for _, parallel := range []int{1, 8} {
		_, err := Map(10, parallel, func(i int) (int, error) {
			if i == 7 {
				return 0, errors.New("job 7 failed")
			}
			if i == 3 {
				return 0, wantErr
			}
			return i, nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("parallel=%d: err = %v, want lowest-index error %v", parallel, err, wantErr)
		}
	}
}

func TestMapRunsEveryJobPastFailures(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		var ran atomic.Int64
		_, err := Map(50, parallel, func(i int) (int, error) {
			ran.Add(1)
			if i%10 == 0 {
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
		if got := ran.Load(); got != 50 {
			t.Fatalf("parallel=%d: ran %d jobs, want all 50 (worker count must not change side effects)", parallel, got)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 0, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 || Workers(1) != 1 {
		t.Fatal("explicit worker counts must be honored")
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestDeriveSeedProperties(t *testing.T) {
	a := DeriveSeed(42, "E1", "cempar", "8")
	if a != DeriveSeed(42, "E1", "cempar", "8") {
		t.Fatal("DeriveSeed must be a pure function")
	}
	if a <= 0 {
		t.Fatalf("seed %d not positive", a)
	}
	seen := map[int64]string{a: "base"}
	for _, d := range []struct {
		name string
		seed int64
	}{
		{"different base", DeriveSeed(43, "E1", "cempar", "8")},
		{"different coord", DeriveSeed(42, "E1", "cempar", "16")},
		{"fewer coords", DeriveSeed(42, "E1", "cempar")},
		{"shifted boundary", DeriveSeed(42, "E1c", "empar", "8")},
	} {
		if prev, dup := seen[d.seed]; dup {
			t.Fatalf("%s collides with %s (seed %d)", d.name, prev, d.seed)
		}
		seen[d.seed] = d.name
	}
}
