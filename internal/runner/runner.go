// Package runner is the deterministic parallel execution subsystem of the
// reproduction: it fans independent jobs — experiment cells, per-peer SVM
// training, batch preprocessing — out over a bounded worker pool and hands
// the results back in submission order, so parallel execution is
// byte-identical to a serial run.
//
// The determinism contract has three legs:
//
//  1. Jobs must be independent: a job may not read state another job
//     writes. Experiment cells satisfy this by construction (each builds
//     its own simulated network from its own seed); per-peer training
//     satisfies it because every peer trains only on its own shard.
//  2. Results are collected positionally. Workers race, but the caller
//     observes results only through the index-ordered slice Map returns.
//  3. Randomness is derived, never shared: a job that needs a seed gets it
//     from DeriveSeed(base, coordinates...), a pure function of the job's
//     identity, so neither scheduling order nor worker count can leak into
//     any job's random stream.
package runner

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism level: values >= 1 are honored
// as-is (1 means serial execution), anything else defaults to
// runtime.GOMAXPROCS(0), the number of usable cores.
func Workers(parallel int) int {
	if parallel >= 1 {
		return parallel
	}
	return runtime.GOMAXPROCS(0)
}

// DeriveSeed mixes a base seed with a job's coordinates (experiment id,
// sweep variable, trial index — any strings identifying the cell) into an
// independent 63-bit seed. Two cells differing in any coordinate get
// unrelated seeds; the same coordinates always reproduce the same seed.
// The mix is FNV-1a over the coordinates finished with the SplitMix64
// avalanche, so adjacent base seeds do not produce correlated streams.
func DeriveSeed(base int64, coords ...string) int64 {
	h := fnv.New64a()
	var buf [8]byte
	putUint64(&buf, uint64(base))
	h.Write(buf[:])
	for _, c := range coords {
		h.Write([]byte(c))
		h.Write([]byte{0}) // separator: ("ab","c") != ("a","bc")
	}
	z := h.Sum64()
	// SplitMix64 finalizer.
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	seed := int64(z &^ (1 << 63)) // keep it positive: callers add offsets
	if seed == 0 {
		seed = 1 // zero seeds mean "use the default" throughout the repo
	}
	return seed
}

func putUint64(buf *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
}

// Map runs fn(i) for every i in [0,n) over min(Workers(parallel), n)
// workers and returns the results in index order. Every job runs even when
// an earlier one fails — at any worker count, serial included — because
// jobs are independent and worker count must never change observable
// behavior; the returned error is the lowest-index job's error.
func Map[T any](n, parallel int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)
	workers := Workers(parallel)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Same contract as the parallel path: every job runs, the
		// lowest-index error is reported. Worker count must never change
		// observable behavior, side effects included.
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return results, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// ForEach is Map for side-effect-only jobs: fn(i) runs for every i in
// [0,n) over the pool, and the lowest-index error is returned.
func ForEach(n, parallel int, fn func(i int) error) error {
	_, err := Map(n, parallel, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
