package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// simnetPath is the import path of the PDES engine package.
const simnetPath = "repro/internal/simnet"

// engineMutators are the (*simnet.Network) methods that mutate cross-node
// engine state and are therefore only legal at serial points (between Run
// calls or inside system events scheduled via ScheduleSystem). Calling
// them from a node event handler panics at runtime today; EngineRules
// turns that into a compile-time diagnostic.
var engineMutators = map[string]string{
	"AddNode":        "registers a node",
	"RemoveNode":     "deletes a node",
	"Kill":           "kills a node",
	"Revive":         "revives a node",
	"ScheduleSystem": "schedules a system event",
}

// EngineRules enforces the PDES engine discipline: inside simnet protocol
// handlers — HandleMessage bodies, function literals passed to
// (*Network).Schedule (node timers), and simnet.HandlerFunc literals — it
// reports calls to engine-mutation APIs (AddNode, RemoveNode, Kill,
// Revive, ScheduleSystem) and to (*Network).Rand, the setup random stream
// handlers must not draw from (use NodeRand(self), whose draws stay
// deterministic under sharding).
var EngineRules = &analysis.Analyzer{
	Name: "enginerules",
	Doc: "no engine mutation from simnet node event handlers: AddNode/RemoveNode/Kill/Revive/" +
		"ScheduleSystem (and the setup stream Rand) are serial-point APIs; handlers that call " +
		"them panic at runtime — this reports them at vet time",
	Run: runEngineRules,
}

func runEngineRules(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		// Handler contexts are collected first, then scanned: a context is
		// any body that the engine executes as a node event.
		var contexts []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && isHandleMessageDecl(pass, n) {
					contexts = append(contexts, n.Body)
				}
			case *ast.CallExpr:
				// (*Network).Schedule(owner, delay, fn): fn runs as a node
				// timer event.
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Schedule" &&
					receiverNamed(pass.TypesInfo, sel.X, simnetPath, "Network") &&
					len(n.Args) == 3 {
					if lit, ok := ast.Unparen(n.Args[2]).(*ast.FuncLit); ok {
						contexts = append(contexts, lit.Body)
					}
				}
				// simnet.HandlerFunc(func(...){...}) conversions.
				if isHandlerFuncConversion(pass, n) {
					if lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit); ok {
						contexts = append(contexts, lit.Body)
					}
				}
			}
			return true
		})
		// Contexts can nest (a Schedule literal inside HandleMessage);
		// dedupe by call position so each violation reports once.
		seen := map[token.Pos]bool{}
		for _, body := range contexts {
			checkHandlerBody(pass, body, seen)
		}
	}
	return nil, nil
}

// isHandleMessageDecl matches methods implementing simnet.Handler:
// HandleMessage(net *simnet.Network, msg simnet.Message).
func isHandleMessageDecl(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "HandleMessage" || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	// Structural check on the declared parameter types: the first
	// parameter is *simnet.Network.
	first := fd.Type.Params.List[0]
	return receiverTypeExprNamed(pass, first.Type, "Network")
}

// receiverTypeExprNamed reports whether the type expression denotes
// (*)simnet.Network by resolving it through go/types.
func receiverTypeExprNamed(pass *analysis.Pass, t ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[t]
	if !ok {
		return false
	}
	typ := tv.Type
	if typ == nil {
		return false
	}
	return namedIs(typ, simnetPath, name)
}

// isHandlerFuncConversion matches simnet.HandlerFunc(expr).
func isHandlerFuncConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	return namedIs(tv.Type, simnetPath, "HandlerFunc")
}

// checkHandlerBody reports serial-point API calls anywhere inside a
// handler context, including nested function literals (they execute as
// part of the same node event unless re-scheduled, and a re-schedule from
// a handler can only target the handler's own node).
func checkHandlerBody(pass *analysis.Pass, body ast.Node, seen map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || seen[call.Pos()] {
			return true
		}
		seen[call.Pos()] = true
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !receiverNamed(pass.TypesInfo, sel.X, simnetPath, "Network") {
			return true
		}
		name := sel.Sel.Name
		if what, bad := engineMutators[name]; bad {
			pass.Reportf(call.Pos(),
				"(*simnet.Network).%s %s and is only legal at serial points; "+
					"calling it from a node event handler panics at runtime", name, what)
		}
		if name == "Rand" {
			pass.Reportf(call.Pos(),
				"(*simnet.Network).Rand is the serial-point setup stream; handlers must draw "+
					"from NodeRand(self) so randomness stays deterministic under sharding")
		}
		return true
	})
}
