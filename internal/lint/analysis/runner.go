package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// WaiverPrefix introduces a suppression comment. The full syntax is
//
//	//dmtvet:allow <analyzer> <reason>
//
// which silences diagnostics from <analyzer> on the comment's own line and
// on the line directly below it (so the waiver can ride at the end of the
// offending line or on its own line above). The reason is mandatory: a
// waiver without one — or naming an unknown analyzer — is itself reported
// as a diagnostic, so suppressions stay auditable. A well-formed waiver
// that suppresses nothing is reported too when the waiverstale audit is in
// the run set.
const WaiverPrefix = "//dmtvet:allow"

// driverName attributes diagnostics produced by the runner itself
// (malformed waivers) rather than by an analyzer.
const driverName = "dmtvet"

// extraKnown holds analyzer names waiver comments may legally reference
// beyond the current run set, so `dmtvet -run detrand` does not flag a
// scratchescape waiver as "unknown analyzer". The lint package registers
// its full registry at init.
var extraKnown = map[string]bool{}

// RegisterWaiverNames marks names as legal in //dmtvet:allow comments
// even when the named analyzer is not in the run set.
func RegisterWaiverNames(names ...string) {
	for _, n := range names {
		extraKnown[n] = true
	}
}

// ResultDiagnostic is one finding attributed to its analyzer. Waived
// findings are retained (with Waived set) so machine consumers can see
// them; the text printers skip them. File/Line/Col duplicate Pos so that
// diagnostics replayed from the cache — where no FileSet exists — still
// carry positions.
type ResultDiagnostic struct {
	Analyzer string
	Pos      token.Pos
	File     string
	Line     int
	Col      int
	Message  string
	Waived   bool
}

// waiverKey identifies one suppression: an analyzer name and a line it
// covers.
type waiverKey struct {
	file     string
	line     int
	analyzer string
}

// waiverRec is one well-formed waiver comment; used flips when it
// suppresses a diagnostic, and the stale audit reports the ones left
// false at the end of a run.
type waiverRec struct {
	pos      token.Pos
	analyzer string
	used     bool
}

// scanWaivers collects the waiver table for a package and reports
// malformed waiver comments. known maps valid analyzer names. The second
// result preserves source order for the stale audit.
func scanWaivers(fset *token.FileSet, pkg *Package, known map[string]bool) (map[waiverKey]*waiverRec, []*waiverRec, []ResultDiagnostic) {
	waived := make(map[waiverKey]*waiverRec)
	var recs []*waiverRec
	var diags []ResultDiagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, WaiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, WaiverPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					diags = append(diags, driverDiag(fset, c.Pos(),
						"malformed waiver: missing analyzer name and reason (want //dmtvet:allow <analyzer> <reason>)"))
				case !known[fields[0]] && !extraKnown[fields[0]]:
					diags = append(diags, driverDiag(fset, c.Pos(),
						fmt.Sprintf("malformed waiver: unknown analyzer %q", fields[0])))
				case len(fields) < 2:
					diags = append(diags, driverDiag(fset, c.Pos(),
						fmt.Sprintf("malformed waiver: %s waiver needs a reason", fields[0])))
				default:
					rec := &waiverRec{pos: c.Pos(), analyzer: fields[0]}
					recs = append(recs, rec)
					p := fset.Position(c.Pos())
					waived[waiverKey{p.Filename, p.Line, fields[0]}] = rec
					waived[waiverKey{p.Filename, p.Line + 1, fields[0]}] = rec
				}
			}
		}
	}
	return waived, recs, diags
}

func driverDiag(fset *token.FileSet, pos token.Pos, msg string) ResultDiagnostic {
	p := fset.Position(pos)
	return ResultDiagnostic{
		Analyzer: driverName, Pos: pos,
		File: p.Filename, Line: p.Line, Col: p.Column,
		Message: msg,
	}
}

// RunPackage applies every analyzer to pkg within prog, marks findings
// suppressed by the package's waiver comments as Waived, and returns all
// diagnostics sorted by position. When the run set includes the waiver
// audit, well-formed waivers that suppressed nothing become diagnostics
// under the auditing analyzer's name.
func RunPackage(prog *Program, pkg *Package, analyzers []*Analyzer) ([]ResultDiagnostic, error) {
	fset := prog.Fset
	known := make(map[string]bool, len(analyzers))
	auditName := ""
	for _, a := range analyzers {
		known[a.Name] = true
		if a.AuditWaivers {
			auditName = a.Name
		}
	}
	waived, recs, diags := scanWaivers(fset, pkg, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Prog:      prog,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			rd := ResultDiagnostic{
				Analyzer: name, Pos: d.Pos,
				File: p.Filename, Line: p.Line, Col: p.Column,
				Message: d.Message,
			}
			if rec := waived[waiverKey{p.Filename, p.Line, name}]; rec != nil {
				rec.used = true
				rd.Waived = true
			}
			diags = append(diags, rd)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	if auditName != "" {
		for _, rec := range recs {
			// Only waivers whose analyzer actually ran can be proven
			// stale; a subset run says nothing about the rest.
			if rec.used || !known[rec.analyzer] {
				continue
			}
			d := driverDiag(fset, rec.pos, fmt.Sprintf(
				"stale waiver: no %s diagnostic left to suppress on this or the next line; delete the waiver or re-justify it",
				rec.analyzer))
			d.Analyzer = auditName
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.File != dj.File {
			return di.File < dj.File
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		if di.Col != dj.Col {
			return di.Col < dj.Col
		}
		return di.Analyzer < dj.Analyzer
	})
	return diags, nil
}

// Options configures a module-level run.
type Options struct {
	// CacheDir, when non-empty, enables the diagnostic cache: a run whose
	// analyzer set, source files and dependency export data all hash to a
	// previously seen key replays the stored diagnostics without
	// type-checking anything.
	CacheDir string
}

// Result is the outcome of one module-level run.
type Result struct {
	// Diags holds every diagnostic, waived ones included, sorted by
	// package then position. File paths are absolute.
	Diags []ResultDiagnostic

	// CacheHit is true when the diagnostics were replayed from the cache.
	CacheHit bool

	// Packages is the number of packages analyzed (0 on a cache hit).
	Packages int
}

// Unwaived counts the diagnostics that survive waivers — the ones that
// fail a run.
func (r *Result) Unwaived() int {
	n := 0
	for _, d := range r.Diags {
		if !d.Waived {
			n++
		}
	}
	return n
}

// RunModule loads the packages matched by patterns in the module rooted
// at moduleDir, builds the whole-program summaries, and applies the
// analyzers to every package.
func RunModule(moduleDir string, patterns []string, analyzers []*Analyzer, opts Options) (*Result, error) {
	e := NewExports(moduleDir)
	listed, err := e.goList(patterns...)
	if err != nil {
		return nil, err
	}
	key := ""
	if opts.CacheDir != "" {
		key = cacheKey(moduleDir, analyzers, listed)
		if diags, ok := loadCachedDiags(opts.CacheDir, moduleDir, key); ok {
			return &Result{Diags: diags, CacheHit: true}, nil
		}
	}
	fset := token.NewFileSet()
	pkgs, err := checkListed(e, fset, listed)
	if err != nil {
		return nil, err
	}
	prog := NewProgram(fset, pkgs)
	res := &Result{Packages: len(pkgs)}
	for _, pkg := range prog.Pkgs {
		diags, err := RunPackage(prog, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		res.Diags = append(res.Diags, diags...)
	}
	if key != "" {
		saveCachedDiags(opts.CacheDir, moduleDir, key, res.Diags)
	}
	return res, nil
}

// Run loads the packages matched by patterns, applies the analyzers, and
// prints unwaived diagnostics to w as "path:line:col: analyzer: message"
// with paths relative to moduleDir. It returns the number printed.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	res, err := RunModule(moduleDir, patterns, analyzers, Options{})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, d := range res.Diags {
		if d.Waived {
			continue
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", RelPath(moduleDir, d.File), d.Line, d.Col, d.Analyzer, d.Message)
		total++
	}
	return total, nil
}

// RelPath renders file relative to root when it lies beneath it.
func RelPath(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}
