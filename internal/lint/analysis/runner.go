package analysis

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// WaiverPrefix introduces a suppression comment. The full syntax is
//
//	//dmtvet:allow <analyzer> <reason>
//
// which silences diagnostics from <analyzer> on the comment's own line and
// on the line directly below it (so the waiver can ride at the end of the
// offending line or on its own line above). The reason is mandatory: a
// waiver without one — or naming an unknown analyzer — is itself reported
// as a diagnostic, so suppressions stay auditable.
const WaiverPrefix = "//dmtvet:allow"

// driverName attributes diagnostics produced by the runner itself
// (malformed waivers) rather than by an analyzer.
const driverName = "dmtvet"

// ResultDiagnostic is one finding attributed to its analyzer.
type ResultDiagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// waiverKey identifies one suppression: an analyzer name and a line it
// covers.
type waiverKey struct {
	file     string
	line     int
	analyzer string
}

// scanWaivers collects the waiver table for a package and reports
// malformed waiver comments. known maps valid analyzer names.
func scanWaivers(fset *token.FileSet, pkg *Package, known map[string]bool) (map[waiverKey]bool, []ResultDiagnostic) {
	waived := make(map[waiverKey]bool)
	var diags []ResultDiagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, WaiverPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, WaiverPrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					diags = append(diags, ResultDiagnostic{
						Analyzer: driverName, Pos: c.Pos(),
						Message: "malformed waiver: missing analyzer name and reason (want //dmtvet:allow <analyzer> <reason>)",
					})
				case !known[fields[0]]:
					diags = append(diags, ResultDiagnostic{
						Analyzer: driverName, Pos: c.Pos(),
						Message: fmt.Sprintf("malformed waiver: unknown analyzer %q", fields[0]),
					})
				case len(fields) < 2:
					diags = append(diags, ResultDiagnostic{
						Analyzer: driverName, Pos: c.Pos(),
						Message: fmt.Sprintf("malformed waiver: %s waiver needs a reason", fields[0]),
					})
				default:
					p := fset.Position(c.Pos())
					waived[waiverKey{p.Filename, p.Line, fields[0]}] = true
				}
			}
		}
	}
	return waived, diags
}

// RunPackage applies every analyzer to pkg, filters findings through the
// package's waiver comments, and returns the surviving diagnostics sorted
// by position.
func RunPackage(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) ([]ResultDiagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	waived, diags := scanWaivers(fset, pkg, known)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			p := fset.Position(d.Pos)
			if waived[waiverKey{p.Filename, p.Line, name}] ||
				waived[waiverKey{p.Filename, p.Line - 1, name}] {
				return
			}
			diags = append(diags, ResultDiagnostic{Analyzer: name, Pos: d.Pos, Message: d.Message})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// Run loads the packages matched by patterns, applies the analyzers, and
// prints diagnostics to w as "path:line:col: analyzer: message" with paths
// relative to moduleDir. It returns the number of diagnostics printed.
func Run(moduleDir string, patterns []string, analyzers []*Analyzer, w io.Writer) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := Load(fset, moduleDir, patterns)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(fset, pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			p := fset.Position(d.Pos)
			name := p.Filename
			if rel, err := filepath.Rel(moduleDir, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, p.Line, p.Column, d.Analyzer, d.Message)
			total++
		}
	}
	return total, nil
}
