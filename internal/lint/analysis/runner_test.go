package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSource type-checks one in-memory file as a throwaway package.
func checkSource(t *testing.T, src string) (*token.FileSet, *Package) {
	t.Helper()
	dir := t.TempDir()
	fn := filepath.Join(dir, "a.go")
	if err := os.WriteFile(fn, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := NewExports(root).CheckFiles(fset, "fixture/waiver", []string{fn})
	if err != nil {
		t.Fatal(err)
	}
	return fset, pkg
}

// always fires one diagnostic at each function declaration.
var always = &Analyzer{
	Name: "always",
	Doc:  "test analyzer: diagnose every function",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(interface{ Pos() token.Pos }); ok {
					pass.Reportf(fd.Pos(), "function found")
				}
			}
		}
		return nil, nil
	},
}

func TestWaiverSuppressesDiagnostic(t *testing.T) {
	fset, pkg := checkSource(t, `package waiver

//dmtvet:allow always this function is exempt for testing
func waived() {}

func flagged() {}
`)
	diags, err := RunPackage(NewProgram(fset, []*Package{pkg}), pkg, []*Analyzer{always})
	if err != nil {
		t.Fatal(err)
	}
	// Both findings are recorded; the waived one is marked, not dropped.
	var live []ResultDiagnostic
	waivedSeen := false
	for _, d := range diags {
		if d.Waived {
			waivedSeen = true
			continue
		}
		live = append(live, d)
	}
	if !waivedSeen {
		t.Error("waived diagnostic not retained with Waived=true")
	}
	if len(live) != 1 {
		t.Fatalf("got %d unwaived diagnostics, want 1 (waived() suppressed): %+v", len(live), live)
	}
	if live[0].Line != 6 {
		t.Errorf("surviving diagnostic on line %d, want 6 (flagged())", live[0].Line)
	}
	if live[0].File == "" || live[0].Col == 0 {
		t.Errorf("diagnostic missing File/Col: %+v", live[0])
	}
}

// TestStaleWaiverAudit: with an AuditWaivers analyzer in the run set, a
// well-formed waiver that suppresses nothing is itself a diagnostic, and a
// waiver that does suppress stays silent.
func TestStaleWaiverAudit(t *testing.T) {
	fset, pkg := checkSource(t, `package waiver

//dmtvet:allow always this function is exempt for testing
func waived() {}

//dmtvet:allow never nothing on this line ever fires
var unused = 1
`)
	audit := &Analyzer{Name: "auditor", Doc: "stale waiver audit", AuditWaivers: true,
		Run: func(*Pass) (any, error) { return nil, nil }}
	never := &Analyzer{Name: "never", Doc: "never fires",
		Run: func(*Pass) (any, error) { return nil, nil }}
	diags, err := RunPackage(NewProgram(fset, []*Package{pkg}), pkg, []*Analyzer{always, never, audit})
	if err != nil {
		t.Fatal(err)
	}
	var stale []ResultDiagnostic
	for _, d := range diags {
		if d.Analyzer == "auditor" {
			stale = append(stale, d)
		}
	}
	if len(stale) != 1 {
		t.Fatalf("got %d stale-waiver diagnostics, want 1: %+v", len(stale), diags)
	}
	if stale[0].Line != 6 {
		t.Errorf("stale waiver reported on line %d, want 6 (the never waiver)", stale[0].Line)
	}
	if !strings.Contains(stale[0].Message, "stale waiver") {
		t.Errorf("unexpected stale message: %q", stale[0].Message)
	}
}

func TestMalformedWaivers(t *testing.T) {
	fset, pkg := checkSource(t, `package waiver

//dmtvet:allow always
func missingReason() {}

//dmtvet:allow nosuchanalyzer because reasons
func unknownAnalyzer() {}
`)
	diags, err := RunPackage(NewProgram(fset, []*Package{pkg}), pkg, []*Analyzer{always})
	if err != nil {
		t.Fatal(err)
	}
	var malformed []string
	for _, d := range diags {
		if d.Analyzer == "dmtvet" {
			malformed = append(malformed, d.Message)
		}
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed-waiver diagnostics, want 2: %v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0], "needs a reason") {
		t.Errorf("missing-reason waiver not diagnosed: %q", malformed[0])
	}
	if !strings.Contains(malformed[1], "unknown analyzer") {
		t.Errorf("unknown-analyzer waiver not diagnosed: %q", malformed[1])
	}
	// A reasonless waiver does not suppress: both functions still flagged.
	funcs := 0
	for _, d := range diags {
		if d.Analyzer == "always" {
			funcs++
		}
	}
	if funcs != 2 {
		t.Errorf("got %d always diagnostics, want 2 (malformed waivers must not suppress)", funcs)
	}
}

func TestLoadModulePackages(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, root, []string{"./internal/runner"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "repro/internal/runner" {
		t.Fatalf("Load returned %+v, want exactly repro/internal/runner", pkgs)
	}
	p := pkgs[0]
	if len(p.Files) == 0 || p.Types == nil || p.Info == nil {
		t.Fatal("loaded package missing syntax or type info")
	}
	if p.Types.Scope().Lookup("DeriveSeed") == nil {
		t.Error("runner.DeriveSeed not in loaded package scope")
	}
}
