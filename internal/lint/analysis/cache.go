package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The diagnostic cache makes `make lint` O(changed bytes) instead of
// O(analyzer count): a run is keyed by a hash of the analyzer set, every
// matched package's source bytes, and the export-data file paths of every
// dependency (which live in the go build cache and are content-addressed,
// so a path doubles as a version). Any edit, toolchain bump or analyzer
// change misses; an identical tree replays the stored diagnostics without
// parsing or type-checking a single file.
//
// The cache is deliberately all-or-nothing per (module, pattern set):
// lockdiscipline's lock-order table is whole-program, so a diagnostic in
// package A can depend on code in package B that A does not import —
// per-package invalidation would be unsound.

// cacheSchema is bumped whenever the runner's diagnostic semantics change
// in a way the analyzer names/docs do not capture.
const cacheSchema = "dmtvet-cache-v1"

// cacheKey hashes everything a run's output can depend on.
func cacheKey(moduleDir string, analyzers []*Analyzer, listed []*listPackage) string {
	h := sha256.New()
	fmt.Fprintln(h, cacheSchema)
	for _, a := range analyzers {
		fmt.Fprintf(h, "analyzer %s %q %v\n", a.Name, a.Doc, a.AuditWaivers)
	}
	sorted := make([]*listPackage, len(listed))
	copy(sorted, listed)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, lp := range sorted {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			// Dependency: its compiled export data stands in for its
			// content (the build cache path is content-addressed).
			fmt.Fprintf(h, "dep %s %s\n", lp.ImportPath, lp.Export)
			continue
		}
		fmt.Fprintf(h, "pkg %s\n", lp.ImportPath)
		for _, gf := range lp.GoFiles {
			data, err := os.ReadFile(filepath.Join(lp.Dir, gf))
			if err != nil {
				fmt.Fprintf(h, "file %s unreadable %v\n", gf, err)
				continue
			}
			sum := sha256.Sum256(data)
			fmt.Fprintf(h, "file %s %x\n", gf, sum)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cachedDiag is the serialized form of one diagnostic; File is stored
// relative to the module root so the cache survives a checkout move.
type cachedDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Waived   bool   `json:"waived"`
}

type cacheFile struct {
	Key   string       `json:"key"`
	Diags []cachedDiag `json:"diags"`
}

// cachePath keeps one entry per module: re-running after an edit
// overwrites rather than accumulating stale entries.
func cachePath(cacheDir, moduleDir string) string {
	sum := sha256.Sum256([]byte(moduleDir))
	return filepath.Join(cacheDir, "diags-"+hex.EncodeToString(sum[:8])+".json")
}

func loadCachedDiags(cacheDir, moduleDir, key string) ([]ResultDiagnostic, bool) {
	data, err := os.ReadFile(cachePath(cacheDir, moduleDir))
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Key != key {
		return nil, false
	}
	diags := make([]ResultDiagnostic, len(cf.Diags))
	for i, d := range cf.Diags {
		diags[i] = ResultDiagnostic{
			Analyzer: d.Analyzer,
			File:     filepath.Join(moduleDir, d.File),
			Line:     d.Line, Col: d.Col,
			Message: d.Message,
			Waived:  d.Waived,
		}
	}
	return diags, true
}

// saveCachedDiags writes the cache entry; failures are silent — the cache
// is an accelerator, never a correctness dependency.
func saveCachedDiags(cacheDir, moduleDir, key string, diags []ResultDiagnostic) {
	if os.MkdirAll(cacheDir, 0o755) != nil {
		return
	}
	cf := cacheFile{Key: key, Diags: make([]cachedDiag, len(diags))}
	for i, d := range diags {
		cf.Diags[i] = cachedDiag{
			Analyzer: d.Analyzer,
			File:     RelPath(moduleDir, d.File),
			Line:     d.Line, Col: d.Col,
			Message: d.Message,
			Waived:  d.Waived,
		}
	}
	data, err := json.Marshal(cf)
	if err != nil {
		return
	}
	tmp := cachePath(cacheDir, moduleDir) + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, cachePath(cacheDir, moduleDir))
}
