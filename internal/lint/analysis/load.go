package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// Exports resolves import paths to compiled export data files by querying
// the local go command. Lookups are cached, so a long analysis run shells
// out once per unseen dependency closure, not once per import.
type Exports struct {
	// ModuleDir is the directory the go command runs in (the module
	// root). Import paths are resolved in its module context.
	ModuleDir string

	mu    sync.Mutex
	files map[string]string // import path -> export data file
}

// NewExports returns an empty resolver rooted at moduleDir.
func NewExports(moduleDir string) *Exports {
	return &Exports{ModuleDir: moduleDir, files: make(map[string]string)}
}

// goList runs `go list -export -deps -json args...` in the module root and
// records every package's export data location. It returns the decoded
// package list.
func (e *Exports) goList(args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-export", "-deps", "-json"}, args...)...)
	cmd.Dir = e.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	e.mu.Lock()
	for _, p := range pkgs {
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
	}
	e.mu.Unlock()
	return pkgs, nil
}

// lookup returns an open reader over path's export data, resolving the
// path (and its dependency closure) through the go command on first use.
func (e *Exports) lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	f, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		if _, err := e.goList(path); err != nil {
			return nil, err
		}
		e.mu.Lock()
		f, ok = e.files[path]
		e.mu.Unlock()
	}
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Importer returns a go/types importer that reads gc export data through
// this resolver.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.lookup)
}

// CheckFiles parses and type-checks the given source files as one package
// with import path pkgPath, resolving imports through e. It is the common
// core of Load and the analysistest fixture harness.
func (e *Exports) CheckFiles(fset *token.FileSet, pkgPath string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: e.Importer(fset)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{ImportPath: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// Load type-checks every package matched by patterns (e.g. "./...") in the
// module rooted at moduleDir. Dependencies are consumed as compiled export
// data; only the matched packages themselves are parsed, so analyzers see
// full syntax plus full type information exactly like a go/analysis
// driver. Test files are not included (GoFiles only), matching what ships
// in a build.
func Load(fset *token.FileSet, moduleDir string, patterns []string) ([]*Package, error) {
	e := NewExports(moduleDir)
	listed, err := e.goList(patterns...)
	if err != nil {
		return nil, err
	}
	return checkListed(e, fset, listed)
}

// checkListed type-checks the matched (non-dependency) entries of a go
// list result.
func checkListed(e *Exports, fset *token.FileSet, listed []*listPackage) ([]*Package, error) {
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		names := make([]string, len(lp.GoFiles))
		for i, gf := range lp.GoFiles {
			names[i] = filepath.Join(lp.Dir, gf)
		}
		pkg, err := e.CheckFiles(fset, lp.ImportPath, names)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// ModuleRoot walks up from dir to the enclosing go.mod directory.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
