package analysis

import (
	"go/ast"
	"go/token"
	"testing"
)

// graphSource exercises the call graph and every summary fact through at
// least one call boundary, including a mutually recursive pair — the case
// a single bottom-up pass cannot summarize without a fixpoint.
const graphSource = `package graph

import (
	"math/rand"
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	data []byte
}

func readClock() time.Time { return time.Now() }

func viaClock() time.Time { return readClock() }

func drawGlobal() int { return rand.Intn(4) }

func viaRand() int { return drawGlobal() }

func sleepy() { time.Sleep(time.Millisecond) }

func viaSleep() { sleepy() }

// pingPong and pongPing only read the clock through each other: the
// fixpoint must converge with both marked, in either visit order.
func pingPong(n int) {
	if n > 0 {
		pongPing(n - 1)
	}
}

func pongPing(n int) {
	time.Now()
	pingPong(n)
}

func flows(b []byte) []byte { return b }

var sink []byte

func escapes(b []byte) { sink = b }

func mutates(b *box) { b.data = nil }

func locksBox(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
}

func joins(ch chan int) {
	for range ch {
	}
}

func spawnsOnly() {
	go func() { time.Now() }()
}
`

func checkGraph(t *testing.T) (*token.FileSet, *Program) {
	t.Helper()
	fset, pkg := checkSource(t, graphSource)
	return fset, NewProgram(fset, []*Package{pkg})
}

func graphFunc(t *testing.T, p *Program, name string) *FuncInfo {
	t.Helper()
	fi := p.FuncByID("fixture/waiver." + name)
	if fi == nil {
		t.Fatalf("function %s not in program", name)
	}
	return fi
}

func TestCallGraphConstruction(t *testing.T) {
	_, prog := checkGraph(t)
	via := graphFunc(t, prog, "viaClock")
	if len(via.Callees) != 1 || via.Callees[0].ID != "fixture/waiver.readClock" {
		t.Errorf("viaClock callees = %v, want [fixture/waiver.readClock]", ids(via.Callees))
	}
	ping := graphFunc(t, prog, "pingPong")
	pong := graphFunc(t, prog, "pongPing")
	if len(ping.Callees) != 1 || ping.Callees[0] != pong {
		t.Errorf("pingPong callees = %v, want [pongPing]", ids(ping.Callees))
	}
	if len(pong.Callees) != 1 || pong.Callees[0] != ping {
		t.Errorf("pongPing callees = %v, want [pingPong]", ids(pong.Callees))
	}
	// Deterministic traversal order: funcs are sorted, and every function
	// in the source shows up exactly once.
	seen := map[string]bool{}
	for _, fi := range prog.Funcs() {
		if seen[fi.ID] {
			t.Errorf("duplicate function %s in Funcs()", fi.ID)
		}
		seen[fi.ID] = true
	}
	if !seen["fixture/waiver.escapes"] || !seen["fixture/waiver.locksBox"] {
		t.Error("Funcs() missing declared functions")
	}
}

func ids(fis []*FuncInfo) []string {
	out := make([]string, len(fis))
	for i, fi := range fis {
		out[i] = fi.ID
	}
	return out
}

func TestSummaryTransitiveFacts(t *testing.T) {
	_, prog := checkGraph(t)
	cases := []struct {
		name  string
		check func(s Summary) bool
		want  string
	}{
		{"readClock", func(s Summary) bool { return s.ReadsClock && s.ClockVia == "time.Now" }, "ReadsClock via time.Now"},
		{"viaClock", func(s Summary) bool { return s.ReadsClock }, "transitive ReadsClock"},
		{"viaRand", func(s Summary) bool { return s.GlobalRand }, "transitive GlobalRand"},
		{"viaSleep", func(s Summary) bool { return s.Blocks }, "transitive Blocks"},
		{"pingPong", func(s Summary) bool { return s.ReadsClock }, "ReadsClock through mutual recursion"},
		{"pongPing", func(s Summary) bool { return s.ReadsClock }, "ReadsClock through mutual recursion"},
		{"flows", func(s Summary) bool {
			return len(s.Params) == 1 && s.Params[0]&ParamFlowsToReturn != 0
		}, "param 0 flows to return"},
		{"escapes", func(s Summary) bool {
			return len(s.Params) == 1 && s.Params[0]&ParamEscapes != 0
		}, "param 0 escapes"},
		{"mutates", func(s Summary) bool {
			return len(s.Params) == 1 && s.Params[0]&ParamMutated != 0
		}, "param 0 mutated"},
		{"locksBox", func(s Summary) bool {
			return len(s.Locks) == 1 && s.Locks[0] == "fixture/waiver.box.mu"
		}, "lock class fixture/waiver.box.mu"},
		{"joins", func(s Summary) bool { return s.Joins }, "range over channel joins"},
		{"spawnsOnly", func(s Summary) bool {
			// The goroutine body is not this function's synchronous path:
			// no Blocks/Joins — but its clock read still counts.
			return !s.Blocks && !s.Joins && s.ReadsClock
		}, "goroutine body contributes clock but not concurrency facts"},
	}
	for _, c := range cases {
		s := graphFunc(t, prog, c.name).Summary
		if !c.check(s) {
			t.Errorf("%s: summary %+v does not satisfy: %s", c.name, s, c.want)
		}
	}
}

// TestSummaryFixpointOrderIndependence pins the determinism contract: the
// least fixpoint is the same whatever order packages and functions are
// visited in, so two programs over the same source — one fed the package
// list reversed — must produce byte-identical summaries.
func TestSummaryFixpointOrderIndependence(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, root, []string{"./internal/vector/...", "./internal/lsh/...", "./internal/wire/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("want at least 2 packages, got %d", len(pkgs))
	}
	forward := NewProgram(fset, pkgs)
	reversed := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		reversed[len(pkgs)-1-i] = p
	}
	backward := NewProgram(fset, reversed)

	if len(forward.Funcs()) == 0 {
		t.Fatal("no functions loaded")
	}
	if len(forward.Funcs()) != len(backward.Funcs()) {
		t.Fatalf("function counts differ: %d vs %d", len(forward.Funcs()), len(backward.Funcs()))
	}
	for i, fi := range forward.Funcs() {
		bi := backward.Funcs()[i]
		if fi.ID != bi.ID {
			t.Fatalf("function order differs at %d: %s vs %s", i, fi.ID, bi.ID)
		}
		if !fi.Summary.equal(&bi.Summary) {
			t.Errorf("%s: summaries differ across visit orders:\n  fwd: %+v\n  rev: %+v", fi.ID, fi.Summary, bi.Summary)
		}
	}
}

func TestCallArgsMapsReceiverAndVariadic(t *testing.T) {
	fset, pkg := checkSource(t, `package callargs

type recv struct{ n int }

func (r *recv) method(a int, rest ...string) {}

func variadic(xs ...int) {}

func caller(r *recv) {
	r.method(1, "x", "y")
	variadic(1, 2, 3)
}
`)
	prog := NewProgram(fset, []*Package{pkg})
	caller := prog.FuncByID("fixture/waiver.caller")
	if caller == nil {
		t.Fatal("caller not found")
	}
	var calls []*ast.CallExpr
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("found %d calls, want 2", len(calls))
	}

	method := prog.FuncOfCall(pkg.Info, calls[0])
	if method == nil || method.ID != "(fixture/waiver.recv).method" {
		t.Fatalf("method call resolved to %v", method)
	}
	exprs, idx := prog.CallArgs(pkg.Info, calls[0], method)
	// Receiver occupies parameter slot 0; the variadic tail collapses onto
	// the last parameter.
	if len(exprs) != 4 || idx[0] != 0 || idx[1] != 1 || idx[2] != 2 || idx[3] != 2 {
		t.Errorf("method CallArgs idx = %v (%d exprs), want [0 1 2 2]", idx, len(exprs))
	}

	vf := prog.FuncOfCall(pkg.Info, calls[1])
	exprs, idx = prog.CallArgs(pkg.Info, calls[1], vf)
	if len(exprs) != 3 || idx[0] != 0 || idx[1] != 0 || idx[2] != 0 {
		t.Errorf("variadic CallArgs idx = %v (%d exprs), want [0 0 0]", idx, len(exprs))
	}
}

func TestFuncIDStability(t *testing.T) {
	_, prog := checkGraph(t)
	for _, fi := range prog.Funcs() {
		if FuncID(fi.Func) != fi.ID {
			t.Errorf("FuncID(%s.Func) = %q, want %q", fi.ID, FuncID(fi.Func), fi.ID)
		}
	}
}

// TestDiagnosticCache runs the same module pattern twice against one cache
// directory: the second run must replay without analyzing, and a changed
// analyzer set must miss.
func TestDiagnosticCache(t *testing.T) {
	if testing.Short() {
		t.Skip("module-level go list run")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	opts := Options{CacheDir: cacheDir}
	analyzers := []*Analyzer{always}

	first, err := RunModule(root, []string{"./internal/wire/..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first run reported a cache hit")
	}
	if len(first.Diags) == 0 {
		t.Fatal("test analyzer produced no diagnostics")
	}

	second, err := RunModule(root, []string{"./internal/wire/..."}, analyzers, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical second run missed the cache")
	}
	if len(second.Diags) != len(first.Diags) {
		t.Fatalf("replayed %d diagnostics, want %d", len(second.Diags), len(first.Diags))
	}
	for i := range second.Diags {
		f, s := first.Diags[i], second.Diags[i]
		if f.Analyzer != s.Analyzer || f.File != s.File || f.Line != s.Line ||
			f.Col != s.Col || f.Message != s.Message || f.Waived != s.Waived {
			t.Errorf("diag %d differs after replay:\n  live:   %+v\n  cached: %+v", i, f, s)
		}
	}

	// A different analyzer set keys differently.
	renamed := &Analyzer{Name: "always2", Doc: always.Doc, Run: always.Run}
	third, err := RunModule(root, []string{"./internal/wire/..."}, []*Analyzer{renamed}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("changed analyzer set hit the stale cache entry")
	}
}
