package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the framework: it builds an
// intra-module call graph over the loaded packages and computes a small,
// deterministic summary per function, so analyzers can reason across call
// boundaries instead of stopping at them. The design constraints match the
// loader's: stdlib only, no x/tools, and byte-stable output — the fixpoint
// below visits functions in sorted order and is a least fixpoint over a
// finite boolean/set lattice, so the summaries are independent of package
// load order (pinned by TestSummaryFixpointOrderIndependent).

// ParamFacts is a bitset of facts about one parameter of a function
// (the receiver counts as parameter 0 of a method).
type ParamFacts uint8

const (
	// ParamFlowsToReturn: some return value may alias this parameter's
	// memory (return p, return p.field, return wrap(p), ...).
	ParamFlowsToReturn ParamFacts = 1 << iota

	// ParamEscapes: the parameter may be retained beyond the call — stored
	// into a package-level variable, sent on a channel, stashed into
	// another parameter's object, or handed to an opaque function value.
	ParamEscapes

	// ParamMutated: the function may write through the parameter — into
	// the pointee, an element of the slice/map, or a field.
	ParamMutated
)

// maxTrackedParams bounds the per-parameter alias bitmasks.
const maxTrackedParams = 32

// maxLockClasses bounds a summary's acquired-lock set; real functions
// acquire one or two classes, so the cap only guards pathological code.
const maxLockClasses = 16

// maxSummaryRounds caps the interprocedural fixpoint. Facts are monotone
// booleans/sets, so the bound doubles as the propagation depth limit: a
// fact can cross at most this many call edges.
const maxSummaryRounds = 40

// Summary is the per-function abstraction analyzers consume. Every field
// is a may-fact: false/empty means "provably not observed", not "safe".
type Summary struct {
	// ReadsClock: the function (or a transitive callee with source in the
	// Program) reads the wall clock (time.Now/Since/Until). ClockVia names
	// the immediate cause ("time.Now" or "via pkg.callee").
	ReadsClock bool
	ClockVia   string

	// GlobalRand: draws from the globally seeded math/rand source.
	GlobalRand bool
	RandVia    string

	// Blocks: executing the function on the caller's goroutine may block —
	// channel send/receive, select without default, sync.WaitGroup.Wait,
	// sync.Cond.Wait, time.Sleep, network or file I/O, or a transitive
	// callee that blocks. Lock acquisitions are tracked separately in
	// Locks, not here.
	Blocks    bool
	BlocksVia string

	// Joins: the function participates in a join/cancel protocol — a
	// channel operation, select, close, WaitGroup.Done, or a context Done
	// call is reachable on the synchronous path. goroleak accepts a
	// spawned body whose Joins is true.
	Joins bool

	// SeedReturn: every return value visibly derives from a seed — a
	// runner.DeriveSeed call, a seed-named identifier, or a callee whose
	// own SeedReturn holds. detrand accepts such calls as seed provenance.
	SeedReturn bool

	// Locks lists the lock classes (see LockClass) the function may
	// acquire on the synchronous path, sorted.
	Locks []string

	// Params holds per-parameter facts, receiver first for methods.
	Params []ParamFacts
}

func (s *Summary) equal(o *Summary) bool {
	if s.ReadsClock != o.ReadsClock || s.ClockVia != o.ClockVia ||
		s.GlobalRand != o.GlobalRand || s.RandVia != o.RandVia ||
		s.Blocks != o.Blocks || s.BlocksVia != o.BlocksVia ||
		s.Joins != o.Joins || s.SeedReturn != o.SeedReturn ||
		len(s.Locks) != len(o.Locks) || len(s.Params) != len(o.Params) {
		return false
	}
	for i := range s.Locks {
		if s.Locks[i] != o.Locks[i] {
			return false
		}
	}
	for i := range s.Params {
		if s.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// FuncInfo is one function with source in the Program.
type FuncInfo struct {
	// ID is the stable key from FuncID; two *types.Func objects for the
	// same function (source vs export data) share it.
	ID      string
	Func    *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []*FuncInfo
	Summary Summary
}

// ShortName is the ID without the module path prefix, for diagnostics.
func (f *FuncInfo) ShortName() string { return f.ID }

// Program is the whole-module view: every loaded package, the call graph
// between their functions, and the fixpoint summaries.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package

	byID  map[string]*FuncInfo
	funcs []*FuncInfo // deterministic order: package path, then file, then position
}

// NewProgram indexes the packages, builds the intra-module call graph and
// runs the summary fixpoint. pkgs need not be sorted or complete — calls
// into packages without source simply have no summary.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	sorted := make([]*Package, len(pkgs))
	copy(sorted, pkgs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })

	p := &Program{Fset: fset, Pkgs: sorted, byID: make(map[string]*FuncInfo)}
	for _, pkg := range sorted {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				fi := &FuncInfo{ID: FuncID(obj), Func: obj, Decl: fd, Pkg: pkg}
				if _, dup := p.byID[fi.ID]; !dup {
					p.byID[fi.ID] = fi
					p.funcs = append(p.funcs, fi)
				}
			}
		}
	}
	for _, fi := range p.funcs {
		seen := map[*FuncInfo]bool{}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := p.FuncOfCall(fi.Pkg.Info, call); callee != nil && !seen[callee] {
				seen[callee] = true
				fi.Callees = append(fi.Callees, callee)
			}
			return true
		})
	}
	p.fixpoint()
	return p
}

// Funcs returns every function with source, in deterministic order.
func (p *Program) Funcs() []*FuncInfo { return p.funcs }

// FuncByID returns the function with the given FuncID, or nil.
func (p *Program) FuncByID(id string) *FuncInfo { return p.byID[id] }

// FuncOfCall resolves call to a function with source in the Program:
// a direct call to a declared function or method. Calls through function
// values and interface methods return nil.
func (p *Program) FuncOfCall(info *types.Info, call *ast.CallExpr) *FuncInfo {
	f := StaticCallee(info, call)
	if f == nil {
		return nil
	}
	return p.byID[FuncID(f)]
}

// StaticCallee returns the declared function or method a call invokes,
// or nil for builtins, conversions and function-value calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// FuncID is a stable, cross-package key for a function: "pkg.Name" for
// package functions, "(pkg.Type).Name" for methods. The same function
// type-checked from source and re-imported from export data yields
// distinct *types.Func pointers but the same FuncID.
func FuncID(f *types.Func) string {
	f = f.Origin()
	pkgPath := ""
	if f.Pkg() != nil {
		pkgPath = f.Pkg().Path()
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		name := "?"
		if n, ok := t.(*types.Named); ok {
			name = n.Obj().Name()
		}
		return "(" + pkgPath + "." + name + ")." + f.Name()
	}
	return pkgPath + "." + f.Name()
}

// fixpoint recomputes every summary until nothing changes. All facts are
// monotone (bits and set entries are only ever added), so iteration in any
// order converges to the same least fixpoint; sorted order just makes the
// trajectory reproducible too.
func (p *Program) fixpoint() {
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, fi := range p.funcs {
			next := computeSummary(p, fi)
			if !next.equal(&fi.Summary) {
				fi.Summary = next
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// paramVars lists the alias-trackable inputs of fi: receiver first, then
// parameters, in declaration order.
func paramVars(f *types.Func) []*types.Var {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// refLike reports whether a value of type t can carry aliasable memory:
// handing it to someone may share mutable state.
func refLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return refLike(u.Elem())
	}
	return false
}

// summaryScan computes one function's summary (or, with fi == nil, an
// ad-hoc scan of a body for BodyJoins/CallBlocks-style queries).
type summaryScan struct {
	prog *Program
	info *types.Info
	fi   *FuncInfo

	params    []*types.Var
	paramMask map[types.Object]uint32
	locks     map[string]bool
	sum       Summary
}

func computeSummary(p *Program, fi *FuncInfo) Summary {
	s := &summaryScan{
		prog:      p,
		info:      fi.Pkg.Info,
		fi:        fi,
		params:    paramVars(fi.Func),
		paramMask: map[types.Object]uint32{},
		locks:     map[string]bool{},
	}
	if len(s.params) > maxTrackedParams {
		s.params = s.params[:maxTrackedParams]
	}
	s.sum.Params = make([]ParamFacts, len(s.params))
	for i, v := range s.params {
		if refLike(v.Type()) {
			s.paramMask[v] = 1 << uint(i)
		}
	}
	s.propagateAliases(fi.Decl.Body)
	s.scan(fi.Decl.Body, true)
	s.sum.SeedReturn = s.seedReturn(fi.Decl.Body)
	s.sum.Locks = make([]string, 0, len(s.locks))
	for k := range s.locks {
		s.sum.Locks = append(s.sum.Locks, k)
	}
	sort.Strings(s.sum.Locks)
	if len(s.sum.Locks) > maxLockClasses {
		s.sum.Locks = s.sum.Locks[:maxLockClasses]
	}
	return s.sum
}

func (s *summaryScan) obj(id *ast.Ident) types.Object {
	if o := s.info.Uses[id]; o != nil {
		return o
	}
	return s.info.Defs[id]
}

// propagateAliases grows paramMask to a local fixpoint: locals assigned
// from a parameter-aliasing expression, and locals into whose fields or
// elements such a value is stored, inherit the parameter bits.
func (s *summaryScan) propagateAliases(body *ast.BlockStmt) {
	if len(s.paramMask) == 0 {
		return
	}
	for round := 0; round < 8; round++ {
		changed := false
		taint := func(id *ast.Ident, m uint32) {
			if id == nil || id.Name == "_" || m == 0 {
				return
			}
			obj := s.obj(id)
			if obj == nil {
				return
			}
			if old := s.paramMask[obj]; old|m != old {
				s.paramMask[obj] = old | m
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					var rhs ast.Expr
					switch {
					case len(n.Rhs) == len(n.Lhs):
						rhs = n.Rhs[i]
					case len(n.Rhs) == 1:
						rhs = n.Rhs[0]
					default:
						continue
					}
					m := s.aliasMask(rhs)
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						taint(l, m)
					case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
						// Storing an aliasing value into a local container
						// (out.data = p) taints the container, so a later
						// `return out` carries the fact.
						if root := localRootIdent(l); root != nil {
							taint(root, m)
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						taint(name, s.aliasMask(n.Values[i]))
					}
				}
			case *ast.RangeStmt:
				// Ranging over an aliasing container: the value (and for
				// maps the key) may alias the same memory.
				m := s.aliasMask(n.X)
				if id, ok := n.Value.(*ast.Ident); ok {
					taint(id, m)
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// localRootIdent returns the root identifier of an lvalue chain
// (x.a.b[i] -> x) when it is a plain identifier, else nil.
func localRootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// aliasMask returns the set of parameters e's value may alias.
func (s *summaryScan) aliasMask(e ast.Expr) uint32 {
	if e == nil || len(s.paramMask) == 0 {
		return 0
	}
	e = ast.Unparen(e)
	if t := s.info.TypeOf(e); t != nil && !refLike(t) {
		return 0 // plain value: copies, carries no aliases
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.obj(e); obj != nil {
			return s.paramMask[obj]
		}
	case *ast.SelectorExpr:
		return s.aliasMask(e.X)
	case *ast.IndexExpr:
		return s.aliasMask(e.X)
	case *ast.SliceExpr:
		return s.aliasMask(e.X)
	case *ast.StarExpr:
		return s.aliasMask(e.X)
	case *ast.TypeAssertExpr:
		return s.aliasMask(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.aliasMask(e.X)
		}
	case *ast.CompositeLit:
		var m uint32
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= s.aliasMask(el)
		}
		return m
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := s.obj(id).(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				return s.aliasMask(e.Args[0])
			}
		}
		// Slice conversions keep the backing array.
		if tv, ok := s.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return s.aliasMask(e.Args[0])
			}
			return 0
		}
		// A callee that returns one of its parameters passes the alias
		// through: mask of the call is the union of the masks of the
		// arguments feeding flows-to-return parameters.
		if callee := s.prog.FuncOfCall(s.info, e); callee != nil {
			var m uint32
			exprs, idx := s.prog.CallArgs(s.info, e, callee)
			for i, arg := range exprs {
				pi := idx[i]
				if pi < len(callee.Summary.Params) && callee.Summary.Params[pi]&ParamFlowsToReturn != 0 {
					m |= s.aliasMask(arg)
				}
			}
			return m
		}
	}
	return 0
}

// CallArgs aligns a call's receiver and arguments with callee's parameter
// indices: exprs[i] is an argument expression and idx[i] the index into
// callee's Summary.Params it binds (receiver = 0 for methods; variadic
// arguments all bind the final parameter).
func (p *Program) CallArgs(info *types.Info, call *ast.CallExpr, callee *FuncInfo) (exprs []ast.Expr, idx []int) {
	nparams := 0
	if sig, ok := callee.Func.Type().(*types.Signature); ok {
		nparams = sig.Params().Len()
	}
	base := 0
	if recv := receiverOf(callee.Func); recv != nil {
		base = 1
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isPkg := info.Uses[firstIdent(sel.X)].(*types.PkgName); !isPkg || firstIdent(sel.X) == nil {
				exprs = append(exprs, sel.X)
				idx = append(idx, 0)
			}
		}
	}
	for i, arg := range call.Args {
		pi := i
		if nparams > 0 && pi >= nparams {
			pi = nparams - 1 // variadic tail
		}
		exprs = append(exprs, arg)
		idx = append(idx, base+pi)
	}
	return exprs, idx
}

func receiverOf(f *types.Func) *types.Var {
	if sig, ok := f.Type().(*types.Signature); ok {
		return sig.Recv()
	}
	return nil
}

func firstIdent(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

// fact recording helpers; "via" strings keep the first cause in source
// order, which the deterministic scan makes reproducible.

func (s *summaryScan) clock(via string) {
	if !s.sum.ReadsClock {
		s.sum.ReadsClock, s.sum.ClockVia = true, via
	}
}

func (s *summaryScan) rand(via string) {
	if !s.sum.GlobalRand {
		s.sum.GlobalRand, s.sum.RandVia = true, via
	}
}

func (s *summaryScan) blocks(via string, syncCtx bool) {
	if syncCtx && !s.sum.Blocks {
		s.sum.Blocks, s.sum.BlocksVia = true, via
	}
}

func (s *summaryScan) joins(syncCtx bool) {
	if syncCtx {
		s.sum.Joins = true
	}
}

func (s *summaryScan) lock(class string, syncCtx bool) {
	if syncCtx && class != "" {
		s.locks[class] = true
	}
}

func (s *summaryScan) escape(m uint32) {
	s.mark(m, ParamEscapes)
}

func (s *summaryScan) mutate(m uint32) {
	s.mark(m, ParamMutated)
}

func (s *summaryScan) mark(m uint32, f ParamFacts) {
	for i := range s.sum.Params {
		if m&(1<<uint(i)) != 0 {
			s.sum.Params[i] |= f
		}
	}
}

// scan walks n recording facts. syncCtx is true while the code is known to
// run synchronously on the function's own goroutine: blocking, joining and
// lock facts apply only there. Spawned goroutine bodies and function
// literals that run at an unknown time still contribute clock/rand facts
// (those violate determinism whenever they run) but not concurrency facts.
func (s *summaryScan) scan(root ast.Node, syncCtx bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			s.scan(n.Call, false)
			return false
		case *ast.FuncLit:
			s.scan(n.Body, false)
			return false
		case *ast.DeferStmt:
			// A deferred call still runs on this goroutine at exit.
			s.scan(n.Call, syncCtx)
			return false
		case *ast.CallExpr:
			s.call(n, syncCtx)
		case *ast.SendStmt:
			s.blocks("channel send", syncCtx)
			s.joins(syncCtx)
			s.escape(s.aliasMask(n.Value))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.blocks("channel receive", syncCtx)
				s.joins(syncCtx)
			}
		case *ast.RangeStmt:
			if t := s.info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					s.blocks("range over channel", syncCtx)
					s.joins(syncCtx)
				}
			}
		case *ast.SelectStmt:
			s.joins(syncCtx)
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				s.blocks("select", syncCtx)
			}
		case *ast.ReturnStmt:
			if syncCtx { // returns inside literals belong to the literal
				for _, res := range n.Results {
					s.mark(s.aliasMask(res), ParamFlowsToReturn)
				}
			}
		case *ast.AssignStmt:
			s.assign(n)
		case *ast.IncDecStmt:
			s.storeThrough(n.X, 0)
		}
		return true
	})
}

// assign records parameter mutation/escape facts for one assignment.
func (s *summaryScan) assign(n *ast.AssignStmt) {
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		switch {
		case len(n.Rhs) == len(n.Lhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0]
		}
		var m uint32
		if rhs != nil {
			m = s.aliasMask(rhs)
		}
		s.storeThrough(lhs, m)
	}
}

// storeThrough handles a write to lvalue lhs of a value aliasing params m:
// writing through a parameter is a mutation; storing an aliasing value
// into a package-level variable or another parameter's memory publishes it.
func (s *summaryScan) storeThrough(lhs ast.Expr, m uint32) {
	lhs = ast.Unparen(lhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		if m != 0 {
			if obj := s.obj(l); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				s.escape(m)
			}
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		var base ast.Expr
		switch l := l.(type) {
		case *ast.SelectorExpr:
			base = l.X
		case *ast.IndexExpr:
			base = l.X
		case *ast.StarExpr:
			base = l.X
		}
		bm := s.aliasMask(base)
		s.mutate(bm)
		if m != 0 {
			if root := localRootIdent(base); root != nil {
				if obj := s.obj(root); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
					s.escape(m) // stored into a package-level object
					return
				}
			}
			if bm != 0 && bm != m {
				s.escape(m) // stored into another parameter's memory
			}
		}
	}
}

// call records the facts of one call expression.
func (s *summaryScan) call(call *ast.CallExpr, syncCtx bool) {
	info := s.info
	obj := StaticCallee(info, call)
	if obj == nil {
		// close(ch) is a join signal; opaque function values may retain
		// their reference-typed arguments.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isBuiltin := s.obj(id).(*types.Builtin); isBuiltin && b.Name() == "close" {
				s.joins(syncCtx)
				return
			}
		}
		if funcValueCall(info, call) {
			for _, arg := range call.Args {
				s.escape(s.aliasMask(arg))
			}
		}
		return
	}
	pkgPath := ""
	if obj.Pkg() != nil {
		pkgPath = obj.Pkg().Path()
	}
	name := obj.Name()
	switch pkgPath {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			s.clock("time." + name)
		case "Sleep":
			s.blocks("time.Sleep", syncCtx)
		}
		return
	case "math/rand", "math/rand/v2":
		if receiverOf(obj) == nil {
			switch name {
			case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			default:
				s.rand("rand." + name)
			}
		}
		return
	case "sync":
		recv := receiverTypeName(obj)
		switch {
		case recv == "WaitGroup" && name == "Wait":
			s.blocks("sync.WaitGroup.Wait", syncCtx)
		case recv == "WaitGroup" && name == "Done":
			s.joins(syncCtx)
		case recv == "Cond" && name == "Wait":
			s.blocks("sync.Cond.Wait", syncCtx)
		case (recv == "Mutex" || recv == "RWMutex") && (name == "Lock" || name == "RLock"):
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				s.lock(LockClass(info, s.pkgPath(), sel.X), syncCtx)
			}
		}
		return
	case "context":
		if name == "Done" {
			s.joins(syncCtx)
		}
		return
	}
	if name == "Close" && receiverOf(obj) != nil {
		s.joins(syncCtx) // closing a resource is a shutdown/cancel signal
	}
	if callee := s.prog.FuncByID(FuncID(obj)); callee != nil {
		sum := &callee.Summary
		if sum.ReadsClock {
			s.clock("via " + callee.ID)
		}
		if sum.GlobalRand {
			s.rand("via " + callee.ID)
		}
		if sum.Blocks {
			s.blocks("via "+callee.ID, syncCtx)
		}
		if sum.Joins {
			s.joins(syncCtx)
		}
		for _, lk := range sum.Locks {
			s.lock(lk, syncCtx)
		}
		exprs, idx := s.prog.CallArgs(info, call, callee)
		for i, arg := range exprs {
			pi := idx[i]
			if pi >= len(sum.Params) {
				continue
			}
			m := s.aliasMask(arg)
			if m == 0 {
				continue
			}
			if sum.Params[pi]&ParamEscapes != 0 {
				s.escape(m)
			}
			if sum.Params[pi]&ParamMutated != 0 {
				s.mutate(m)
			}
		}
		return
	}
	if via, ok := stdlibBlocking(obj); ok {
		s.blocks(via, syncCtx)
	}
}

func (s *summaryScan) pkgPath() string {
	if s.fi != nil {
		return s.fi.Pkg.ImportPath
	}
	return ""
}

// seedReturn reports whether every return statement's every result
// visibly derives from a seed.
func (s *summaryScan) seedReturn(body *ast.BlockStmt) bool {
	sawReturn := false
	ok := true
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // its returns are not ours
			case *ast.ReturnStmt:
				if len(n.Results) == 0 {
					return true
				}
				sawReturn = true
				for _, res := range n.Results {
					if !s.seedExpr(res, 0) {
						ok = false
					}
				}
			}
			return true
		})
	}
	walk(body)
	return sawReturn && ok
}

// seedExpr reports whether e visibly mentions seed provenance: a
// DeriveSeed call, a seed-named identifier, or a call to a function whose
// summary says every return is seed-derived.
func (s *summaryScan) seedExpr(e ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if f := StaticCallee(s.info, n); f != nil && f.Name() == "DeriveSeed" {
				found = true
				return false
			}
			if callee := s.prog.FuncOfCall(s.info, n); callee != nil && callee.Summary.SeedReturn {
				found = true
				return false
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// funcValueCall reports whether call invokes a func-typed variable (a
// callback parameter, local func value, or func-typed field) whose body
// cannot be resolved here.
func funcValueCall(info *types.Info, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}

func receiverTypeName(f *types.Func) string {
	recv := receiverOf(f)
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// stdlibBlocking classifies calls into packages without source that are
// known to block: network and file I/O, pipes, subprocess waits.
func stdlibBlocking(f *types.Func) (string, bool) {
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	name := f.Name()
	recv := receiverTypeName(f)
	display := pkg.Name() + "." + name
	if recv != "" {
		display = pkg.Name() + "." + recv + "." + name
	}
	switch pkg.Path() {
	case "net", "net/http", "net/rpc", "net/textproto":
		// Nearly everything here eventually hits the wire or a socket
		// syscall — except the pure accessors and parsers.
		switch name {
		case "String", "Network", "Addr", "LocalAddr", "RemoteAddr", "Error",
			"Timeout", "Temporary", "Unwrap",
			"SetDeadline", "SetReadDeadline", "SetWriteDeadline",
			"JoinHostPort", "SplitHostPort", "ParseIP", "ParseCIDR", "ParseMAC",
			"CIDRMask", "IPv4", "IPv4Mask":
			return "", false
		}
		return display + " (network I/O)", true
	case "os":
		if recv == "File" && name != "Name" && name != "Fd" {
			return display + " (file I/O)", true
		}
		switch name {
		case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile",
			"ReadDir", "Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll",
			"MkdirTemp", "Stat", "Lstat", "Truncate", "Chmod", "Chtimes",
			"Symlink", "Link", "Pipe":
			return display + " (file I/O)", true
		}
	case "io":
		// Only the package-level helpers: a call through an io interface
		// method (hash.Hash64's Write, bytes.Reader's Read) resolves to
		// this package too, but the dynamic target is as often an
		// in-memory implementation as a socket.
		if recv != "" {
			return "", false
		}
		switch name {
		case "ReadAll", "Copy", "CopyN", "CopyBuffer", "ReadFull", "ReadAtLeast", "WriteString":
			return display + " (I/O)", true
		}
	case "bufio":
		switch name {
		case "Read", "ReadByte", "ReadBytes", "ReadLine", "ReadRune", "ReadSlice", "ReadString",
			"Write", "WriteByte", "WriteRune", "WriteString", "Flush", "Peek", "Fill", "Scan":
			return display + " (buffered I/O)", true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return display + " (subprocess wait)", true
		}
	}
	return "", false
}

// LockClass maps the receiver expression of a Lock/Unlock call to a
// stable lock class key: "pkg.Type.field" for a mutex field, "pkg.var"
// for a package-level mutex, "pkg.Type.lock" for an embedded one. Two
// instances of the same type share a class — the analysis is class-level,
// like every practical static lock-order checker.
func LockClass(info *types.Info, pkgPath string, recv ast.Expr) string {
	recv = ast.Unparen(recv)
	deref := func(t types.Type) types.Type {
		if p, ok := t.(*types.Pointer); ok {
			return p.Elem()
		}
		return t
	}
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if t := info.TypeOf(r.X); t != nil {
			if n, ok := deref(t).(*types.Named); ok {
				p := pkgPath
				if n.Obj().Pkg() != nil {
					p = n.Obj().Pkg().Path()
				}
				return p + "." + n.Obj().Name() + "." + r.Sel.Name
			}
		}
		return pkgPath + "." + types.ExprString(recv)
	case *ast.Ident:
		obj := info.Uses[r]
		if obj == nil {
			obj = info.Defs[r]
		}
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + r.Name
		}
		if t := info.TypeOf(r); t != nil {
			if n, ok := deref(t).(*types.Named); ok && !(n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync") {
				p := pkgPath
				if n.Obj().Pkg() != nil {
					p = n.Obj().Pkg().Path()
				}
				return p + "." + n.Obj().Name() + ".lock"
			}
		}
		return pkgPath + ".local." + r.Name
	}
	return pkgPath + "." + types.ExprString(recv)
}

// BodyJoins reports whether a join/cancel path — a channel operation,
// select, close, WaitGroup.Done, context Done, or a call to a function
// whose summary joins — is reachable on n's synchronous path. goroleak
// uses it on spawned bodies.
func (p *Program) BodyJoins(info *types.Info, n ast.Node) bool {
	s := &summaryScan{prog: p, info: info, paramMask: map[types.Object]uint32{}, locks: map[string]bool{}}
	s.scan(n, true)
	return s.sum.Joins
}

// CallBlocks reports whether one call expression may block: a known
// blocking stdlib call, or a module function whose summary blocks. Lock
// acquisitions are excluded — lockdiscipline models those itself.
func (p *Program) CallBlocks(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := StaticCallee(info, call)
	if obj == nil {
		return "", false
	}
	if pkg := obj.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "time":
			if obj.Name() == "Sleep" {
				return "time.Sleep", true
			}
			return "", false
		case "sync":
			recv := receiverTypeName(obj)
			if recv == "WaitGroup" && obj.Name() == "Wait" {
				return "sync.WaitGroup.Wait", true
			}
			if recv == "Cond" && obj.Name() == "Wait" {
				return "sync.Cond.Wait", true
			}
			return "", false
		}
	}
	if callee := p.byID[FuncID(obj)]; callee != nil {
		if callee.Summary.Blocks {
			return "call to " + callee.ID + ", which may block (" + callee.Summary.BlocksVia + ")", true
		}
		return "", false
	}
	return stdlibBlocking(obj)
}
