// Package analysis is a minimal, dependency-free stand-in for
// golang.org/x/tools/go/analysis: it defines the Analyzer/Pass/Diagnostic
// vocabulary the dmtvet suite is written against, loads type-checked
// packages through the go command's export data (no network, no module
// downloads), and runs analyzers with support for //dmtvet:allow waiver
// comments.
//
// The API deliberately mirrors the x/tools package shape — an Analyzer has
// a Name, a Doc and a Run(*Pass) func; a Pass carries Fset/Files/Pkg/
// TypesInfo and reports Diagnostics — so the analyzers in internal/lint
// can migrate to the real framework by swapping one import if the
// dependency ever lands in the module. Until then this keeps the
// determinism contracts enforceable in a hermetic build: the loader shells
// out only to the local go tool (`go list -export -deps -json`), reads the
// export data it names from the build cache, and type-checks our sources
// against it with go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Run is invoked once per loaded
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dmtvet:allow waiver comments. It must be a single word.
	Name string

	// Doc is the one-paragraph description shown by `dmtvet -list`.
	Doc string

	// Run applies the analyzer to one package. The returned value is
	// unused today (the x/tools API reserves it for inter-analyzer
	// facts) and may be nil.
	Run func(*Pass) (any, error)

	// AuditWaivers marks the analyzer whose diagnostics the runner
	// produces itself: when it is in the run set, every waiver that
	// suppressed nothing in the same run is reported under this
	// analyzer's name, so dead waivers cannot rot in place.
	AuditWaivers bool
}

// Pass is the interface between one analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Prog is the whole-program view: call graph and per-function
	// summaries over every package in the run, so analyzers can follow
	// facts across call boundaries. Always non-nil under RunPackage.
	Prog *Program

	// Report delivers one diagnostic. The runner installs a hook that
	// applies waiver comments before recording it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
