package lint

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// deterministicPkgs are the packages whose observable output must be a
// pure function of their seeds: simulation, training, preprocessing and
// the experiment harness. Wall-clock reads and randomness that does not
// derive from a seed are contract violations here. Serving-side packages
// (serving, realnet, tagstore, the root package, cmd/*) legitimately use
// wall time and are not listed.
var deterministicPkgs = []string{
	"repro/internal/simnet",
	"repro/internal/p2pdmt",
	"repro/internal/cempar",
	"repro/internal/pace",
	"repro/internal/baseline",
	"repro/internal/experiments",
	"repro/internal/textproc",
	"repro/internal/svm",
	"repro/internal/runner",
	// Not named by the original contract but equally seed-pure: the
	// simulation substrate and model/data layers they depend on.
	"repro/internal/dht",
	"repro/internal/overlay",
	"repro/internal/lsh",
	"repro/internal/cluster",
	"repro/internal/metrics",
	"repro/internal/vector",
	"repro/internal/wire",
	"repro/internal/dataset",
	"repro/internal/protocol",
}

// wallClockFuncs are the time package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are math/rand (v1 and v2) top-level functions that
// build a generator rather than draw from the shared global one. They are
// allowed when their seed derives from runner.DeriveSeed or a seed field;
// every other top-level rand function uses the globally seeded source and
// is always a violation in a deterministic package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// seedEnteringConstructors is the subset of randConstructors whose integer
// arguments are the seed itself.
var seedEnteringConstructors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// DetRand enforces the byte-determinism contract: inside the deterministic
// packages it reports wall-clock reads (time.Now/Since/Until), draws from
// the global math/rand source, and rand generators whose seed does not
// visibly derive from runner.DeriveSeed or a seed-named field/variable.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads and underived randomness in the deterministic packages " +
		"(simnet, p2pdmt, cempar, pace, baseline, experiments, textproc, svm, runner, ...): " +
		"time.Now, global math/rand draws, and rand.New seeds that do not flow from " +
		"runner.DeriveSeed or a Config/Options seed field",
	Run: runDetRand,
}

func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if underPath(path, p) {
			return true
		}
	}
	return false
}

func runDetRand(pass *analysis.Pass) (any, error) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		// localInit maps each function-local variable to the last
		// expression assigned to it, so seed provenance can be traced
		// through one or two intermediate locals (s := DeriveSeed(...);
		// rand.NewSource(s)).
		localInit := map[string]ast.Expr{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && i < len(n.Rhs) {
						localInit[id.Name] = n.Rhs[i]
					}
				}
			case *ast.CallExpr:
				checkDetRandCall(pass, n, localInit)
				checkDetRandTransitive(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkDetRandTransitive follows the call graph: a call from a
// deterministic package into a function elsewhere in the module whose
// summary reads the wall clock or draws global randomness smuggles
// nondeterminism in through the side door. Callees inside deterministic
// packages are skipped — they get their own direct diagnostics.
func checkDetRandTransitive(pass *analysis.Pass, call *ast.CallExpr) {
	fi := pass.Prog.FuncOfCall(pass.TypesInfo, call)
	if fi == nil || isDeterministicPkg(fi.Pkg.ImportPath) {
		return
	}
	if fi.Summary.ReadsClock {
		pass.Reportf(call.Pos(),
			"call to %s transitively reads the wall clock (%s) in deterministic package %s",
			fi.ID, fi.Summary.ClockVia, pass.Pkg.Path())
	}
	if fi.Summary.GlobalRand {
		pass.Reportf(call.Pos(),
			"call to %s transitively draws from the global math/rand source (%s) in deterministic package %s",
			fi.ID, fi.Summary.RandVia, pass.Pkg.Path())
	}
}

func checkDetRandCall(pass *analysis.Pass, call *ast.CallExpr, localInit map[string]ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkg := importedPackage(pass.TypesInfo, sel.X)
	if pkg == nil {
		return // method call or local selector, not pkg.Func(...)
	}
	name := sel.Sel.Name
	switch pkg.Path() {
	case "time":
		if wallClockFuncs[name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in deterministic package %s; use virtual time or an injected clock",
				name, pass.Pkg.Path())
		}
	case "math/rand", "math/rand/v2":
		switch {
		case seedEnteringConstructors[name]:
			for _, arg := range call.Args {
				if !seedDerived(pass, arg, localInit, 0) {
					pass.Reportf(call.Pos(),
						"rand.%s seed does not derive from runner.DeriveSeed or a seed field; "+
							"per-entity randomness must flow from the run seed", name)
					return
				}
			}
		case name == "New":
			// rand.New(rand.NewSource(x)) is vetted at the inner call;
			// rand.New(src) over a plain variable is vetted through the
			// variable's provenance.
			if len(call.Args) == 1 {
				if inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok && seedEnteringConstructors[calleeName(inner)] {
					return
				}
				if !seedDerived(pass, call.Args[0], localInit, 0) {
					pass.Reportf(call.Pos(),
						"rand.New source does not derive from runner.DeriveSeed or a seed field")
				}
			}
		case randConstructors[name]:
			// NewZipf draws from an already-vetted *Rand.
		default:
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global math/rand source in deterministic package %s; "+
					"use a generator seeded via runner.DeriveSeed", name, pass.Pkg.Path())
		}
	}
}

// seedDerived reports whether expr visibly flows from a seed: it (or,
// tracing through up to four local assignments, anything assigned to an
// identifier in it) mentions a DeriveSeed call, a name containing "seed",
// or a call to a function whose summary proves every return value is
// seed-derived — so provenance survives helper functions with arbitrary
// names (the old syntactic pass false-positived on those).
func seedDerived(pass *analysis.Pass, expr ast.Expr, localInit map[string]ast.Expr, depth int) bool {
	if depth > 4 {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if calleeName(n) == "DeriveSeed" {
				found = true
				return false
			}
			if fi := pass.Prog.FuncOfCall(pass.TypesInfo, n); fi != nil && fi.Summary.SeedReturn {
				found = true
				return false
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "seed") {
				found = true
				return false
			}
			if init, ok := localInit[n.Name]; ok && init != expr && seedDerived(pass, init, localInit, depth+1) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
