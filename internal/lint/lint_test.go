package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

// Each analyzer is proven against a seeded fixture: every // want line
// must diagnose, every unannotated line must stay silent, and reasoned
// //dmtvet:allow waivers must suppress. The fixtures type-check against
// real module packages through export data, so the tests exercise the
// same loader path as a production dmtvet run. All of this is cheap
// enough for the -race -short CI tier.

func TestDetRand(t *testing.T) {
	analysistest.Run(t, lint.DetRand, "testdata/src/detrand", "repro/internal/pace/dmtvetfixture")
}

func TestDetRandAllowlistedPackage(t *testing.T) {
	// The same violations are legal in wall-clock-legitimate packages:
	// the fixture has zero want comments, so any diagnostic fails.
	analysistest.Run(t, lint.DetRand, "testdata/src/detrand_allowed", "repro/internal/serving/dmtvetfixture")
}

func TestMapRange(t *testing.T) {
	analysistest.Run(t, lint.MapRange, "testdata/src/maprange", "repro/internal/experiments/dmtvetfixture")
}

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, lint.ScratchEscape, "testdata/src/scratchescape", "repro/internal/textproc/dmtvetfixture")
}

func TestEngineRules(t *testing.T) {
	analysistest.Run(t, lint.EngineRules, "testdata/src/enginerules", "repro/internal/p2pdmt/dmtvetfixture")
}

func TestFusedMut(t *testing.T) {
	analysistest.Run(t, lint.FusedMut, "testdata/src/fusedmut", "repro/internal/svmfixture")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lint.LockDiscipline, "testdata/src/lockdiscipline", "repro/internal/serving/dmtvetfixture")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, lint.GoroLeak, "testdata/src/goroleak", "repro/internal/realnet/dmtvetfixture")
}

func TestWaiverStale(t *testing.T) {
	// The audit only means something in combination with the analyzer
	// whose waivers it judges: detrand supplies a used waiver (silent) and
	// a stale one (reported on the waiver's own line).
	analysistest.RunAnalyzers(t,
		[]*analysis.Analyzer{lint.DetRand, lint.WaiverStale},
		"testdata/src/waiverstale", "repro/internal/pace/dmtvetfixture")
}

// TestSuiteOrder pins the registry: eight analyzers, stable names — CI and
// waiver comments depend on them.
func TestSuiteOrder(t *testing.T) {
	want := []string{"detrand", "enginerules", "fusedmut", "goroleak",
		"lockdiscipline", "maprange", "scratchescape", "waiverstale"}
	got := lint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("Analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
}
