package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// LockDiscipline enforces the concurrency contracts that keep the serving
// and realnet layers shutdown-safe and deadlock-free:
//
//   - no blocking operation while a mutex is held: a channel send/receive,
//     select without default, sync.WaitGroup.Wait, time.Sleep, network or
//     file I/O — directly or through a callee whose summary blocks —
//     stalls every other goroutine contending for the lock, and under the
//     dispatcher's backpressure can deadlock the whole pool;
//   - no lock-order inversions: acquiring B while holding A after some
//     other function acquires A while holding B is the classic ABBA
//     deadlock, detected here against a program-wide table of observed
//     acquisition orders (lock identity is class-level: pkg.Type.field);
//   - no re-acquiring a lock class already held (self-deadlock), directly
//     or through a callee whose summary acquires it;
//   - no copying a value containing a sync primitive: the copy's lock
//     state silently diverges from the original's.
//
// The scan is linear per function scope in source order and deliberately
// branch-insensitive; each function literal is its own scope (a closure
// handed to an executor does not run under the spawner's locks). A
// deferred Unlock keeps its region open to the end of the scope.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "no blocking operation (channel op, select, WaitGroup.Wait, I/O, sleep) while a mutex " +
		"is held, no lock-order inversions against the program-wide observed order, no " +
		"re-acquiring a held lock class, and no copying values containing sync primitives",
	Run: runLockDiscipline,
}

// lockPair is one observed acquisition order: acquired while held.
type lockPair struct{ held, acquired string }

// lockOrderTable is the program-wide first-observation table of lock
// acquisition orders, built once per Program over every function scope.
type lockOrderTable struct {
	first map[lockPair]token.Pos
}

// lockOrderCache memoizes the table per Program. RunPackage drives
// analyzers sequentially, so no locking is needed — and the table being
// program-wide (not per-package) is the point: an inversion between
// packages that do not import each other is still a deadlock.
var lockOrderCache = map[*analysis.Program]*lockOrderTable{}

func lockOrderFor(prog *analysis.Program) *lockOrderTable {
	if t, ok := lockOrderCache[prog]; ok {
		return t
	}
	t := &lockOrderTable{first: map[lockPair]token.Pos{}}
	for _, fi := range prog.Funcs() {
		scanLockScopes(prog, fi.Pkg.Info, fi.Pkg.ImportPath, fi.Decl.Body,
			func(p lockPair, pos token.Pos) {
				if _, ok := t.first[p]; !ok {
					t.first[p] = pos
				}
			}, nil)
	}
	lockOrderCache[prog] = t
	return t
}

func runLockDiscipline(pass *analysis.Pass) (any, error) {
	table := lockOrderFor(pass.Prog)
	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format, args...)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanLockScopes(pass.Prog, pass.TypesInfo, pass.Pkg.Path(), fd.Body, nil,
				&lockReporter{prog: pass.Prog, table: table, report: report})
		}
		checkLockCopies(pass, f)
	}
	return nil, nil
}

type lockReporter struct {
	prog   *analysis.Program
	table  *lockOrderTable
	report func(pos token.Pos, format string, args ...any)
}

// lockRegion is one open critical section in the linear scan.
type lockRegion struct {
	key      string
	rlock    bool
	pos      token.Pos
	deferred bool
}

// scanLockScopes runs the linear lock scan over body and, recursively,
// over every function literal inside it as an independent scope. pairFn
// (build phase) receives every observed acquisition order; rep (report
// phase) receives diagnostics checked against the completed table.
func scanLockScopes(prog *analysis.Program, info *types.Info, pkgPath string, body ast.Node,
	pairFn func(lockPair, token.Pos), rep *lockReporter) {

	var regions []lockRegion
	var lits []*ast.FuncLit

	held := func() string {
		s := ""
		for _, r := range regions {
			if s != "" {
				s += ", "
			}
			s += r.key
		}
		return s
	}
	blocking := func(pos token.Pos, what string) {
		if rep != nil && len(regions) > 0 {
			rep.report(pos, "%s while holding %s; release the lock first (a blocked holder stalls every contender)", what, held())
		}
	}
	acquire := func(pos token.Pos, key string, rlock bool) {
		for _, r := range regions {
			if r.key == key {
				if rep != nil && !(r.rlock && rlock) {
					rep.report(pos, "acquiring %s while it is already held (acquired at %s): self-deadlock",
						key, prog.Fset.Position(r.pos))
				}
				break
			}
		}
		for _, r := range regions {
			if r.key == key {
				continue
			}
			p := lockPair{held: r.key, acquired: key}
			if pairFn != nil {
				pairFn(p, pos)
			}
			if rep != nil {
				if prev, ok := rep.table.first[lockPair{held: key, acquired: r.key}]; ok {
					rep.report(pos, "acquiring %s while holding %s inverts the lock order observed at %s: ABBA deadlock risk",
						key, r.key, prog.Fset.Position(prev))
				}
			}
		}
		regions = append(regions, lockRegion{key: key, rlock: rlock, pos: pos})
	}
	release := func(key string) {
		for i := len(regions) - 1; i >= 0; i-- {
			if regions[i].key == key && !regions[i].deferred {
				regions = append(regions[:i], regions[i+1:]...)
				return
			}
		}
	}
	markDeferred := func(key string) {
		for i := len(regions) - 1; i >= 0; i-- {
			if regions[i].key == key {
				regions[i].deferred = true
				return
			}
		}
	}

	handleCall := func(call *ast.CallExpr) {
		if key, op, ok := syncLockOp(info, pkgPath, call); ok {
			switch op {
			case "Lock":
				acquire(call.Pos(), key, false)
			case "RLock":
				acquire(call.Pos(), key, true)
			case "Unlock", "RUnlock":
				release(key)
			}
			return
		}
		// A callee that acquires locks extends the order table through the
		// call edge; one that blocks is a blocking event here.
		if callee := prog.FuncOfCall(info, call); callee != nil && len(regions) > 0 {
			for _, lk := range callee.Summary.Locks {
				heldHere := false
				for _, r := range regions {
					if r.key == lk {
						heldHere = true
					}
				}
				if heldHere {
					if rep != nil {
						rep.report(call.Pos(), "call to %s acquires %s, which is already held here: self-deadlock",
							callee.ID, lk)
					}
					continue
				}
				for _, r := range regions {
					p := lockPair{held: r.key, acquired: lk}
					if pairFn != nil {
						pairFn(p, call.Pos())
					}
					if rep != nil {
						if prev, ok := rep.table.first[lockPair{held: lk, acquired: r.key}]; ok {
							rep.report(call.Pos(), "call to %s acquires %s while holding %s, inverting the lock order observed at %s",
								callee.ID, lk, r.key, prog.Fset.Position(prev))
						}
					}
				}
			}
		}
		if rep != nil && len(regions) > 0 {
			if via, blocks := prog.CallBlocks(info, call); blocks {
				blocking(call.Pos(), via)
			}
		}
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lits = append(lits, lit)
			}
			return false // the spawned body runs without this scope's locks
		case *ast.DeferStmt:
			if key, op, ok := syncLockOp(info, pkgPath, n.Call); ok && (op == "Unlock" || op == "RUnlock") {
				markDeferred(key)
			}
			return false // deferred work runs at exit, outside the linear order
		case *ast.CallExpr:
			handleCall(n)
			return true
		case *ast.SendStmt:
			blocking(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking(n.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					blocking(n.Pos(), "range over channel")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking(n.Pos(), "select without default")
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, visit)
					}
				}
			}
			return false // the comm clauses themselves are part of the select
		}
		return true
	}
	ast.Inspect(body, visit)

	for _, lit := range lits {
		scanLockScopes(prog, info, pkgPath, lit.Body, pairFn, rep)
	}
}

// syncLockOp matches mu.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex
// and returns the lock class key and operation name.
func syncLockOp(info *types.Info, pkgPath string, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFunc := info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	recv := obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", "", false
	}
	t := recv.Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); !isNamed || (n.Obj().Name() != "Mutex" && n.Obj().Name() != "RWMutex") {
		return "", "", false
	}
	return analysis.LockClass(info, pkgPath, sel.X), obj.Name(), true
}

// checkLockCopies flags copies of values containing sync primitives:
// assignments from an existing value (x := other, s := *p) and arguments
// passed by value. Fresh composite literals and pointers are fine.
func checkLockCopies(pass *analysis.Pass, f *ast.File) {
	info := pass.TypesInfo
	copyDiag := func(e ast.Expr) {
		t := info.TypeOf(e)
		if t == nil || !copiesLockValue(e, t) {
			return
		}
		pass.Reportf(e.Pos(),
			"copies %s by value, and it contains a sync primitive; the copy's lock state diverges from the original (use a pointer)",
			types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				copyDiag(rhs)
			}
		case *ast.CallExpr:
			if _, _, isLockOp := syncLockOp(info, pass.Pkg.Path(), n); isLockOp {
				return true
			}
			for _, arg := range n.Args {
				copyDiag(arg)
			}
		}
		return true
	})
}

// copiesLockValue reports whether evaluating e copies an existing value
// whose type contains a sync primitive: a read of a variable, field,
// element or dereference — not a fresh literal, call result, or address.
func copiesLockValue(e ast.Expr, t types.Type) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return containsSyncPrimitive(t, map[types.Type]bool{})
}

func containsSyncPrimitive(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool":
				return true
			}
		}
		return containsSyncPrimitive(n.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncPrimitive(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncPrimitive(u.Elem(), seen)
	}
	return false
}
