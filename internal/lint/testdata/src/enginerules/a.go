// Fixture for dmtvet/enginerules: engine-mutation APIs called from simnet
// node event handlers. The fixture imports the real engine package so the
// receiver types match production code exactly.
package fixture

import (
	"time"

	"repro/internal/simnet"
)

type proto struct {
	net *simnet.Network
}

func (p *proto) HandleMessage(net *simnet.Network, msg simnet.Message) {
	net.Kill(msg.From)                         // want `\(\*simnet\.Network\)\.Kill kills a node and is only legal at serial points`
	net.Revive(msg.From)                       // want `\(\*simnet\.Network\)\.Revive revives a node`
	net.RemoveNode(msg.From)                   // want `\(\*simnet\.Network\)\.RemoveNode deletes a node`
	net.ScheduleSystem(time.Second, func() {}) // want `\(\*simnet\.Network\)\.ScheduleSystem schedules a system event`
	_ = net.Rand()                             // want `\(\*simnet\.Network\)\.Rand is the serial-point setup stream`
	p.net.Kill(msg.To)                         // want `\(\*simnet\.Network\)\.Kill kills a node`

	// Own-node actions are the legal handler vocabulary.
	net.Send(simnet.Message{From: msg.To, To: msg.From, Kind: "fixture.reply", Size: 8})
	_ = net.NodeRand(msg.To)
	net.Schedule(msg.To, time.Second, func() {
		net.Kill(msg.To) // want `\(\*simnet\.Network\)\.Kill kills a node`
	})
}

// Timer literals scheduled by handler-adjacent code are node events too.
func armTimer(net *simnet.Network, self simnet.NodeID) {
	net.Schedule(self, time.Second, func() {
		net.Revive(self) // want `\(\*simnet\.Network\)\.Revive revives a node`
	})
}

// HandlerFunc conversions wrap the literal as a message handler.
var _ = simnet.HandlerFunc(func(net *simnet.Network, msg simnet.Message) {
	net.RemoveNode(msg.To) // want `\(\*simnet\.Network\)\.RemoveNode deletes a node`
})

// Serial-point code — setup, system events — may mutate freely.
func setup(net *simnet.Network, churnAt time.Duration) {
	net.AddNode(1, simnet.HandlerFunc(func(*simnet.Network, simnet.Message) {}))
	net.ScheduleSystem(churnAt, func() {
		net.Kill(1)
		net.Revive(1)
	})
	_ = net.Rand()
}

func waived(net *simnet.Network, self simnet.NodeID) {
	net.Schedule(self, time.Second, func() {
		//dmtvet:allow enginerules fixture pins that a reasoned waiver suppresses the diagnostic
		net.Kill(self)
	})
}
