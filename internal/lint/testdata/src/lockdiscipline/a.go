// Fixture for dmtvet/lockdiscipline: no blocking operation while a mutex
// is held, no lock-order inversions, no re-acquiring a held lock class,
// no copying values containing sync primitives. The cross-function cases
// (blocking or re-locking through a helper) are exactly what the old
// per-function passes could not see.
package fixture

import (
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	state int
}

// --- blocking under a held lock ---

func sendUnderLock(s *server, ch chan int) {
	s.mu.Lock()
	ch <- s.state // want `channel send while holding repro/internal/serving/dmtvetfixture\.server\.mu`
	s.mu.Unlock()
}

func recvUnderDeferredUnlock(s *server, ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-ch // want `channel receive while holding repro/internal/serving/dmtvetfixture\.server\.mu`
}

func sleepDirectUnderLock(s *server) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding repro/internal/serving/dmtvetfixture\.server\.mu`
	s.mu.Unlock()
}

// nap's summary records that it blocks (time.Sleep), so calling it under
// a lock is a blocking event at the call site.
func nap() {
	time.Sleep(time.Millisecond)
}

func sleepViaHelperUnderLock(s *server) {
	s.mu.Lock()
	defer s.mu.Unlock()
	nap() // want `call to repro/internal/serving/dmtvetfixture\.nap, which may block \(time\.Sleep\) while holding`
}

func selectUnderLock(s *server, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select without default while holding repro/internal/serving/dmtvetfixture\.server\.mu`
	case v := <-ch:
		s.state = v
	}
}

func okSelectWithDefault(s *server, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		s.state = v
	default:
	}
}

func okSendAfterUnlock(s *server, ch chan int) {
	s.mu.Lock()
	v := s.state
	s.mu.Unlock()
	ch <- v
}

func okGoroutineOutsideLockScope(s *server, ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The spawned body runs on its own goroutine without this scope's
	// locks; its channel send is not a blocking event here.
	go func() { ch <- 1 }()
	s.state++
}

func waivedSend(s *server, ch chan int) {
	s.mu.Lock()
	//dmtvet:allow lockdiscipline fixture pins that a reasoned waiver suppresses the diagnostic
	ch <- s.state
	s.mu.Unlock()
}

// --- lock-order inversion (ABBA) ---

var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() {
	muA.Lock()
	muB.Lock() // want `acquiring repro/internal/serving/dmtvetfixture\.muB while holding repro/internal/serving/dmtvetfixture\.muA inverts the lock order observed at`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock() // want `acquiring repro/internal/serving/dmtvetfixture\.muA while holding repro/internal/serving/dmtvetfixture\.muB inverts the lock order observed at`
	muA.Unlock()
	muB.Unlock()
}

// --- self-deadlock, direct and through a helper ---

func doubleLock(s *server) {
	s.mu.Lock()
	s.mu.Lock() // want `acquiring repro/internal/serving/dmtvetfixture\.server\.mu while it is already held .*: self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

var gate sync.Mutex

// lockGate's summary records that it acquires the gate lock class.
func lockGate() {
	gate.Lock()
	gate.Unlock()
}

func reenterViaHelper() {
	gate.Lock()
	lockGate() // want `call to repro/internal/serving/dmtvetfixture\.lockGate acquires repro/internal/serving/dmtvetfixture\.gate, which is already held here: self-deadlock`
	gate.Unlock()
}

func okSequentialHelper() {
	lockGate() // lock released before we take it ourselves
	gate.Lock()
	gate.Unlock()
}

// --- shared read locks are not self-deadlock ---

type registry struct {
	mu   sync.RWMutex
	tags map[string]int
}

func okRecursiveRead(r *registry) int {
	r.mu.RLock()
	n := len(r.tags)
	r.mu.RUnlock()
	return n
}

// --- lock-value copies ---

type gauge struct {
	mu sync.Mutex
	n  int
}

func copyGauge(g *gauge) int {
	snap := *g // want `copies gauge by value, and it contains a sync primitive`
	return snap.n
}

func okPointerCopy(g *gauge) *gauge {
	p := g // copying the pointer shares the lock; fine
	return p
}
