// Fixture for dmtvet/maprange: order-dependent reductions over map
// iteration.
package fixture

import "sort"

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation over map iteration order`
	}
	return sum
}

func floatSumAssignForm(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v // want `floating-point accumulation over map iteration order`
	}
	return sum
}

func stringConcat(m map[string]string) string {
	var s string
	for k := range m {
		s += k // want `string concatenation over map iteration order`
	}
	return s
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append over map iteration order without a subsequent sort`
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeySum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k] // range over a sorted slice, not the map
	}
	return sum
}

func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is exact and commutative
	}
	return total
}

func perKeyMerge(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v // each key visited once; no cross-iteration order
	}
}

func perIterationLocal(m map[string][]float64) int {
	n := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v // accumulator local to the iteration
		}
		if s > 1 {
			n++
		}
	}
	return n
}

func waived(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//dmtvet:allow maprange sum feeds a tolerance check only, never encoded output
		sum += v
	}
	return sum
}
