// Fixture for dmtvet/detrand, type-checked as a package under
// repro/internal/serving — a wall-clock-legitimate package the analyzer
// must stay silent in.
package fixture

import (
	"math/rand"
	"time"
)

func timing() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func jitter() int {
	return rand.New(rand.NewSource(time.Now().UnixNano())).Intn(100)
}
