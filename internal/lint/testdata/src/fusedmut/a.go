// Fixture for dmtvet/fusedmut: the FusedLinear score matrix is immutable
// outside its constructor. The fixture declares a structural twin of
// svm.FusedLinear (the analyzer matches the type by name, because the
// real type's fields are unexported and unreachable from a fixture
// package) plus the constructor and accessor shapes of the real API.
package fixture

type fusedCell struct {
	tag int32
	w   float64
}

type FusedLinear struct {
	tags  []string
	bias  []float64
	rows  []float64
	cells []fusedCell
}

// NewFusedLinear is the one place allowed to write fields.
func NewFusedLinear(tags []string, dim int) *FusedLinear {
	f := &FusedLinear{}
	f.tags = tags
	f.bias = make([]float64, len(tags))
	f.rows = make([]float64, dim*len(tags))
	for i := range f.rows {
		f.rows[i] = 0
	}
	f.cells = append(f.cells, fusedCell{tag: 0, w: 1})
	return f
}

// Tags hands out the backing slice read-only, like the real API.
func (f *FusedLinear) Tags() []string { return f.tags }

func mutateField(f *FusedLinear) {
	f.rows = nil // want `write to FusedLinear field rows outside NewFusedLinear`
}

func mutateElement(f *FusedLinear) {
	f.rows[0] = 1 // want `write to FusedLinear backing array element outside NewFusedLinear`
}

func mutateCell(f *FusedLinear) {
	f.cells[0].w = 2 // want `write to FusedLinear backing array element outside NewFusedLinear`
}

func mutateViaAlias(f *FusedLinear) {
	rows := f.rows
	rows[3] = 1 // want `write to FusedLinear backing array element outside NewFusedLinear`
}

func mutateViaAccessor(f *FusedLinear) {
	f.Tags()[0] = "hijacked" // want `write to FusedLinear backing array element outside NewFusedLinear`
}

func incrementElement(f *FusedLinear) {
	f.bias[0]++ // want `write to FusedLinear backing array element outside NewFusedLinear`
}

func readOnly(f *FusedLinear, dst []float64) []float64 {
	if cap(dst) < len(f.tags) {
		dst = make([]float64, len(f.tags))
	}
	dst = dst[:len(f.tags)]
	for i := range dst {
		dst[i] = f.bias[i] // writes go to the caller's dst, reads from f
	}
	cells := f.cells
	for _, c := range cells {
		dst[c.tag] += c.w
	}
	_ = f.Tags()
	return dst
}

func rebuild(tags []string) *FusedLinear {
	return NewFusedLinear(tags, 16) // the contract: construct, don't patch
}

func waived(f *FusedLinear) {
	//dmtvet:allow fusedmut fixture pins that a reasoned waiver suppresses the diagnostic
	f.rows = nil
}

// --- cross-function cases: the old per-function pass could not see into
// helper bodies, so mutation by proxy slipped through ---

// patchRows's summary records that it writes through its parameter.
func patchRows(rows []float64) {
	for i := range rows {
		rows[i] = 0
	}
}

func mutateViaHelper(f *FusedLinear) {
	patchRows(f.rows) // want `FusedLinear backing memory passed to repro/internal/svmfixture\.patchRows, which mutates its parameter`
}

func mutateAliasViaHelper(f *FusedLinear) {
	rows := f.rows
	patchRows(rows) // want `FusedLinear backing memory passed to repro/internal/svmfixture\.patchRows, which mutates its parameter`
}

// sumRows only reads; passing backing memory to it is fine.
func sumRows(rows []float64) float64 {
	t := 0.0
	for _, v := range rows {
		t += v
	}
	return t
}

func okHelperReads(f *FusedLinear) float64 {
	return sumRows(f.rows)
}
