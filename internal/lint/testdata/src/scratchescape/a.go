// Fixture for dmtvet/scratchescape: pooled scratch must not escape the
// borrowing call.
package fixture

import "sync"

type workspace struct {
	arena []byte
	spans []int
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func getWorkspace() *workspace  { return wsPool.Get().(*workspace) }
func putWorkspace(w *workspace) { wsPool.Put(w) }

var published []byte

type holder struct {
	buf []byte
}

func escapeViaReturn() []byte {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return ws.arena // want `pooled scratch escapes the borrowing call via return`
}

func escapeViaReturnSlice() []byte {
	ws := getWorkspace()
	return ws.arena[:0] // want `pooled scratch escapes the borrowing call via return`
}

func escapeViaLocalAlias() []byte {
	ws := getWorkspace()
	buf := ws.arena
	trimmed := buf[1:]
	return trimmed // want `pooled scratch escapes the borrowing call via return`
}

func escapeViaField(h *holder) {
	ws := getWorkspace()
	h.buf = ws.arena // want `pooled scratch stored in a struct field`
}

func escapeViaPackageVar() {
	ws := getWorkspace()
	published = ws.arena // want `pooled scratch stored in package-level variable published`
}

func escapeViaChannel(ch chan []byte) {
	ws := getWorkspace()
	ch <- ws.arena // want `pooled scratch escapes the borrowing call via channel send`
}

func escapeViaDirectGet() *workspace {
	return wsPool.Get().(*workspace) // want `pooled scratch escapes the borrowing call via return`
}

func copyOutString() string {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return string(ws.arena) // conversion to string copies
}

func copyOutAppend(dst []byte) []byte {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return append(dst, ws.arena...) // append copies the bytes into dst
}

func internalReuse() int {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.arena = ws.arena[:0]
	ws.arena = append(ws.arena, 'x')
	ws.spans = append(ws.spans, len(ws.arena))
	return len(ws.spans)
}

func waivedReturn() []byte {
	ws := getWorkspace()
	//dmtvet:allow scratchescape fixture pins that a reasoned waiver suppresses the diagnostic
	return ws.arena
}

// --- function-value callback rule ---

func consume(b []byte) int { return len(b) }

func escapeViaCallbackParam(visit func([]byte)) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	visit(ws.arena) // want `pooled scratch passed to function value visit`
}

func escapeViaLocalFuncValue() {
	ws := getWorkspace()
	defer putWorkspace(ws)
	sink := func(b []byte) { published = b }
	sink(ws.arena) // want `pooled scratch passed to function value sink`
}

func okNamedFunctionCall() int {
	ws := getWorkspace()
	defer putWorkspace(ws)
	// Declared functions are checked on their own; the call is not an
	// escape at this site.
	return consume(ws.arena)
}

func okCallbackGetsCopy(visit func([]byte)) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	visit(append([]byte(nil), ws.arena...)) // append detaches the taint
}

func waivedCallback(visit func([]byte)) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	//dmtvet:allow scratchescape visit is consume-only by documented contract
	visit(ws.arena)
}

// --- cross-function cases: interprocedural summaries close the holes the
// old per-function pass provably missed (helper bodies were opaque) ---

// arenaOf's summary records that its parameter flows to its return value,
// so taint survives the call.
func arenaOf(ws *workspace) []byte { return ws.arena }

func escapeViaHelperReturn() []byte {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return arenaOf(ws) // want `pooled scratch escapes the borrowing call via return`
}

func escapeViaHelperAlias(h *holder) {
	ws := getWorkspace()
	buf := arenaOf(ws)
	h.buf = buf // want `pooled scratch stored in a struct field`
}

// stash's summary records that b escapes (stored into another object), so
// handing it pooled scratch publishes the buffer.
func stash(h *holder, b []byte) { h.buf = b }

func escapeViaHelperStore(h *holder) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	stash(h, ws.arena) // want `pooled scratch passed to repro/internal/textproc/dmtvetfixture\.stash, which retains or publishes its parameter`
}

// measure only reads its argument; no diagnostic.
func measure(b []byte) int { return len(b) }

func okHelperReads() int {
	ws := getWorkspace()
	defer putWorkspace(ws)
	return measure(ws.arena)
}

// --- pooled score scratch with a closure-capture escape ---

type scoreScratch struct {
	scores []float64
}

var scorePool = sync.Pool{New: func() any { return new(scoreScratch) }}

func getScoreScratch() *scoreScratch { return scorePool.Get().(*scoreScratch) }

var retained func() []float64

func escapeViaClosureCapture() {
	sc := getScoreScratch()
	retained = func() []float64 { return sc.scores } // want `pooled scratch escapes the borrowing call via return`
}
