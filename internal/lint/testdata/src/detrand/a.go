// Fixture for dmtvet/detrand, type-checked as a package under
// repro/internal/pace — a deterministic package where wall-clock reads
// and underived randomness are contract violations.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/runner"
)

// Config mirrors the repo's seeded-options idiom.
type Config struct {
	Seed int64
}

func wallClock() time.Duration {
	start := time.Now()                      // want `time\.Now reads the wall clock`
	defer func() { _ = time.Since(start) }() // want `time\.Since reads the wall clock`
	return 0
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	return rand.Intn(4)                // want `rand\.Intn draws from the global math/rand source`
}

func underivedSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.NewSource seed does not derive from runner\.DeriveSeed or a seed field`
}

func derivedSeeds(cfg Config, id int) {
	_ = rand.New(rand.NewSource(cfg.Seed + 31*int64(id)))
	_ = rand.New(rand.NewSource(runner.DeriveSeed(cfg.Seed, "fixture", "x")))
	s := runner.DeriveSeed(7, "local", "chain")
	src := rand.NewSource(s)
	_ = rand.New(src)
}

// derivedOffset derives a value from the run seed inside a helper whose
// name and call sites mention nothing seed-like. The interprocedural
// summary proves every return is seed-derived (SeedReturn), so the call
// below is accepted — the old syntactic pass false-positived here.
func derivedOffset(a int64, tag string) int64 {
	return runner.DeriveSeed(a, "fixture", tag)
}

func derivedThroughHelper(id int) *rand.Rand {
	return rand.New(rand.NewSource(derivedOffset(int64(id), "shard")))
}

func waived() time.Time {
	//dmtvet:allow detrand fixture pins that a reasoned waiver suppresses the diagnostic
	return time.Now()
}

func waivedSameLine() time.Time {
	return time.Now() //dmtvet:allow detrand end-of-line waivers are honored too
}
