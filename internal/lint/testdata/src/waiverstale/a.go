// Fixture for dmtvet/waiverstale: a //dmtvet:allow waiver that no longer
// suppresses any diagnostic of its analyzer is itself a diagnostic. The
// fixture runs detrand alongside the audit (type-checked under a
// deterministic package path), so it can pin all three behaviors: a used
// waiver stays silent, an unused waiver of a running analyzer is stale,
// and a waiver naming an analyzer outside the run set is left alone.
package fixture

import "time"

// The waiver suppresses a real detrand finding: used, not stale.
func usedWaiver() time.Time {
	//dmtvet:allow detrand fixture pins that a used waiver is not reported stale
	return time.Now()
}

// The code this waiver excused is long gone; the waiver itself is now the
// finding (reported on the waiver comment's own line).
func staleWaiver() int {
	//dmtvet:allow detrand the clock read here was removed ages ago // want `stale waiver: no detrand diagnostic left to suppress`
	return 4
}

// maprange is a legal waiver target but not in this run set; a subset run
// can say nothing about it, so the waiver is not audited.
func subsetSafe() int {
	//dmtvet:allow maprange subset runs must not flag other analyzers' waivers
	return 5
}
