// Fixture for dmtvet/goroleak: every spawned goroutine needs a join or
// cancel path — a channel op, select, close, WaitGroup.Done, or
// context-done reachable in its body, directly or through a callee whose
// summary joins. The named-function cases are interprocedural: the old
// syntactic passes could not see into a worker's body at the go site.
package fixture

import (
	"context"
	"sync"
)

var counter int

func leakyCompute() {
	go func() { // want `goroutine has no join or cancel path`
		counter++
	}()
}

func okWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter++
	}()
}

func okChannelDelivery(ch chan int) {
	// Delivering the result is the join: the receiver waits for it.
	go func() {
		ch <- 42
	}()
}

func okContextSelect(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-ch:
			counter += v
		}
	}()
}

// worker's summary joins: it ranges over a channel, so closing the
// channel drains it.
func worker(ch chan int) {
	for v := range ch {
		counter += v
	}
}

func okNamedWorker(ch chan int) {
	go worker(ch)
}

// namedCompute's summary has no join path; spawning it leaks.
func namedCompute() {
	counter++
}

func leakyNamedCompute() {
	go namedCompute() // want `goroutine has no join or cancel path`
}

func okFuncValue(f func()) {
	go f() // a function value's body is unresolvable; skipped by design
}

func waivedLeak() {
	//dmtvet:allow goroleak fixture pins that a reasoned waiver suppresses the diagnostic
	go func() {
		counter++
	}()
}
