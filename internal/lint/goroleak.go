package lint

import (
	"go/ast"

	"repro/internal/lint/analysis"
)

// GoroLeak turns the drain contracts of serving and realnet — every
// spawned goroutine is joined on Close, nothing outlives shutdown — into
// a vet-time diagnostic: a `go` statement whose body has no join or
// cancel path reachable (no channel operation, select, close,
// sync.WaitGroup.Done, or context-done call, directly or through a callee
// whose summary joins) is a goroutine nothing can wait for or stop.
//
// Delivering a result over a channel counts as a join path (the receiver
// is the join), as does closing a resource. Goroutines spawned through a
// function value are skipped: the body cannot be resolved statically.
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every spawned goroutine needs a join or cancel path: a channel op, select, close, " +
		"WaitGroup.Done, or context-done reachable in its body, so Close/drain can wait for it",
	Run: runGoroLeak,
}

func runGoroLeak(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			joins := false
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				joins = pass.Prog.BodyJoins(pass.TypesInfo, fun.Body)
			default:
				fi := pass.Prog.FuncOfCall(pass.TypesInfo, g.Call)
				if fi == nil {
					return true // function value or external body: unresolvable
				}
				joins = fi.Summary.Joins
			}
			if !joins {
				pass.Reportf(g.Pos(),
					"goroutine has no join or cancel path (no channel op, select, close, WaitGroup.Done, "+
						"or context-done reachable in its body); shutdown cannot drain it — wire a WaitGroup or done channel")
			}
			return true
		})
	}
	return nil, nil
}
