// Package lint implements dmtvet, the repo's custom static-analysis
// suite. Each analyzer turns one of ROADMAP.md's "Standing contracts" —
// until now enforced only by digest tests and runtime panics — into a
// compile-time diagnostic:
//
//	detrand         byte-determinism: no wall clock or underived
//	                randomness in the deterministic packages
//	maprange        byte-determinism: no order-dependent reductions over
//	                map iteration
//	scratchescape   fast-path rules: pooled scratch must not escape the
//	                borrowing call
//	enginerules     PDES engine rules: no engine mutation from node event
//	                handlers
//	fusedmut        fast-path rules: svm.FusedLinear is immutable after
//	                construction
//	lockdiscipline  concurrency rules: no blocking op while a mutex is
//	                held, no lock-order inversions, no lock-value copies
//	goroleak        drain contracts: every spawned goroutine has a join
//	                or cancel path
//	waiverstale     waiver hygiene: a //dmtvet:allow that suppresses
//	                nothing is itself a diagnostic
//
// The analyzers are built on internal/lint/analysis (an offline,
// API-compatible stand-in for golang.org/x/tools/go/analysis, grown in
// this PR into an interprocedural engine: intra-module call graph plus
// deterministic per-function summaries — see analysis.Program/Summary).
// detrand, scratchescape, fusedmut, lockdiscipline and goroleak consume
// summaries, so their facts propagate across call boundaries. The suite
// runs via `go run ./cmd/dmtvet ./...`, which is a required CI step.
// Violations can be surgically suppressed with a
//
//	//dmtvet:allow <analyzer> <reason>
//
// comment on (or directly above) the offending line; the reason is
// mandatory and audited by the runner.
package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns the full dmtvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DetRand,
		EngineRules,
		FusedMut,
		GoroLeak,
		LockDiscipline,
		MapRange,
		ScratchEscape,
		WaiverStale,
	}
}

// init registers every suite name as a legal waiver target, so subset
// runs (`dmtvet -run detrand`) do not misreport other analyzers' waivers
// as malformed.
func init() {
	for _, a := range Analyzers() {
		analysis.RegisterWaiverNames(a.Name)
	}
}

// importedPackage resolves the package an identifier refers to when it
// names an import (e.g. the `rand` in rand.Intn), or nil.
func importedPackage(info *types.Info, x ast.Expr) *types.Package {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// calleeName returns the bare name of a call's callee: the function name
// of pkg.F(...) or x.M(...) or F(...), else "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// receiverNamed reports whether expr's type is the named type pkgPath.name
// (through one pointer indirection).
func receiverNamed(info *types.Info, expr ast.Expr, pkgPath, name string) bool {
	t := info.TypeOf(expr)
	return t != nil && namedIs(t, pkgPath, name)
}

// namedIs reports whether typ is the named type pkgPath.name, through one
// pointer indirection.
func namedIs(typ types.Type, pkgPath, name string) bool {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	n, ok := typ.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// underPath reports whether pkg is path itself or nested below it.
func underPath(pkg, path string) bool {
	return pkg == path || strings.HasPrefix(pkg, path+"/")
}
