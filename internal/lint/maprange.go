package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// MapRange flags order-dependent reductions over map iteration — the
// exact latent bug class behind the MacroF1 nondeterminism PR 1 fixed by
// hand. Go randomizes map iteration order, so inside a `for ... range m`
// over a map it reports:
//
//   - floating-point (or complex) accumulation into a variable that
//     outlives the loop: IEEE-754 addition is not associative, so the
//     sum's low bits depend on visit order;
//   - string concatenation into such a variable: the result depends
//     directly on visit order;
//   - appends into an outer slice with no subsequent sort of that slice
//     anywhere later in the function: the element order leaks iteration
//     order into anything that compares or encodes the slice.
//
// Integer accumulation is exact and commutative and therefore allowed, as
// is the standard collect-then-sort idiom (append keys, sort, iterate
// sorted keys).
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag order-dependent reductions over map iteration: float accumulation, " +
		"string concatenation, or appends never sorted afterwards",
	Run: runMapRange,
}

func runMapRange(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypesInfo.TypeOf(rng.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRangeBody(pass, fd, rng)
				return true
			})
		}
	}
	return nil, nil
}

func checkMapRangeBody(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			checkAccumulate(pass, rng, as.Lhs[0], as.Tok)
		case token.ASSIGN:
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				// x = x + v and x = append(x, ...) forms.
				if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && calleeName(call) == "append" {
					checkAppend(pass, fd, rng, as.Lhs[0], call)
					return true
				}
				if selfReferential(pass.TypesInfo, as.Lhs[0], as.Rhs[0]) {
					checkAccumulate(pass, rng, as.Lhs[0], token.ADD_ASSIGN)
				}
			}
		}
		return true
	})
}

// checkAccumulate reports lhs op= ... inside a map range when lhs is an
// order-sensitive accumulator (float/complex/string) that outlives the
// loop body.
func checkAccumulate(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr, tok token.Token) {
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return
	}
	info := b.Info()
	isFloat := info&(types.IsFloat|types.IsComplex) != 0
	isString := info&types.IsString != 0 && tok == token.ADD_ASSIGN
	if !isFloat && !isString {
		return
	}
	if obj := rootObject(pass.TypesInfo, lhs); obj != nil && within(obj.Pos(), rng.Body) {
		return // per-iteration local, dies before order can matter
	}
	// dst[k] += v indexed by the range key itself visits every slot at
	// most once, so no two iterations' order can interact.
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		if keyID, ok := rng.Key.(*ast.Ident); ok && keyID.Name != "_" {
			keyObj := pass.TypesInfo.Defs[keyID]
			if keyObj == nil {
				keyObj = pass.TypesInfo.Uses[keyID]
			}
			if idxID, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && keyObj != nil &&
				pass.TypesInfo.Uses[idxID] == keyObj {
				return
			}
		}
	}
	what := "floating-point accumulation"
	if isString {
		what = "string concatenation"
	}
	pass.Reportf(lhs.Pos(),
		"%s over map iteration order is nondeterministic; iterate sorted keys instead", what)
}

// checkAppend reports x = append(x, ...) inside a map range when x
// outlives the loop and the function never sorts x afterwards.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, lhs ast.Expr, call *ast.CallExpr) {
	// Targets rooted anywhere in the range statement — a per-iteration
	// local, or the range key/value binding itself (appending into a
	// field of the current element is per-element state, not a reduction
	// over the iteration) — cannot leak iteration order.
	obj := rootObject(pass.TypesInfo, lhs)
	if obj == nil || within(obj.Pos(), rng) {
		return
	}
	// Only the self-accumulating form append(x, ...) into x leaks
	// iteration order into x.
	if len(call.Args) == 0 || rootObject(pass.TypesInfo, call.Args[0]) != obj {
		return
	}
	if sortedLater(pass.TypesInfo, fd, rng, obj) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"append over map iteration order without a subsequent sort leaks nondeterministic element order")
}

// sortedLater reports whether fd's body, at or after the range statement,
// contains a call that sorts obj: sort.*/slices.Sort* with obj among the
// arguments, or any call whose name contains "Sort" taking obj.
func sortedLater(info *types.Info, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.End() < rng.Pos() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		sorting := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if pkg := importedPackage(info, sel.X); pkg != nil {
				p := pkg.Path()
				sorting = p == "sort" || p == "slices"
			}
		}
		if !sorting && !containsSort(name) {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(info, arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func containsSort(name string) bool {
	for i := 0; i+4 <= len(name); i++ {
		if name[i] == 'S' || name[i] == 's' {
			if (name[i+1]|0x20) == 'o' && (name[i+2]|0x20) == 'r' && (name[i+3]|0x20) == 't' {
				return true
			}
		}
	}
	return false
}

// selfReferential reports whether rhs mentions the same object lhs roots
// at (the x = x + v accumulation shape).
func selfReferential(info *types.Info, lhs, rhs ast.Expr) bool {
	obj := rootObject(info, lhs)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// rootObject resolves the variable an lvalue expression ultimately roots
// at: x, x.f, x[i] all root at x's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[t]; obj != nil {
				return obj
			}
			return info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside node's source range.
func within(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos <= node.End()
}
