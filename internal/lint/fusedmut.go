package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// fusedTypeName matches the immutable fused score matrix type wherever it
// is declared. Matching by name (rather than pinning repro/internal/svm)
// keeps the check meaningful in analysistest fixtures, which cannot reach
// svm's unexported fields from a fake package path; no other FusedLinear
// type exists in the module.
const fusedTypeName = "FusedLinear"

// fusedConstructor prefixes the only functions allowed to write
// FusedLinear fields (NewFusedLinear, NewFusedLinearLayout): the
// rebuild-on-swap contract says every bank change constructs a fresh
// matrix instead of patching the live one.
const fusedConstructor = "NewFusedLinear"

// FusedMut enforces the FusedLinear immutability contract: outside
// NewFusedLinear, any write to a FusedLinear field — directly
// (f.rows[i] = w), through a local alias (rows := f.rows; rows[i] = w), or
// through an alias returned by one of its methods (f.Tags()[0] = ...) —
// is reported. A constructed matrix is shared read-only across shards and
// generations; mutating it in place races with concurrent scoring and
// silently breaks the bit-identical-to-DotDense pinning.
var FusedMut = &analysis.Analyzer{
	Name: "fusedmut",
	Doc: "svm.FusedLinear is immutable after construction: report writes to its fields or " +
		"backing arrays outside NewFusedLinear (rebuild on retrain/Refine/Swap instead)",
	Run: runFusedMut,
}

func runFusedMut(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || strings.HasPrefix(fd.Name.Name, fusedConstructor) {
				continue
			}
			checkFusedFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFusedFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	aliases := map[types.Object]bool{}

	// Taint locals that alias FusedLinear backing memory: assignments
	// from a field selection (rows := f.rows) or from an alias-returning
	// method call (tags := f.Tags()).
	for range 8 {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || !fusedAliased(info, aliases, as.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !aliases[obj] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	report := func(pos ast.Node, how string) {
		pass.Reportf(pos.Pos(),
			"write to FusedLinear %s outside %s violates the rebuild-on-swap immutability contract; "+
				"construct a fresh matrix instead", how, fusedConstructor)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if how, bad := fusedWriteTarget(info, aliases, lhs); bad {
					report(lhs, how)
				}
			}
		case *ast.IncDecStmt:
			if how, bad := fusedWriteTarget(info, aliases, n.X); bad {
				report(n.X, how)
			}
		case *ast.CallExpr:
			// Handing FusedLinear backing memory to a callee whose summary
			// says it mutates that parameter is a write by proxy
			// (patchRows(f.rows) with func patchRows(rows [][]float64)
			// { rows[0][0] = ... }) — the cross-function hole the old
			// per-function pass could not see. Constructor-prefixed callees
			// are exempt, same as direct writes.
			callee := pass.Prog.FuncOfCall(info, n)
			if callee == nil || strings.HasPrefix(callee.Func.Name(), fusedConstructor) {
				return true
			}
			exprs, idx := pass.Prog.CallArgs(info, n, callee)
			for i, arg := range exprs {
				if idx[i] < len(callee.Summary.Params) &&
					callee.Summary.Params[idx[i]]&analysis.ParamMutated != 0 &&
					(fusedAliased(info, aliases, arg) || fusedReceiver(info, arg)) {
					pass.Reportf(arg.Pos(),
						"FusedLinear backing memory passed to %s, which mutates its parameter, violates the rebuild-on-swap immutability contract; construct a fresh matrix instead", callee.ID)
				}
			}
		}
		return true
	})
}

// fusedWriteTarget classifies an lvalue: is it a FusedLinear field or an
// element of a FusedLinear backing array?
func fusedWriteTarget(info *types.Info, aliases map[types.Object]bool, lhs ast.Expr) (string, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		if fusedReceiver(info, l.X) {
			return "field " + l.Sel.Name, true
		}
		// Field of an element of a backing array: f.cells[0].w = ...
		if fusedAliased(info, aliases, l.X) {
			return "backing array element", true
		}
	case *ast.IndexExpr:
		if fusedAliased(info, aliases, l.X) {
			return "backing array element", true
		}
	case *ast.StarExpr:
		if fusedAliased(info, aliases, l.X) {
			return "backing memory", true
		}
	}
	return "", false
}

// fusedReceiver reports whether expr has type (*)FusedLinear.
func fusedReceiver(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == fusedTypeName
}

// fusedAliased reports whether e aliases FusedLinear backing memory: a
// field selection on a FusedLinear, a method call on one returning a
// slice, a slice/index over such an alias, or a tainted local.
func fusedAliased(info *types.Info, aliases map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && aliases[obj]
	case *ast.SelectorExpr:
		return fusedReceiver(info, e.X) || fusedAliased(info, aliases, e.X)
	case *ast.IndexExpr:
		return fusedAliased(info, aliases, e.X)
	case *ast.SliceExpr:
		return fusedAliased(info, aliases, e.X)
	case *ast.StarExpr:
		return fusedAliased(info, aliases, e.X)
	case *ast.CallExpr:
		// A method on FusedLinear returning a slice hands out backing
		// memory (Tags); value-returning methods (Score with dst=nil
		// allocates fresh) do not — except ScoreInto, whose result may
		// reuse the caller's own dst, which is the caller's memory, not
		// the matrix's. Only slice results of receiver methods with no
		// arguments are treated as aliases.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && len(e.Args) == 0 && fusedReceiver(info, sel.X) {
			if t := info.TypeOf(e); t != nil {
				_, isSlice := t.Underlying().(*types.Slice)
				return isSlice
			}
		}
	}
	return false
}
