// Package analysistest runs dmtvet analyzers over seeded source fixtures
// and checks their diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-repo analysis
// framework.
//
// A fixture is a directory of Go files forming one package. Lines that
// must be diagnosed carry a trailing comment
//
//	// want `regexp` [`regexp` ...]
//
// with one regexp per expected diagnostic on that line (double quotes work
// too). The harness fails the test on any unexpected diagnostic and on
// any unmet expectation, so fixtures prove both that an analyzer fires
// and that it stays silent. Waiver comments (//dmtvet:allow) are honored
// exactly as in a real dmtvet run, so fixtures can also pin the
// suppression behavior.
//
// Fixtures may import real module packages (e.g. repro/internal/simnet)
// and the standard library: imports resolve through the go command's
// export data, the same path the dmtvet loader uses.
package analysistest

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

var (
	exportsOnce sync.Once
	exports     *analysis.Exports
	exportsErr  error
)

// sharedExports returns a process-wide export data resolver rooted at the
// enclosing module, so repeated fixture runs reuse one cache.
func sharedExports() (*analysis.Exports, error) {
	exportsOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			exportsErr = err
			return
		}
		root, err := analysis.ModuleRoot(cwd)
		if err != nil {
			exportsErr = err
			return
		}
		exports = analysis.NewExports(root)
	})
	return exports, exportsErr
}

// expectation is one // want regexp anchored to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// wantRe extracts the quoted or backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run applies analyzer to the fixture package in dir, type-checked under
// import path pkgPath, and reports mismatches between its diagnostics and
// the fixture's // want comments via t.
func Run(t *testing.T, analyzer *analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	RunAnalyzers(t, []*analysis.Analyzer{analyzer}, dir, pkgPath)
}

// RunAnalyzers is Run for a set of analyzers sharing one fixture — needed
// by checks that only exist in combination, like the stale-waiver audit,
// which fires when another analyzer's waiver suppresses nothing.
func RunAnalyzers(t *testing.T, analyzers []*analysis.Analyzer, dir, pkgPath string) {
	t.Helper()
	e, err := sharedExports()
	if err != nil {
		t.Fatalf("resolving module root: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".go") {
			files = append(files, filepath.Join(dir, ent.Name()))
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	pkg, err := e.CheckFiles(fset, pkgPath, files)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				// A want may open the comment or ride at the end of another
				// marker comment ("//dmtvet:allow ... // want ..."), which is
				// how fixtures expect diagnostics reported on a waiver's own
				// line, like the stale-waiver audit's.
				switch i := strings.LastIndex(text, "// want "); {
				case strings.HasPrefix(text, "want "):
					text = strings.TrimPrefix(text, "want ")
				case i >= 0:
					text = text[i+len("// want "):]
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(text, -1)
				if len(matches) == 0 {
					t.Errorf("%s:%d: malformed want comment: %q", pos.Filename, pos.Line, c.Text)
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	prog := analysis.NewProgram(fset, []*analysis.Package{pkg})
	diags, err := analysis.RunPackage(prog, pkg, analyzers)
	if err != nil {
		t.Fatalf("running fixture analyzers: %v", err)
	}
	for _, d := range diags {
		if d.Waived {
			continue // suppressed exactly as in a production run
		}
		matched := false
		for _, w := range wants {
			if !w.met && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", d.File, d.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
