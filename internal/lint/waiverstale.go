package lint

import (
	"repro/internal/lint/analysis"
)

// WaiverStale keeps the suppression system honest: a //dmtvet:allow
// comment whose analyzer no longer reports anything on the covered lines
// is itself a diagnostic. Waivers are point-in-time justifications; once
// the code they excused is gone, the stale comment would silently swallow
// the next genuine finding on that line.
//
// The check is implemented by the runner (AuditWaivers), which already
// tracks which waivers suppressed a diagnostic during the run: whatever
// remains unused when every analyzer has finished is stale. Only waivers
// naming analyzers in the current run set are audited — running a subset
// (`dmtvet -run detrand`) never flags another analyzer's waivers.
var WaiverStale = &analysis.Analyzer{
	Name: "waiverstale",
	Doc: "a //dmtvet:allow waiver that no longer suppresses any diagnostic of its analyzer " +
		"is itself a diagnostic: delete it or re-justify it",
	AuditWaivers: true,
	Run:          func(*analysis.Pass) (any, error) { return nil, nil },
}
