package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// ScratchEscape enforces the fast-path scratch contract: a pooled scratch
// workspace (textproc's wsPool workspaces, lsh's sigPool signature
// scratch, or any future sync.Pool-backed buffer) must not outlive the
// call that borrowed it. Everything handed to callers must be copied out
// first — otherwise a later borrower of the same workspace silently
// rewrites bytes the first caller still holds.
//
// The analyzer taints every local bound to a pool borrow — a call to a
// get*-style pool accessor (getWorkspace and friends) or a direct
// (*sync.Pool).Get — and everything that aliases its memory: field
// selections, index/slice expressions, slice conversions, appends onto a
// tainted slice and composite literals embedding one. It reports tainted
// values that escape via a return statement, a channel send, a write to a
// package-level variable, a write into a field of anything that is not
// itself the workspace, or an argument to a function VALUE (a callback
// parameter, local or field — unlike a declared function, its body cannot
// be checked here, so retention must be ruled out by contract: the
// streaming visit callbacks carry a reasoned waiver). Copying conversions
// (string(ws.arena)) and calls to declared functions (the callee gets its
// own diagnostic if it leaks) detach the taint.
var ScratchEscape = &analysis.Analyzer{
	Name: "scratchescape",
	Doc: "pooled scratch workspaces must not escape the borrowing call: no returning, " +
		"channel-sending, or storing a pooled buffer (or a slice aliasing one) outside the call",
	Run: runScratchEscape,
}

func runScratchEscape(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScratchFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkScratchFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// The pool accessor itself (getWorkspace and friends) is the borrow
	// point: returning the pooled value is its entire job.
	if isBorrowName(fd.Name.Name) {
		return
	}
	info := pass.TypesInfo
	tainted := map[types.Object]bool{}

	// Seed and propagate taint to a fixed point: each pass taints locals
	// assigned from a tainted expression; a handful of rounds covers any
	// realistic chain of local aliases.
	for range 8 {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				var rhs ast.Expr
				switch {
				case len(as.Rhs) == len(as.Lhs):
					rhs = as.Rhs[i]
				case len(as.Rhs) == 1:
					rhs = as.Rhs[0] // multi-value: taint all LHS conservatively
				default:
					continue
				}
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if !scratchTainted(pass, tainted, rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if scratchTainted(pass, tainted, res) {
					pass.Reportf(res.Pos(),
						"pooled scratch escapes the borrowing call via return; copy the bytes out instead")
				}
			}
		case *ast.SendStmt:
			if scratchTainted(pass, tainted, n.Value) {
				pass.Reportf(n.Value.Pos(),
					"pooled scratch escapes the borrowing call via channel send; copy the bytes out instead")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !scratchTainted(pass, tainted, n.Rhs[i]) {
					continue
				}
				checkScratchStore(pass, tainted, lhs)
			}
		case *ast.CallExpr:
			// A declared function's body gets its own diagnostics, but a
			// function VALUE (callback parameter, local func variable,
			// func-typed field) is opaque here: it may stash the slice
			// anywhere. Handing it pooled scratch is safe only under a
			// documented consume-only contract, which a waiver records.
			if name := funcValueCallee(info, n); name != "" {
				for _, arg := range n.Args {
					if scratchTainted(pass, tainted, arg) {
						pass.Reportf(arg.Pos(),
							"pooled scratch passed to function value %s may be retained beyond the borrowing call; copy the bytes out, or waive with a documented consume-only contract", name)
					}
				}
				return true
			}
			// A declared callee whose summary says a parameter escapes
			// (stored in a global, another object, or sent away) publishes
			// the scratch just as surely as doing it here — the
			// cross-function hole the old per-function pass could not see.
			callee := pass.Prog.FuncOfCall(info, n)
			if callee == nil || isBorrowName(callee.Func.Name()) {
				return true
			}
			exprs, idx := pass.Prog.CallArgs(info, n, callee)
			for i, arg := range exprs {
				if idx[i] < len(callee.Summary.Params) &&
					callee.Summary.Params[idx[i]]&analysis.ParamEscapes != 0 &&
					scratchTainted(pass, tainted, arg) {
					pass.Reportf(arg.Pos(),
						"pooled scratch passed to %s, which retains or publishes its parameter; copy the bytes out before the call", callee.ID)
				}
			}
		}
		return true
	})
}

// funcValueCallee returns the display name of call's callee when it is a
// func-typed variable — a callback parameter, a local func value or a
// func-typed struct field — and "" for everything else: declared
// functions and methods (*types.Func), builtins, and type conversions.
func funcValueCallee(info *types.Info, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok {
		return ""
	}
	if _, isFunc := obj.Type().Underlying().(*types.Signature); !isFunc {
		return ""
	}
	return id.Name
}

// checkScratchStore reports stores of tainted values into locations that
// outlive the call: package-level variables, and fields or elements of
// anything that is not itself part of the workspace.
func checkScratchStore(pass *analysis.Pass, tainted map[types.Object]bool, lhs ast.Expr) {
	info := pass.TypesInfo
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := info.Uses[l]
		if obj == nil {
			obj = info.Defs[l]
		}
		if obj != nil && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(),
				"pooled scratch stored in package-level variable %s outlives the borrowing call", l.Name)
		}
	case *ast.SelectorExpr:
		// Writing back into the workspace itself (ws.arena = append(...))
		// is the normal reuse pattern; writing into any other struct's
		// field publishes the buffer.
		if !scratchTainted(pass, tainted, l.X) {
			pass.Reportf(lhs.Pos(),
				"pooled scratch stored in a struct field outlives the borrowing call; copy the bytes out instead")
		}
	case *ast.IndexExpr:
		base := rootObject(info, l.X)
		if scratchTainted(pass, tainted, l.X) {
			return
		}
		if base != nil && base.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(),
				"pooled scratch stored in package-level container %s outlives the borrowing call", base.Name())
		}
	}
}

// scratchTainted reports whether e evaluates to pooled scratch memory or
// something aliasing it.
func scratchTainted(pass *analysis.Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	info := pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.IndexExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.SliceExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.StarExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.UnaryExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.TypeAssertExpr:
		return scratchTainted(pass, tainted, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if scratchTainted(pass, tainted, el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if isPoolBorrow(info, e) {
			return true
		}
		switch calleeName(e) {
		case "append":
			// append copies the appended values; the result aliases
			// only the destination slice.
			return len(e.Args) > 0 && scratchTainted(pass, tainted, e.Args[0])
		}
		// A conversion keeps the backing array for slice->slice shapes
		// and copies for string/basic targets.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			t := tv.Type.Underlying()
			if _, isSlice := t.(*types.Slice); isSlice {
				return scratchTainted(pass, tainted, e.Args[0])
			}
			return false
		}
		// A callee whose summary says a parameter flows to its return
		// value passes the alias through (func arenaOf(ws *workspace)
		// []byte { return ws.arena }) — taint survives the call, closing
		// the old per-function pass's blind spot. Other calls are assumed
		// to copy; escaping callees are reported at the call site.
		if callee := pass.Prog.FuncOfCall(info, e); callee != nil && !isPoolBorrow(info, e) {
			exprs, idx := pass.Prog.CallArgs(info, e, callee)
			for i, arg := range exprs {
				if idx[i] < len(callee.Summary.Params) &&
					callee.Summary.Params[idx[i]]&analysis.ParamFlowsToReturn != 0 &&
					scratchTainted(pass, tainted, arg) {
					return true
				}
			}
		}
		return false
	}
	return false
}

// isPoolBorrow reports whether call borrows from a pool: a direct
// (*sync.Pool).Get, or a call to a function whose name starts with "get"
// and whose body is a pool Get (matched by name: getWorkspace, etc.).
func isPoolBorrow(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Get" && receiverNamed(info, sel.X, "sync", "Pool") {
			return true
		}
	}
	return isBorrowName(calleeName(call))
}

// isBorrowName matches the naming convention of pool accessor functions:
// getWorkspace, getScratch, etc.
func isBorrowName(name string) bool {
	return len(name) > 3 && name[:3] == "get" &&
		(containsFold(name, "workspace") || containsFold(name, "scratch"))
}

func containsFold(s, sub string) bool {
	if len(sub) > len(s) {
		return false
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			if s[i+j]|0x20 != sub[j]|0x20 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
