package textproc

import (
	"strings"
	"testing"
)

// benchDoc is a realistic ~120-word document for preprocessing benchmarks.
var benchDoc = strings.Repeat(
	"the quick brown foxes are jumping over lazy dogs while photographers "+
		"adjusted their cameras and the orchestra's conductor rehearsed a "+
		"difficult symphony movement before tonight's concert performance ", 4)

func BenchmarkTokenize(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchDoc)
	}
}

func BenchmarkVectorize(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"lexicon", Options{Normalize: true}},
		{"hashed", Options{Normalize: true, HashDim: 4096}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := NewPreprocessor(nil, mode.opts)
			p.Vectorize(benchDoc) // warm the lexicon
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Vectorize(benchDoc)
			}
		})
	}
}
