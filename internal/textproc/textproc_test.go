package textproc

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"x2 42 3d-printing", []string{"x2", "3d", "printing"}},
		{"", nil},
		{"   \t\n", nil},
		{"C'est déjà vu", []string{"c'est", "déjà", "vu"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestTokenizeApostrophes pins the apostrophe contract: internal ones stay
// (contractions must match stop words), leading and trailing ones go, so a
// possessive or close-quoted word tokenizes identically to the bare word.
func TestTokenizeApostrophes(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"the dogs' bones", []string{"the", "dogs", "bones"}},
		{"dogs' dogs", []string{"dogs", "dogs"}},
		{"James' and James's books", []string{"james", "and", "james's", "books"}},
		{"'quoted words'", []string{"quoted", "words"}},
		{"rock 'n' roll", []string{"rock", "n", "roll"}},
		{"don't won't can't", []string{"don't", "won't", "can't"}},
		{"trailing''", []string{"trailing"}},
		{"''", nil},
		{"o''brien", []string{"o''brien"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// The property the fix restores: a possessive shares its token (and
	// hence its lexicon id) with the bare word.
	if a, b := Tokenize("dogs'")[0], Tokenize("dogs")[0]; a != b {
		t.Errorf("possessive token %q != bare token %q", a, b)
	}
}

func TestStemKnownPairs(t *testing.T) {
	// Reference pairs from Porter's published vocabulary.
	cases := map[string]string{
		"caresses":       "caress",
		"ponies":         "poni",
		"ties":           "ti",
		"caress":         "caress",
		"cats":           "cat",
		"feed":           "feed",
		"agreed":         "agre",
		"plastered":      "plaster",
		"bled":           "bled",
		"motoring":       "motor",
		"sing":           "sing",
		"conflated":      "conflat",
		"troubled":       "troubl",
		"sized":          "size",
		"hopping":        "hop",
		"tanned":         "tan",
		"falling":        "fall",
		"hissing":        "hiss",
		"fizzed":         "fizz",
		"failing":        "fail",
		"filing":         "file",
		"happy":          "happi",
		"sky":            "sky",
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		"triplicate":     "triplic",
		"formative":      "form",
		"formalize":      "formal",
		"electriciti":    "electr",
		"electrical":     "electr",
		"hopeful":        "hope",
		"goodness":       "good",
		"revival":        "reviv",
		"allowance":      "allow",
		"inference":      "infer",
		"airliner":       "airlin",
		"gyroscopic":     "gyroscop",
		"adjustable":     "adjust",
		"defensible":     "defens",
		"irritant":       "irrit",
		"replacement":    "replac",
		"adjustment":     "adjust",
		"dependent":      "depend",
		"adoption":       "adopt",
		"homologou":      "homolog",
		"communism":      "commun",
		"activate":       "activ",
		"angulariti":     "angular",
		"homologous":     "homolog",
		"effective":      "effect",
		"bowdlerize":     "bowdler",
		"probate":        "probat",
		"rate":           "rate",
		"cease":          "ceas",
		"controll":       "control",
		"roll":           "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortAndNonASCII(t *testing.T) {
	for _, w := range []string{"", "a", "be", "déjà", "c3po"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming an already-stemmed common word should usually be stable; we
	// verify it never panics and never grows the word for random inputs.
	f := func(s string) bool {
		if len(s) > 50 {
			s = s[:50]
		}
		out := Stem(s)
		return len(out) <= len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLexicon(t *testing.T) {
	l := NewLexicon()
	a := l.ID("apple")
	b := l.ID("banana")
	if a == b {
		t.Fatal("distinct words share an id")
	}
	if got := l.ID("apple"); got != a {
		t.Errorf("second ID(apple) = %d, want %d", got, a)
	}
	if w := l.Word(a); w != "apple" {
		t.Errorf("Word(%d) = %q", a, w)
	}
	if w := l.Word(999); w != "" {
		t.Errorf("Word(999) = %q, want empty", w)
	}
	if w := l.Word(-1); w != "" {
		t.Errorf("Word(-1) = %q, want empty", w)
	}
	if _, ok := l.Lookup("cherry"); ok {
		t.Error("Lookup of unseen word succeeded")
	}
	if l.Size() != 2 {
		t.Errorf("Size = %d, want 2", l.Size())
	}
}

func TestLexiconConcurrent(t *testing.T) {
	l := NewLexicon()
	done := make(chan bool)
	words := []string{"w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"}
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				l.ID(words[i%len(words)])
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if l.Size() != len(words) {
		t.Errorf("Size = %d, want %d", l.Size(), len(words))
	}
}

func TestPreprocessorStopAndSensitive(t *testing.T) {
	p := NewPreprocessor(nil, Options{})
	p.AddSensitiveWords("SECRET")
	terms := p.Terms("The secret plans are not for the running dogs")
	for _, term := range terms {
		if term == "secret" || term == "the" || term == "not" {
			t.Errorf("filtered term %q survived: %v", term, terms)
		}
	}
	// "running" stems to "run", "dogs" to "dog", "plans" to "plan".
	want := map[string]bool{"plan": true, "run": true, "dog": true}
	for _, term := range terms {
		if !want[term] {
			t.Errorf("unexpected term %q in %v", term, terms)
		}
	}
	if len(terms) != 3 {
		t.Errorf("terms = %v, want 3 terms", terms)
	}
}

func TestVectorizeTermFrequency(t *testing.T) {
	p := NewPreprocessor(nil, Options{Weighting: TermFrequency})
	v := p.Vectorize("dog dog cat")
	dogID, ok := p.Lexicon().Lookup("dog")
	if !ok {
		t.Fatal("dog missing from lexicon")
	}
	if got := v.At(dogID); got != 2 {
		t.Errorf("tf(dog) = %v, want 2", got)
	}
}

func TestVectorizeNormalized(t *testing.T) {
	p := NewPreprocessor(nil, Options{Normalize: true})
	v := p.Vectorize("alpha beta gamma alpha")
	if n := v.Norm(); n < 0.999 || n > 1.001 {
		t.Errorf("norm = %v, want 1", n)
	}
}

func TestVectorizeTFIDFDampsCommonTerms(t *testing.T) {
	p := NewPreprocessor(nil, Options{Weighting: TFIDF})
	// "common" appears in every document, "rare" in one.
	p.Vectorize("common alpha")
	p.Vectorize("common beta")
	v := p.Vectorize("common rare")
	commonID, _ := p.Lexicon().Lookup("common")
	rareID, _ := p.Lexicon().Lookup("rare")
	if v.At(commonID) >= v.At(rareID) {
		t.Errorf("idf failed: common=%v rare=%v", v.At(commonID), v.At(rareID))
	}
}

func TestVectorizeAllSharesLexicon(t *testing.T) {
	p := NewPreprocessor(nil, Options{})
	vs := p.VectorizeAll([]string{"dog cat", "cat mouse"})
	if len(vs) != 2 {
		t.Fatalf("got %d vectors", len(vs))
	}
	catID, _ := p.Lexicon().Lookup("cat")
	if vs[0].At(catID) != 1 || vs[1].At(catID) != 1 {
		t.Error("cat id not shared across documents")
	}
}

// TestVectorizeBatchMatchesSerial pins the batch determinism contract:
// for every weighting scheme and any worker count, VectorizeBatch must
// produce the exact vectors (and the exact lexicon) that serial Vectorize
// calls produce in input order.
func TestVectorizeBatchMatchesSerial(t *testing.T) {
	texts := []string{
		"whales swim across the deep ocean",
		"the ship sailed the ocean at night",
		"a night train crossed the old bridge",
		"bridges and ships need steel and rivets",
		"deep learning has nothing to do with whales",
	}
	for _, w := range []Weighting{TermFrequency, LogTF, TFIDF} {
		serial := NewPreprocessor(nil, Options{Weighting: w, Normalize: true})
		want := make([]*vector.Sparse, len(texts))
		for i, txt := range texts {
			want[i] = serial.Vectorize(txt)
		}
		for _, parallel := range []int{1, 4, 0} {
			p := NewPreprocessor(nil, Options{Weighting: w, Normalize: true})
			got := p.VectorizeBatch(texts, parallel)
			for i := range texts {
				if got[i].String() != want[i].String() {
					t.Errorf("%s parallel=%d doc %d:\n got %s\nwant %s",
						w, parallel, i, got[i], want[i])
				}
			}
			if p.Lexicon().Size() != serial.Lexicon().Size() {
				t.Errorf("%s parallel=%d: lexicon size %d != %d",
					w, parallel, p.Lexicon().Size(), serial.Lexicon().Size())
			}
		}
	}
}

// TestVectorizeIntoMatchesVectorize pins the streaming terminal to the
// materialized path: for every weighting scheme, VectorizeInto must
// present byte-identical entries to what Vectorize returns for the same
// document at the same point in the df history — including the df/idf
// evolution across a corpus, checked on twin preprocessors fed the same
// texts in the same order.
func TestVectorizeIntoMatchesVectorize(t *testing.T) {
	texts := []string{
		"whales swim across the deep ocean",
		"the ship sailed the ocean at night",
		"a night train crossed the old bridge",
		"", // empty document: visit must still fire, with no entries
		"bridges and ships need steel and rivets",
		"deep learning has nothing to do with whales",
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"tf", Options{Normalize: true}},
		{"logtf", Options{Weighting: LogTF, Normalize: true}},
		{"tfidf", Options{Weighting: TFIDF, Normalize: true}},
		{"tfidf/raw", Options{Weighting: TFIDF}},
		{"hashed", Options{Normalize: true, HashDim: 1 << 12}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			mat := NewPreprocessor(nil, mode.opts)
			str := NewPreprocessor(nil, mode.opts)
			for i, txt := range texts {
				want := mat.Vectorize(txt)
				visited := false
				str.VectorizeInto(txt, func(entries []vector.Entry) {
					visited = true
					we := want.Entries()
					if len(entries) != len(we) {
						t.Fatalf("doc %d: %d streamed entries, want %d", i, len(entries), len(we))
					}
					for k := range entries {
						if entries[k] != we[k] {
							t.Fatalf("doc %d entry %d: streamed %+v, materialized %+v",
								i, k, entries[k], we[k])
						}
					}
				})
				if !visited {
					t.Fatalf("doc %d: visit not called", i)
				}
			}
			if mat.Lexicon().Size() != str.Lexicon().Size() {
				t.Errorf("lexicon diverged: %d != %d", mat.Lexicon().Size(), str.Lexicon().Size())
			}
		})
	}
}

func TestTopTerms(t *testing.T) {
	p := NewPreprocessor(nil, Options{})
	v := p.Vectorize("whale whale whale ocean ocean ship")
	top := p.TopTerms(v, 2)
	if len(top) != 2 || top[0] != "whale" || top[1] != "ocean" {
		t.Errorf("TopTerms = %v", top)
	}
	all := p.TopTerms(v, 100)
	if len(all) != 3 {
		t.Errorf("TopTerms over-request = %v", all)
	}
}

func TestDefaultStopWordsIsCopy(t *testing.T) {
	a := DefaultStopWords()
	delete(a, "the")
	b := DefaultStopWords()
	if !b["the"] {
		t.Error("DefaultStopWords shares state between calls")
	}
}

func TestHashDimStableAcrossPreprocessors(t *testing.T) {
	// Two independently created preprocessors must map the same word to
	// the same feature id — the property real-network peers rely on.
	a := NewPreprocessor(nil, Options{HashDim: 1 << 16, Normalize: true})
	b := NewPreprocessor(nil, Options{HashDim: 1 << 16, Normalize: true})
	// Warm a's lexicon differently to prove it does not matter.
	a.Vectorize("completely different warmup words here")
	va := a.Vectorize("guitar melody concert")
	vb := b.Vectorize("guitar melody concert")
	if !va.Equal(vb) {
		t.Errorf("hashed vectors differ: %v vs %v", va, vb)
	}
	// Ids stay below the dimension bound.
	for _, e := range va.Entries() {
		if int(e.Index) >= 1<<16 {
			t.Errorf("feature id %d out of range", e.Index)
		}
	}
}
