package textproc

// Porter stemming algorithm (M.F. Porter, 1980), the normalization step the
// paper specifies for document preprocessing. This is a faithful
// implementation of the original five-step algorithm operating on
// lower-case ASCII words; non-ASCII words are returned unchanged.
//
// The steps mutate their input in place: no rule ever grows the word
// beyond its original length (every replacement suffix is at most as long
// as the suffix it replaces, and step1b's appended 'e' follows the removal
// of at least two bytes), so stemming needs no scratch beyond the word
// itself. StemBytes exploits this on the preprocessing fast path.

// Stem returns the Porter stem of word. The input is expected to be
// lower case; words shorter than 3 letters are returned unchanged, as in
// the reference implementation.
func Stem(word string) string {
	if !stemmable(word) {
		return word
	}
	b := append(make([]byte, 0, len(word)), word...)
	return string(stemASCII(b))
}

// StemBytes stems word in place and returns the (possibly shorter) stem,
// aliasing word's storage. Words that are not lower-case ASCII of length
// >= 3 are returned unchanged, exactly as Stem does. It never allocates.
func StemBytes(word []byte) []byte {
	if len(word) < 3 {
		return word
	}
	for _, c := range word {
		if c < 'a' || c > 'z' {
			return word
		}
	}
	return stemASCII(word)
}

// stemmable reports whether the Porter steps apply: length >= 3 and pure
// lower-case ASCII letters.
func stemmable(word string) bool {
	if len(word) < 3 {
		return false
	}
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c < 'a' || c > 'z' {
			return false
		}
	}
	return true
}

// stemASCII runs the five Porter steps, mutating b in place. Callers must
// own b's storage; the result is a prefix-length reslice of b.
func stemASCII(b []byte) []byte {
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return b
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// 'y' is a vowel when preceded by a consonant.
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	}
	return true
}

// measure returns m, the number of VC sequences in b[:k].
func measure(b []byte) int {
	m := 0
	i := 0
	n := len(b)
	for i < n && isConsonant(b, i) {
		i++
	}
	for i < n {
		for i < n && !isConsonant(b, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isConsonant(b, i) {
			i++
		}
	}
	return m
}

// containsVowel reports whether b contains a vowel.
func containsVowel(b []byte) bool {
	for i := range b {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b ends with a doubled consonant.
func endsDoubleConsonant(b []byte) bool {
	n := len(b)
	if n < 2 || b[n-1] != b[n-2] {
		return false
	}
	return isConsonant(b, n-1)
}

// endsCVC reports whether b ends consonant-vowel-consonant where the final
// consonant is not w, x or y ("*o" condition).
func endsCVC(b []byte) bool {
	n := len(b)
	if n < 3 {
		return false
	}
	if !isConsonant(b, n-3) || isConsonant(b, n-2) || !isConsonant(b, n-1) {
		return false
	}
	switch b[n-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	if len(b) < len(s) {
		return false
	}
	return string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r (in place — r is never longer
// than s in any Porter rule, so the write stays inside b) if the stem
// before s has measure greater than minM. Returns the (possibly shorter)
// word and whether the suffix matched (regardless of the measure test).
func replaceSuffix(b []byte, s, r string, minM int) ([]byte, bool) {
	if !hasSuffix(b, s) {
		return b, false
	}
	stem := b[:len(b)-len(s)]
	if measure(stem) > minM {
		return append(stem, r...), true
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b[:len(b)-3]) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	var stem []byte
	switch {
	case hasSuffix(b, "ed") && containsVowel(b[:len(b)-2]):
		stem = b[:len(b)-2]
	case hasSuffix(b, "ing") && containsVowel(b[:len(b)-3]):
		stem = b[:len(b)-3]
	default:
		return b
	}
	switch {
	case hasSuffix(stem, "at"), hasSuffix(stem, "bl"), hasSuffix(stem, "iz"):
		return append(stem, 'e')
	case endsDoubleConsonant(stem):
		last := stem[len(stem)-1]
		if last != 'l' && last != 's' && last != 'z' {
			return stem[:len(stem)-1]
		}
		return stem
	case measure(stem) == 1 && endsCVC(stem):
		return append(stem, 'e')
	}
	return stem
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && containsVowel(b[:len(b)-1]) {
		b[len(b)-1] = 'i'
	}
	return b
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceSuffix(b, r.suffix, r.repl, 0); matched {
			return out
		}
	}
	return b
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceSuffix(b, r.suffix, r.repl, 0); matched {
			return out
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stem := b[:len(b)-len(s)]
		if s == "ion" {
			// "ion" is only removed after s or t.
			if len(stem) == 0 || (stem[len(stem)-1] != 's' && stem[len(stem)-1] != 't') {
				return b
			}
		}
		if measure(stem) > 1 {
			return stem
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := b[:len(b)-1]
	m := measure(stem)
	if m > 1 || (m == 1 && !endsCVC(stem)) {
		return stem
	}
	return b
}

func step5b(b []byte) []byte {
	if hasSuffix(b, "ll") && measure(b) > 1 {
		return b[:len(b)-1]
	}
	return b
}
