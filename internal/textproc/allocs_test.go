//go:build !race

package textproc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/svm"
	"repro/internal/vector"
)

// Allocation-regression pins for the pooled preprocessing fast path.
// The race detector instruments allocations, so this file is build-gated
// out under -race rather than skipped at run time.

const allocDoc = "the quick brown foxes are jumping over the lazy dogs while " +
	"photographers adjusted their cameras and the conductor rehearsed a " +
	"difficult symphony movement before tonight's concert performance"

// TestVectorizeAllocBudget pins the steady-state Vectorize cost at 2
// allocations: the returned vector's entry slice and the Sparse header.
// Everything else — token arena, spans, stemming, term counting — runs on
// the pooled workspace.
func TestVectorizeAllocBudget(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"lexicon/tf", Options{Normalize: true}},
		{"lexicon/tfidf", Options{Weighting: TFIDF, Normalize: true}},
		{"hashed/tf", Options{Normalize: true, HashDim: 4096}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p := NewPreprocessor(nil, mode.opts)
			p.Vectorize(allocDoc) // warm lexicon, docFreq and pools
			got := testing.AllocsPerRun(200, func() { p.Vectorize(allocDoc) })
			if got > 2 {
				t.Errorf("Vectorize: %.1f allocs/op, budget 2", got)
			}
		})
	}
}

// TestVectorizeIntoZeroAlloc: the streaming terminal skips the two
// materialization allocations Vectorize pays, so a warm steady state
// allocates nothing at all.
func TestVectorizeIntoZeroAlloc(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"lexicon/tf", Options{Normalize: true}},
		{"lexicon/tfidf", Options{Weighting: TFIDF, Normalize: true}},
		{"hashed/tf", Options{Normalize: true, HashDim: 4096}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p := NewPreprocessor(nil, mode.opts)
			p.Vectorize(allocDoc) // warm lexicon, docFreq and pools
			visit := func(entries []vector.Entry) {}
			got := testing.AllocsPerRun(200, func() { p.VectorizeInto(allocDoc, visit) })
			if got > 0 {
				t.Errorf("VectorizeInto: %.1f allocs/op, want 0", got)
			}
		})
	}
}

// TestStreamingScoreAllocBudget pins the full streaming local score path —
// VectorizeInto feeding FusedLinear.ScoreEntriesInto through the blocked
// layout — at ≤2 allocs/op end to end (the ISSUE target; a warm run is 0).
func TestStreamingScoreAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dim = 4096
	bank := make(map[string]*svm.LinearModel, 12)
	for i := 0; i < 12; i++ {
		w := make([]float64, dim)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		bank[fmt.Sprintf("t%02d", i)] = &svm.LinearModel{W: w, Bias: 0.1}
	}
	fused := svm.NewFusedLinearLayout(bank, svm.LayoutBlocked)
	p := NewPreprocessor(nil, Options{Normalize: true, HashDim: dim})
	var scores []float64
	visit := func(entries []vector.Entry) { scores = fused.ScoreEntriesInto(entries, scores) }
	p.VectorizeInto(allocDoc, visit) // warm pools and score scratch
	got := testing.AllocsPerRun(200, func() { p.VectorizeInto(allocDoc, visit) })
	if got > 2 {
		t.Errorf("streaming score path: %.1f allocs/op, budget 2", got)
	}
}

// TestVectorizeBatchAllocBudget: the packed-arena hand-off costs two
// slices per document in the parallel phase plus the usual two
// materialization allocations in the serial tail (runner adds a constant
// per-batch overhead, amortized out by the 8-doc batch).
func TestVectorizeBatchAllocBudget(t *testing.T) {
	texts := make([]string, 8)
	for i := range texts {
		texts[i] = allocDoc
	}
	p := NewPreprocessor(nil, Options{Normalize: true})
	p.VectorizeBatch(texts, 1) // warm lexicon, docFreq and pools
	const perDoc = 4           // arena + offsets + entry slice + Sparse header
	budget := float64(len(texts)*perDoc + 8)
	got := testing.AllocsPerRun(50, func() { p.VectorizeBatch(texts, 1) })
	if got > budget {
		t.Errorf("VectorizeBatch: %.1f allocs/op for %d docs, budget %.0f", got, len(texts), budget)
	}
}

// TestTokenizeAllocBudget: Tokenize must cost exactly one slice plus one
// string per token — no builder or trim churn.
func TestTokenizeAllocBudget(t *testing.T) {
	warm := Tokenize(allocDoc)
	budget := float64(len(warm) + 1)
	got := testing.AllocsPerRun(200, func() { Tokenize(allocDoc) })
	if got > budget {
		t.Errorf("Tokenize: %.1f allocs/op for %d tokens, budget %.0f", got, len(warm), budget)
	}
}

// TestTermsAllocBudget: Terms materializes only the surviving stems.
func TestTermsAllocBudget(t *testing.T) {
	p := NewPreprocessor(nil, Options{})
	warm := p.Terms(allocDoc)
	budget := float64(len(warm) + 1)
	got := testing.AllocsPerRun(200, func() { p.Terms(allocDoc) })
	if got > budget {
		t.Errorf("Terms: %.1f allocs/op for %d terms, budget %.0f", got, len(warm), budget)
	}
}

// TestStemBytesZeroAlloc: in-place stemming allocates nothing, including
// on rules that rewrite suffixes.
func TestStemBytesZeroAlloc(t *testing.T) {
	words := [][]byte{
		[]byte("caresses"), []byte("motoring"), []byte("happy"),
		[]byte("relational"), []byte("generalization"), []byte("electricity"),
	}
	scratch := make([]byte, 32)
	got := testing.AllocsPerRun(200, func() {
		for _, w := range words {
			StemBytes(append(scratch[:0], w...))
		}
	})
	if got > 0 {
		t.Errorf("StemBytes: %.1f allocs/op, want 0", got)
	}
}

// TestWorkspaceScalesWithDocument: a long document must not break the
// budget either (arena growth is retained across calls).
func TestWorkspaceScalesWithDocument(t *testing.T) {
	long := strings.Repeat(allocDoc+" ", 50)
	p := NewPreprocessor(nil, Options{Normalize: true})
	p.Vectorize(long)
	got := testing.AllocsPerRun(50, func() { p.Vectorize(long) })
	if got > 2 {
		t.Errorf("Vectorize(long): %.1f allocs/op, budget 2", got)
	}
}
