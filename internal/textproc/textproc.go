// Package textproc implements the document preprocessing stage of
// P2PDocTagger (§2 of the paper): tokenization, stop-word and sensitive-word
// filtering, Porter stemming, a shared lexicon mapping words to feature ids,
// and vectorization of documents into sparse term-frequency vectors.
package textproc

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"

	"repro/internal/runner"
	"repro/internal/vector"
)

// Tokenize splits raw text into lower-case word tokens. Tokens are maximal
// runs of letters or digits containing at least one letter; pure numbers are
// dropped since they carry little recognition value for tagging.
// Apostrophes survive inside a word ("don't") so contractions match stop
// words, but leading and trailing ones are stripped: "dogs'" must tokenize
// as "dogs", or possessives and quoted words would never share a lexicon id
// with the bare word.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	hasLetter := false
	flush := func() {
		if cur.Len() > 0 {
			if hasLetter {
				tokens = append(tokens, strings.TrimRight(cur.String(), "'"))
			}
			cur.Reset()
			hasLetter = false
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			cur.WriteRune(unicode.ToLower(r))
			hasLetter = true
		case unicode.IsDigit(r):
			cur.WriteRune(r)
		case r == '\'':
			// Keep apostrophes inside words so stop words like "don't" match.
			if cur.Len() > 0 {
				cur.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Lexicon maps normalized words to stable int32 feature ids. It is safe for
// concurrent use: tagging peers in the live CLI share one lexicon.
type Lexicon struct {
	mu    sync.RWMutex
	ids   map[string]int32
	words []string
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{ids: make(map[string]int32)}
}

// ID returns the feature id for word, assigning a new id when the word is
// unseen.
func (l *Lexicon) ID(word string) int32 {
	l.mu.RLock()
	id, ok := l.ids[word]
	l.mu.RUnlock()
	if ok {
		return id
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id, ok = l.ids[word]; ok {
		return id
	}
	id = int32(len(l.words))
	l.ids[word] = id
	l.words = append(l.words, word)
	return id
}

// Lookup returns the id of word without assigning a new one.
func (l *Lexicon) Lookup(word string) (int32, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.ids[word]
	return id, ok
}

// Word returns the word for feature id, or "" when the id is unknown.
func (l *Lexicon) Word(id int32) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if id < 0 || int(id) >= len(l.words) {
		return ""
	}
	return l.words[id]
}

// Size returns the number of distinct words in the lexicon.
func (l *Lexicon) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.words)
}

// Weighting selects how term weights are computed during vectorization.
type Weighting int

const (
	// TermFrequency stores raw within-document term counts, the
	// representation described in the paper ("the value of the attributes
	// represents the word frequency in the documents").
	TermFrequency Weighting = iota
	// LogTF stores 1+log(tf), damping very frequent terms.
	LogTF
	// TFIDF multiplies term frequency by the inverse document frequency
	// accumulated from all documents previously processed by this
	// preprocessor.
	TFIDF
)

func (w Weighting) String() string {
	switch w {
	case TermFrequency:
		return "tf"
	case LogTF:
		return "logtf"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Options configures a Preprocessor.
type Options struct {
	// Weighting selects the term-weight scheme; default TermFrequency.
	Weighting Weighting
	// Normalize scales each document vector to unit L2 norm after
	// weighting. Recommended (and default) for SVM training.
	Normalize bool
	// MinWordLen drops tokens shorter than this many bytes after stemming;
	// default 2.
	MinWordLen int
	// KeepStopWords disables stop-word filtering (used in tests).
	KeepStopWords bool
	// HashDim, when positive, switches feature ids from lexicon-assigned
	// sequential ids to word hashes modulo HashDim ("hashing trick").
	// Hashed ids are stable across machines with no coordination, which
	// is what lets independently running peers exchange models whose
	// weight indices mean the same thing everywhere. The lexicon is
	// bypassed, so TopTerms cannot resolve words in this mode.
	HashDim int
}

// Preprocessor turns raw document text into sparse feature vectors using a
// shared lexicon, per the pipeline of Fig. 1. It is safe for concurrent use.
type Preprocessor struct {
	opts      Options
	lexicon   *Lexicon
	mu        sync.RWMutex
	stop      map[string]bool
	sensitive map[string]bool
	docCount  int
	docFreq   map[int32]int
}

// NewPreprocessor returns a preprocessor sharing lexicon lex. A nil lexicon
// allocates a fresh one.
func NewPreprocessor(lex *Lexicon, opts Options) *Preprocessor {
	if lex == nil {
		lex = NewLexicon()
	}
	if opts.MinWordLen == 0 {
		opts.MinWordLen = 2
	}
	return &Preprocessor{
		opts:      opts,
		lexicon:   lex,
		stop:      DefaultStopWords(),
		sensitive: make(map[string]bool),
		docFreq:   make(map[int32]int),
	}
}

// Lexicon returns the shared lexicon.
func (p *Preprocessor) Lexicon() *Lexicon { return p.lexicon }

// AddSensitiveWords registers user-specified words that must never appear in
// feature vectors (the privacy filter of §2). Matching is performed on the
// lower-cased raw token, before stemming.
func (p *Preprocessor) AddSensitiveWords(words ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range words {
		p.sensitive[strings.ToLower(w)] = true
	}
}

// Terms tokenizes, filters and stems text, returning the surviving terms in
// document order.
func (p *Preprocessor) Terms(text string) []string {
	tokens := Tokenize(text)
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := tokens[:0]
	for _, t := range tokens {
		if !p.opts.KeepStopWords && p.stop[t] {
			continue
		}
		if p.sensitive[t] {
			continue
		}
		// Apostrophes served their purpose for stop-word matching; strip
		// possessives before stemming.
		t = strings.ReplaceAll(t, "'", "")
		s := Stem(t)
		if len(s) < p.opts.MinWordLen {
			continue
		}
		if p.sensitive[s] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Vectorize converts text into a sparse feature vector, assigning new
// lexicon ids as needed (or hashing, when HashDim is set) and updating
// document-frequency statistics.
func (p *Preprocessor) Vectorize(text string) *vector.Sparse {
	return p.vectorizeTerms(p.Terms(text))
}

// vectorizeTerms is the serial tail of Vectorize: lexicon id assignment,
// document-frequency bookkeeping, weighting and normalization.
func (p *Preprocessor) vectorizeTerms(terms []string) *vector.Sparse {
	counts := make(map[int32]float64, len(terms))
	for _, t := range terms {
		counts[p.featureID(t)]++
	}

	p.mu.Lock()
	p.docCount++
	for id := range counts {
		p.docFreq[id]++
	}
	docCount, weighting := p.docCount, p.opts.Weighting
	var idf map[int32]float64
	if weighting == TFIDF {
		idf = make(map[int32]float64, len(counts))
		for id := range counts {
			idf[id] = math.Log(float64(1+docCount) / float64(1+p.docFreq[id]))
		}
	}
	p.mu.Unlock()

	for id, tf := range counts {
		switch weighting {
		case LogTF:
			counts[id] = 1 + math.Log(tf)
		case TFIDF:
			counts[id] = tf * idf[id]
		}
	}
	v := vector.FromMap(counts)
	if p.opts.Normalize {
		v = v.Normalize()
	}
	return v
}

// featureID maps a term to its feature id: hashed when HashDim is set,
// lexicon-assigned otherwise.
func (p *Preprocessor) featureID(term string) int32 {
	if p.opts.HashDim > 0 {
		h := fnv.New32a()
		h.Write([]byte(term))
		return int32(h.Sum32() % uint32(p.opts.HashDim))
	}
	return p.lexicon.ID(term)
}

// VectorizeAll maps Vectorize over texts serially.
func (p *Preprocessor) VectorizeAll(texts []string) []*vector.Sparse {
	return p.VectorizeBatch(texts, 1)
}

// VectorizeBatch vectorizes texts with the term-extraction stage
// (tokenize, filter, stem — the bulk of preprocessing cost) fanned out
// over parallel workers (see runner.Workers for the convention), while
// lexicon id assignment and document-frequency updates run serially in
// input order. The returned vectors are identical to calling Vectorize on
// each text in order, at any worker count: term extraction is a pure
// function of the text, and everything order-sensitive (new-word id
// assignment, docFreq/IDF accumulation) stays sequential.
func (p *Preprocessor) VectorizeBatch(texts []string, parallel int) []*vector.Sparse {
	terms, _ := runner.Map(len(texts), parallel, func(i int) ([]string, error) {
		return p.Terms(texts[i]), nil
	})
	out := make([]*vector.Sparse, len(texts))
	for i := range texts {
		out[i] = p.vectorizeTerms(terms[i])
	}
	return out
}

// TopTerms returns the n highest-weighted terms of v, resolved through the
// lexicon, in descending weight order. Useful for explaining predictions.
func (p *Preprocessor) TopTerms(v *vector.Sparse, n int) []string {
	entries := append([]vector.Entry(nil), v.Entries()...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		return entries[i].Index < entries[j].Index
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, 0, n)
	for _, e := range entries[:n] {
		if w := p.lexicon.Word(e.Index); w != "" {
			out = append(out, w)
		}
	}
	return out
}
