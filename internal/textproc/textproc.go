// Package textproc implements the document preprocessing stage of
// P2PDocTagger (§2 of the paper): tokenization, stop-word and sensitive-word
// filtering, Porter stemming, a shared lexicon mapping words to feature ids,
// and vectorization of documents into sparse term-frequency vectors.
package textproc

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"repro/internal/runner"
	"repro/internal/vector"
)

// span is one token's [start, end) byte range inside a workspace arena.
type span struct{ start, end int }

// workspace is the pooled per-call scratch of the preprocessing fast path.
// Token bytes live back to back in arena with spans marking their ranges;
// ids and entries carry the vectorization stages. Workspaces are reused
// through wsPool, so steady-state tokenization, filtering and stemming
// allocate nothing. A workspace must never escape the call that took it
// from the pool: everything handed to callers is copied out first.
type workspace struct {
	arena   []byte
	spans   []span
	ids     []int32
	entries []vector.Entry
	idf     []float64
}

var wsPool = sync.Pool{New: func() any { return new(workspace) }}

func getWorkspace() *workspace  { return wsPool.Get().(*workspace) }
func putWorkspace(w *workspace) { wsPool.Put(w) }

// tokenize fills ws.arena/ws.spans with the lower-case word tokens of
// text: maximal runs of letters or digits containing at least one letter
// (pure numbers are dropped since they carry little recognition value for
// tagging). Apostrophes survive inside a word ("don't") so contractions
// match stop words, but leading and trailing ones are stripped: "dogs'"
// must tokenize as "dogs", or possessives and quoted words would never
// share a lexicon id with the bare word.
func (ws *workspace) tokenize(text string) {
	ws.arena = ws.arena[:0]
	ws.spans = ws.spans[:0]
	start := 0
	hasLetter := false
	for _, r := range text {
		switch {
		case r < utf8.RuneSelf && ('a' <= r && r <= 'z' || 'A' <= r && r <= 'Z'):
			// ASCII letter fast path: branch-free lower-casing.
			ws.arena = append(ws.arena, byte(r)|0x20)
			hasLetter = true
		case r < utf8.RuneSelf && '0' <= r && r <= '9':
			ws.arena = append(ws.arena, byte(r))
		case r == '\'':
			// Keep apostrophes inside words so stop words like "don't" match.
			if len(ws.arena) > start {
				ws.arena = append(ws.arena, '\'')
			}
		case unicode.IsLetter(r):
			ws.arena = utf8.AppendRune(ws.arena, unicode.ToLower(r))
			hasLetter = true
		case unicode.IsDigit(r):
			ws.arena = utf8.AppendRune(ws.arena, r)
		default:
			start = ws.flushToken(start, hasLetter)
			hasLetter = false
		}
	}
	ws.flushToken(start, hasLetter)
}

// flushToken closes the token occupying ws.arena[start:]: trailing
// apostrophes are trimmed and a span recorded when the token contains a
// letter; letterless tokens (pure numbers) are discarded. Returns the
// start of the next token.
func (ws *workspace) flushToken(start int, hasLetter bool) int {
	if end := len(ws.arena); end > start {
		if hasLetter {
			for end > start && ws.arena[end-1] == '\'' {
				end--
			}
			ws.spans = append(ws.spans, span{start, end})
		} else {
			end = start // discard letterless tokens (pure numbers)
		}
		ws.arena = ws.arena[:end]
	}
	return len(ws.arena)
}

// Tokenize splits raw text into lower-case word tokens; see
// workspace.tokenize for the exact rules. The returned strings are
// independent copies, so this costs one allocation per token — the tagging
// fast path stays on workspace bytes and never materializes them.
func Tokenize(text string) []string {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.tokenize(text)
	if len(ws.spans) == 0 {
		return nil
	}
	tokens := make([]string, len(ws.spans))
	for i, sp := range ws.spans {
		tokens[i] = string(ws.arena[sp.start:sp.end])
	}
	return tokens
}

// Lexicon maps normalized words to stable int32 feature ids. It is safe for
// concurrent use: tagging peers in the live CLI share one lexicon.
type Lexicon struct {
	mu    sync.RWMutex
	ids   map[string]int32
	words []string
}

// NewLexicon returns an empty lexicon.
func NewLexicon() *Lexicon {
	return &Lexicon{ids: make(map[string]int32)}
}

// ID returns the feature id for word, assigning a new id when the word is
// unseen.
func (l *Lexicon) ID(word string) int32 {
	l.mu.RLock()
	id, ok := l.ids[word]
	l.mu.RUnlock()
	if ok {
		return id
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if id, ok = l.ids[word]; ok {
		return id
	}
	id = int32(len(l.words))
	l.ids[word] = id
	l.words = append(l.words, word)
	return id
}

// IDBytes is ID for a word held as bytes. The fast path — the word is
// already interned — allocates nothing: a map index with a string(b)
// conversion is free, and only an unseen word pays for its string.
func (l *Lexicon) IDBytes(word []byte) int32 {
	l.mu.RLock()
	id, ok := l.ids[string(word)]
	l.mu.RUnlock()
	if ok {
		return id
	}
	return l.ID(string(word))
}

// Lookup returns the id of word without assigning a new one.
func (l *Lexicon) Lookup(word string) (int32, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	id, ok := l.ids[word]
	return id, ok
}

// Word returns the word for feature id, or "" when the id is unknown.
func (l *Lexicon) Word(id int32) string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if id < 0 || int(id) >= len(l.words) {
		return ""
	}
	return l.words[id]
}

// Size returns the number of distinct words in the lexicon.
func (l *Lexicon) Size() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.words)
}

// Weighting selects how term weights are computed during vectorization.
type Weighting int

const (
	// TermFrequency stores raw within-document term counts, the
	// representation described in the paper ("the value of the attributes
	// represents the word frequency in the documents").
	TermFrequency Weighting = iota
	// LogTF stores 1+log(tf), damping very frequent terms.
	LogTF
	// TFIDF multiplies term frequency by the inverse document frequency
	// accumulated from all documents previously processed by this
	// preprocessor.
	TFIDF
)

func (w Weighting) String() string {
	switch w {
	case TermFrequency:
		return "tf"
	case LogTF:
		return "logtf"
	case TFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// Options configures a Preprocessor.
type Options struct {
	// Weighting selects the term-weight scheme; default TermFrequency.
	Weighting Weighting
	// Normalize scales each document vector to unit L2 norm after
	// weighting. Recommended (and default) for SVM training.
	Normalize bool
	// MinWordLen drops tokens shorter than this many bytes after stemming;
	// default 2.
	MinWordLen int
	// KeepStopWords disables stop-word filtering (used in tests).
	KeepStopWords bool
	// HashDim, when positive, switches feature ids from lexicon-assigned
	// sequential ids to word hashes modulo HashDim ("hashing trick").
	// Hashed ids are stable across machines with no coordination, which
	// is what lets independently running peers exchange models whose
	// weight indices mean the same thing everywhere. The lexicon is
	// bypassed, so TopTerms cannot resolve words in this mode.
	HashDim int
}

// Preprocessor turns raw document text into sparse feature vectors using a
// shared lexicon, per the pipeline of Fig. 1. It is safe for concurrent use.
type Preprocessor struct {
	opts      Options
	lexicon   *Lexicon
	mu        sync.RWMutex
	stop      map[string]bool
	sensitive map[string]bool
	docCount  int
	docFreq   map[int32]int
}

// NewPreprocessor returns a preprocessor sharing lexicon lex. A nil lexicon
// allocates a fresh one.
func NewPreprocessor(lex *Lexicon, opts Options) *Preprocessor {
	if lex == nil {
		lex = NewLexicon()
	}
	if opts.MinWordLen == 0 {
		opts.MinWordLen = 2
	}
	return &Preprocessor{
		opts:      opts,
		lexicon:   lex,
		stop:      DefaultStopWords(),
		sensitive: make(map[string]bool),
		docFreq:   make(map[int32]int),
	}
}

// Lexicon returns the shared lexicon.
func (p *Preprocessor) Lexicon() *Lexicon { return p.lexicon }

// AddSensitiveWords registers user-specified words that must never appear in
// feature vectors (the privacy filter of §2). Matching is performed on the
// lower-cased raw token, before stemming.
func (p *Preprocessor) AddSensitiveWords(words ...string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range words {
		p.sensitive[strings.ToLower(w)] = true
	}
}

// terms runs the filter-and-stem stage over ws's tokens in place: stop
// words and sensitive words drop, apostrophes are stripped, and each
// surviving token is Porter-stemmed inside the arena. ws.spans afterwards
// holds the surviving terms in document order.
func (p *Preprocessor) terms(ws *workspace) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := ws.spans[:0]
	for _, sp := range ws.spans {
		tok := ws.arena[sp.start:sp.end]
		// string(tok) in a map index does not allocate.
		if !p.opts.KeepStopWords && p.stop[string(tok)] {
			continue
		}
		if p.sensitive[string(tok)] {
			continue
		}
		// Apostrophes served their purpose for stop-word matching; strip
		// possessives before stemming. Compaction happens inside the
		// token's own arena range, so later spans are untouched.
		w := tok[:0]
		for _, c := range tok {
			if c != '\'' {
				w = append(w, c)
			}
		}
		s := StemBytes(w)
		if len(s) < p.opts.MinWordLen {
			continue
		}
		if p.sensitive[string(s)] {
			continue
		}
		out = append(out, span{sp.start, sp.start + len(s)})
	}
	ws.spans = out
}

// Terms tokenizes, filters and stems text, returning the surviving terms in
// document order.
func (p *Preprocessor) Terms(text string) []string {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.tokenize(text)
	p.terms(ws)
	if len(ws.spans) == 0 {
		return nil
	}
	out := make([]string, len(ws.spans))
	for i, sp := range ws.spans {
		out[i] = string(ws.arena[sp.start:sp.end])
	}
	return out
}

// Vectorize converts text into a sparse feature vector, assigning new
// lexicon ids as needed (or hashing, when HashDim is set) and updating
// document-frequency statistics.
//
// This is the zero-allocation inference fast path: tokenization, filtering,
// stemming and term counting all run on a pooled workspace, so the steady
// state allocates only the returned vector (terms new to the lexicon add
// O(1) amortized allocations for their interned strings). The result is
// byte-identical to the historical map-and-sort implementation, which the
// textproc tests pin against a reference copy of that code.
func (p *Preprocessor) Vectorize(text string) *vector.Sparse {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.tokenize(text)
	p.terms(ws)
	ws.ids = ws.ids[:0]
	for _, sp := range ws.spans {
		ws.ids = append(ws.ids, p.featureIDBytes(ws.arena[sp.start:sp.end]))
	}
	return p.finishVector(ws)
}

// VectorizeInto is the streaming terminal of the fast path: it vectorizes
// text exactly like Vectorize but hands the finished entries to visit
// instead of materializing a *vector.Sparse, so a pure local score path
// (workspace -> FusedLinear.ScoreEntriesInto) runs with no per-document
// vector allocation at all.
//
// Scratch-lifetime contract: the entries slice lives in pooled workspace
// memory and is valid only for the duration of the visit call. visit must
// consume it synchronously — score it, copy it — and must not retain the
// slice, alias it, or hand it to anything that outlives the call. visit is
// invoked exactly once, with an empty slice for an empty document. The
// entries are sorted by ascending feature id with no duplicates, the same
// invariant Vectorize's returned vector carries; document-frequency
// statistics update exactly as in Vectorize.
func (p *Preprocessor) VectorizeInto(text string, visit func(entries []vector.Entry)) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.tokenize(text)
	p.terms(ws)
	ws.ids = ws.ids[:0]
	for _, sp := range ws.spans {
		ws.ids = append(ws.ids, p.featureIDBytes(ws.arena[sp.start:sp.end]))
	}
	if !p.weigh(ws) {
		// Degenerate zero-norm document: present it as empty, matching the
		// vector.Zero() that Vectorize returns.
		ws.entries = ws.entries[:0]
	}
	//dmtvet:allow scratchescape visit is consume-only by documented contract; the entries slice is scored or copied before the call returns
	visit(ws.entries)
}

// termsPacked runs the parallel phase of VectorizeBatch on a pooled
// workspace and copies the surviving stems into one compact arena with
// n+1 offsets delimiting the terms. The copy detaches the result from the
// workspace (which goes back to the pool) and is the only per-document
// allocation of the phase — two slices instead of one string per term.
func (p *Preprocessor) termsPacked(text string) ([]byte, []int32) {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.tokenize(text)
	p.terms(ws)
	if len(ws.spans) == 0 {
		return nil, nil
	}
	size := 0
	for _, sp := range ws.spans {
		size += sp.end - sp.start
	}
	arena := make([]byte, 0, size)
	offs := make([]int32, 1, len(ws.spans)+1)
	for _, sp := range ws.spans {
		arena = append(arena, ws.arena[sp.start:sp.end]...)
		offs = append(offs, int32(len(arena)))
	}
	return arena, offs
}

// vectorizeTermBytes is the serial tail of VectorizeBatch: feature id
// assignment over a packed term arena (the byte path — interned terms
// allocate nothing), then document-frequency bookkeeping, weighting and
// normalization.
func (p *Preprocessor) vectorizeTermBytes(arena []byte, offs []int32) *vector.Sparse {
	ws := getWorkspace()
	defer putWorkspace(ws)
	ws.ids = ws.ids[:0]
	for i := 0; i+1 < len(offs); i++ {
		ws.ids = append(ws.ids, p.featureIDBytes(arena[offs[i]:offs[i+1]]))
	}
	return p.finishVector(ws)
}

// weigh turns the feature ids in ws.ids into the final weighted entries in
// ws.entries: sort-then-accumulate term counts (replacing the historical
// map[int32]float64 + FromMap sort — identical output, since duplicate ids
// become exact integer counts either way and entries emerge in ascending
// id order), document-frequency bookkeeping, weighting, normalization.
// Returns false in the degenerate Normalize case (zero norm), where the
// caller must present the document as the zero vector.
func (p *Preprocessor) weigh(ws *workspace) bool {
	slices.Sort(ws.ids)
	ws.entries = ws.entries[:0]
	for i := 0; i < len(ws.ids); {
		j := i + 1
		for j < len(ws.ids) && ws.ids[j] == ws.ids[i] {
			j++
		}
		ws.entries = append(ws.entries, vector.Entry{Index: ws.ids[i], Value: float64(j - i)})
		i = j
	}

	// Document-frequency bookkeeping holds p.mu only long enough to bump
	// the counters and snapshot the raw df values; the weighting math runs
	// outside so concurrent shards stop serializing on the mutex. The
	// deferred math is bit-identical to computing it under the lock:
	// float64(1+df) == 1+float64(df) for any df below 2^52, so the Log
	// sees the same operands either way.
	p.mu.Lock()
	p.docCount++
	for _, e := range ws.entries {
		p.docFreq[e.Index]++
	}
	docCount, weighting := p.docCount, p.opts.Weighting
	if weighting == TFIDF {
		ws.idf = ws.idf[:0]
		for _, e := range ws.entries {
			ws.idf = append(ws.idf, float64(p.docFreq[e.Index]))
		}
	}
	p.mu.Unlock()

	switch weighting {
	case LogTF:
		for i := range ws.entries {
			ws.entries[i].Value = 1 + math.Log(ws.entries[i].Value)
		}
	case TFIDF:
		// An idf of 0 (term in every document) zeroes the weight; drop
		// such entries exactly as FromMap dropped explicit zeros.
		numer := float64(1 + docCount)
		kept := ws.entries[:0]
		for i := range ws.entries {
			idf := math.Log(numer / (1 + ws.idf[i]))
			if v := ws.entries[i].Value * idf; v != 0 {
				kept = append(kept, vector.Entry{Index: ws.entries[i].Index, Value: v})
			}
		}
		ws.entries = kept
	}

	if p.opts.Normalize {
		var sum float64
		for _, e := range ws.entries {
			sum += e.Value * e.Value
		}
		n := math.Sqrt(sum)
		if n == 0 {
			return false
		}
		inv := 1 / n
		for i := range ws.entries {
			ws.entries[i].Value *= inv
		}
	}
	return true
}

// finishVector materializes ws's weighted entries as a fresh sparse
// vector; only the returned vector's entry slice is allocated.
func (p *Preprocessor) finishVector(ws *workspace) *vector.Sparse {
	if !p.weigh(ws) {
		return vector.Zero()
	}
	out := make([]vector.Entry, len(ws.entries))
	copy(out, ws.entries)
	v, err := vector.FromEntries(out)
	if err != nil {
		// Unreachable: ids are sorted and deduplicated above.
		panic(fmt.Sprintf("textproc: internal vector invariant broken: %v", err))
	}
	return v
}

// FNV-1a constants, inlined so feature hashing allocates no hash.Hash32
// per term. The stream must stay byte-compatible with hash/fnv's New32a,
// which the tests pin.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// featureID maps a term to its feature id: hashed when HashDim is set,
// lexicon-assigned otherwise.
func (p *Preprocessor) featureID(term string) int32 {
	if p.opts.HashDim > 0 {
		h := uint32(fnvOffset32)
		for i := 0; i < len(term); i++ {
			h ^= uint32(term[i])
			h *= fnvPrime32
		}
		return int32(h % uint32(p.opts.HashDim))
	}
	return p.lexicon.ID(term)
}

// featureIDBytes is featureID for a term still living in workspace bytes;
// it allocates only when a lexicon-mode term is new.
func (p *Preprocessor) featureIDBytes(term []byte) int32 {
	if p.opts.HashDim > 0 {
		h := uint32(fnvOffset32)
		for _, c := range term {
			h ^= uint32(c)
			h *= fnvPrime32
		}
		return int32(h % uint32(p.opts.HashDim))
	}
	return p.lexicon.IDBytes(term)
}

// VectorizeAll maps Vectorize over texts serially.
func (p *Preprocessor) VectorizeAll(texts []string) []*vector.Sparse {
	return p.VectorizeBatch(texts, 1)
}

// packedTerms carries one document's filtered, stemmed terms between the
// parallel and serial phases of VectorizeBatch: term i is
// arena[offs[i]:offs[i+1]].
type packedTerms struct {
	arena []byte
	offs  []int32
}

// VectorizeBatch vectorizes texts with the term-extraction stage
// (tokenize, filter, stem — the bulk of preprocessing cost) fanned out
// over parallel workers (see runner.Workers for the convention), while
// feature id assignment and document-frequency updates run serially in
// input order. Terms travel between the phases as packed byte arenas, so
// the serial tail rides the same byte-path feature ids as the single-doc
// fast path and the hand-off costs two slices per document instead of one
// string per term. The returned vectors are identical to calling
// Vectorize on each text in order, at any worker count: term extraction
// is a pure function of the text, and everything order-sensitive
// (new-word id assignment, docFreq/IDF accumulation) stays sequential.
func (p *Preprocessor) VectorizeBatch(texts []string, parallel int) []*vector.Sparse {
	packed, _ := runner.Map(len(texts), parallel, func(i int) (packedTerms, error) {
		arena, offs := p.termsPacked(texts[i])
		return packedTerms{arena: arena, offs: offs}, nil
	})
	out := make([]*vector.Sparse, len(texts))
	for i := range texts {
		out[i] = p.vectorizeTermBytes(packed[i].arena, packed[i].offs)
	}
	return out
}

// TopTerms returns the n highest-weighted terms of v, resolved through the
// lexicon, in descending weight order. Useful for explaining predictions.
func (p *Preprocessor) TopTerms(v *vector.Sparse, n int) []string {
	entries := append([]vector.Entry(nil), v.Entries()...)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Value != entries[j].Value {
			return entries[i].Value > entries[j].Value
		}
		return entries[i].Index < entries[j].Index
	})
	if n > len(entries) {
		n = len(entries)
	}
	out := make([]string, 0, n)
	for _, e := range entries[:n] {
		if w := p.lexicon.Word(e.Index); w != "" {
			out = append(out, w)
		}
	}
	return out
}
