package textproc

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"testing"
	"unicode"

	"repro/internal/vector"
)

// This file pins the pooled fast path byte-identical to the historical
// (seed) implementation of tokenize -> filter/stem -> vectorize, kept here
// verbatim as the reference. If the fast path ever drifts — a different
// accumulation order, a dropped edge case — these tests fail on exact
// comparison, not a tolerance.

// refTokenize is the seed Tokenize (strings.Builder per token).
func refTokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	hasLetter := false
	flush := func() {
		if cur.Len() > 0 {
			if hasLetter {
				tokens = append(tokens, strings.TrimRight(cur.String(), "'"))
			}
			cur.Reset()
			hasLetter = false
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			cur.WriteRune(unicode.ToLower(r))
			hasLetter = true
		case unicode.IsDigit(r):
			cur.WriteRune(r)
		case r == '\'':
			if cur.Len() > 0 {
				cur.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// refTerms is the seed Terms over refTokenize.
func refTerms(p *Preprocessor, text string) []string {
	tokens := refTokenize(text)
	out := tokens[:0]
	for _, t := range tokens {
		if !p.opts.KeepStopWords && p.stop[t] {
			continue
		}
		if p.sensitive[t] {
			continue
		}
		t = strings.ReplaceAll(t, "'", "")
		s := Stem(t)
		if len(s) < p.opts.MinWordLen {
			continue
		}
		if p.sensitive[s] {
			continue
		}
		out = append(out, s)
	}
	return out
}

// refFeatureID is the seed featureID (a fresh fnv.New32a per term).
func refFeatureID(p *Preprocessor, term string) int32 {
	if p.opts.HashDim > 0 {
		h := fnv.New32a()
		h.Write([]byte(term))
		return int32(h.Sum32() % uint32(p.opts.HashDim))
	}
	return p.lexicon.ID(term)
}

// refVectorize is the seed vectorizeTerms: map accumulation, FromMap sort,
// vector-method normalization.
func refVectorize(p *Preprocessor, text string) *vector.Sparse {
	terms := refTerms(p, text)
	counts := make(map[int32]float64, len(terms))
	for _, t := range terms {
		counts[refFeatureID(p, t)]++
	}
	p.mu.Lock()
	p.docCount++
	for id := range counts {
		p.docFreq[id]++
	}
	docCount, weighting := p.docCount, p.opts.Weighting
	var idf map[int32]float64
	if weighting == TFIDF {
		idf = make(map[int32]float64, len(counts))
		for id := range counts {
			idf[id] = math.Log(float64(1+docCount) / float64(1+p.docFreq[id]))
		}
	}
	p.mu.Unlock()
	for id, tf := range counts {
		switch weighting {
		case LogTF:
			counts[id] = 1 + math.Log(tf)
		case TFIDF:
			counts[id] = tf * idf[id]
		}
	}
	v := vector.FromMap(counts)
	if p.opts.Normalize {
		v = v.Normalize()
	}
	return v
}

// pinCorpus exercises apostrophes, possessives, digits, unicode letters
// and digits, stop words, stemming families, repeats and empty documents.
var pinCorpus = []string{
	"The quick brown foxes are jumping over the lazy dogs' kennels",
	"don't can't won't it's the dogs' dog's 'quoted' word''s",
	"running runner runs ran relational conditional rational",
	"caresses ponies ties caress cats feed agreed plastered bled motoring sing",
	"x2 3d abc123 42 007 naïve café süß Привет мир 東京タワー",
	"\uFEFF１２３ ４５abc tamaño jalapeño",
	"generalization generalizations oscillators universities utilities",
	"a ab abc abcd",
	"",
	"   \t\n  ",
	"'''",
	"secret classified secret SECRET secrets",
	strings.Repeat("hopefulness electricity electrical ", 7),
}

func pinOptions() []Options {
	return []Options{
		{Weighting: TermFrequency, Normalize: true},
		{Weighting: TermFrequency, Normalize: false},
		{Weighting: LogTF, Normalize: true},
		{Weighting: TFIDF, Normalize: true},
		{Weighting: TFIDF, Normalize: false},
		{Weighting: TermFrequency, Normalize: true, HashDim: 512},
		{Weighting: TFIDF, Normalize: true, HashDim: 64}, // tiny dim forces collisions
		{Weighting: TermFrequency, Normalize: true, KeepStopWords: true, MinWordLen: 1},
		{Weighting: TermFrequency, Normalize: true, MinWordLen: 4},
	}
}

func TestTokenizePinnedToReference(t *testing.T) {
	for _, doc := range pinCorpus {
		got := Tokenize(doc)
		want := refTokenize(doc)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("Tokenize(%q) = %q, reference %q", doc, got, want)
		}
	}
}

func TestTermsPinnedToReference(t *testing.T) {
	for oi, opts := range pinOptions() {
		p := NewPreprocessor(nil, opts)
		p.AddSensitiveWords("secret", "classified")
		for _, doc := range pinCorpus {
			got := p.Terms(doc)
			want := refTerms(p, doc)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("opts %d: Terms(%q) = %q, reference %q", oi, doc, got, want)
			}
		}
	}
}

// TestVectorizePinnedToReference feeds the same corpus through the fast
// path and the seed implementation on separate but identically configured
// preprocessors; every vector must be exactly Equal (indices and float64
// bit patterns), across every weighting/normalization/hashing mode.
func TestVectorizePinnedToReference(t *testing.T) {
	for oi, opts := range pinOptions() {
		fast := NewPreprocessor(nil, opts)
		ref := NewPreprocessor(nil, opts)
		fast.AddSensitiveWords("secret", "classified")
		ref.AddSensitiveWords("secret", "classified")
		// Two passes so document-frequency state (TFIDF) diverges from
		// the trivial first-doc case.
		for pass := 0; pass < 2; pass++ {
			for di, doc := range pinCorpus {
				got := fast.Vectorize(doc)
				want := refVectorize(ref, doc)
				if !got.Equal(want) {
					t.Fatalf("opts %d pass %d doc %d (%q):\nfast %v\nref  %v", oi, pass, di, doc, got, want)
				}
			}
		}
		if opts.HashDim == 0 && fast.Lexicon().Size() != ref.Lexicon().Size() {
			t.Errorf("opts %d: lexicon sizes diverged: %d != %d", oi, fast.Lexicon().Size(), ref.Lexicon().Size())
		}
	}
}

// TestVectorizeBatchPinnedToFastPath: the batch path (string terms +
// shared accumulate tail) equals per-document Vectorize.
func TestVectorizeBatchPinnedToFastPath(t *testing.T) {
	for _, opts := range pinOptions() {
		batch := NewPreprocessor(nil, opts)
		serial := NewPreprocessor(nil, opts)
		got := batch.VectorizeBatch(pinCorpus, 4)
		for i, doc := range pinCorpus {
			want := serial.Vectorize(doc)
			if !got[i].Equal(want) {
				t.Fatalf("opts %+v doc %d: batch %v != serial %v", opts, i, got[i], want)
			}
		}
	}
}

// TestStemBytesMatchesStem: the in-place byte stemmer is the string
// stemmer, including the non-ASCII and short-word bailouts.
func TestStemBytesMatchesStem(t *testing.T) {
	words := []string{
		"", "a", "ab", "abc", "caresses", "ponies", "relational", "hopefulness",
		"electricity", "oscillators", "feudalism", "naïve", "abc123", "DON",
		"sky", "happy", "controll", "roll", "generalization", "triplicate",
	}
	for _, w := range words {
		b := []byte(w)
		got := string(StemBytes(b))
		if want := Stem(w); got != want {
			t.Errorf("StemBytes(%q) = %q, Stem = %q", w, got, want)
		}
	}
}

// TestFeatureIDPinsFNV pins the inlined FNV-1a against hash/fnv and
// against hard-coded known values, so the hashed feature space can never
// silently shift (peers exchange models whose indices must agree).
func TestFeatureIDPinsFNV(t *testing.T) {
	p := NewPreprocessor(nil, Options{HashDim: 4096})
	terms := []string{"quick", "brown", "fox", "jump", "melodi", "guitar", "a", ""}
	for _, term := range terms {
		h := fnv.New32a()
		h.Write([]byte(term))
		want := int32(h.Sum32() % 4096)
		if got := p.featureID(term); got != want {
			t.Errorf("featureID(%q) = %d, fnv reference %d", term, got, want)
		}
		if got := p.featureIDBytes([]byte(term)); got != want {
			t.Errorf("featureIDBytes(%q) = %d, fnv reference %d", term, got, want)
		}
	}
	// Hard-coded pins: these exact ids are baked into any model trained
	// with HashDim 4096 — they must never change.
	for term, want := range map[string]int32{
		"quick":  956,
		"brown":  1839,
		"fox":    846,
		"guitar": 3855,
	} {
		if got := p.featureID(term); got != want {
			t.Errorf("featureID(%q) = %d, pinned %d", term, got, want)
		}
	}
}

// TestTokenizeEmptyAndDegenerate keeps the historical nil/empty contracts.
func TestTokenizeEmptyAndDegenerate(t *testing.T) {
	if got := Tokenize(""); got != nil {
		t.Errorf("Tokenize(\"\") = %v, want nil", got)
	}
	if got := Tokenize("42 7 1999"); got != nil {
		t.Errorf("Tokenize(numbers) = %v, want nil (no letters)", got)
	}
	if got := sort.SearchStrings(Tokenize("b a c"), "a"); got != 1 {
		// tokens keep document order, not sorted order
		_ = got
	}
}
