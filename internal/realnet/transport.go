package realnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/runner"
)

// Transport errors.
var (
	// ErrPeerQuarantined is returned by sends to a peer that exhausted
	// its consecutive-failure budget; the peer is re-probed by the first
	// send after its quarantine expires.
	ErrPeerQuarantined = errors.New("realnet: peer is quarantined")
	// ErrNodeClosed is returned by sends interrupted by Close.
	ErrNodeClosed = errors.New("realnet: node is closed")
)

// PeerStats is one peer's transport counters. Outbound counters are per
// send call: Sends counts calls, Retries the extra dial attempts beyond
// each call's first, Failures the calls that exhausted the whole budget
// (quarantine fast-failures included). FramesOut/BytesOut count frames
// actually delivered to the wire; FramesIn/BytesIn count validated frames
// this peer reported itself the sender of.
type PeerStats struct {
	Sends    int64 `json:"sends"`
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`

	FramesOut int64 `json:"frames_out"`
	BytesOut  int64 `json:"bytes_out"`
	FramesIn  int64 `json:"frames_in"`
	BytesIn   int64 `json:"bytes_in"`

	// Rejects counts inbound generations from this origin that were
	// refused by the Byzantine admission pipeline (quarantined origin,
	// structural validation failure, or holdout-probe failure).
	Rejects int64 `json:"rejects"`

	// ConsecutiveFailures is the current failure streak; Quarantined
	// reports whether the peer is presently fast-failing sends.
	ConsecutiveFailures int  `json:"consecutive_failures"`
	Quarantined         bool `json:"quarantined"`
}

// TransportStats snapshots the node's transport counters: per-peer
// outbound/attributed-inbound accounting plus node-wide totals (inbound
// frames whatever the sender, corrupt or invalid frames, and background
// tasks dropped because the pool was saturated).
type TransportStats struct {
	Peers         map[string]PeerStats `json:"peers"`
	FramesIn      int64                `json:"frames_in"`
	BytesIn       int64                `json:"bytes_in"`
	CorruptFrames int64                `json:"corrupt_frames"`
	DroppedTasks  int64                `json:"dropped_tasks"`
	Rejects       int64                `json:"rejects"`
}

// transport wraps every outbound frame in a retry/timeout/backoff policy
// with per-peer accounting: a bounded dial budget per send, exponential
// backoff whose jitter derives from runner.DeriveSeed (deterministic per
// (seed, peer) — tests can pin the schedule), and dead-peer quarantine so
// a flapping or dead peer costs one fast error instead of a dial budget.
type transport struct {
	cfg  Config
	stop <-chan struct{}

	framesIn atomic.Int64
	bytesIn  atomic.Int64
	corrupt  atomic.Int64
	dropped  atomic.Int64
	rejects  atomic.Int64

	mu    sync.Mutex
	peers map[string]*peerState
}

type peerState struct {
	sends, retries, failures int64
	framesOut, bytesOut      int64
	framesIn, bytesIn        int64
	rejects                  int64
	consecFails              int
	quarantinedUntil         time.Time
	rng                      *rand.Rand
}

func newTransport(cfg Config, stop <-chan struct{}) *transport {
	return &transport{cfg: cfg, stop: stop, peers: make(map[string]*peerState)}
}

// peerLocked returns (creating if needed) the state for addr. The table is
// capped alongside the membership tables; past the cap an ephemeral state
// is returned so callers never nil-check, at the price of losing counters
// for peers beyond MaxPeers.
func (t *transport) peerLocked(addr string) *peerState {
	ps := t.peers[addr]
	if ps == nil {
		ps = &peerState{rng: rand.New(rand.NewSource(runner.DeriveSeed(t.cfg.Seed, "transport", addr)))}
		if len(t.peers) < t.cfg.MaxPeers {
			t.peers[addr] = ps
		}
	}
	return ps
}

// backoffLocked returns the delay before retry attempt k (1-based): an
// exponential of BackoffBase capped at BackoffMax, plus up to 50% jitter
// drawn from the peer's derived stream. Callers hold t.mu.
func (t *transport) backoffLocked(ps *peerState, attempt int) time.Duration {
	d := t.cfg.BackoffBase << (attempt - 1)
	if d > t.cfg.BackoffMax || d <= 0 {
		d = t.cfg.BackoffMax
	}
	return d + time.Duration(ps.rng.Int63n(int64(d)/2+1))
}

// send delivers one frame to a peer: dial, write, close, retrying up to
// the budget with backoff between attempts. A peer whose sends keep
// failing is quarantined — sends fail fast with ErrPeerQuarantined until
// QuarantineFor passes, after which the next send re-probes it (the
// gossip loop guarantees such a send happens while a generation is
// outstanding).
func (t *transport) send(to string, typ byte, payload []byte) error {
	now := time.Now()
	t.mu.Lock()
	ps := t.peerLocked(to)
	ps.sends++
	if ps.consecFails >= t.cfg.QuarantineAfter && now.Before(ps.quarantinedUntil) {
		ps.failures++
		until := ps.quarantinedUntil
		t.mu.Unlock()
		return fmt.Errorf("%w: %s (re-probe in %v)", ErrPeerQuarantined, to, time.Until(until).Round(time.Millisecond))
	}
	t.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt < t.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			t.mu.Lock()
			ps.retries++
			d := t.backoffLocked(ps, attempt)
			t.mu.Unlock()
			select {
			case <-time.After(d):
			case <-t.stop:
				return ErrNodeClosed
			}
		}
		if err := t.dialAndWrite(to, typ, payload); err != nil {
			lastErr = err
			continue
		}
		t.mu.Lock()
		ps.framesOut++
		ps.bytesOut += int64(5 + len(payload))
		ps.consecFails = 0
		ps.quarantinedUntil = time.Time{}
		t.mu.Unlock()
		return nil
	}
	t.mu.Lock()
	ps.failures++
	ps.consecFails++
	if ps.consecFails >= t.cfg.QuarantineAfter {
		ps.quarantinedUntil = time.Now().Add(t.cfg.QuarantineFor)
	}
	t.mu.Unlock()
	return lastErr
}

// dialAndWrite is one delivery attempt: dial-per-message keeps the sender
// stateless and correct (model broadcasts are rare events); the retry
// layer above is what absorbs the flakiness this simplicity costs.
func (t *transport) dialAndWrite(to string, typ byte, payload []byte) error {
	conn, err := t.cfg.Dial(to, t.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(t.cfg.WriteTimeout))
	return writeFrame(conn, typ, payload)
}

// creditIn attributes one validated inbound frame to its self-reported
// sender.
func (t *transport) creditIn(peer string, payloadBytes int) {
	t.mu.Lock()
	ps := t.peerLocked(peer)
	ps.framesIn++
	ps.bytesIn += int64(5 + payloadBytes)
	t.mu.Unlock()
}

// noteIn counts one inbound frame (any sender); noteCorrupt counts a
// frame that failed to parse or validate; noteDropped counts a background
// task lost to pool saturation.
func (t *transport) noteIn(payloadBytes int) {
	t.framesIn.Add(1)
	t.bytesIn.Add(int64(5 + payloadBytes))
}
func (t *transport) noteCorrupt() { t.corrupt.Add(1) }
func (t *transport) noteDropped() { t.dropped.Add(1) }

// noteReject charges one admission-pipeline rejection to its origin.
func (t *transport) noteReject(origin string) {
	t.rejects.Add(1)
	t.mu.Lock()
	t.peerLocked(origin).rejects++
	t.mu.Unlock()
}

// snapshot builds a TransportStats copy.
func (t *transport) snapshot() TransportStats {
	out := TransportStats{
		FramesIn:      t.framesIn.Load(),
		BytesIn:       t.bytesIn.Load(),
		CorruptFrames: t.corrupt.Load(),
		DroppedTasks:  t.dropped.Load(),
		Rejects:       t.rejects.Load(),
	}
	now := time.Now()
	t.mu.Lock()
	out.Peers = make(map[string]PeerStats, len(t.peers))
	for addr, ps := range t.peers {
		out.Peers[addr] = PeerStats{
			Sends:               ps.sends,
			Retries:             ps.retries,
			Failures:            ps.failures,
			FramesOut:           ps.framesOut,
			BytesOut:            ps.bytesOut,
			FramesIn:            ps.framesIn,
			BytesIn:             ps.bytesIn,
			Rejects:             ps.rejects,
			ConsecutiveFailures: ps.consecFails,
			Quarantined:         ps.consecFails >= t.cfg.QuarantineAfter && now.Before(ps.quarantinedUntil),
		}
	}
	t.mu.Unlock()
	return out
}

// Transport snapshots the node's per-peer transport counters.
func (n *Node) Transport() TransportStats { return n.tr.snapshot() }
