package realnet

import (
	"strings"
	"testing"
	"time"
)

// startCluster launches n nodes on loopback, joined through node 0.
func startCluster(t *testing.T, n int) []*Node {
	t.Helper()
	nodes := make([]*Node, n)
	first, err := Start(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodes[0] = first
	for i := 1; i < n; i++ {
		nd, err := Start(Config{Seeds: []string{first.Addr()}, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			if nd != nil {
				nd.Close()
			}
		}
	})
	return nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func seedDocs(t *testing.T, nd *Node, topic int) {
	t.Helper()
	topics := [][2]string{
		{"music", "guitar melody chord song album piano concert symphony"},
		{"travel", "flight hotel passport itinerary beach island resort museum"},
		{"cooking", "recipe oven butter flour sugar grill steak garlic sauce"},
	}
	main := topics[topic%len(topics)]
	other := topics[(topic+1)%len(topics)]
	// Each document carries most of its topic vocabulary (rotated) so the
	// tiny training sets are clearly separable.
	rotate := func(words []string, k int) string {
		out := make([]string, len(words))
		for i := range words {
			out[i] = words[(i+k)%len(words)]
		}
		return strings.Join(out[:6], " ")
	}
	mw := strings.Fields(main[1])
	ow := strings.Fields(other[1])
	for i := 0; i < 6; i++ {
		if err := nd.AddDocument(rotate(mw, i), main[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := nd.AddDocument(rotate(ow, i), other[0]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMembershipGossip(t *testing.T) {
	nodes := startCluster(t, 4)
	// Every node should eventually know the other three, even though only
	// node 0 was given as a seed.
	for i, nd := range nodes {
		nd := nd
		waitFor(t, "membership convergence", func() bool {
			return len(nd.Peers()) >= 3
		})
		_ = i
	}
}

func TestCollaborativeTaggingOverTCP(t *testing.T) {
	nodes := startCluster(t, 3)
	for i, nd := range nodes {
		seedDocs(t, nd, i)
	}
	// Everyone publishes after membership has converged.
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "membership", func() bool { return len(nd.Peers()) >= 2 })
	}
	for _, nd := range nodes {
		if _, err := nd.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "model propagation", func() bool { return nd.ModelsKnown() >= 2 })
	}
	// Node 2 (cooking+music) asks about a travel note: only collaboration
	// can answer, since travel is not its primary topic... node2 has
	// travel? topics: node0 music+travel, node1 travel+cooking, node2
	// cooking+music. Ask node 2 about travel.
	scores, err := nodes[2].Suggest("booked the flight and the hotel for the island beach trip")
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no suggestions")
	}
	if scores[0].Tag != "travel" {
		t.Errorf("top suggestion = %+v, want travel", scores[0])
	}
	tags, err := nodes[2].AutoTag("grill the steak with garlic butter sauce", 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tag := range tags {
		if tag == "cooking" {
			found = true
		}
	}
	if !found {
		t.Errorf("AutoTag = %v, want cooking", tags)
	}
}

func TestSurvivesPeerShutdown(t *testing.T) {
	nodes := startCluster(t, 3)
	for i, nd := range nodes {
		seedDocs(t, nd, i)
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "membership", func() bool { return len(nd.Peers()) >= 2 })
	}
	for _, nd := range nodes {
		if _, err := nd.Publish(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "models", func() bool { return nodes[0].ModelsKnown() >= 2 })
	// Kill the other two nodes; node 0 keeps answering from local copies.
	nodes[1].Close()
	nodes[2].Close()
	nodes[1], nodes[2] = nil, nil
	scores, err := nodes[0].Suggest("a recipe with flour butter and sugar in the oven")
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Tag != "cooking" {
		t.Errorf("after shutdowns, top = %+v, want cooking", scores[0])
	}
}

func TestPublishWithoutDocs(t *testing.T) {
	nd, err := Start(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := nd.Publish(); err == nil {
		t.Error("publish with no documents should error")
	}
	if err := nd.AddDocument("text"); err == nil {
		t.Error("document without tags accepted")
	}
}

func TestSuggestWithoutModels(t *testing.T) {
	nd, err := Start(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if _, err := nd.Suggest("anything"); err == nil {
		t.Error("suggest with no models should error")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	addrs := []string{"1.2.3.4:80", "[::1]:9999", ""}
	got, err := decodeHello(encodeHello(addrs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != addrs[0] || got[1] != addrs[1] {
		t.Errorf("hello round trip = %v", got)
	}
	if _, err := decodeHello([]byte{0xFF}); err == nil {
		t.Error("truncated hello accepted")
	}
}
