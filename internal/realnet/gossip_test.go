package realnet

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastMesh are the transport knobs cluster tests run with: quick retries,
// short quarantines, a tight gossip loop.
func fastMesh(seed int64, seeds ...string) Config {
	return Config{
		Seed:            seed,
		Seeds:           seeds,
		DialTimeout:     time.Second,
		MaxAttempts:     2,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      10 * time.Millisecond,
		QuarantineAfter: 2,
		QuarantineFor:   100 * time.Millisecond,
		GossipInterval:  100 * time.Millisecond,
	}
}

// TestGenerationGossipConverges publishes a model generation on one node
// of a 3-node mesh and requires every node to converge on it: same
// (Seq, Origin), working models, OnGeneration fired exactly once per
// remote node per generation.
func TestGenerationGossipConverges(t *testing.T) {
	var fired [3]atomic.Int64
	nodes := make([]*Node, 3)
	var seeds []string
	for i := range nodes {
		cfg := fastMesh(int64(i+1), seeds...)
		i := i
		cfg.OnGeneration = func(gen Generation) { fired[i].Add(1) }
		nd, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Close()
		nodes[i] = nd
		seeds = []string{nodes[0].Addr()}
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "membership", func() bool { return len(nd.Peers()) >= 2 })
	}

	set, err := TrainModelSet(trainingTexts(0), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen, sum, err := nodes[0].PublishGeneration(set)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Seq != 1 || gen.Origin != nodes[0].Addr() {
		t.Fatalf("generation = %+v, want seq 1 origin %s", gen, nodes[0].Addr())
	}
	if !sum.AllReached() {
		t.Fatalf("broadcast failures on a healthy mesh: %v", sum.Failed)
	}
	for i, nd := range nodes {
		nd := nd
		waitFor(t, "generation convergence", func() bool {
			cur, ok := nd.CurrentGeneration()
			return ok && cur.Seq == gen.Seq && cur.Origin == gen.Origin
		})
		want := int64(1)
		if i == 0 {
			want = 0 // the publisher installs from the return value
		}
		waitFor(t, "callback count", func() bool { return fired[i].Load() == want })
	}

	// The gossiped sets answer identically everywhere: a decoded set and
	// the published one agree tag for tag, byte for byte.
	text := "guitar melody chord song album piano"
	var answers [][]string
	for _, nd := range nodes {
		cur, _ := nd.CurrentGeneration()
		e, err := NewEnsemble(0.5, 4, cur.Set)
		if err != nil {
			t.Fatal(err)
		}
		tags, err := e.AutoTagBatch([]string{text})
		if err != nil {
			t.Fatal(err)
		}
		answers = append(answers, tags[0])
	}
	for i := 1; i < len(answers); i++ {
		if !reflect.DeepEqual(answers[0], answers[i]) {
			t.Errorf("node %d answers %v, node 0 answers %v", i, answers[i], answers[0])
		}
	}

	// A second publish from another node supersedes the first everywhere.
	set2, err := TrainModelSet(trainingTexts(1), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen2, _, err := nodes[1].PublishGeneration(set2)
	if err != nil {
		t.Fatal(err)
	}
	if gen2.Seq != 2 {
		t.Fatalf("second generation seq = %d, want 2", gen2.Seq)
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "second generation convergence", func() bool {
			cur, ok := nd.CurrentGeneration()
			return ok && cur.Seq == 2 && cur.Origin == nodes[1].Addr()
		})
	}
}

// TestGenerationReachesRestartedPeer kills a node after convergence,
// starts a fresh one in its place, and requires the fresh node to catch up
// on the current generation without any new publish — via the hello
// catch-up or the origin's periodic rebroadcast.
func TestGenerationReachesRestartedPeer(t *testing.T) {
	a, err := Start(fastMesh(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(fastMesh(2, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "membership", func() bool { return len(a.Peers()) >= 1 })

	set, err := TrainModelSet(trainingTexts(0), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen, _, err := a.PublishGeneration(set)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b converged", func() bool {
		cur, ok := b.CurrentGeneration()
		return ok && cur.Seq == gen.Seq
	})

	// Kill b; a's rebroadcasts now fail and quarantine b's address.
	bAddr := b.Addr()
	b.Close()
	waitFor(t, "dead peer noticed", func() bool {
		st := a.Transport().Peers[bAddr]
		return st.Failures > 0
	})

	// A fresh node joins through a (new address, no state): it must pick
	// up the generation it never saw published.
	c, err := Start(fastMesh(3, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "restarted peer caught up", func() bool {
		cur, ok := c.CurrentGeneration()
		return ok && cur.Seq == gen.Seq && cur.Origin == gen.Origin
	})
}

// TestGenerationHealsPartition cuts one node off (every dial to and from
// it fails), publishes a generation meanwhile, then heals the partition
// and requires the cut-off node to converge via the origin's anti-entropy
// rebroadcast — including after its address was quarantined.
func TestGenerationHealsPartition(t *testing.T) {
	var partitioned atomic.Bool
	var victim atomic.Value // string; set once addresses are known
	victim.Store("")
	dial := func(addr string, timeout time.Duration) (net.Conn, error) {
		if partitioned.Load() && addr == victim.Load().(string) {
			return nil, errors.New("injected: partitioned")
		}
		return net.DialTimeout("tcp", addr, timeout)
	}
	nodes := make([]*Node, 3)
	var seeds []string
	for i := range nodes {
		cfg := fastMesh(int64(i+1), seeds...)
		cfg.Dial = dial
		nd, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer nd.Close()
		nodes[i] = nd
		seeds = []string{nodes[0].Addr()}
	}
	for _, nd := range nodes {
		nd := nd
		waitFor(t, "membership", func() bool { return len(nd.Peers()) >= 2 })
	}
	victim.Store(nodes[2].Addr())
	partitioned.Store(true)

	set, err := TrainModelSet(trainingTexts(0), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen, sum, err := nodes[0].PublishGeneration(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, cut := sum.Failed[nodes[2].Addr()]; !cut {
		t.Fatalf("publish during partition reported %+v, want failure for %s", sum, nodes[2].Addr())
	}
	waitFor(t, "reachable node converged", func() bool {
		cur, ok := nodes[1].CurrentGeneration()
		return ok && cur.Seq == gen.Seq
	})
	if _, ok := nodes[2].CurrentGeneration(); ok {
		t.Fatal("partitioned node received the generation through the partition")
	}

	// Let the rebroadcasts fail long enough to quarantine the victim, then
	// heal: the next anti-entropy pass after the quarantine expires must
	// deliver the generation.
	waitFor(t, "victim quarantined", func() bool {
		return nodes[0].Transport().Peers[nodes[2].Addr()].Failures >= 2
	})
	partitioned.Store(false)
	waitFor(t, "partition healed, victim converged", func() bool {
		cur, ok := nodes[2].CurrentGeneration()
		return ok && cur.Seq == gen.Seq && cur.Origin == gen.Origin
	})
}

// TestGenerationEncodingRoundTrip pins the frame layout and its corrupt-
// input behavior.
func TestGenerationEncodingRoundTrip(t *testing.T) {
	set, err := TrainModelSet(trainingTexts(0), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	g := Generation{Seq: 42, Origin: "127.0.0.1:7001", Set: set}
	payload, err := encodeGeneration(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeGeneration(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != g.Seq || got.Origin != g.Origin {
		t.Fatalf("round trip = (%d, %q), want (%d, %q)", got.Seq, got.Origin, g.Seq, g.Origin)
	}
	if !reflect.DeepEqual(got.Set.Accuracy, set.Accuracy) {
		t.Error("accuracies did not survive the round trip")
	}
	// Re-encoding is byte-identical (determinism contract).
	payload2, err := encodeGeneration(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != string(payload2) {
		t.Error("generation encoding is not deterministic")
	}
	for _, cut := range []int{1, 7, 9, len(payload) / 2, len(payload) - 1} {
		if _, err := decodeGeneration(payload[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestEnsembleMatchesNodeSuggest pins the composition contract: an
// Ensemble over a set answers exactly like a Node holding the same set —
// the serving cluster's answers are the peer protocol's answers.
func TestEnsembleMatchesNodeSuggest(t *testing.T) {
	nd, err := Start(Config{Seed: 1, Dial: failDial, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	for _, doc := range trainingTexts(0) {
		if err := nd.AddDocument(doc.Text, doc.Tags...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nd.Publish(); err != nil {
		t.Fatal(err)
	}
	set, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnsemble(0.5, 4, set)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"guitar melody chord song",
		"flight hotel passport beach island",
		"piano concert symphony album",
	}
	for _, text := range texts {
		want, err := nd.Suggest(text)
		if err != nil {
			t.Fatal(err)
		}
		got := e.Suggest(text)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("Suggest(%q): ensemble %v, node %v", text, got, want)
		}
	}
	// Concurrent construction over a shared set must be race-clean
	// (ensureFused is a sync.Once) and batch answers must be per-row
	// non-nil.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := NewEnsemble(0.5, 4, set)
			if err != nil {
				t.Error(err)
				return
			}
			rows, err := e.AutoTagBatch(texts)
			if err != nil || len(rows) != len(texts) {
				t.Errorf("AutoTagBatch = %v, %v", rows, err)
				return
			}
			for _, row := range rows {
				if row == nil {
					t.Error("nil row in batch answer")
				}
			}
		}()
	}
	wg.Wait()
}

// TestEnsembleValidation pins constructor errors.
func TestEnsembleValidation(t *testing.T) {
	set, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEnsemble(0.5, 4); err == nil {
		t.Error("ensemble without sets accepted")
	}
	if _, err := NewEnsemble(0.5, 4, nil); err == nil {
		t.Error("ensemble over nil set accepted")
	}
	if _, err := NewEnsemble(-0.1, 4, set); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewEnsemble(1.5, 4, set); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewEnsemble(0.5, -1, set); err == nil {
		t.Error("negative maxTags accepted")
	}
}
