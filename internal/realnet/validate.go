package realnet

import (
	"fmt"
	"math"
	"sort"
)

// maxTagNameLen bounds one tag name in an inbound model set; real tags are
// short words, so anything longer is an attack or corruption.
const maxTagNameLen = 256

// finite reports whether x is a usable weight: not NaN, not ±Inf.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// validateModelSet is the structural half of the Byzantine admission
// pipeline: every inbound model set — gossiped generation or peer
// broadcast — passes it before the set may touch the model tables or an
// ensemble. It enforces the shape caps (tag count, tag name length, dense
// dimension) and scans every number the vote will consume (weights, bias,
// Platt calibration, accuracy) for NaN/Inf, so a poisoned set cannot turn
// every answer into NaN. Tags are checked in sorted order so the reported
// error is deterministic for a given set.
func validateModelSet(ms *ModelSet, maxTags, maxDim int) error {
	if ms == nil || len(ms.Models) == 0 {
		return fmt.Errorf("realnet: model set is empty")
	}
	if len(ms.Models) > maxTags {
		return fmt.Errorf("realnet: model set has %d tags, cap is %d", len(ms.Models), maxTags)
	}
	tags := make([]string, 0, len(ms.Models))
	for tag := range ms.Models {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		if tag == "" {
			return fmt.Errorf("realnet: model set has an empty tag name")
		}
		if len(tag) > maxTagNameLen {
			return fmt.Errorf("realnet: tag name of %d bytes exceeds cap %d", len(tag), maxTagNameLen)
		}
		m := ms.Models[tag]
		if m == nil {
			return fmt.Errorf("realnet: tag %q has no model", tag)
		}
		if len(m.W) > maxDim {
			return fmt.Errorf("realnet: tag %q claims dimension %d, cap is %d", tag, len(m.W), maxDim)
		}
		if !finite(m.Bias) {
			return fmt.Errorf("realnet: tag %q has non-finite bias", tag)
		}
		for i, w := range m.W {
			if !finite(w) {
				return fmt.Errorf("realnet: tag %q has non-finite weight at %d", tag, i)
			}
		}
		p := ms.Platt[tag]
		if !finite(p.A) || !finite(p.B) {
			return fmt.Errorf("realnet: tag %q has non-finite Platt calibration", tag)
		}
		acc := ms.Accuracy[tag]
		if !finite(acc) || acc < 0 || acc > 1 {
			return fmt.Errorf("realnet: tag %q reports accuracy %v outside [0,1]", tag, acc)
		}
	}
	return nil
}
