package realnet

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/runner"
)

// OriginTrust is one origin's ledger entry as exposed through TrustStats:
// its current vote weight, the admission outcomes that produced it, and
// whether the origin is presently quarantined (its generations refused
// before validation even runs).
type OriginTrust struct {
	Score       float64 `json:"score"`
	Accepted    int64   `json:"accepted"`
	Rejected    int64   `json:"rejected"`
	Reprobes    int64   `json:"reprobes"`
	Quarantined bool    `json:"quarantined"`
}

// TrustStats snapshots the node's per-origin trust ledger.
type TrustStats struct {
	Origins map[string]OriginTrust `json:"origins"`
}

// trustLedger is the per-origin trust state behind the Byzantine admission
// pipeline. Every origin starts at full trust (score 1.0 — honest peers in
// an all-honest mesh are never penalized, which keeps trust weighting
// byte-invisible there). A rejected publication halves the score and
// quarantines the origin for the configured window plus jitter drawn from
// the origin's runner.DeriveSeed stream (deterministic per (seed, origin),
// so tests can pin the re-probe schedule); an accepted one restores a
// quarter of the scale and lifts the quarantine. The first accepted
// publication after a quarantine window counts as a successful re-probe.
type trustLedger struct {
	mu            sync.Mutex
	seed          int64
	quarantineFor time.Duration
	maxOrigins    int
	origins       map[string]*originTrust
}

type originTrust struct {
	score            float64
	accepted         int64
	rejected         int64
	reprobes         int64
	quarantinedUntil time.Time
	rng              *rand.Rand
}

func newTrustLedger(seed int64, quarantineFor time.Duration, maxOrigins int) *trustLedger {
	return &trustLedger{
		seed:          seed,
		quarantineFor: quarantineFor,
		maxOrigins:    maxOrigins,
		origins:       make(map[string]*originTrust),
	}
}

// originLocked returns (creating if needed) the entry for origin. The
// table is capped like the transport's peer table: past the cap an
// ephemeral entry is returned so callers never nil-check, at the price of
// not persisting trust for origins beyond the cap — a forged-origin flood
// cannot grow the ledger without bound.
func (l *trustLedger) originLocked(origin string) *originTrust {
	o := l.origins[origin]
	if o == nil {
		o = &originTrust{
			score: 1,
			rng:   rand.New(rand.NewSource(runner.DeriveSeed(l.seed, "trust", origin))),
		}
		if len(l.origins) < l.maxOrigins {
			l.origins[origin] = o
		}
	}
	return o
}

// admitted reports whether a publication from origin may enter the
// validation pipeline at all: a quarantined origin is refused outright
// until its window (base + derived jitter) expires, after which the next
// publication is the re-probe.
func (l *trustLedger) admitted(origin string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.originLocked(origin)
	return o.quarantinedUntil.IsZero() || !now.Before(o.quarantinedUntil)
}

// reject records a failed admission: the origin's score halves and it is
// quarantined for the window plus up to 50% jitter from its derived stream.
func (l *trustLedger) reject(origin string, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.originLocked(origin)
	o.rejected++
	o.score /= 2
	jitter := time.Duration(o.rng.Int63n(int64(l.quarantineFor)/2 + 1))
	o.quarantinedUntil = now.Add(l.quarantineFor + jitter)
}

// accept records a successful admission: the score recovers a quarter of
// full scale (capped at 1) and any quarantine lifts. An accept that lifts
// a quarantine is a successful re-probe.
func (l *trustLedger) accept(origin string, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.originLocked(origin)
	o.accepted++
	if !o.quarantinedUntil.IsZero() && !now.Before(o.quarantinedUntil) {
		o.reprobes++
	}
	o.quarantinedUntil = time.Time{}
	o.score += 0.25
	if o.score > 1 {
		o.score = 1
	}
}

// weight is the origin's multiplier into the ensemble vote; an origin the
// ledger has never seen is fully trusted (1.0).
func (l *trustLedger) weight(origin string) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if o := l.origins[origin]; o != nil {
		return o.score
	}
	return 1
}

// quarantined reports whether origin is inside an active quarantine window.
func (l *trustLedger) quarantined(origin string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	o := l.origins[origin]
	return o != nil && !o.quarantinedUntil.IsZero() && now.Before(o.quarantinedUntil)
}

// snapshot builds a TrustStats copy.
func (l *trustLedger) snapshot() TrustStats {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := TrustStats{Origins: make(map[string]OriginTrust, len(l.origins))}
	for origin, o := range l.origins {
		out.Origins[origin] = OriginTrust{
			Score:       o.score,
			Accepted:    o.accepted,
			Rejected:    o.rejected,
			Reprobes:    o.reprobes,
			Quarantined: !o.quarantinedUntil.IsZero() && now.Before(o.quarantinedUntil),
		}
	}
	return out
}

// Trust snapshots the node's per-origin trust ledger.
func (n *Node) Trust() TrustStats { return n.trust.snapshot() }
