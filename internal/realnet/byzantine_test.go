package realnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// byzantineVictim starts a node with the full admission pipeline armed: a
// holdout probe over the topic-0 corpus and a short trust quarantine so
// re-probe windows fit in a -short test run. Outbound dials are disabled —
// these tests only drive inbound frames at it.
func byzantineVictim(t *testing.T, quarantine time.Duration) *Node {
	t.Helper()
	nd, err := Start(Config{
		Seed:               1,
		Dial:               failDial,
		MaxAttempts:        1,
		ProbeDocs:          trainingTexts(0),
		TrustQuarantineFor: quarantine,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

// strikeFrom builds a single-purpose adversary claiming the given origin
// and aims it at the victim. Its poisoned sets derive from the same
// corpus the victim probes with, so only the corruption — not domain
// mismatch — decides the outcome.
func strikeFrom(t *testing.T, victim *Node, origin string, seed int64) *Adversary {
	t.Helper()
	adv, err := NewAdversary(AdversaryConfig{
		Seed:    seed,
		Origin:  origin,
		Targets: []string{victim.Addr()},
		Docs:    trainingTexts(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestValidationRejectsPoisonedGenerations drives one strike of each
// poisoning kind at a probing node: the NaN bomb dies on the structural
// finite-weight scan, the scaled and label-flipped sets die on the
// holdout probe, every rejection is charged to its origin in both the
// transport counters and the trust ledger, and nothing installs. An
// honest generation from a clean origin still installs afterwards — the
// pipeline rejects poison, not traffic.
func TestValidationRejectsPoisonedGenerations(t *testing.T) {
	victim := byzantineVictim(t, time.Minute)

	kinds := []AttackKind{AttackNaNBomb, AttackWeightScale, AttackLabelFlip}
	origins := make([]string, len(kinds))
	for i, kind := range kinds {
		origins[i] = fmt.Sprintf("10.1.1.%d:7000", i+1)
		adv := strikeFrom(t, victim, origins[i], int64(100+i))
		if err := adv.Strike(kind, uint64(100+i)); err != nil {
			t.Fatalf("%v strike undelivered: %v", kind, err)
		}
	}
	waitFor(t, "all poisoned generations rejected", func() bool {
		return victim.Transport().Rejects >= int64(len(kinds))
	})
	if _, ok := victim.CurrentGeneration(); ok {
		t.Fatal("a poisoned generation installed")
	}
	trust := victim.Trust()
	tr := victim.Transport()
	for i, origin := range origins {
		o, seen := trust.Origins[origin]
		if !seen {
			t.Fatalf("%v origin %s missing from the trust ledger", kinds[i], origin)
		}
		if o.Rejected < 1 || o.Accepted != 0 {
			t.Errorf("%v origin: rejected %d accepted %d, want >=1 and 0", kinds[i], o.Rejected, o.Accepted)
		}
		if o.Score >= 1 {
			t.Errorf("%v origin: score %v not demoted", kinds[i], o.Score)
		}
		if !o.Quarantined {
			t.Errorf("%v origin not quarantined", kinds[i])
		}
		if tr.Peers[origin].Rejects < 1 {
			t.Errorf("%v origin: transport rejects %d, want >=1", kinds[i], tr.Peers[origin].Rejects)
		}
	}
	// Poisoned origins must not have entered the membership tables either.
	for _, p := range victim.Peers() {
		for i, origin := range origins {
			if p == origin {
				t.Errorf("%v origin entered the peer table", kinds[i])
			}
		}
	}

	// A clean origin's honest set (AttackStaleReplay carries the
	// uncorrupted base) passes the same pipeline and installs.
	honest := strikeFrom(t, victim, "10.2.2.2:7000", 7)
	if err := honest.Strike(AttackStaleReplay, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "honest generation installed", func() bool {
		cur, ok := victim.CurrentGeneration()
		return ok && cur.Seq == 1 && cur.Origin == "10.2.2.2:7000"
	})
	if o := victim.Trust().Origins["10.2.2.2:7000"]; o.Accepted != 1 || o.Score != 1 {
		t.Errorf("honest origin ledger = %+v, want accepted 1 at full trust", o)
	}
}

// TestTrustQuarantineReprobe pins the quarantine lifecycle: after a
// rejection the origin's honest publications are refused outright — no
// validation, no install — until the deterministic window (base plus
// derived jitter) expires; the first accepted publication after it counts
// as a successful re-probe, lifts the quarantine and recovers trust.
func TestTrustQuarantineReprobe(t *testing.T) {
	victim := byzantineVictim(t, 100*time.Millisecond)
	const origin = "10.3.3.3:7000"
	adv := strikeFrom(t, victim, origin, 9)

	if err := adv.Strike(AttackNaNBomb, 10); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "poison rejected", func() bool {
		return victim.Trust().Origins[origin].Rejected >= 1
	})

	// Honest content inside the window is refused before validation.
	if err := adv.Strike(AttackStaleReplay, 11); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "in-window publication refused", func() bool {
		return victim.Transport().Peers[origin].Rejects >= 2
	})
	if _, ok := victim.CurrentGeneration(); ok {
		t.Fatal("a quarantined origin's generation installed")
	}
	if o := victim.Trust().Origins[origin]; o.Accepted != 0 || !o.Quarantined {
		t.Fatalf("in-window ledger = %+v, want still quarantined with 0 accepts", o)
	}

	// After the window (jitter is at most 50% of the base), the next
	// honest publication is the re-probe: it validates, installs and
	// restores the origin.
	waitFor(t, "quarantine window expired", func() bool {
		return !victim.Trust().Origins[origin].Quarantined
	})
	if err := adv.Strike(AttackStaleReplay, 12); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "re-probe accepted", func() bool {
		cur, ok := victim.CurrentGeneration()
		return ok && cur.Seq == 12 && cur.Origin == origin
	})
	o := victim.Trust().Origins[origin]
	if o.Reprobes != 1 || o.Accepted != 1 || o.Quarantined {
		t.Errorf("post-re-probe ledger = %+v, want 1 reprobe, 1 accept, no quarantine", o)
	}
	if o.Score <= 0.5 {
		t.Errorf("score %v did not recover on re-probe", o.Score)
	}
}

// TestStaleReplayNeverReinstalls is the replay regression pin: an older
// (Seq, Origin) must never reinstall over a newer generation — on a
// converged node, and on a node that restarted and caught up through the
// hello path — and a stale echo is normal gossip traffic, never a trust
// event.
func TestStaleReplayNeverReinstalls(t *testing.T) {
	a, err := Start(fastMesh(1))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Start(fastMesh(2, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "membership", func() bool { return len(a.Peers()) >= 1 })

	set, err := TrainModelSet(trainingTexts(0), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.PublishGeneration(set); err != nil {
		t.Fatal(err)
	}
	set2, err := TrainModelSet(trainingTexts(1), 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen2, _, err := a.PublishGeneration(set2)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "b at generation 2", func() bool {
		cur, ok := b.CurrentGeneration()
		return ok && cur.Seq == gen2.Seq
	})

	// Replay an older sequence at the converged node: dedup drops it.
	replayer, err := NewAdversary(AdversaryConfig{
		Seed: 9, Origin: "10.4.4.4:7000", Targets: []string{b.Addr()},
		Docs: trainingTexts(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	framesBefore := b.Transport().FramesIn
	if err := replayer.Strike(AttackStaleReplay, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replay frame processed", func() bool {
		return b.Transport().FramesIn > framesBefore
	})
	cur, _ := b.CurrentGeneration()
	if cur.Seq != gen2.Seq || cur.Origin != gen2.Origin {
		t.Fatalf("replay reinstalled: now at (%d, %s)", cur.Seq, cur.Origin)
	}
	if got := b.Transport().Peers["10.4.4.4:7000"].Rejects; got != 0 {
		t.Errorf("stale echo charged %d rejects; dedup is not a trust event", got)
	}
	b.Close()

	// Restart path: a fresh node catches up through the hello exchange,
	// then the same replay must be just as dead.
	c, err := Start(fastMesh(3, a.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "restarted node caught up", func() bool {
		cur, ok := c.CurrentGeneration()
		return ok && cur.Seq == gen2.Seq && cur.Origin == gen2.Origin
	})
	replayC, err := NewAdversary(AdversaryConfig{
		Seed: 9, Origin: "10.4.4.4:7000", Targets: []string{c.Addr()},
		Docs: trainingTexts(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	framesBefore = c.Transport().FramesIn
	if err := replayC.Strike(AttackStaleReplay, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "replay frame processed after restart", func() bool {
		return c.Transport().FramesIn > framesBefore
	})
	cur, _ = c.CurrentGeneration()
	if cur.Seq != gen2.Seq || cur.Origin != gen2.Origin {
		t.Fatalf("replay reinstalled after restart: now at (%d, %s)", cur.Seq, cur.Origin)
	}
}

// TestForgedOriginFloodContained drives a forged-origin flood at a
// probing node: every invented origin's poisoned set is individually
// rejected and demoted, and the capped tables absorb the flood without
// installing anything.
func TestForgedOriginFloodContained(t *testing.T) {
	victim := byzantineVictim(t, time.Minute)
	adv := strikeFrom(t, victim, "10.5.5.5:7000", 11)
	if err := adv.Strike(AttackForgedFlood, 50); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flood rejected", func() bool {
		return victim.Transport().Rejects >= forgedFloodOrigins
	})
	if _, ok := victim.CurrentGeneration(); ok {
		t.Fatal("a forged generation installed")
	}
	demoted := 0
	for _, o := range victim.Trust().Origins {
		if o.Rejected > 0 && o.Quarantined {
			demoted++
		}
	}
	if demoted < forgedFloodOrigins {
		t.Errorf("%d forged origins demoted, want %d", demoted, forgedFloodOrigins)
	}
}

// TestAdversaryDeterministic pins the harness's reproducibility contract:
// two adversaries with the same seed build byte-identical attack
// schedules and payloads (identical running digests), live or dry; a
// different seed diverges.
func TestAdversaryDeterministic(t *testing.T) {
	build := func(seed int64) (*Adversary, []AttackKind) {
		adv, err := NewAdversary(AdversaryConfig{
			Seed: seed, Origin: "10.6.6.6:7000", Docs: trainingTexts(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		kinds, err := adv.RunSchedule(8, 5)
		if err != nil {
			t.Fatal(err)
		}
		return adv, kinds
	}
	a1, k1 := build(42)
	a2, k2 := build(42)
	if !reflect.DeepEqual(k1, k2) {
		t.Fatalf("same seed, different schedules: %v vs %v", k1, k2)
	}
	if a1.Digest() != a2.Digest() {
		t.Fatalf("same seed, different digests: %#x vs %#x", a1.Digest(), a2.Digest())
	}
	a3, _ := build(43)
	if a3.Digest() == a1.Digest() {
		t.Error("different seeds produced identical attack digests")
	}
}

// TestWeightedEnsembleIdentity pins the bit-invisibility contract trust
// weighting relies on: a weighted ensemble at full trust answers
// byte-identically to the unweighted one, a zero weight silences its set
// exactly, and malformed weights are refused.
func TestWeightedEnsembleIdentity(t *testing.T) {
	set0, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	set1, err := TrainModelSet(trainingTexts(1), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{
		"guitar melody chord song",
		"flight hotel passport beach island",
		"recipe oven butter garlic sauce",
	}

	plain, err := NewEnsemble(0.5, 4, set0, set1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewWeightedEnsemble(0.5, 4, []float64{1, 1}, set0, set1)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := NewEnsemble(0.5, 4, set0)
	if err != nil {
		t.Fatal(err)
	}
	silenced, err := NewWeightedEnsemble(0.5, 4, []float64{1, 0}, set0, set1)
	if err != nil {
		t.Fatal(err)
	}
	for _, text := range texts {
		if want, got := plain.Suggest(text), full.Suggest(text); !reflect.DeepEqual(want, got) {
			t.Errorf("full-trust weights perturbed %q: %v vs %v", text, got, want)
		}
		if want, got := solo.Suggest(text), silenced.Suggest(text); !reflect.DeepEqual(want, got) {
			t.Errorf("zero weight did not silence its set for %q: %v vs %v", text, got, want)
		}
	}

	if _, err := NewWeightedEnsemble(0.5, 4, []float64{1}, set0, set1); err == nil {
		t.Error("length-mismatched weights accepted")
	}
	if _, err := NewWeightedEnsemble(0.5, 4, []float64{1, -0.5}, set0, set1); err == nil {
		t.Error("negative weight accepted")
	}
	nan := 0.0
	nan /= nan
	if _, err := NewWeightedEnsemble(0.5, 4, []float64{1, nan}, set0, set1); err == nil {
		t.Error("NaN weight accepted")
	}
}
