// Package realnet is the real-network deployment path of P2PDocTagger,
// backing the paper's claim that "code written for P2PDMT is reusable in
// real applications": actual TCP peers exchange the same calibrated
// one-vs-all tag models the simulator's PACE protocol broadcasts, using
// the binary encodings of internal/wire.
//
// A Node listens on TCP, discovers peers transitively through HELLO
// frames, trains linear SVM tag models from its locally tagged documents,
// broadcasts them with Publish, and answers tag queries locally from the
// ensemble of every model set it has received — so queries keep working
// when every other peer is gone, exactly like the simulated protocol.
//
// The node is built to survive real conditions, not just loopback demos:
//
//   - Every send goes through a retry/timeout/backoff transport — a
//     per-peer dial budget, exponential backoff with jitter derived from
//     runner.DeriveSeed (so tests of the retry schedule are
//     deterministic), and dead-peer quarantine with periodic re-probe.
//     Per-peer counters (sends, retries, failures, frames and bytes in
//     and out) are exposed through Transport.
//   - Read deadlines are refreshed per frame, so a long-lived connection
//     stays alive as long as frames keep arriving.
//   - Self-reported peer addresses are validated and the peer/model
//     tables are capped, so a malicious frame cannot pollute membership
//     or grow state without bound.
//   - Dials never run on a connection-reader goroutine: introductions and
//     gossip relays go through a bounded background task pool, so one
//     unreachable peer cannot stall frame processing.
//
// Beyond peer-trained model sets, nodes gossip whole model generations
// (see Generation and PublishGeneration): an application such as the
// cmd/p2pserve cluster publishes a generation on one node and every
// reachable node — including peers that were dead or partitioned and come
// back — converges on it, installing it through its serving front-end.
package realnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/svm"
	"repro/internal/textproc"
	"repro/internal/vector"
	"repro/internal/wire"
)

// Frame types of the node protocol. Every frame is
// [type byte][length uint32][payload].
const (
	frameHello  = 1 // payload: sender listen addr + known peer addrs
	frameModels = 2 // payload: sender listen addr + a model set
	frameGen    = 3 // payload: a gossiped model generation (seq, origin, set)
)

// maxFrame bounds a frame payload (corrupt peers must not OOM us).
const maxFrame = 64 << 20

// DialFunc dials a peer; tests inject failing dialers to simulate
// partitions and unreachable peers without real network faults.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Config configures a Node. Zero values take the documented defaults.
type Config struct {
	// ListenAddr is the TCP address to listen on ("127.0.0.1:0" picks a
	// free port).
	ListenAddr string
	// Seeds are addresses of existing peers to join through.
	Seeds []string
	// C is the linear SVM penalty; default 1.
	C float64
	// Seed drives training and the deterministic backoff jitter streams.
	Seed int64

	// DialTimeout bounds one dial attempt; default 5s.
	DialTimeout time.Duration
	// WriteTimeout bounds writing one frame after a successful dial;
	// default 10s.
	WriteTimeout time.Duration
	// FrameTimeout is the per-frame read deadline on accepted
	// connections, refreshed before every frame: a connection dies only
	// after this long with no complete frame, never merely for being
	// long-lived. Default 30s.
	FrameTimeout time.Duration
	// MaxAttempts is the per-send dial budget (first try included);
	// default 3.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; attempt k waits
	// BackoffBase<<(k-1) plus jitter, capped at BackoffMax. Defaults
	// 25ms and 1s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// QuarantineAfter is the number of consecutive failed sends after
	// which a peer is quarantined (sends fail fast instead of dialing);
	// default 3. QuarantineFor is how long a quarantine lasts before the
	// next send re-probes the peer; default 5s.
	QuarantineAfter int
	QuarantineFor   time.Duration
	// GossipInterval is the period of the background gossip loop: a node
	// that originated the current model generation rebroadcasts it every
	// interval, which is also what re-probes quarantined peers once their
	// quarantine expires. Default 2s.
	GossipInterval time.Duration
	// MaxPeers caps the membership and model tables against floods of
	// invented self-reported addresses; default 256.
	MaxPeers int

	// MaxSetTags and MaxModelDim bound the structure of an inbound model
	// set (tag count and per-model dense dimension); MaxGenBytes bounds
	// the encoded size of an inbound generation frame. Together with the
	// finite-weight scan they are the structural half of the Byzantine
	// admission pipeline. Defaults 4096 tags, 1<<22 dims, 32 MiB.
	MaxSetTags  int
	MaxModelDim int
	MaxGenBytes int
	// ProbeDocs, when set, is a small local holdout scoring set: every
	// structurally valid inbound generation is scored against it and
	// rejected when its per-(document, tag) accuracy falls below
	// ProbeFloor (default 0.5 — no better than chance). This is what
	// catches semantically poisoned sets (label flips, scaled weights)
	// whose numbers are individually unremarkable. Nil disables probing.
	ProbeDocs  []TaggedText
	ProbeFloor float64
	// TrustQuarantineFor is the per-origin trust quarantine window: after
	// a rejected publication the origin's generations are refused outright
	// until the window (plus jitter derived from runner.DeriveSeed per
	// origin) expires, and the next publication is the re-probe. Default
	// 5s.
	TrustQuarantineFor time.Duration

	// Dial overrides the dialer; default net.DialTimeout on "tcp".
	Dial DialFunc
	// OnGeneration, when set, is invoked for every accepted gossiped
	// model generation (newer than any seen before). It runs on the
	// background task pool, never on a connection-reader goroutine, and
	// must not call Close.
	OnGeneration func(gen Generation)
}

func (cfg *Config) defaults() {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.C == 0 {
		cfg.C = 1
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = 30 * time.Second
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 25 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.QuarantineAfter == 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.QuarantineFor == 0 {
		cfg.QuarantineFor = 5 * time.Second
	}
	if cfg.GossipInterval == 0 {
		cfg.GossipInterval = 2 * time.Second
	}
	if cfg.MaxPeers == 0 {
		cfg.MaxPeers = 256
	}
	if cfg.MaxSetTags == 0 {
		cfg.MaxSetTags = 4096
	}
	if cfg.MaxModelDim == 0 {
		cfg.MaxModelDim = 1 << 22
	}
	if cfg.MaxGenBytes == 0 {
		cfg.MaxGenBytes = 32 << 20
	}
	if cfg.ProbeFloor == 0 {
		cfg.ProbeFloor = 0.5
	}
	if cfg.TrustQuarantineFor == 0 {
		cfg.TrustQuarantineFor = 5 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
}

// newHashedPreprocessor is the canonical feature space every realnet peer
// shares: hashed term-frequency features need no coordinated lexicon, so
// independently running peers agree on what every weight index means.
func newHashedPreprocessor() *textproc.Preprocessor {
	return textproc.NewPreprocessor(nil, textproc.Options{
		Weighting: textproc.TermFrequency, Normalize: true,
		HashDim: 1 << 16,
	})
}

// ModelSet is what a node publishes: per-tag calibrated linear models with
// cross-validated accuracies. The fused score matrix is derived lazily
// (read-only once built, never serialized): Suggest scores all of a set's
// tags in one pass over the document instead of one dot product per tag.
// A ModelSet is immutable once published and must be handled by pointer.
type ModelSet struct {
	Models   map[string]*svm.LinearModel
	Platt    map[string]svm.PlattParams
	Accuracy map[string]float64

	fuseOnce sync.Once
	fused    *svm.FusedLinear
}

// ensureFused builds the fused score matrix on first use; safe for
// concurrent callers, after which the matrix is shared read-only.
func (ms *ModelSet) ensureFused() *svm.FusedLinear {
	ms.fuseOnce.Do(func() {
		if ms.fused == nil {
			ms.fused = svm.NewFusedLinear(ms.Models)
		}
	})
	return ms.fused
}

// toWire converts the set to the wire bank encoding.
func (ms *ModelSet) toWire() map[string]wire.CalibratedModel {
	out := make(map[string]wire.CalibratedModel, len(ms.Models))
	for tag, m := range ms.Models {
		out[tag] = wire.CalibratedModel{Model: m, Platt: ms.Platt[tag], Accuracy: ms.Accuracy[tag]}
	}
	return out
}

// clone deep-copies the set — weights included — so a caller may corrupt
// the copy (the adversary harness does exactly that) without violating
// the original's immutability contract. The clone's fused matrix is
// rebuilt lazily from the copied weights.
func (ms *ModelSet) clone() *ModelSet {
	out := &ModelSet{
		Models:   make(map[string]*svm.LinearModel, len(ms.Models)),
		Platt:    make(map[string]svm.PlattParams, len(ms.Platt)),
		Accuracy: make(map[string]float64, len(ms.Accuracy)),
	}
	for tag, m := range ms.Models {
		cp := &svm.LinearModel{W: append([]float64(nil), m.W...), Bias: m.Bias}
		out.Models[tag] = cp
	}
	for tag, p := range ms.Platt {
		out.Platt[tag] = p
	}
	for tag, a := range ms.Accuracy {
		out.Accuracy[tag] = a
	}
	return out
}

// modelSetFromWire rebuilds a set from its wire bank encoding.
func modelSetFromWire(set map[string]wire.CalibratedModel) *ModelSet {
	ms := &ModelSet{
		Models:   make(map[string]*svm.LinearModel, len(set)),
		Platt:    make(map[string]svm.PlattParams, len(set)),
		Accuracy: make(map[string]float64, len(set)),
	}
	for tag, cm := range set {
		ms.Models[tag] = cm.Model
		ms.Platt[tag] = cm.Platt
		ms.Accuracy[tag] = cm.Accuracy
	}
	ms.ensureFused()
	return ms
}

// TaggedText is one labeled training document for TrainModelSet.
type TaggedText struct {
	Text string
	Tags []string
}

// TrainModelSet trains the per-tag calibrated linear bank realnet peers
// publish, from labeled documents, in the canonical hashed feature space
// every peer shares. The result is deterministic in (docs, c, seed):
// independently training nodes with identical inputs produce identical
// sets, which is what lets a cluster verify byte-identical answers.
func TrainModelSet(docs []TaggedText, c float64, seed int64) (*ModelSet, error) {
	if c == 0 {
		c = 1
	}
	pre := newHashedPreprocessor()
	pdocs := make([]protocol.Doc, 0, len(docs))
	for _, d := range docs {
		if len(d.Tags) == 0 {
			continue
		}
		pdocs = append(pdocs, protocol.Doc{X: pre.Vectorize(d.Text), Tags: d.Tags})
	}
	return trainSet(pdocs, c, seed)
}

// trainSet trains one calibrated model per tag of the documents' universe,
// skipping tags whose training fails (e.g. one-class).
func trainSet(docs []protocol.Doc, c float64, seed int64) (*ModelSet, error) {
	if len(docs) == 0 {
		return nil, errors.New("realnet: no tagged documents to learn from")
	}
	ms := &ModelSet{
		Models:   make(map[string]*svm.LinearModel),
		Platt:    make(map[string]svm.PlattParams),
		Accuracy: make(map[string]float64),
	}
	for _, tag := range protocol.TagUniverse(docs) {
		exs := protocol.BinaryExamples(docs, tag)
		m, err := svm.TrainLinear(exs, svm.LinearOptions{C: c, Seed: seed})
		if err != nil {
			continue
		}
		m = m.Pruned(0.02)
		platt, acc := svm.CalibrateLinearCV(exs, svm.LinearOptions{C: c, Seed: seed}, m, 3)
		ms.Models[tag] = m
		ms.Platt[tag] = platt
		ms.Accuracy[tag] = acc
	}
	if len(ms.Models) == 0 {
		return nil, errors.New("realnet: local documents are one-class; tag more variety first")
	}
	ms.ensureFused()
	return ms, nil
}

// Node is one real-network tagging peer. All exported methods are safe for
// concurrent use.
type Node struct {
	cfg   Config
	pre   *textproc.Preprocessor
	ln    net.Listener
	tr    *transport
	trust *trustLedger
	probe []probeDoc // vectorized holdout scoring set, immutable after Start

	mu         sync.Mutex
	docs       []protocol.Doc
	peers      map[string]bool // known peer listen addresses
	remote     map[string]*ModelSet
	own        *ModelSet
	cur        *Generation // newest gossiped generation seen or published
	curPayload []byte      // cur's encoded frame, for relays and rebroadcast
	conns      map[net.Conn]bool

	tasks     chan func()
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// taskWorkers bounds concurrent background dials (introductions, relays,
// rebroadcasts); taskQueue bounds how many wait. A saturated queue drops
// work — gossip is periodic and hellos re-trigger on later frames, so a
// drop costs convergence time, never correctness.
const (
	taskWorkers = 2
	taskQueue   = 256
)

// Start launches a node: it listens, joins through the seeds and begins
// accepting model broadcasts.
func Start(cfg Config) (*Node, error) {
	cfg.defaults()
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("realnet: listen: %w", err)
	}
	n := &Node{
		cfg:    cfg,
		pre:    newHashedPreprocessor(),
		ln:     ln,
		peers:  make(map[string]bool),
		remote: make(map[string]*ModelSet),
		conns:  make(map[net.Conn]bool),
		tasks:  make(chan func(), taskQueue),
		stop:   make(chan struct{}),
	}
	n.tr = newTransport(cfg, n.stop)
	n.trust = newTrustLedger(cfg.Seed, cfg.TrustQuarantineFor, cfg.MaxPeers)
	for _, d := range cfg.ProbeDocs {
		if len(d.Tags) == 0 {
			continue
		}
		has := make(map[string]bool, len(d.Tags))
		for _, tag := range d.Tags {
			has[tag] = true
		}
		n.probe = append(n.probe, probeDoc{x: n.pre.Vectorize(d.Text), has: has})
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for i := 0; i < taskWorkers; i++ {
		n.wg.Add(1)
		go n.taskLoop()
	}
	n.wg.Add(1)
	go n.gossipLoop()
	for _, s := range cfg.Seeds {
		n.addPeer(s)
	}
	// Announce ourselves to the seeds so they learn our address; off the
	// caller's goroutine, since a dead seed costs a full retry budget.
	n.async(func() { n.broadcastHello() })
	return n, nil
}

// Addr returns the node's actual listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener, interrupts in-flight backoff sleeps, closes
// accepted connections and waits for every node goroutine to exit.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.stop)
		err = n.ln.Close()
		// Snapshot under the lock, close outside it: Conn.Close can block
		// on the socket, and handler goroutines need n.mu to deregister
		// themselves — holding it here would stall the very goroutines
		// wg.Wait is about to wait for.
		n.mu.Lock()
		conns := make([]net.Conn, 0, len(n.conns))
		for c := range n.conns {
			//dmtvet:allow maprange close order is irrelevant: every conn is closed exactly once and nothing observes the sequence
			conns = append(conns, c)
		}
		n.mu.Unlock()
		for _, c := range conns {
			_ = c.Close()
		}
		n.wg.Wait()
	})
	return err
}

// Peers returns the currently known peer addresses, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ModelsKnown reports how many peers' model sets this node holds
// (excluding its own).
func (n *Node) ModelsKnown() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.remote)
}

// AddDocument stores a manually tagged document for the next Publish.
func (n *Node) AddDocument(text string, tags ...string) error {
	if len(tags) == 0 {
		return errors.New("realnet: a tagged document needs at least one tag")
	}
	doc := protocol.Doc{X: n.pre.Vectorize(text), Tags: append([]string(nil), tags...)}
	n.mu.Lock()
	n.docs = append(n.docs, doc)
	n.mu.Unlock()
	return nil
}

// PublishSummary reports a broadcast's outcome: how many peers were
// reached, and the final error for each peer that was not (after the full
// retry budget, or immediately for quarantined peers). A partial failure
// is visible here and in the Transport counters, never silent.
type PublishSummary struct {
	Reached int
	Failed  map[string]error
}

// AllReached reports whether every known peer accepted the broadcast.
func (s PublishSummary) AllReached() bool { return len(s.Failed) == 0 }

// Publish trains the local per-tag models and broadcasts them to every
// known peer, retrying per the transport budget. The summary reports the
// outcome per peer; err is non-nil only when nothing could be trained.
func (n *Node) Publish() (PublishSummary, error) {
	n.mu.Lock()
	docs := append([]protocol.Doc(nil), n.docs...)
	n.mu.Unlock()
	ms, err := trainSet(docs, n.cfg.C, n.cfg.Seed)
	if err != nil {
		return PublishSummary{}, err
	}
	n.mu.Lock()
	n.own = ms
	n.mu.Unlock()

	payload, err := encodeModelSet(n.Addr(), ms)
	if err != nil {
		return PublishSummary{}, err
	}
	return n.broadcast(frameModels, payload), nil
}

// broadcast sends one frame to every known peer through the retrying
// transport and reports the per-peer outcome.
func (n *Node) broadcast(typ byte, payload []byte) PublishSummary {
	var sum PublishSummary
	for _, p := range n.Peers() {
		if err := n.tr.send(p, typ, payload); err != nil {
			if sum.Failed == nil {
				sum.Failed = make(map[string]error)
			}
			sum.Failed[p] = err
		} else {
			sum.Reached++
		}
	}
	return sum
}

// Suggest scores every known tag for text using the ensemble of all model
// sets this node holds (its own plus every peer's), weighted by
// cross-validated accuracy over chance, pooled in log-odds space — the
// same vote as the simulated PACE protocol with k = all. Each remote
// set's contribution is additionally scaled by its origin's trust score
// (1.0 for origins that have never misbehaved, so in an all-honest mesh
// the weighting is byte-invisible); sets from presently quarantined
// origins are excluded from the vote entirely.
func (n *Node) Suggest(text string) ([]metrics.ScoredTag, error) {
	x := n.pre.Vectorize(text)
	n.mu.Lock()
	sets := make([]*ModelSet, 0, len(n.remote)+1)
	owns := 0
	if n.own != nil {
		sets = append(sets, n.own)
		owns = 1
	}
	addrs := make([]string, 0, len(n.remote))
	for a := range n.remote {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		sets = append(sets, n.remote[a])
	}
	n.mu.Unlock()
	// Trust lookups happen outside n.mu: the ledger has its own lock and
	// nothing here needs the two views to be atomic with each other.
	now := time.Now()
	weights := make([]float64, owns, len(sets))
	for i := range weights {
		weights[i] = 1 // the node's own set is always fully trusted
	}
	kept := sets[:owns]
	for i, a := range addrs {
		if n.trust.quarantined(a, now) {
			continue
		}
		kept = append(kept, sets[owns+i])
		weights = append(weights, n.trust.weight(a))
	}
	if len(kept) == 0 {
		return nil, errors.New("realnet: no models known yet (publish or wait for peers)")
	}
	out, _ := suggestFromSets(x.Entries(), kept, weights, nil)
	return out, nil
}

// probeDoc is one vectorized holdout document for the admission probe.
type probeDoc struct {
	x   *vector.Sparse
	has map[string]bool
}

// probeAccuracy scores an inbound set against the node's local holdout
// documents: for every (document, tag-in-set) pair, does the calibrated
// model agree with the local labels? Honest sets trained on comparable
// corpora score well above chance; label-flipped or sign-scaled poison
// scores below it. Runs with local scratch only — safe from concurrent
// reader goroutines.
func (n *Node) probeAccuracy(ms *ModelSet) float64 {
	f := ms.ensureFused()
	if f == nil {
		return 0
	}
	correct, total := 0, 0
	var dec []float64
	for _, pd := range n.probe {
		dec = f.ScoreEntriesInto(pd.x.Entries(), dec)
		for i, tag := range f.Tags() {
			predicted := ms.Platt[tag].Prob(dec[i]) >= 0.5
			if predicted == pd.has[tag] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(correct) / float64(total)
}

// suggestFromSets pools per-tag probabilities across sets — accuracy over
// chance as the weight, log-odds space for the vote. weights, when
// non-nil, holds one trust multiplier per set that scales that set's
// contribution (a weight of exactly 1.0 is bit-invisible: x*1.0 == x for
// every finite x, so trust weighting cannot perturb the byte-determinism
// pins of an all-honest ensemble); a weight ≤ 0 excludes the set. entries
// is the query's sorted sparse entries, read synchronously and never
// retained, so streaming callers can pass pooled preprocessing scratch;
// dec is scratch reused across sets (and across calls, when the caller
// keeps it).
func suggestFromSets(entries []vector.Entry, sets []*ModelSet, weights []float64, dec []float64) ([]metrics.ScoredTag, []float64) {
	logitSum := map[string]float64{}
	weightSum := map[string]float64{}
	for si, ms := range sets {
		tw := 1.0
		if weights != nil {
			tw = weights[si]
		}
		if tw <= 0 {
			continue
		}
		f := ms.ensureFused()
		if f == nil {
			continue
		}
		dec = f.ScoreEntriesInto(entries, dec)
		for i, tag := range f.Tags() {
			w := (ms.Accuracy[tag] - 0.5) * tw
			if w <= 0 {
				continue
			}
			p := ms.Platt[tag].Prob(dec[i])
			logitSum[tag] += w * clampLogit(p)
			weightSum[tag] += w
		}
	}
	out := make([]metrics.ScoredTag, 0, len(logitSum))
	for tag, sum := range logitSum {
		out = append(out, metrics.ScoredTag{Tag: tag, Score: protocol.Sigmoid(sum / weightSum[tag])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out, dec
}

// AutoTag assigns tags above threshold (falling back to the single best).
func (n *Node) AutoTag(text string, threshold float64, maxTags int) ([]string, error) {
	scores, err := n.Suggest(text)
	if err != nil {
		return nil, err
	}
	return protocol.SelectTags(scores, threshold, maxTags), nil
}

func clampLogit(p float64) float64 {
	const lim = 6
	if p < 1e-9 {
		return -lim
	}
	if p > 1-1e-9 {
		return lim
	}
	l := math.Log(p / (1 - p))
	if l > lim {
		return lim
	}
	if l < -lim {
		return -lim
	}
	return l
}

// ---------------------------------------------------------------------------
// Networking

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		n.conns[conn] = true
		n.mu.Unlock()
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer func() {
				n.mu.Lock()
				delete(n.conns, conn)
				n.mu.Unlock()
				conn.Close()
			}()
			n.handleConn(conn)
		}()
	}
}

func (n *Node) handleConn(conn net.Conn) {
	for {
		// Refresh the read deadline per frame: a connection dies after
		// FrameTimeout of silence, never merely for being long-lived.
		// (Regression: a single deadline set at accept killed an actively
		// gossiping connection 30s in, mid-frame-stream.)
		_ = conn.SetReadDeadline(time.Now().Add(n.cfg.FrameTimeout))
		typ, payload, err := readFrame(conn)
		if err != nil {
			if err != io.EOF {
				n.tr.noteCorrupt()
			}
			return
		}
		n.tr.noteIn(len(payload))
		switch typ {
		case frameHello:
			n.onHello(payload)
		case frameModels:
			n.onModels(payload)
		case frameGen:
			n.onGeneration(payload)
		default:
			n.tr.noteCorrupt()
		}
	}
}

// validAddr reports whether a self-reported peer address is usable: a
// parseable host:port with both parts non-empty, and not this node itself.
// Spoofing cannot be ruled out without authentication, but an invalid or
// empty sender must never enter the membership or model tables.
func (n *Node) validAddr(a string) bool {
	if a == "" || a == n.ln.Addr().String() {
		return false
	}
	host, port, err := net.SplitHostPort(a)
	return err == nil && host != "" && port != ""
}

func (n *Node) onHello(payload []byte) {
	addrs, err := decodeHello(payload)
	if err != nil || len(addrs) == 0 {
		n.tr.noteCorrupt()
		return
	}
	// First address is the sender; the rest are its known peers
	// (transitive discovery). Invalid addresses are dropped and the
	// membership table is capped — a hello cannot grow state unbounded.
	sender := addrs[0]
	var fresh []string
	n.mu.Lock()
	for _, a := range addrs {
		if !n.validAddr(a) || n.peers[a] {
			continue
		}
		if len(n.peers) >= n.cfg.MaxPeers {
			break
		}
		n.peers[a] = true
		fresh = append(fresh, a)
	}
	curPayload := n.curPayload
	n.mu.Unlock()
	if n.validAddr(sender) {
		n.tr.creditIn(sender, len(payload))
	}
	// Introduce ourselves to newly learned peers — never on this reader
	// goroutine: one unreachable "fresh" peer would otherwise stall frame
	// processing for a full dial budget per address. Fresh peers also get
	// the current model generation, so late joiners and restarted peers
	// catch up without waiting for the origin's next rebroadcast.
	for _, a := range fresh {
		a := a
		n.async(func() { n.sendHello(a) })
		if curPayload != nil {
			n.async(func() { _ = n.tr.send(a, frameGen, curPayload) })
		}
	}
}

func (n *Node) onModels(payload []byte) {
	sender, ms, err := decodeModelSet(payload)
	if err != nil {
		n.tr.noteCorrupt()
		return
	}
	// The sender is self-reported: an empty or unparseable address must
	// not pollute the peer and model tables (regression: it was trusted
	// verbatim), and the tables are capped against invented-sender floods.
	if !n.validAddr(sender) {
		n.tr.noteCorrupt()
		return
	}
	// Peer broadcasts pass the same admission pipeline as generations: a
	// quarantined sender is refused outright, a structurally poisoned set
	// demotes and quarantines its sender, and a probe failure (when a
	// holdout set is configured) does the same — so a poisoned set never
	// enters the remote table the Suggest vote reads.
	now := time.Now()
	if !n.trust.admitted(sender, now) {
		n.tr.noteReject(sender)
		return
	}
	if err := validateModelSet(ms, n.cfg.MaxSetTags, n.cfg.MaxModelDim); err != nil {
		n.rejectOrigin(sender, now)
		return
	}
	if len(n.probe) > 0 && n.probeAccuracy(ms) < n.cfg.ProbeFloor {
		n.rejectOrigin(sender, now)
		return
	}
	n.trust.accept(sender, now)
	n.mu.Lock()
	if _, known := n.remote[sender]; !known && len(n.remote) >= n.cfg.MaxPeers {
		n.mu.Unlock()
		return
	}
	n.remote[sender] = ms
	if !n.peers[sender] && len(n.peers) < n.cfg.MaxPeers {
		n.peers[sender] = true
	}
	n.mu.Unlock()
	n.tr.creditIn(sender, len(payload))
}

// rejectOrigin records one failed admission: the origin's trust halves
// and it is quarantined, the rejection is charged to it in the transport
// counters, and any model set it previously parked in the remote table is
// evicted from the vote.
func (n *Node) rejectOrigin(origin string, now time.Time) {
	n.trust.reject(origin, now)
	n.tr.noteReject(origin)
	n.mu.Lock()
	delete(n.remote, origin)
	n.mu.Unlock()
}

func (n *Node) addPeer(addr string) {
	n.mu.Lock()
	if addr != "" && addr != n.ln.Addr().String() && len(n.peers) < n.cfg.MaxPeers {
		n.peers[addr] = true
	}
	n.mu.Unlock()
}

func (n *Node) broadcastHello() PublishSummary {
	var sum PublishSummary
	for _, p := range n.Peers() {
		if err := n.sendHello(p); err != nil {
			if sum.Failed == nil {
				sum.Failed = make(map[string]error)
			}
			sum.Failed[p] = err
		} else {
			sum.Reached++
		}
	}
	return sum
}

func (n *Node) sendHello(to string) error {
	payload := encodeHello(append([]string{n.Addr()}, n.Peers()...))
	return n.tr.send(to, frameHello, payload)
}

// async runs f on the background task pool — work (dials, relays) that
// must not run on a connection-reader goroutine. A saturated pool drops
// the task and counts it in Transport().DroppedTasks.
func (n *Node) async(f func()) {
	select {
	case n.tasks <- f:
	default:
		n.tr.noteDropped()
	}
}

func (n *Node) taskLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case f := <-n.tasks:
			f()
		}
	}
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("realnet: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ---------------------------------------------------------------------------
// Payload encodings (built on internal/wire primitives)

func encodeHello(addrs []string) []byte {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(addrs)))
	for _, a := range addrs {
		_ = binary.Write(&buf, binary.LittleEndian, uint16(len(a)))
		buf.WriteString(a)
	}
	return buf.Bytes()
}

func decodeHello(payload []byte) ([]string, error) {
	r := bytes.NewReader(payload)
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > 10000 {
		return nil, errors.New("realnet: absurd hello")
	}
	out := make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		var l uint16
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, err
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	return out, nil
}

func encodeModelSet(sender string, ms *ModelSet) ([]byte, error) {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(sender)))
	buf.WriteString(sender)
	if err := wire.WriteModelSet(&buf, ms.toWire()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeModelSet(payload []byte) (string, *ModelSet, error) {
	r := bytes.NewReader(payload)
	var sl uint16
	if err := binary.Read(r, binary.LittleEndian, &sl); err != nil {
		return "", nil, err
	}
	sb := make([]byte, sl)
	if _, err := io.ReadFull(r, sb); err != nil {
		return "", nil, err
	}
	set, err := wire.ReadModelSet(r)
	if err != nil {
		return "", nil, err
	}
	return string(sb), modelSetFromWire(set), nil
}
