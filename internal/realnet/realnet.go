// Package realnet is the real-network deployment path of P2PDocTagger,
// backing the paper's claim that "code written for P2PDMT is reusable in
// real applications": actual TCP peers exchange the same calibrated
// one-vs-all tag models the simulator's PACE protocol broadcasts, using
// the binary encodings of internal/wire.
//
// A Node listens on TCP, discovers peers transitively through HELLO
// frames, trains linear SVM tag models from its locally tagged documents,
// broadcasts them with Publish, and answers tag queries locally from the
// ensemble of every model set it has received — so queries keep working
// when every other peer is gone, exactly like the simulated protocol.
package realnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/svm"
	"repro/internal/textproc"
	"repro/internal/wire"
)

// Frame types of the node protocol. Every frame is
// [type byte][length uint32][payload].
const (
	frameHello  = 1 // payload: sender listen addr + known peer addrs
	frameModels = 2 // payload: a model set
)

// maxFrame bounds a frame payload (corrupt peers must not OOM us).
const maxFrame = 64 << 20

// Config configures a Node.
type Config struct {
	// ListenAddr is the TCP address to listen on ("127.0.0.1:0" picks a
	// free port).
	ListenAddr string
	// Seeds are addresses of existing peers to join through.
	Seeds []string
	// C is the linear SVM penalty; default 1.
	C float64
	// Seed drives training.
	Seed int64
}

// modelSet is what a node publishes: per-tag calibrated models with
// cross-validated accuracies. fused is the bank packed into one inverted
// score matrix (derived, read-only, not serialized): Suggest scores all
// of a set's tags in one pass over the document instead of one dot
// product per tag.
type modelSet struct {
	models   map[string]*svm.LinearModel
	platt    map[string]svm.PlattParams
	accuracy map[string]float64
	fused    *svm.FusedLinear
}

// Node is one real-network tagging peer. All exported methods are safe for
// concurrent use.
type Node struct {
	cfg Config
	pre *textproc.Preprocessor
	ln  net.Listener

	mu     sync.Mutex
	docs   []protocol.Doc
	peers  map[string]bool // known peer listen addresses
	remote map[string]*modelSet
	own    *modelSet

	wg sync.WaitGroup
}

// Start launches a node: it listens, joins through the seeds and begins
// accepting model broadcasts.
func Start(cfg Config) (*Node, error) {
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.C == 0 {
		cfg.C = 1
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("realnet: listen: %w", err)
	}
	n := &Node{
		cfg: cfg,
		// Hashed feature ids: independently running peers must agree on
		// what every weight index means without coordinating a lexicon.
		pre: textproc.NewPreprocessor(nil, textproc.Options{
			Weighting: textproc.TermFrequency, Normalize: true,
			HashDim: 1 << 16,
		}),
		ln:     ln,
		peers:  make(map[string]bool),
		remote: make(map[string]*modelSet),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	for _, s := range cfg.Seeds {
		n.addPeer(s)
	}
	// Announce ourselves to the seeds so they learn our address.
	n.broadcastHello()
	return n, nil
}

// Addr returns the node's actual listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the listener and waits for in-flight handlers to drain.
func (n *Node) Close() error {
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

// Peers returns the currently known peer addresses, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ModelsKnown reports how many peers' model sets this node holds
// (excluding its own).
func (n *Node) ModelsKnown() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.remote)
}

// AddDocument stores a manually tagged document for the next Publish.
func (n *Node) AddDocument(text string, tags ...string) error {
	if len(tags) == 0 {
		return errors.New("realnet: a tagged document needs at least one tag")
	}
	doc := protocol.Doc{X: n.pre.Vectorize(text), Tags: append([]string(nil), tags...)}
	n.mu.Lock()
	n.docs = append(n.docs, doc)
	n.mu.Unlock()
	return nil
}

// Publish trains the local per-tag models and broadcasts them to every
// known peer. It returns the number of peers reached.
func (n *Node) Publish() (int, error) {
	n.mu.Lock()
	docs := append([]protocol.Doc(nil), n.docs...)
	n.mu.Unlock()
	if len(docs) == 0 {
		return 0, errors.New("realnet: no tagged documents to learn from")
	}
	ms := &modelSet{
		models:   make(map[string]*svm.LinearModel),
		platt:    make(map[string]svm.PlattParams),
		accuracy: make(map[string]float64),
	}
	for _, tag := range protocol.TagUniverse(docs) {
		exs := protocol.BinaryExamples(docs, tag)
		m, err := svm.TrainLinear(exs, svm.LinearOptions{C: n.cfg.C, Seed: n.cfg.Seed})
		if err != nil {
			continue
		}
		m = m.Pruned(0.02)
		platt, acc := svm.CalibrateLinearCV(exs, svm.LinearOptions{C: n.cfg.C, Seed: n.cfg.Seed}, m, 3)
		ms.models[tag] = m
		ms.platt[tag] = platt
		ms.accuracy[tag] = acc
	}
	if len(ms.models) == 0 {
		return 0, errors.New("realnet: local documents are one-class; tag more variety first")
	}
	ms.fused = svm.NewFusedLinear(ms.models)
	n.mu.Lock()
	n.own = ms
	n.mu.Unlock()

	payload, err := encodeModelSet(n.Addr(), ms)
	if err != nil {
		return 0, err
	}
	reached := 0
	for _, p := range n.Peers() {
		if n.sendFrame(p, frameModels, payload) == nil {
			reached++
		}
	}
	return reached, nil
}

// Suggest scores every known tag for text using the ensemble of all model
// sets this node holds (its own plus every peer's), weighted by
// cross-validated accuracy over chance, pooled in log-odds space — the
// same vote as the simulated PACE protocol with k = all.
func (n *Node) Suggest(text string) ([]metrics.ScoredTag, error) {
	x := n.pre.Vectorize(text)
	n.mu.Lock()
	sets := make([]*modelSet, 0, len(n.remote)+1)
	if n.own != nil {
		sets = append(sets, n.own)
	}
	addrs := make([]string, 0, len(n.remote))
	for a := range n.remote {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		sets = append(sets, n.remote[a])
	}
	n.mu.Unlock()
	if len(sets) == 0 {
		return nil, errors.New("realnet: no models known yet (publish or wait for peers)")
	}
	logitSum := map[string]float64{}
	weightSum := map[string]float64{}
	var dec []float64 // reused across sets within this call
	for _, ms := range sets {
		if ms.fused == nil {
			continue
		}
		dec = ms.fused.ScoreInto(x, dec)
		for i, tag := range ms.fused.Tags() {
			w := ms.accuracy[tag] - 0.5
			if w <= 0 {
				continue
			}
			p := ms.platt[tag].Prob(dec[i])
			logitSum[tag] += w * clampLogit(p)
			weightSum[tag] += w
		}
	}
	out := make([]metrics.ScoredTag, 0, len(logitSum))
	for tag, sum := range logitSum {
		out = append(out, metrics.ScoredTag{Tag: tag, Score: protocol.Sigmoid(sum / weightSum[tag])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tag < out[j].Tag
	})
	return out, nil
}

// AutoTag assigns tags above threshold (falling back to the single best).
func (n *Node) AutoTag(text string, threshold float64, maxTags int) ([]string, error) {
	scores, err := n.Suggest(text)
	if err != nil {
		return nil, err
	}
	return protocol.SelectTags(scores, threshold, maxTags), nil
}

func clampLogit(p float64) float64 {
	const lim = 6
	if p < 1e-9 {
		return -lim
	}
	if p > 1-1e-9 {
		return lim
	}
	l := math.Log(p / (1 - p))
	if l > lim {
		return lim
	}
	if l < -lim {
		return -lim
	}
	return l
}

// ---------------------------------------------------------------------------
// Networking

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			n.handleConn(conn)
		}()
	}
}

func (n *Node) handleConn(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case frameHello:
			n.onHello(payload)
		case frameModels:
			n.onModels(payload)
		}
	}
}

func (n *Node) onHello(payload []byte) {
	addrs, err := decodeHello(payload)
	if err != nil || len(addrs) == 0 {
		return
	}
	// First address is the sender; the rest are its known peers
	// (transitive discovery).
	var fresh []string
	n.mu.Lock()
	for _, a := range addrs {
		if a != "" && a != n.ln.Addr().String() && !n.peers[a] {
			n.peers[a] = true
			fresh = append(fresh, a)
		}
	}
	n.mu.Unlock()
	// Introduce ourselves to newly learned peers.
	for _, a := range fresh {
		_ = n.sendHello(a)
	}
}

func (n *Node) onModels(payload []byte) {
	sender, ms, err := decodeModelSet(payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	n.remote[sender] = ms
	if sender != n.ln.Addr().String() {
		n.peers[sender] = true
	}
	n.mu.Unlock()
}

func (n *Node) addPeer(addr string) {
	n.mu.Lock()
	if addr != "" && addr != n.ln.Addr().String() {
		n.peers[addr] = true
	}
	n.mu.Unlock()
}

func (n *Node) broadcastHello() {
	for _, p := range n.Peers() {
		_ = n.sendHello(p)
	}
}

func (n *Node) sendHello(to string) error {
	payload := encodeHello(append([]string{n.Addr()}, n.Peers()...))
	return n.sendFrame(to, frameHello, payload)
}

// sendFrame dials, writes one frame and closes. Dial-per-message is slow
// but simple and correct; model broadcasts are rare events.
func (n *Node) sendFrame(to string, typ byte, payload []byte) error {
	conn, err := net.DialTimeout("tcp", to, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	return writeFrame(conn, typ, payload)
}

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	hdr := [5]byte{typ}
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	size := binary.LittleEndian.Uint32(hdr[1:])
	if size > maxFrame {
		return 0, nil, fmt.Errorf("realnet: frame of %d bytes exceeds limit", size)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// ---------------------------------------------------------------------------
// Payload encodings (built on internal/wire primitives)

func encodeHello(addrs []string) []byte {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(addrs)))
	for _, a := range addrs {
		_ = binary.Write(&buf, binary.LittleEndian, uint16(len(a)))
		buf.WriteString(a)
	}
	return buf.Bytes()
}

func decodeHello(payload []byte) ([]string, error) {
	r := bytes.NewReader(payload)
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if int(n) > 10000 {
		return nil, errors.New("realnet: absurd hello")
	}
	out := make([]string, 0, n)
	for i := 0; i < int(n); i++ {
		var l uint16
		if err := binary.Read(r, binary.LittleEndian, &l); err != nil {
			return nil, err
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		out = append(out, string(b))
	}
	return out, nil
}

func encodeModelSet(sender string, ms *modelSet) ([]byte, error) {
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(sender)))
	buf.WriteString(sender)
	tags := make([]string, 0, len(ms.models))
	for tag := range ms.models {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(tags)))
	for _, tag := range tags {
		_ = binary.Write(&buf, binary.LittleEndian, uint16(len(tag)))
		buf.WriteString(tag)
		if err := wire.WriteLinearModel(&buf, ms.models[tag]); err != nil {
			return nil, err
		}
		pl := ms.platt[tag]
		_ = binary.Write(&buf, binary.LittleEndian, math.Float64bits(pl.A))
		_ = binary.Write(&buf, binary.LittleEndian, math.Float64bits(pl.B))
		_ = binary.Write(&buf, binary.LittleEndian, math.Float64bits(ms.accuracy[tag]))
	}
	return buf.Bytes(), nil
}

func decodeModelSet(payload []byte) (string, *modelSet, error) {
	r := bytes.NewReader(payload)
	var sl uint16
	if err := binary.Read(r, binary.LittleEndian, &sl); err != nil {
		return "", nil, err
	}
	sb := make([]byte, sl)
	if _, err := io.ReadFull(r, sb); err != nil {
		return "", nil, err
	}
	var nTags uint16
	if err := binary.Read(r, binary.LittleEndian, &nTags); err != nil {
		return "", nil, err
	}
	ms := &modelSet{
		models:   make(map[string]*svm.LinearModel, nTags),
		platt:    make(map[string]svm.PlattParams, nTags),
		accuracy: make(map[string]float64, nTags),
	}
	for i := 0; i < int(nTags); i++ {
		var tl uint16
		if err := binary.Read(r, binary.LittleEndian, &tl); err != nil {
			return "", nil, err
		}
		tb := make([]byte, tl)
		if _, err := io.ReadFull(r, tb); err != nil {
			return "", nil, err
		}
		m, err := wire.ReadLinearModel(r)
		if err != nil {
			return "", nil, err
		}
		var a, b, acc uint64
		for _, dst := range []*uint64{&a, &b, &acc} {
			if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
				return "", nil, err
			}
		}
		tag := string(tb)
		ms.models[tag] = m
		ms.platt[tag] = svm.PlattParams{A: math.Float64frombits(a), B: math.Float64frombits(b)}
		ms.accuracy[tag] = math.Float64frombits(acc)
	}
	ms.fused = svm.NewFusedLinear(ms.models)
	return string(sb), ms, nil
}
