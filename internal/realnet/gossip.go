package realnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/wire"
)

// Generation is one gossiped model generation: a sequence number, the
// listen address of the node that published it, and the model set itself.
// Generations are totally ordered by (Seq, Origin) — ties between
// concurrent publishers resolve by address, so every node converges on
// the same winner — and a node accepts, relays and reports only
// generations newer than the newest it has seen.
type Generation struct {
	Seq    uint64
	Origin string
	Set    *ModelSet
}

// newerThan reports whether g supersedes cur (nil means "none yet").
func (g Generation) newerThan(cur *Generation) bool {
	if cur == nil {
		return true
	}
	if g.Seq != cur.Seq {
		return g.Seq > cur.Seq
	}
	return g.Origin > cur.Origin
}

// PublishGeneration broadcasts set to the mesh as a new model generation,
// one sequence past the newest this node has seen, and returns it with
// its assigned number plus the per-peer broadcast outcome. The publisher
// records the generation as its own current one — OnGeneration does not
// fire locally; install from the return value — and keeps rebroadcasting
// it every GossipInterval while it stays the newest known, so peers that
// were dead, partitioned or quarantined during this call converge as soon
// as they are reachable again. The set must not be mutated afterwards.
func (n *Node) PublishGeneration(set *ModelSet) (Generation, PublishSummary, error) {
	if set == nil || len(set.Models) == 0 {
		return Generation{}, PublishSummary{}, errors.New("realnet: empty model set")
	}
	set.ensureFused()
	n.mu.Lock()
	seq := uint64(1)
	if n.cur != nil {
		seq = n.cur.Seq + 1
	}
	g := Generation{Seq: seq, Origin: n.ln.Addr().String(), Set: set}
	n.mu.Unlock()
	payload, err := encodeGeneration(g)
	if err != nil {
		return Generation{}, PublishSummary{}, err
	}
	n.mu.Lock()
	// Re-check: an inbound generation may have raced past us while we
	// encoded; ours still broadcasts (peers order by (Seq, Origin)) but
	// must not clobber a newer current.
	if g.newerThan(n.cur) {
		n.cur = &g
		n.curPayload = payload
	}
	n.mu.Unlock()
	return g, n.broadcast(frameGen, payload), nil
}

// CurrentGeneration returns the newest generation this node has seen or
// published, or false when none has.
func (n *Node) CurrentGeneration() (Generation, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cur == nil {
		return Generation{}, false
	}
	return *n.cur, true
}

// onGeneration handles one gossiped generation frame through the full
// Byzantine admission pipeline: size budget, decode + content digest,
// origin validity, dedup by (Seq, Origin) — a stale echo is normal gossip
// traffic, never a trust event — then trust admission, structural
// validation, and the holdout probe. Only an admitted generation touches
// the peer tables, gets relayed, or reaches the application callback; a
// rejected one demotes and quarantines its origin.
func (n *Node) onGeneration(payload []byte) {
	if len(payload) > n.cfg.MaxGenBytes {
		n.tr.noteCorrupt()
		return
	}
	g, err := decodeGeneration(payload)
	if err != nil {
		n.tr.noteCorrupt()
		return
	}
	if g.Origin == n.ln.Addr().String() {
		return // our own broadcast reflected back
	}
	if !n.validAddr(g.Origin) {
		n.tr.noteCorrupt()
		return
	}
	n.mu.Lock()
	stale := !g.newerThan(n.cur)
	n.mu.Unlock()
	if stale {
		return
	}
	now := time.Now()
	if !n.trust.admitted(g.Origin, now) {
		n.tr.noteReject(g.Origin)
		return
	}
	if err := validateModelSet(g.Set, n.cfg.MaxSetTags, n.cfg.MaxModelDim); err != nil {
		n.rejectOrigin(g.Origin, now)
		return
	}
	if len(n.probe) > 0 && n.probeAccuracy(g.Set) < n.cfg.ProbeFloor {
		n.rejectOrigin(g.Origin, now)
		return
	}
	n.trust.accept(g.Origin, now)
	n.mu.Lock()
	// Re-check the order: another admitted generation may have raced past
	// while this one was being validated and probed.
	if !g.newerThan(n.cur) {
		n.mu.Unlock()
		return
	}
	n.cur = &g
	n.curPayload = payload
	if !n.peers[g.Origin] && len(n.peers) < n.cfg.MaxPeers {
		n.peers[g.Origin] = true
	}
	n.mu.Unlock()
	n.tr.creditIn(g.Origin, len(payload))
	n.async(func() {
		// Relay first so the mesh floods in parallel with the (possibly
		// slow) local install the callback performs.
		for _, p := range n.Peers() {
			if p == g.Origin {
				continue
			}
			_ = n.tr.send(p, frameGen, payload)
		}
		if n.cfg.OnGeneration != nil {
			n.cfg.OnGeneration(g)
		}
	})
}

// gossipLoop is the periodic anti-entropy pass: while this node is the
// origin of the newest known generation it rebroadcasts the generation
// every GossipInterval. Receivers dedup by (Seq, Origin), so a steady
// state costs one small exchange per peer per interval; peers that missed
// the original broadcast (dead, partitioned, quarantined) install it on
// the first rebroadcast that reaches them, which is also what re-probes
// quarantined peers after their quarantine expires.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.mu.Lock()
			payload := n.curPayload
			mine := n.cur != nil && n.cur.Origin == n.ln.Addr().String()
			n.mu.Unlock()
			if mine && payload != nil {
				n.broadcast(frameGen, payload)
			}
		}
	}
}

// encodeGeneration lays a generation out as
// [seq uint64][origin string][digest uint64][wire model set], where the
// digest is wire.Checksum over the encoded set bytes: a frame whose set
// was corrupted or tampered with in flight fails the digest check before
// the model-set decoder ever runs on it.
func encodeGeneration(g Generation) ([]byte, error) {
	var set bytes.Buffer
	if err := wire.WriteModelSet(&set, g.Set.toWire()); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_ = binary.Write(&buf, binary.LittleEndian, g.Seq)
	_ = binary.Write(&buf, binary.LittleEndian, uint16(len(g.Origin)))
	buf.WriteString(g.Origin)
	_ = binary.Write(&buf, binary.LittleEndian, wire.Checksum(set.Bytes()))
	buf.Write(set.Bytes())
	return buf.Bytes(), nil
}

func decodeGeneration(payload []byte) (Generation, error) {
	r := bytes.NewReader(payload)
	var g Generation
	if err := binary.Read(r, binary.LittleEndian, &g.Seq); err != nil {
		return Generation{}, fmt.Errorf("realnet: generation seq: %w", err)
	}
	var ol uint16
	if err := binary.Read(r, binary.LittleEndian, &ol); err != nil {
		return Generation{}, fmt.Errorf("realnet: generation origin: %w", err)
	}
	ob := make([]byte, ol)
	if _, err := io.ReadFull(r, ob); err != nil {
		return Generation{}, fmt.Errorf("realnet: generation origin: %w", err)
	}
	g.Origin = string(ob)
	var digest uint64
	if err := binary.Read(r, binary.LittleEndian, &digest); err != nil {
		return Generation{}, fmt.Errorf("realnet: generation digest: %w", err)
	}
	rest := payload[len(payload)-r.Len():]
	if wire.Checksum(rest) != digest {
		return Generation{}, fmt.Errorf("realnet: generation content digest mismatch")
	}
	set, err := wire.ReadModelSet(r)
	if err != nil {
		return Generation{}, err
	}
	if r.Len() != 0 {
		return Generation{}, fmt.Errorf("realnet: %d trailing bytes after generation", r.Len())
	}
	g.Set = modelSetFromWire(set)
	return g, nil
}
