package realnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// failDial fails every outbound dial immediately. Hardening tests hand
// their node invented peer addresses; this keeps the resulting background
// introduction dials from touching the real network (or hanging on an
// unroutable address) without changing what the tests observe inbound.
func failDial(addr string, timeout time.Duration) (net.Conn, error) {
	return nil, errors.New("injected: outbound disabled")
}

// rawDial opens a plain TCP connection to a node for hand-crafted frames.
func rawDial(t *testing.T, nd *Node) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", nd.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// TestDeadlineRefreshedPerFrame is the regression test for the stale-
// deadline bug: one deadline set at accept killed an actively used
// connection once the deadline passed, mid-gossip. Frames now refresh the
// read deadline, so a connection survives as long as each frame arrives
// within FrameTimeout — even when its total lifetime is many times the
// timeout.
func TestDeadlineRefreshedPerFrame(t *testing.T) {
	nd, err := Start(Config{Seed: 1, FrameTimeout: 250 * time.Millisecond,
		Dial: failDial, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	conn := rawDial(t, nd)
	// 6 frames, 100ms apart: the connection lives ~600ms, far past the
	// 250ms window the old code allowed, while each inter-frame gap stays
	// inside it.
	const frames = 6
	for i := 0; i < frames; i++ {
		if err := writeFrame(conn, frameHello, encodeHello([]string{"10.9.9.9:7001"})); err != nil {
			t.Fatalf("frame %d refused: %v (connection killed by stale deadline?)", i, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	waitFor(t, "all frames processed", func() bool {
		return nd.Transport().FramesIn >= frames
	})
	// And the refreshed deadline still fires: with no further frames the
	// connection must die after FrameTimeout, not linger forever.
	waitFor(t, "idle connection reaped", func() bool {
		nd.mu.Lock()
		defer nd.mu.Unlock()
		return len(nd.conns) == 0
	})
}

// TestCorruptFrames drives malformed input at a node: oversized length
// prefixes, truncated payloads, unknown frame types and garbage payloads
// must be counted and survived, never crash the node or poison its state.
func TestCorruptFrames(t *testing.T) {
	nd, err := Start(Config{Seed: 1, Dial: failDial, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()

	// Oversized: a frame claiming maxFrame+1 bytes must be refused before
	// any allocation.
	over := rawDial(t, nd)
	var hdr [5]byte
	hdr[0] = frameModels
	binary.LittleEndian.PutUint32(hdr[1:], maxFrame+1)
	if _, err := over.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversized frame counted", func() bool {
		return nd.Transport().CorruptFrames >= 1
	})

	// Truncated: a frame that promises more payload than it delivers.
	trunc := rawDial(t, nd)
	binary.LittleEndian.PutUint32(hdr[1:], 1000)
	if _, err := trunc.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := trunc.Write([]byte("short")); err != nil {
		t.Fatal(err)
	}
	trunc.Close()
	waitFor(t, "truncated frame counted", func() bool {
		return nd.Transport().CorruptFrames >= 2
	})

	// Unknown type and garbage payloads: the connection keeps processing
	// later valid frames.
	conn := rawDial(t, nd)
	if err := writeFrame(conn, 99, []byte("whatever")); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameModels, []byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, encodeHello([]string{"10.8.8.8:7002"})); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid frame after garbage still processed", func() bool {
		for _, p := range nd.Peers() {
			if p == "10.8.8.8:7002" {
				return true
			}
		}
		return false
	})
	if got := nd.Transport().CorruptFrames; got < 4 {
		t.Errorf("CorruptFrames = %d, want >= 4", got)
	}
	if nd.ModelsKnown() != 0 {
		t.Errorf("garbage model frame entered the table")
	}
}

// TestSpoofedSenderRejected covers the sender-validation bugfix: model
// frames whose self-reported sender is empty, unparseable, or the node's
// own address must not enter the peer or model tables.
func TestSpoofedSenderRejected(t *testing.T) {
	nd, err := Start(Config{Seed: 1, Dial: failDial, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	set, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	conn := rawDial(t, nd)
	spoofed := []string{"", "not-an-address", ":7777", "1.2.3.4:", nd.Addr()}
	for _, sender := range spoofed {
		payload, err := encodeModelSet(sender, set)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, frameModels, payload); err != nil {
			t.Fatal(err)
		}
	}
	// A valid sender on the same connection still lands, proving the
	// rejects above were per-frame, not connection-fatal.
	payload, err := encodeModelSet("10.7.7.7:7003", set)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameModels, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "valid sender accepted", func() bool { return nd.ModelsKnown() == 1 })
	if got := nd.Transport().CorruptFrames; got < int64(len(spoofed)) {
		t.Errorf("CorruptFrames = %d, want >= %d spoofed frames counted", got, len(spoofed))
	}
	for _, p := range nd.Peers() {
		for _, bad := range spoofed {
			if p == bad {
				t.Errorf("spoofed sender %q entered the peer table", p)
			}
		}
	}
}

// TestPeerTableCapped floods a node with invented peer addresses; the
// membership and model tables must stop growing at MaxPeers.
func TestPeerTableCapped(t *testing.T) {
	nd, err := Start(Config{Seed: 1, MaxPeers: 4, Dial: failDial, MaxAttempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	set, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	conn := rawDial(t, nd)
	const flood = 20
	for i := 0; i < flood; i++ {
		hello := encodeHello([]string{
			fmt.Sprintf("10.1.2.3:%d", 4000+i),
			fmt.Sprintf("10.1.2.3:%d", 5000+i),
		})
		if err := writeFrame(conn, frameHello, hello); err != nil {
			t.Fatal(err)
		}
		mp, err := encodeModelSet(fmt.Sprintf("10.1.2.3:%d", 6000+i), set)
		if err != nil {
			t.Fatal(err)
		}
		if err := writeFrame(conn, frameModels, mp); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "flood processed", func() bool {
		return nd.Transport().FramesIn >= 2*flood
	})
	if got := len(nd.Peers()); got > 4 {
		t.Errorf("peer table grew to %d despite MaxPeers=4", got)
	}
	if got := nd.ModelsKnown(); got > 4 {
		t.Errorf("model table grew to %d despite MaxPeers=4", got)
	}
}

// TestBackoffDeterministic pins the retry schedule: the jitter stream
// derives from (Seed, peer address), so two transports with the same
// configuration produce identical backoff sequences — chaos tests can
// reason about timing — while distinct peers get decorrelated jitter.
func TestBackoffDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}
	cfg.defaults()
	seq := func(tr *transport, peer string) []time.Duration {
		tr.mu.Lock()
		defer tr.mu.Unlock()
		ps := tr.peerLocked(peer)
		out := make([]time.Duration, 0, 6)
		for k := 1; k <= 6; k++ {
			out = append(out, tr.backoffLocked(ps, k))
		}
		return out
	}
	a := seq(newTransport(cfg, nil), "10.0.0.1:1")
	b := seq(newTransport(cfg, nil), "10.0.0.1:1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff diverged at attempt %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	c := seq(newTransport(cfg, nil), "10.0.0.2:1")
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("two peers drew identical jitter streams")
	}
	// The exponential envelope holds: attempt k waits at least the capped
	// base exponential and at most 1.5x it.
	for k := 1; k <= 6; k++ {
		base := cfg.BackoffBase << (k - 1)
		if base > cfg.BackoffMax || base <= 0 {
			base = cfg.BackoffMax
		}
		if a[k-1] < base || a[k-1] > base+base/2 {
			t.Errorf("attempt %d backoff %v outside [%v, %v]", k, a[k-1], base, base+base/2)
		}
	}
}

// TestQuarantineAndReprobe exercises the dead-peer path end to end: sends
// to an unreachable peer burn their retry budget, the peer is quarantined
// (sends fail fast without dialing), and the first send after the
// quarantine expires re-probes — recovering the peer once it is reachable
// again.
func TestQuarantineAndReprobe(t *testing.T) {
	var dead atomic.Bool
	dead.Store(true)
	nd, err := Start(Config{
		Seed:            1,
		MaxAttempts:     2,
		BackoffBase:     time.Millisecond,
		BackoffMax:      2 * time.Millisecond,
		QuarantineAfter: 2,
		QuarantineFor:   150 * time.Millisecond,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			if dead.Load() {
				return nil, errors.New("injected: unreachable")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	target, err := Start(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	peer := target.Addr()

	// Two failing sends exhaust the quarantine budget.
	for i := 0; i < 2; i++ {
		if err := nd.tr.send(peer, frameHello, encodeHello([]string{nd.Addr()})); err == nil {
			t.Fatal("send to unreachable peer succeeded")
		}
	}
	st := nd.Transport().Peers[peer]
	if !st.Quarantined || st.Failures != 2 || st.Retries != 2 {
		t.Fatalf("after failures: %+v, want quarantined with 2 failures and 2 retries", st)
	}
	// Quarantined: the next send fails fast without burning dials.
	if err := nd.tr.send(peer, frameHello, encodeHello([]string{nd.Addr()})); !errors.Is(err, ErrPeerQuarantined) {
		t.Fatalf("quarantined send error = %v, want ErrPeerQuarantined", err)
	}
	if got := nd.Transport().Peers[peer].Retries; got != 2 {
		t.Errorf("quarantined send dialed anyway (retries %d)", got)
	}
	// Heal the peer; once the quarantine expires the next send re-probes
	// and recovers.
	dead.Store(false)
	time.Sleep(160 * time.Millisecond)
	if err := nd.tr.send(peer, frameHello, encodeHello([]string{nd.Addr()})); err != nil {
		t.Fatalf("re-probe after heal failed: %v", err)
	}
	st = nd.Transport().Peers[peer]
	if st.Quarantined || st.ConsecutiveFailures != 0 || st.FramesOut != 1 {
		t.Fatalf("after recovery: %+v, want clean un-quarantined state with 1 frame out", st)
	}
}

// TestHelloIntroductionsOffReaderPath is the regression test for the
// reader-goroutine dial bug: a hello introducing an unreachable peer used
// to stall the connection's frame processing for a full dial timeout.
// With introductions on the background pool, a models frame sent right
// after such a hello must be processed while the dial is still hanging.
func TestHelloIntroductionsOffReaderPath(t *testing.T) {
	dialStarted := make(chan struct{}, 8)
	release := make(chan struct{})
	nd, err := Start(Config{
		Seed: 1,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			dialStarted <- struct{}{}
			<-release // an "unreachable" peer: the dial hangs
			return nil, errors.New("injected: unreachable")
		},
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { nd.Close() }()
	defer close(release)
	set, err := TrainModelSet(trainingTexts(0), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	conn := rawDial(t, nd)
	if err := writeFrame(conn, frameHello, encodeHello([]string{"10.3.3.3:7009"})); err != nil {
		t.Fatal(err)
	}
	// The introduction dial must start (proving it was attempted)...
	select {
	case <-dialStarted:
	case <-time.After(5 * time.Second):
		t.Fatal("introduction was never dialed")
	}
	// ...while the reader keeps consuming: the models frame lands even
	// though the dial is still hanging.
	payload, err := encodeModelSet("10.4.4.4:7010", set)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameModels, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "models processed while introduction dial hangs", func() bool {
		return nd.ModelsKnown() == 1
	})
}

// TestPublishReportsPartialFailure covers the swallowed-send-error bugfix:
// a broadcast that cannot reach every peer must say so, per peer, instead
// of silently dropping the frames.
func TestPublishReportsPartialFailure(t *testing.T) {
	live, err := Start(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	// A dead address: bind a port, then close it so connections refuse.
	tmp, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := tmp.Addr().String()
	tmp.Close()

	nd, err := Start(Config{
		Seed:        1,
		Seeds:       []string{live.Addr(), deadAddr},
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	for i, doc := range trainingTexts(0) {
		if err := nd.AddDocument(doc.Text, doc.Tags...); err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
	}
	sum, err := nd.Publish()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reached != 1 {
		t.Errorf("Reached = %d, want 1", sum.Reached)
	}
	if sum.AllReached() {
		t.Error("AllReached() = true despite a dead peer")
	}
	if _, ok := sum.Failed[deadAddr]; !ok {
		t.Errorf("Failed = %v, missing dead peer %s", sum.Failed, deadAddr)
	}
	st := nd.Transport().Peers[deadAddr]
	if st.Failures == 0 || st.Retries == 0 {
		t.Errorf("dead peer transport counters %+v recorded no failures/retries", st)
	}
	waitFor(t, "live peer received the set", func() bool { return live.ModelsKnown() == 1 })
}

// trainingTexts returns a small clearly separable labeled corpus; topic
// rotates which tags it carries so distinct callers get distinct sets.
func trainingTexts(topic int) []TaggedText {
	topics := [][2]string{
		{"music", "guitar melody chord song album piano concert symphony"},
		{"travel", "flight hotel passport itinerary beach island resort museum"},
		{"cooking", "recipe oven butter flour sugar grill steak garlic sauce"},
	}
	var out []TaggedText
	for k := 0; k < 2; k++ {
		tag, words := topics[(topic+k)%len(topics)][0], topics[(topic+k)%len(topics)][1]
		fields := strings.Fields(words)
		for i := 0; i < 5; i++ {
			var sb strings.Builder
			for j := 0; j < 6; j++ {
				if j > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(fields[(i+j)%len(fields)])
			}
			out = append(out, TaggedText{Text: sb.String(), Tags: []string{tag}})
		}
	}
	return out
}

// TestQuarantineReprobeTiming pins the re-probe schedule around the
// quarantine window: once a peer is quarantined, no send dials it before
// the deterministic window (QuarantineFor from the quarantining failure)
// expires — even when the peer is healthy again — and every in-window
// broadcast reports it in the Failed map with ErrPeerQuarantined. The
// first send after expiry is the re-probe, and its success fully restores
// the peer: failure streak cleared, quarantine flag dropped, broadcasts
// reaching it again with an empty Failed map.
func TestQuarantineReprobeTiming(t *testing.T) {
	const window = 500 * time.Millisecond
	var dead atomic.Bool
	var dials atomic.Int64
	dead.Store(true)
	nd, err := Start(Config{
		Seed:            3,
		MaxAttempts:     1,
		BackoffBase:     time.Millisecond,
		BackoffMax:      2 * time.Millisecond,
		QuarantineAfter: 2,
		QuarantineFor:   window,
		Dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			if dead.Load() {
				return nil, errors.New("injected: unreachable")
			}
			return net.DialTimeout("tcp", addr, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	target, err := Start(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()
	peer := target.Addr()
	nd.addPeer(peer)

	// Two failing broadcasts exhaust the quarantine budget; each reports
	// the peer in its Failed map.
	for i := 0; i < 2; i++ {
		sum := nd.broadcastHello()
		if _, failed := sum.Failed[peer]; !failed || sum.Reached != 0 {
			t.Fatalf("broadcast %d to dead peer: %+v, want it in Failed", i, sum)
		}
	}
	quarantinedAt := time.Now()
	dialsAtQuarantine := dials.Load()
	if st := nd.Transport().Peers[peer]; !st.Quarantined || st.ConsecutiveFailures != 2 {
		t.Fatalf("after budget exhausted: %+v, want quarantined with streak 2", st)
	}

	// Heal the peer immediately: the window must hold anyway. In-window
	// broadcasts fast-fail with ErrPeerQuarantined and never dial.
	dead.Store(false)
	sum := nd.broadcastHello()
	if err, failed := sum.Failed[peer]; !failed || !errors.Is(err, ErrPeerQuarantined) {
		t.Fatalf("in-window broadcast: %+v, want ErrPeerQuarantined in Failed", sum)
	}
	if got := dials.Load(); got != dialsAtQuarantine {
		t.Fatalf("quarantined peer was dialed during its window (%d dials, had %d)", got, dialsAtQuarantine)
	}

	// Poll until the re-probe goes through. Every broadcast that still
	// fails must be the fast-fail — never a dial — until the window has
	// expired; the one that succeeds must come after it.
	waitFor(t, "re-probe after the window", func() bool {
		sum := nd.broadcastHello()
		if len(sum.Failed) == 0 {
			return true
		}
		if err := sum.Failed[peer]; !errors.Is(err, ErrPeerQuarantined) {
			t.Fatalf("in-window broadcast failed with %v, want ErrPeerQuarantined", err)
		}
		if got := dials.Load(); got != dialsAtQuarantine {
			t.Fatalf("dialed before the quarantine window expired")
		}
		return false
	})
	if elapsed := time.Since(quarantinedAt); elapsed < window {
		t.Errorf("re-probe succeeded %v after quarantine, window is %v", elapsed, window)
	}
	if got := dials.Load(); got != dialsAtQuarantine+1 {
		t.Errorf("re-probe took %d dials, want exactly 1", got-dialsAtQuarantine)
	}
	st := nd.Transport().Peers[peer]
	if st.Quarantined || st.ConsecutiveFailures != 0 || st.FramesOut != 1 {
		t.Fatalf("after re-probe: %+v, want fully restored with 1 frame out", st)
	}
	// Restored means restored: the next broadcast reaches the peer with a
	// clean summary.
	if sum := nd.broadcastHello(); len(sum.Failed) != 0 || sum.Reached != 1 {
		t.Errorf("post-restore broadcast: %+v, want clean reach", sum)
	}
}
