package realnet

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/textproc"
	"repro/internal/vector"
)

// Ensemble scores documents against one or more model sets with the same
// accuracy-weighted log-odds vote Node.Suggest uses, packaged as a batch
// classification engine for internal/serving: AutoTagBatch answers one
// tag list per input text in input order. This is how a gossiped model
// generation becomes a serving shard — the cmd/p2pserve cluster installs
// one Ensemble per shard, all over the same immutable sets, through the
// serving Swap path.
//
// An Ensemble is NOT safe for concurrent use (it reuses per-instance
// scratch); this matches the serving Engine contract, where each shard is
// driven by exactly one goroutine. Build one Ensemble per shard; the
// underlying sets may be shared, they are read-only after construction.
type Ensemble struct {
	pre       *textproc.Preprocessor
	sets      []*ModelSet
	weights   []float64 // per-set trust multipliers; nil = all fully trusted
	threshold float64
	maxTags   int
	dec       []float64           // fused-score scratch, reused across documents
	sel       []metrics.ScoredTag // SelectTagsInto sort scratch, reused across documents
}

// NewEnsemble builds an engine over sets, assigning every tag scoring at
// or above threshold (falling back to the single best; 0 accepts every
// tag) and capping answers at maxTags (0 = unlimited). The sets must not
// be mutated afterwards. Every set is fully trusted; use
// NewWeightedEnsemble to scale sets by a trust ledger's scores.
func NewEnsemble(threshold float64, maxTags int, sets ...*ModelSet) (*Ensemble, error) {
	return NewWeightedEnsemble(threshold, maxTags, nil, sets...)
}

// NewWeightedEnsemble is NewEnsemble with one trust multiplier per set:
// each set's contribution to the accuracy-over-chance vote is scaled by
// its weight, which is how a trust ledger's per-origin scores reach the
// serving path. nil weights means every set is fully trusted — and a
// weight of exactly 1.0 is bit-invisible, so a fully trusted weighted
// ensemble answers byte-identically to the unweighted one. A weight of 0
// silences its set entirely; negative or non-finite weights are refused.
func NewWeightedEnsemble(threshold float64, maxTags int, weights []float64, sets ...*ModelSet) (*Ensemble, error) {
	if len(sets) == 0 {
		return nil, errors.New("realnet: an ensemble needs at least one model set")
	}
	for _, ms := range sets {
		if ms == nil || ms.ensureFused() == nil {
			return nil, errors.New("realnet: ensemble over an empty model set")
		}
	}
	if weights != nil {
		if len(weights) != len(sets) {
			return nil, errors.New("realnet: ensemble weights must match sets one to one")
		}
		for _, w := range weights {
			if !finite(w) || w < 0 {
				return nil, errors.New("realnet: ensemble weights must be finite and non-negative")
			}
		}
		weights = append([]float64(nil), weights...)
	}
	if threshold < 0 || threshold > 1 {
		return nil, errors.New("realnet: ensemble threshold outside [0,1]")
	}
	if maxTags < 0 {
		return nil, errors.New("realnet: negative ensemble maxTags")
	}
	return &Ensemble{
		pre:       newHashedPreprocessor(),
		sets:      sets,
		weights:   weights,
		threshold: threshold,
		maxTags:   maxTags,
	}, nil
}

// Suggest returns the full suggestion cloud for one document, sorted by
// descending score with name tie-breaks. The document streams from the
// pooled preprocessing workspace straight into fused scoring — no
// intermediate *vector.Sparse is materialized.
func (e *Ensemble) Suggest(text string) []metrics.ScoredTag {
	var out []metrics.ScoredTag
	e.pre.VectorizeInto(text, func(entries []vector.Entry) {
		out, e.dec = suggestFromSets(entries, e.sets, e.weights, e.dec)
	})
	return out
}

// AutoTagBatch implements the serving engine contract: one non-nil tag
// list per input text, in input order. Every row is answerable (the sets
// are fixed at construction), so the error is always nil. Documents
// stream one at a time through the Ensemble's reused scratch — the only
// per-row state that survives an iteration is its answer.
func (e *Ensemble) AutoTagBatch(texts []string) ([][]string, error) {
	out := make([][]string, len(texts))
	for i, text := range texts {
		var scores []metrics.ScoredTag
		e.pre.VectorizeInto(text, func(entries []vector.Entry) {
			scores, e.dec = suggestFromSets(entries, e.sets, e.weights, e.dec)
		})
		var tags []string
		tags, e.sel = protocol.SelectTagsInto(nil, scores, e.sel, e.threshold, e.maxTags)
		if tags == nil {
			tags = []string{}
		}
		out[i] = tags
	}
	return out, nil
}
