package realnet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"time"

	"repro/internal/runner"
	"repro/internal/svm"
	"repro/internal/wire"
)

// AttackKind enumerates the scripted Byzantine behaviors an Adversary can
// inject into a mesh.
type AttackKind int

const (
	// AttackNaNBomb publishes a set whose weights and biases contain NaN:
	// structurally invalid, caught by the finite-weight scan.
	AttackNaNBomb AttackKind = iota
	// AttackWeightScale publishes an honest set with every weight and
	// bias scaled by -1000: structurally unremarkable, semantically
	// inverted — caught only by the holdout probe.
	AttackWeightScale
	// AttackLabelFlip publishes an honest set whose per-tag models are
	// rotated across the sorted tag universe (music answers for travel):
	// caught only by the holdout probe.
	AttackLabelFlip
	// AttackStaleReplay re-publishes an honest set at whatever sequence
	// the caller scripts — replaying an old (Seq, Origin) must be
	// deduplicated by the total order, never installed and never charged
	// as a trust event.
	AttackStaleReplay
	// AttackForgedFlood publishes label-flipped sets under a burst of
	// invented origin addresses, testing that each forged origin is
	// individually demoted and the capped tables absorb the flood.
	AttackForgedFlood

	numAttackKinds
)

// String names the attack for derived seeds and logs.
func (k AttackKind) String() string {
	switch k {
	case AttackNaNBomb:
		return "nan-bomb"
	case AttackWeightScale:
		return "weight-scale"
	case AttackLabelFlip:
		return "label-flip"
	case AttackStaleReplay:
		return "stale-replay"
	case AttackForgedFlood:
		return "forged-flood"
	default:
		return fmt.Sprintf("attack(%d)", int(k))
	}
}

// forgedFloodOrigins is how many invented origins one forged-flood strike
// publishes under.
const forgedFloodOrigins = 4

// AdversaryConfig configures a scripted Byzantine peer.
type AdversaryConfig struct {
	// Seed drives every random choice the adversary makes (corruption
	// patterns, schedules) through runner.DeriveSeed — two adversaries
	// built from the same config perform byte-identical attacks.
	Seed int64
	// Origin is the listen address the adversary claims in its frames. It
	// need not be a real listener — the gossip path never dials back.
	Origin string
	// Targets are the victim addresses strikes are delivered to. Empty
	// means a dry run: payloads are still built and folded into Digest,
	// nothing is sent — which is how tests pin that two runs of the same
	// script built identical attacks.
	Targets []string
	// Docs is the honest corpus the poisoned sets derive from; the
	// adversary trains the same base set an honest peer would and then
	// corrupts it, so its frames are plausible, not random noise.
	Docs []TaggedText
	// C is the training penalty for the base set; default 1.
	C float64

	// Dial overrides the dialer (default net.DialTimeout on "tcp");
	// DialTimeout and WriteTimeout bound one delivery. Defaults 2s each.
	Dial         DialFunc
	DialTimeout  time.Duration
	WriteTimeout time.Duration
}

// Adversary is a deterministic scripted Byzantine peer: it builds
// poisoned generation frames from an honestly trained base set and
// delivers them to its targets, folding every payload into a running
// digest so a chaos run is reproducible — same seed, same strikes, same
// bytes, same digest, whether or not anything was actually sent.
//
// An Adversary is not safe for concurrent use; drive it from one
// goroutine (it spawns none of its own).
type Adversary struct {
	cfg  AdversaryConfig
	base *ModelSet
	dig  uint64
}

// NewAdversary trains the adversary's honest base set and returns the
// harness. The base training is deterministic in (Docs, C, Seed).
func NewAdversary(cfg AdversaryConfig) (*Adversary, error) {
	if cfg.Origin == "" {
		return nil, errors.New("realnet: adversary needs a claimed origin address")
	}
	if cfg.C == 0 {
		cfg.C = 1
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	base, err := TrainModelSet(cfg.Docs, cfg.C, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("realnet: adversary base set: %w", err)
	}
	return &Adversary{cfg: cfg, base: base, dig: wire.Checksum(nil)}, nil
}

// Digest is the running digest over every payload this adversary has
// built, in order. Two adversaries with the same config and the same
// scripted calls produce the same digest — delivery outcomes never enter
// it, so a dry run (no Targets) pins what a live run injected.
func (a *Adversary) Digest() uint64 { return a.dig }

// Strike builds and delivers one attack of the given kind carrying the
// given sequence number. Delivery is best-effort per target; the first
// error is returned after every target was tried. The payloads are folded
// into Digest whether or not delivery happens or succeeds.
func (a *Adversary) Strike(kind AttackKind, seq uint64) error {
	payloads, err := a.buildPayloads(kind, seq)
	if err != nil {
		return err
	}
	const prime64 = 1099511628211
	for _, p := range payloads {
		a.dig ^= wire.Checksum(p)
		a.dig *= prime64
	}
	var firstErr error
	for _, target := range a.cfg.Targets {
		for _, p := range payloads {
			if err := a.deliver(target, p); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// RunSchedule performs n strikes whose kinds are drawn from the
// adversary's derived schedule stream, all carrying the given sequence.
// It returns the kinds it struck with, in order, so a sibling dry-run
// adversary can be scripted identically.
func (a *Adversary) RunSchedule(n int, seq uint64) ([]AttackKind, error) {
	rng := rand.New(rand.NewSource(runner.DeriveSeed(a.cfg.Seed, "adversary", "schedule")))
	kinds := make([]AttackKind, 0, n)
	var firstErr error
	for i := 0; i < n; i++ {
		kind := AttackKind(rng.Intn(int(numAttackKinds)))
		kinds = append(kinds, kind)
		if err := a.Strike(kind, seq); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return kinds, firstErr
}

// buildPayloads builds the encoded generation frames for one strike. All
// corruption iterates the sorted tag universe and draws from a rng
// derived per (seed, kind, seq), so the bytes are a pure function of the
// adversary config and the scripted call.
func (a *Adversary) buildPayloads(kind AttackKind, seq uint64) ([][]byte, error) {
	rng := rand.New(rand.NewSource(runner.DeriveSeed(a.cfg.Seed, "adversary", kind.String(), fmt.Sprint(seq))))
	tags := sortedTags(a.base)
	switch kind {
	case AttackNaNBomb:
		set := a.base.clone()
		for _, tag := range tags {
			m := set.Models[tag]
			if len(m.W) > 0 {
				m.W[rng.Intn(len(m.W))] = math.NaN()
			}
			m.Bias = math.NaN()
		}
		return a.encode(set, a.cfg.Origin, seq)
	case AttackWeightScale:
		set := a.base.clone()
		for _, tag := range tags {
			m := set.Models[tag]
			for i := range m.W {
				m.W[i] *= -1000
			}
			m.Bias *= -1000
		}
		return a.encode(set, a.cfg.Origin, seq)
	case AttackLabelFlip:
		return a.encode(labelFlip(a.base, tags), a.cfg.Origin, seq)
	case AttackStaleReplay:
		return a.encode(a.base, a.cfg.Origin, seq)
	case AttackForgedFlood:
		var out [][]byte
		flipped := labelFlip(a.base, tags)
		for i := 0; i < forgedFloodOrigins; i++ {
			// TEST-NET-3 addresses: syntactically valid, never routable.
			origin := fmt.Sprintf("203.0.113.%d:%d", rng.Intn(254)+1, 4000+rng.Intn(1000))
			p, err := a.encode(flipped, origin, seq)
			if err != nil {
				return nil, err
			}
			out = append(out, p...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("realnet: unknown attack kind %d", int(kind))
	}
}

// labelFlip rotates the per-tag models one step through the sorted tag
// universe: every tag answers with its neighbor's model and calibration,
// so each model is individually well-formed but systematically wrong.
func labelFlip(base *ModelSet, tags []string) *ModelSet {
	set := base.clone()
	for i, tag := range tags {
		next := base.Models[tags[(i+1)%len(tags)]]
		set.Models[tag] = &svm.LinearModel{W: append([]float64(nil), next.W...), Bias: next.Bias}
		set.Platt[tag] = base.Platt[tags[(i+1)%len(tags)]]
	}
	return set
}

func sortedTags(ms *ModelSet) []string {
	tags := make([]string, 0, len(ms.Models))
	for tag := range ms.Models {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	return tags
}

func (a *Adversary) encode(set *ModelSet, origin string, seq uint64) ([][]byte, error) {
	p, err := encodeGeneration(Generation{Seq: seq, Origin: origin, Set: set})
	if err != nil {
		return nil, err
	}
	return [][]byte{p}, nil
}

// deliver dials one target and writes one generation frame, the same
// frame shape an honest node's gossip uses.
func (a *Adversary) deliver(to string, payload []byte) error {
	conn, err := a.cfg.Dial(to, a.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetWriteDeadline(time.Now().Add(a.cfg.WriteTimeout))
	return writeFrame(conn, frameGen, payload)
}
