package realnet

import (
	"net"
	"testing"
	"time"
)

// lockProbeConn is a fake accepted connection whose Close contends on the
// node lock, the way a handler goroutine's deregister path does. If
// Node.Close still held n.mu while closing accepted connections, closing
// this probe would deadlock.
type lockProbeConn struct {
	node   *Node
	closed bool
}

func (c *lockProbeConn) Close() error {
	c.node.mu.Lock()
	c.closed = true
	c.node.mu.Unlock()
	return nil
}

func (c *lockProbeConn) Read(b []byte) (int, error)       { return 0, net.ErrClosed }
func (c *lockProbeConn) Write(b []byte) (int, error)      { return 0, net.ErrClosed }
func (c *lockProbeConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *lockProbeConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *lockProbeConn) SetDeadline(time.Time) error      { return nil }
func (c *lockProbeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *lockProbeConn) SetWriteDeadline(time.Time) error { return nil }

// TestCloseDoesNotHoldLockOverConnClose pins the lockdiscipline fix:
// Close snapshots the accepted connections under n.mu and closes them
// after releasing it, so a connection whose close path needs the node
// lock (or simply blocks on the socket) cannot deadlock shutdown.
func TestCloseDoesNotHoldLockOverConnClose(t *testing.T) {
	n, err := Start(Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	probe := &lockProbeConn{node: n}
	n.mu.Lock()
	n.conns[probe] = true
	n.mu.Unlock()

	done := make(chan struct{})
	go func() {
		n.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close deadlocked: n.mu held while closing accepted connections")
	}
	// done happened-before this read, so no lock is needed.
	if !probe.closed {
		t.Error("accepted connection was not closed during shutdown")
	}
}
