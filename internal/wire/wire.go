// Package wire provides the binary serialization of the objects peers
// exchange — sparse vectors, linear models and kernel-SVM model sets. The
// simulator charges message sizes from analytic WireSize estimates; this
// package is the deployable encoding those estimates model, and its tests
// pin the two within tolerance so the cost accounting stays honest.
//
// Format: little-endian, length-prefixed. Vectors encode as
// [n uint32] then n × ([index uint32][value float64]); strings as
// [len uint16][bytes]. No reflection, no allocation surprises.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/svm"
	"repro/internal/vector"
)

// ErrCorrupt is wrapped by all decode errors caused by malformed input.
var ErrCorrupt = fmt.Errorf("wire: corrupt input")

// WriteVector encodes v.
func WriteVector(w io.Writer, v *vector.Sparse) error {
	entries := v.Entries()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(w, binary.LittleEndian, uint32(e.Index)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Value)); err != nil {
			return err
		}
	}
	return nil
}

// ReadVector decodes a vector written by WriteVector. maxEntries bounds
// allocation against corrupt length prefixes (0 = 1<<20).
func ReadVector(r io.Reader, maxEntries int) (*vector.Sparse, error) {
	if maxEntries <= 0 {
		maxEntries = 1 << 20
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: vector length: %v", ErrCorrupt, err)
	}
	if int(n) > maxEntries {
		return nil, fmt.Errorf("%w: vector claims %d entries (max %d)", ErrCorrupt, n, maxEntries)
	}
	entries := make([]vector.Entry, n)
	for i := range entries {
		var idx uint32
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("%w: entry %d index: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: entry %d value: %v", ErrCorrupt, i, err)
		}
		entries[i] = vector.Entry{Index: int32(idx), Value: math.Float64frombits(bits)}
	}
	v, err := vector.FromEntries(entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("wire: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrCorrupt, err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// WriteLinearModel encodes m sparsely (only non-zero weights).
func WriteLinearModel(w io.Writer, m *svm.LinearModel) error {
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(m.Bias)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.W))); err != nil {
		return err
	}
	nnz := uint32(0)
	for _, x := range m.W {
		if x != 0 {
			nnz++
		}
	}
	if err := binary.Write(w, binary.LittleEndian, nnz); err != nil {
		return err
	}
	for i, x := range m.W {
		if x == 0 {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(i)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(x)); err != nil {
			return err
		}
	}
	return nil
}

// ReadLinearModel decodes a model written by WriteLinearModel.
func ReadLinearModel(r io.Reader) (*svm.LinearModel, error) {
	var bias uint64
	if err := binary.Read(r, binary.LittleEndian, &bias); err != nil {
		return nil, fmt.Errorf("%w: bias: %v", ErrCorrupt, err)
	}
	var dim, nnz uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %v", ErrCorrupt, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("%w: nnz: %v", ErrCorrupt, err)
	}
	const maxDim = 1 << 26
	if dim > maxDim || nnz > dim {
		return nil, fmt.Errorf("%w: dim=%d nnz=%d", ErrCorrupt, dim, nnz)
	}
	m := &svm.LinearModel{W: make([]float64, dim), Bias: math.Float64frombits(bias)}
	for i := uint32(0); i < nnz; i++ {
		var idx uint32
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("%w: weight %d: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: weight %d: %v", ErrCorrupt, i, err)
		}
		if idx >= dim {
			return nil, fmt.Errorf("%w: weight index %d >= dim %d", ErrCorrupt, idx, dim)
		}
		m.W[idx] = math.Float64frombits(bits)
	}
	return m, nil
}

// WriteKernelModel encodes a kernel model: parameters, bias and support
// vectors with coefficients.
func WriteKernelModel(w io.Writer, m *svm.KernelModel) error {
	hdr := []uint64{
		uint64(m.Kernel.Kind),
		math.Float64bits(m.Kernel.Gamma),
		math.Float64bits(m.Kernel.Coef0),
		uint64(m.Kernel.Degree),
		math.Float64bits(m.Bias),
	}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.SVs))); err != nil {
		return err
	}
	for _, sv := range m.SVs {
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(sv.Coeff)); err != nil {
			return err
		}
		if err := WriteVector(w, sv.X); err != nil {
			return err
		}
	}
	return nil
}

// ReadKernelModel decodes a model written by WriteKernelModel.
func ReadKernelModel(r io.Reader) (*svm.KernelModel, error) {
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: kernel header: %v", ErrCorrupt, err)
		}
	}
	m := &svm.KernelModel{
		Kernel: svm.Kernel{
			Kind:   svm.KernelKind(hdr[0]),
			Gamma:  math.Float64frombits(hdr[1]),
			Coef0:  math.Float64frombits(hdr[2]),
			Degree: int(hdr[3]),
		},
		Bias: math.Float64frombits(hdr[4]),
	}
	if m.Kernel.Kind > svm.KernelPoly {
		return nil, fmt.Errorf("%w: kernel kind %d", ErrCorrupt, m.Kernel.Kind)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: SV count: %v", ErrCorrupt, err)
	}
	const maxSVs = 1 << 22
	if n > maxSVs {
		return nil, fmt.Errorf("%w: %d support vectors", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: SV %d coeff: %v", ErrCorrupt, i, err)
		}
		x, err := ReadVector(r, 0)
		if err != nil {
			return nil, err
		}
		m.SVs = append(m.SVs, svm.SupportVector{X: x, Coeff: math.Float64frombits(bits)})
	}
	m.Precompute() // rebuild the derived RBF norm cache (not serialized)
	return m, nil
}

// CalibratedModel is one tag's entry in a published model set: a linear
// one-vs-all model together with its Platt calibration and cross-validated
// accuracy. This is the unit realnet peers broadcast and gossip.
type CalibratedModel struct {
	Model    *svm.LinearModel
	Platt    svm.PlattParams
	Accuracy float64
}

// maxModelSetTags bounds a decoded model set against corrupt tag counts.
const maxModelSetTags = 1 << 16

// WriteModelSet encodes a per-tag calibrated model bank in sorted tag
// order, so identical sets always serialize to identical bytes.
func WriteModelSet(w io.Writer, set map[string]CalibratedModel) error {
	tags := make([]string, 0, len(set))
	for tag := range set {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	if err := binary.Write(w, binary.LittleEndian, uint16(len(tags))); err != nil {
		return err
	}
	for _, tag := range tags {
		if err := writeString(w, tag); err != nil {
			return err
		}
		cm := set[tag]
		if err := WriteLinearModel(w, cm.Model); err != nil {
			return err
		}
		for _, v := range [3]float64{cm.Platt.A, cm.Platt.B, cm.Accuracy} {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadModelSet decodes a bank written by WriteModelSet.
func ReadModelSet(r io.Reader) (map[string]CalibratedModel, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: model set size: %v", ErrCorrupt, err)
	}
	if int(n) > maxModelSetTags {
		return nil, fmt.Errorf("%w: model set claims %d tags", ErrCorrupt, n)
	}
	set := make(map[string]CalibratedModel, n)
	for i := 0; i < int(n); i++ {
		tag, err := readString(r)
		if err != nil {
			return nil, err
		}
		m, err := ReadLinearModel(r)
		if err != nil {
			return nil, err
		}
		var bits [3]uint64
		for j := range bits {
			if err := binary.Read(r, binary.LittleEndian, &bits[j]); err != nil {
				return nil, fmt.Errorf("%w: tag %q calibration: %v", ErrCorrupt, tag, err)
			}
		}
		set[tag] = CalibratedModel{
			Model:    m,
			Platt:    svm.PlattParams{A: math.Float64frombits(bits[0]), B: math.Float64frombits(bits[1])},
			Accuracy: math.Float64frombits(bits[2]),
		}
	}
	return set, nil
}

// WriteTagged encodes a tag name followed by a vector — the unit of a
// labeled-document transfer.
func WriteTagged(w io.Writer, tag string, v *vector.Sparse) error {
	if err := writeString(w, tag); err != nil {
		return err
	}
	return WriteVector(w, v)
}

// ReadTagged decodes a WriteTagged pair.
func ReadTagged(r io.Reader) (string, *vector.Sparse, error) {
	tag, err := readString(r)
	if err != nil {
		return "", nil, err
	}
	v, err := ReadVector(r, 0)
	return tag, v, err
}
