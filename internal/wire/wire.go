// Package wire provides the binary serialization of the objects peers
// exchange — sparse vectors, linear models and kernel-SVM model sets. The
// simulator charges message sizes from analytic WireSize estimates; this
// package is the deployable encoding those estimates model, and its tests
// pin the two within tolerance so the cost accounting stays honest.
//
// Format: little-endian, length-prefixed. Vectors encode as
// [n uint32] then n × ([index uint32][value float64]); strings as
// [len uint16][bytes]. No reflection, no allocation surprises.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/svm"
	"repro/internal/vector"
)

// ErrCorrupt is wrapped by all decode errors caused by malformed input.
var ErrCorrupt = fmt.Errorf("wire: corrupt input")

// Decoder allocation budgets. A length prefix is attacker-controlled and
// costs the sender nothing, so no decoder may allocate proportionally to a
// claimed length before the corresponding bytes have actually arrived:
// slices grow incrementally (capped initial capacity) and dense weight
// arrays are materialized only after their sparse entries were fully read.
// The budgets below bound the decoded size a single call can reach even
// when every prefix lies as hard as the caps allow.
const (
	// maxModelDim bounds one linear model's dense weight vector
	// (128 MiB of float64 at the cap; honest models use HashDim 1<<16).
	maxModelDim = 1 << 24
	// maxModelSetWeights bounds the total dense weights across every
	// model of one decoded set (64 MiB of float64 at the cap).
	maxModelSetWeights = 1 << 23
	// maxKernelEntries bounds the total support-vector entries of one
	// decoded kernel model (64 MiB of entries at the cap).
	maxKernelEntries = 1 << 22
	// initialAlloc caps the capacity any decoder pre-allocates from a
	// length prefix alone.
	initialAlloc = 4096
)

// Checksum is the FNV-1a/64 digest of p. Gossip frames carry it over the
// encoded model set so a corrupted or tampered payload is rejected before
// the decoded set can touch any peer or model table. It is an integrity
// check, not authentication: a peer can forge a digest for its own bytes,
// but cannot have a frame mutate in flight undetected.
func Checksum(p []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// WriteVector encodes v.
func WriteVector(w io.Writer, v *vector.Sparse) error {
	entries := v.Entries()
	if err := binary.Write(w, binary.LittleEndian, uint32(len(entries))); err != nil {
		return err
	}
	for _, e := range entries {
		if err := binary.Write(w, binary.LittleEndian, uint32(e.Index)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(e.Value)); err != nil {
			return err
		}
	}
	return nil
}

// ReadVector decodes a vector written by WriteVector. maxEntries bounds
// allocation against corrupt length prefixes (0 = 1<<20).
func ReadVector(r io.Reader, maxEntries int) (*vector.Sparse, error) {
	if maxEntries <= 0 {
		maxEntries = 1 << 20
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: vector length: %v", ErrCorrupt, err)
	}
	if int(n) > maxEntries {
		return nil, fmt.Errorf("%w: vector claims %d entries (max %d)", ErrCorrupt, n, maxEntries)
	}
	// Grow incrementally: the claimed length alone must not size the
	// allocation, or a 4-byte prefix buys the sender maxEntries worth of
	// memory on a stream that then ends.
	entries := make([]vector.Entry, 0, min(int(n), initialAlloc))
	for i := 0; i < int(n); i++ {
		var idx uint32
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, fmt.Errorf("%w: entry %d index: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: entry %d value: %v", ErrCorrupt, i, err)
		}
		entries = append(entries, vector.Entry{Index: int32(idx), Value: math.Float64frombits(bits)})
	}
	v, err := vector.FromEntries(entries)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return v, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("wire: string too long (%d)", len(s))
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("%w: string length: %v", ErrCorrupt, err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: string body: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

// WriteLinearModel encodes m sparsely (only non-zero weights).
func WriteLinearModel(w io.Writer, m *svm.LinearModel) error {
	if err := binary.Write(w, binary.LittleEndian, math.Float64bits(m.Bias)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.W))); err != nil {
		return err
	}
	nnz := uint32(0)
	for _, x := range m.W {
		if x != 0 {
			nnz++
		}
	}
	if err := binary.Write(w, binary.LittleEndian, nnz); err != nil {
		return err
	}
	for i, x := range m.W {
		if x == 0 {
			continue
		}
		if err := binary.Write(w, binary.LittleEndian, uint32(i)); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(x)); err != nil {
			return err
		}
	}
	return nil
}

// ReadLinearModel decodes a model written by WriteLinearModel.
func ReadLinearModel(r io.Reader) (*svm.LinearModel, error) {
	return readLinearModelCapped(r, maxModelDim)
}

// readLinearModelCapped decodes one linear model with the dense dimension
// capped at maxDim; ReadModelSet threads a shrinking budget through it so a
// set of lying prefixes cannot multiply per-model allocations. The dense
// weight array is materialized only after every sparse entry was actually
// read — a claimed dim costs the sender nnz entries of real bytes first.
func readLinearModelCapped(r io.Reader, maxDim int) (*svm.LinearModel, error) {
	var bias uint64
	if err := binary.Read(r, binary.LittleEndian, &bias); err != nil {
		return nil, fmt.Errorf("%w: bias: %v", ErrCorrupt, err)
	}
	var dim, nnz uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: dim: %v", ErrCorrupt, err)
	}
	if err := binary.Read(r, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("%w: nnz: %v", ErrCorrupt, err)
	}
	if maxDim > maxModelDim || maxDim < 0 {
		maxDim = maxModelDim
	}
	if int64(dim) > int64(maxDim) || nnz > dim {
		return nil, fmt.Errorf("%w: dim=%d nnz=%d (max dim %d)", ErrCorrupt, dim, nnz, maxDim)
	}
	type weight struct {
		idx  uint32
		bits uint64
	}
	weights := make([]weight, 0, min(int(nnz), initialAlloc))
	for i := uint32(0); i < nnz; i++ {
		var wt weight
		if err := binary.Read(r, binary.LittleEndian, &wt.idx); err != nil {
			return nil, fmt.Errorf("%w: weight %d: %v", ErrCorrupt, i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &wt.bits); err != nil {
			return nil, fmt.Errorf("%w: weight %d: %v", ErrCorrupt, i, err)
		}
		if wt.idx >= dim {
			return nil, fmt.Errorf("%w: weight index %d >= dim %d", ErrCorrupt, wt.idx, dim)
		}
		weights = append(weights, wt)
	}
	m := &svm.LinearModel{W: make([]float64, dim), Bias: math.Float64frombits(bias)}
	for _, wt := range weights {
		m.W[wt.idx] = math.Float64frombits(wt.bits)
	}
	return m, nil
}

// WriteKernelModel encodes a kernel model: parameters, bias and support
// vectors with coefficients.
func WriteKernelModel(w io.Writer, m *svm.KernelModel) error {
	hdr := []uint64{
		uint64(m.Kernel.Kind),
		math.Float64bits(m.Kernel.Gamma),
		math.Float64bits(m.Kernel.Coef0),
		uint64(m.Kernel.Degree),
		math.Float64bits(m.Bias),
	}
	for _, h := range hdr {
		if err := binary.Write(w, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.SVs))); err != nil {
		return err
	}
	for _, sv := range m.SVs {
		if err := binary.Write(w, binary.LittleEndian, math.Float64bits(sv.Coeff)); err != nil {
			return err
		}
		if err := WriteVector(w, sv.X); err != nil {
			return err
		}
	}
	return nil
}

// ReadKernelModel decodes a model written by WriteKernelModel.
func ReadKernelModel(r io.Reader) (*svm.KernelModel, error) {
	var hdr [5]uint64
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("%w: kernel header: %v", ErrCorrupt, err)
		}
	}
	m := &svm.KernelModel{
		Kernel: svm.Kernel{
			Kind:   svm.KernelKind(hdr[0]),
			Gamma:  math.Float64frombits(hdr[1]),
			Coef0:  math.Float64frombits(hdr[2]),
			Degree: int(hdr[3]),
		},
		Bias: math.Float64frombits(hdr[4]),
	}
	if m.Kernel.Kind > svm.KernelPoly {
		return nil, fmt.Errorf("%w: kernel kind %d", ErrCorrupt, m.Kernel.Kind)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: SV count: %v", ErrCorrupt, err)
	}
	const maxSVs = 1 << 22
	if n > maxSVs {
		return nil, fmt.Errorf("%w: %d support vectors", ErrCorrupt, n)
	}
	// Shrinking entry budget across the whole model: many SVs each claiming
	// the per-vector maximum must not multiply into gigabytes.
	budget := maxKernelEntries
	for i := uint32(0); i < n; i++ {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("%w: SV %d coeff: %v", ErrCorrupt, i, err)
		}
		if budget <= 0 {
			return nil, fmt.Errorf("%w: kernel model exceeds %d total SV entries", ErrCorrupt, maxKernelEntries)
		}
		x, err := ReadVector(r, budget)
		if err != nil {
			return nil, err
		}
		budget -= x.Len()
		m.SVs = append(m.SVs, svm.SupportVector{X: x, Coeff: math.Float64frombits(bits)})
	}
	m.Precompute() // rebuild the derived RBF norm cache (not serialized)
	return m, nil
}

// CalibratedModel is one tag's entry in a published model set: a linear
// one-vs-all model together with its Platt calibration and cross-validated
// accuracy. This is the unit realnet peers broadcast and gossip.
type CalibratedModel struct {
	Model    *svm.LinearModel
	Platt    svm.PlattParams
	Accuracy float64
}

// maxModelSetTags bounds a decoded model set against corrupt tag counts.
const maxModelSetTags = 1 << 16

// WriteModelSet encodes a per-tag calibrated model bank in sorted tag
// order, so identical sets always serialize to identical bytes.
func WriteModelSet(w io.Writer, set map[string]CalibratedModel) error {
	tags := make([]string, 0, len(set))
	for tag := range set {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	if err := binary.Write(w, binary.LittleEndian, uint16(len(tags))); err != nil {
		return err
	}
	for _, tag := range tags {
		if err := writeString(w, tag); err != nil {
			return err
		}
		cm := set[tag]
		if err := WriteLinearModel(w, cm.Model); err != nil {
			return err
		}
		for _, v := range [3]float64{cm.Platt.A, cm.Platt.B, cm.Accuracy} {
			if err := binary.Write(w, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadModelSet decodes a bank written by WriteModelSet.
func ReadModelSet(r io.Reader) (map[string]CalibratedModel, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: model set size: %v", ErrCorrupt, err)
	}
	if int(n) > maxModelSetTags {
		return nil, fmt.Errorf("%w: model set claims %d tags", ErrCorrupt, n)
	}
	set := make(map[string]CalibratedModel, min(int(n), initialAlloc))
	// Shrinking weight budget across the whole set: every model's claimed
	// dense dimension draws from it, so a set of lying prefixes is refused
	// long before the per-tag cap times the per-model cap could multiply
	// into gigabytes.
	budget := maxModelSetWeights
	for i := 0; i < int(n); i++ {
		tag, err := readString(r)
		if err != nil {
			return nil, err
		}
		if budget <= 0 {
			return nil, fmt.Errorf("%w: model set exceeds %d total weights", ErrCorrupt, maxModelSetWeights)
		}
		m, err := readLinearModelCapped(r, budget)
		if err != nil {
			return nil, err
		}
		budget -= len(m.W)
		var bits [3]uint64
		for j := range bits {
			if err := binary.Read(r, binary.LittleEndian, &bits[j]); err != nil {
				return nil, fmt.Errorf("%w: tag %q calibration: %v", ErrCorrupt, tag, err)
			}
		}
		set[tag] = CalibratedModel{
			Model:    m,
			Platt:    svm.PlattParams{A: math.Float64frombits(bits[0]), B: math.Float64frombits(bits[1])},
			Accuracy: math.Float64frombits(bits[2]),
		}
	}
	return set, nil
}

// WriteTagged encodes a tag name followed by a vector — the unit of a
// labeled-document transfer.
func WriteTagged(w io.Writer, tag string, v *vector.Sparse) error {
	if err := writeString(w, tag); err != nil {
		return err
	}
	return WriteVector(w, v)
}

// ReadTagged decodes a WriteTagged pair.
func ReadTagged(r io.Reader) (string, *vector.Sparse, error) {
	tag, err := readString(r)
	if err != nil {
		return "", nil, err
	}
	v, err := ReadVector(r, 0)
	return tag, v, err
}
