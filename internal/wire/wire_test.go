package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/svm"
	"repro/internal/vector"
)

func randVec(rng *rand.Rand, n int) *vector.Sparse {
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		m[int32(rng.Intn(10000))] = rng.NormFloat64()
	}
	return vector.FromMap(m)
}

func TestVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 10, 500} {
		v := randVec(rng, n)
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			t.Fatal(err)
		}
		got, err := ReadVector(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(v) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestVectorEncodingMatchesWireSize(t *testing.T) {
	// The simulator's analytic WireSize must track the real encoding
	// exactly (both are 4 + 12*nnz).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		v := randVec(rng, rng.Intn(200))
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != v.WireSize() {
			t.Fatalf("encoded %d bytes, WireSize says %d", buf.Len(), v.WireSize())
		}
	}
}

func TestVectorCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	v := randVec(rand.New(rand.NewSource(3)), 5)
	if err := WriteVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Claim 2^31 entries.
	data[0], data[1], data[2], data[3] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := ReadVector(bytes.NewReader(data), 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt length: err = %v", err)
	}
	// Truncated body.
	if _, err := ReadVector(bytes.NewReader(buf.Bytes()[:10]), 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err = %v", err)
	}
	// Empty input.
	if _, err := ReadVector(bytes.NewReader(nil), 0); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty: err = %v", err)
	}
}

func TestLinearModelRoundTrip(t *testing.T) {
	m := &svm.LinearModel{W: []float64{0, 1.5, 0, -2.25, 0, 0, 3}, Bias: -0.5}
	var buf bytes.Buffer
	if err := WriteLinearModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLinearModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bias != m.Bias || len(got.W) != len(m.W) {
		t.Fatalf("shape mismatch: %+v", got)
	}
	for i := range m.W {
		if got.W[i] != m.W[i] {
			t.Errorf("W[%d] = %v, want %v", i, got.W[i], m.W[i])
		}
	}
}

func TestLinearModelEncodingNearWireSize(t *testing.T) {
	// WireSize approximates the encoding with a fixed 16-byte header; the
	// real encoding uses 16 bytes of header too (bias + dim + nnz).
	m := &svm.LinearModel{W: make([]float64, 1000), Bias: 1}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m.W[rng.Intn(1000)] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := WriteLinearModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	est := m.WireSize()
	if diff := buf.Len() - est; diff < -16 || diff > 16 {
		t.Errorf("encoded %dB vs estimate %dB (diff %d)", buf.Len(), est, diff)
	}
}

func TestLinearModelCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLinearModel(&buf, &svm.LinearModel{W: []float64{1}, Bias: 0}); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	// dim field at offset 8: make it absurd.
	data[8], data[9], data[10], data[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadLinearModel(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("absurd dim accepted: %v", err)
	}
	if _, err := ReadLinearModel(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty input: %v", err)
	}
}

func TestKernelModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := &svm.KernelModel{
		Kernel: svm.Kernel{Kind: svm.KernelRBF, Gamma: 0.5},
		Bias:   0.25,
	}
	for i := 0; i < 8; i++ {
		m.SVs = append(m.SVs, svm.SupportVector{X: randVec(rng, 20), Coeff: rng.NormFloat64()})
	}
	var buf bytes.Buffer
	if err := WriteKernelModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKernelModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != m.Kernel || got.Bias != m.Bias || len(got.SVs) != len(m.SVs) {
		t.Fatalf("header mismatch: %+v", got)
	}
	// Decisions must agree exactly.
	q := randVec(rng, 20)
	if got.Decision(q) != m.Decision(q) {
		t.Error("decoded model decides differently")
	}
}

func TestKernelModelCorruptKind(t *testing.T) {
	m := &svm.KernelModel{Kernel: svm.Kernel{Kind: svm.KernelLinear}}
	var buf bytes.Buffer
	if err := WriteKernelModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[0] = 0x7F // invalid kernel kind
	if _, err := ReadKernelModel(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("invalid kind accepted: %v", err)
	}
}

func TestTaggedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v := randVec(rng, 30)
	var buf bytes.Buffer
	if err := WriteTagged(&buf, "music", v); err != nil {
		t.Fatal(err)
	}
	tag, got, err := ReadTagged(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tag != "music" || !got.Equal(v) {
		t.Errorf("tagged round trip: %q", tag)
	}
}

func TestPropertyVectorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng, rng.Intn(50))
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			return false
		}
		got, err := ReadVector(&buf, 0)
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// FuzzReadVector ensures arbitrary bytes never panic the decoder.
func FuzzReadVector(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteVector(&buf, vector.FromMap(map[int32]float64{1: 2, 5: -1}))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadVector(bytes.NewReader(data), 1024)
		if err == nil && v == nil {
			t.Fatal("nil vector without error")
		}
	})
}

// FuzzReadKernelModel ensures arbitrary bytes never panic the decoder.
func FuzzReadKernelModel(f *testing.F) {
	m := &svm.KernelModel{Kernel: svm.Kernel{Kind: svm.KernelRBF, Gamma: 1}}
	m.SVs = append(m.SVs, svm.SupportVector{X: vector.FromMap(map[int32]float64{0: 1}), Coeff: 1})
	var buf bytes.Buffer
	_ = WriteKernelModel(&buf, m)
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		km, err := ReadKernelModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		if km == nil {
			t.Fatal("nil model without error")
		}
		total := 0
		for _, sv := range km.SVs {
			total += sv.X.Len()
		}
		if total > 1<<22 {
			t.Fatalf("decoded kernel model holds %d SV entries past the budget", total)
		}
	})
}

func TestModelSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	set := map[string]CalibratedModel{}
	for _, tag := range []string{"music", "travel", "cooking"} {
		w := make([]float64, 64)
		for i := 0; i < 12; i++ {
			w[rng.Intn(len(w))] = rng.NormFloat64()
		}
		set[tag] = CalibratedModel{
			Model:    &svm.LinearModel{W: w, Bias: rng.NormFloat64()},
			Platt:    svm.PlattParams{A: rng.NormFloat64(), B: rng.NormFloat64()},
			Accuracy: rng.Float64(),
		}
	}
	var buf bytes.Buffer
	if err := WriteModelSet(&buf, set); err != nil {
		t.Fatal(err)
	}
	encoded := buf.Bytes()
	got, err := ReadModelSet(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("round trip returned %d tags, want %d", len(got), len(set))
	}
	for tag, want := range set {
		g, ok := got[tag]
		if !ok {
			t.Fatalf("tag %q missing after round trip", tag)
		}
		if g.Platt != want.Platt || g.Accuracy != want.Accuracy || g.Model.Bias != want.Model.Bias {
			t.Errorf("tag %q: calibration mismatch", tag)
		}
		if len(g.Model.W) != len(want.Model.W) {
			t.Fatalf("tag %q: dim %d, want %d", tag, len(g.Model.W), len(want.Model.W))
		}
		for i, w := range want.Model.W {
			if g.Model.W[i] != w {
				t.Fatalf("tag %q: weight %d mismatch", tag, i)
			}
		}
	}
	// Determinism: identical sets serialize to identical bytes (tags are
	// sorted during encode, so map order cannot leak in).
	var again bytes.Buffer
	if err := WriteModelSet(&again, set); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encoded, again.Bytes()) {
		t.Error("two encodings of the same set differ")
	}
	// Every truncation of a valid encoding must fail with ErrCorrupt, not
	// panic or succeed.
	for cut := 0; cut < len(encoded); cut += 7 {
		if _, err := ReadModelSet(bytes.NewReader(encoded[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorrupt", cut, err)
		}
	}
}
