package wire

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/svm"
)

// fuzzSeedSet is a small honest model set whose encoding seeds the fuzz
// corpus (alongside the committed files under testdata/fuzz).
func fuzzSeedSet() map[string]CalibratedModel {
	w1 := make([]float64, 64)
	w1[3], w1[17], w1[40] = 0.5, -1.25, 2.0
	w2 := make([]float64, 16)
	w2[0], w2[15] = -0.75, 0.25
	return map[string]CalibratedModel{
		"music": {
			Model:    &svm.LinearModel{W: w1, Bias: 0.1},
			Platt:    svm.PlattParams{A: -1.2, B: 0.05},
			Accuracy: 0.9,
		},
		"travel": {
			Model:    &svm.LinearModel{W: w2, Bias: -0.3},
			Platt:    svm.PlattParams{A: -0.8, B: -0.1},
			Accuracy: 0.75,
		},
	}
}

// FuzzReadModelSet drives arbitrary bytes at the model-set decoder. The
// decoder must never panic or allocate past its budgets, and anything it
// accepts must re-encode deterministically: write(read(data)) read back and
// written again yields byte-identical output (the canonical sorted-tag
// encoding is a fixed point).
func FuzzReadModelSet(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteModelSet(&valid, fuzzSeedSet()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2]) // truncated
	f.Add([]byte{})
	// Lying tag count over no data, and a huge-dim claim.
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{1, 0, 1, 0, 'a', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, err := ReadModelSet(bytes.NewReader(data))
		if err != nil {
			return // rejecting hostile input is the job
		}
		var once bytes.Buffer
		if err := WriteModelSet(&once, set); err != nil {
			t.Fatalf("accepted set refuses to encode: %v", err)
		}
		again, err := ReadModelSet(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("canonical encoding refused on re-read: %v", err)
		}
		var twice bytes.Buffer
		if err := WriteModelSet(&twice, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("canonical encoding is not a fixed point: %d vs %d bytes", once.Len(), twice.Len())
		}
	})
}

// TestChecksumPinned pins the digest function: FNV-1a/64, stable across
// releases (gossip frames from different builds must agree), sensitive to
// any byte flip.
func TestChecksumPinned(t *testing.T) {
	if got := Checksum(nil); got != 14695981039346656037 {
		t.Fatalf("Checksum(nil) = %d, want the FNV-1a offset basis", got)
	}
	// Pin against the stdlib reference implementation.
	ref := fnv.New64a()
	ref.Write([]byte("wire"))
	if got, want := Checksum([]byte("wire")), ref.Sum64(); got != want {
		t.Fatalf("Checksum(%q) = %#x, hash/fnv says %#x", "wire", got, want)
	}
	var buf bytes.Buffer
	if err := WriteModelSet(&buf, fuzzSeedSet()); err != nil {
		t.Fatal(err)
	}
	base := Checksum(buf.Bytes())
	for _, flip := range []int{0, buf.Len() / 2, buf.Len() - 1} {
		mutated := append([]byte(nil), buf.Bytes()...)
		mutated[flip] ^= 0x01
		if Checksum(mutated) == base {
			t.Errorf("flipping byte %d left the checksum unchanged", flip)
		}
	}
}

// TestDecoderBudgets pins the allocation caps: decoders refuse claimed
// sizes past their budgets with ErrCorrupt instead of allocating.
func TestDecoderBudgets(t *testing.T) {
	t.Run("linear dim cap", func(t *testing.T) {
		var buf bytes.Buffer
		mustWrite(t, &buf, math.Float64bits(0.0))    // bias
		mustWrite(t, &buf, uint32(maxModelDim+1))    // dim past the cap
		mustWrite(t, &buf, uint32(0))                // nnz
		if _, err := ReadLinearModel(&buf); err == nil {
			t.Fatal("dim past maxModelDim accepted")
		}
	})
	t.Run("set weight budget", func(t *testing.T) {
		// Each model claims the largest dim the per-model cap allows with
		// zero entries; enough of them must trip the cumulative budget even
		// though each is individually within bounds.
		var buf bytes.Buffer
		perModel := uint32(maxModelSetWeights/2 + 1)
		mustWrite(t, &buf, uint16(3))
		for i := 0; i < 3; i++ {
			mustWrite(t, &buf, uint16(1))
			buf.WriteByte(byte('a' + i))
			mustWrite(t, &buf, math.Float64bits(0.0)) // bias
			mustWrite(t, &buf, perModel)              // dim
			mustWrite(t, &buf, uint32(0))             // nnz
			for j := 0; j < 3; j++ {
				mustWrite(t, &buf, math.Float64bits(0.5)) // platt + accuracy
			}
		}
		if _, err := ReadModelSet(&buf); err == nil {
			t.Fatal("cumulative weight budget not enforced")
		}
	})
	t.Run("truncated nnz allocates nothing dense", func(t *testing.T) {
		// A model claiming a large dim with entries that never arrive must
		// error on the missing bytes (the dense array materializes only
		// after the sparse entries were read, so the claim costs nothing).
		var buf bytes.Buffer
		mustWrite(t, &buf, math.Float64bits(0.0))
		mustWrite(t, &buf, uint32(maxModelDim)) // dim at the cap
		mustWrite(t, &buf, uint32(1000))        // promised entries...
		// ...but the stream ends here.
		if _, err := ReadLinearModel(&buf); err == nil {
			t.Fatal("truncated weight stream accepted")
		}
	})
}

func mustWrite(t *testing.T, buf *bytes.Buffer, v any) {
	t.Helper()
	if err := binary.Write(buf, binary.LittleEndian, v); err != nil {
		t.Fatal(err)
	}
}
