package tagstore

import (
	"fmt"
	"sort"
	"strings"
)

// CloudEdge is a co-occurrence edge between two tags ("tags that co-occur
// in documents are connected by edges", Fig. 4).
type CloudEdge struct {
	A, B   string // A < B lexicographically
	Weight int    // number of documents where both appear
}

// TagCloud is the co-occurrence view of a library: tag frequencies, edges,
// and the concept clusters they form.
type TagCloud struct {
	Tags  []TagCount
	Edges []CloudEdge
	// Clusters are groups of tags connected by edges of weight >=
	// MinSupport, largest first — the "two clusters of highly
	// interconnected tags" structure Fig. 4 shows.
	Clusters [][]string
	// Bridges are tags whose removal would split their cluster (cut
	// vertices) — the "bridged by the word navigation" insight of Fig. 4.
	Bridges []string
	// MinSupport is the edge-weight threshold used for clustering.
	MinSupport int
}

// BuildCloud computes the tag cloud of the store. minSupport is the
// minimum co-occurrence count for an edge to join the cluster graph
// (default 1).
func (s *Store) BuildCloud(minSupport int) *TagCloud {
	if minSupport <= 0 {
		minSupport = 1
	}
	cloud := &TagCloud{Tags: s.TagCounts(), MinSupport: minSupport}
	pair := map[[2]string]int{}
	for _, e := range s.entries {
		tags := dedupe(append([]string(nil), e.Tags...))
		for i := 0; i < len(tags); i++ {
			for j := i + 1; j < len(tags); j++ {
				pair[[2]string{tags[i], tags[j]}]++
			}
		}
	}
	for k, w := range pair {
		cloud.Edges = append(cloud.Edges, CloudEdge{A: k[0], B: k[1], Weight: w})
	}
	sort.Slice(cloud.Edges, func(i, j int) bool {
		if cloud.Edges[i].Weight != cloud.Edges[j].Weight {
			return cloud.Edges[i].Weight > cloud.Edges[j].Weight
		}
		if cloud.Edges[i].A != cloud.Edges[j].A {
			return cloud.Edges[i].A < cloud.Edges[j].A
		}
		return cloud.Edges[i].B < cloud.Edges[j].B
	})

	// Cluster graph: adjacency over edges meeting the support threshold.
	adj := map[string][]string{}
	for _, e := range cloud.Edges {
		if e.Weight >= minSupport {
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
	}
	// Connected components.
	seen := map[string]bool{}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, start := range nodes {
		if seen[start] {
			continue
		}
		var comp []string
		stack := []string{start}
		seen[start] = true
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, cur)
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		sort.Strings(comp)
		cloud.Clusters = append(cloud.Clusters, comp)
	}
	sort.Slice(cloud.Clusters, func(i, j int) bool {
		if len(cloud.Clusters[i]) != len(cloud.Clusters[j]) {
			return len(cloud.Clusters[i]) > len(cloud.Clusters[j])
		}
		return cloud.Clusters[i][0] < cloud.Clusters[j][0]
	})

	cloud.Bridges = cutVertices(adj)
	return cloud
}

// cutVertices finds articulation points of the tag graph with the
// iterative Tarjan lowlink algorithm. The result is sorted: the isCut set
// is a map, and iterating it unsorted would leak map ordering into output.
func cutVertices(adj map[string][]string) []string {
	index := map[string]int{}
	low := map[string]int{}
	parent := map[string]string{}
	var out []string
	isCut := map[string]bool{}

	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	counter := 0
	var dfs func(root string)
	dfs = func(root string) {
		type frame struct {
			node string
			next int
		}
		stack := []frame{{node: root}}
		index[root] = counter
		low[root] = counter
		counter++
		rootChildren := 0
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			node := f.node
			if f.next < len(adj[node]) {
				nb := adj[node][f.next]
				f.next++
				if _, visited := index[nb]; !visited {
					parent[nb] = node
					if node == root {
						rootChildren++
					}
					index[nb] = counter
					low[nb] = counter
					counter++
					stack = append(stack, frame{node: nb})
				} else if nb != parent[node] && index[nb] < low[node] {
					low[node] = index[nb]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p, ok := parent[node]; ok {
				if low[node] < low[p] {
					low[p] = low[node]
				}
				if p != root && low[node] >= index[p] {
					isCut[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isCut[root] = true
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			dfs(n)
		}
	}
	for n, cut := range isCut {
		if cut {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Render draws the cloud as text: tags in five size buckets (larger font =
// UPPER CASE + markers, as a terminal stand-in for font size), followed by
// the strongest edges and the detected clusters.
func (c *TagCloud) Render(maxTags int) string {
	if maxTags <= 0 || maxTags > len(c.Tags) {
		maxTags = len(c.Tags)
	}
	var b strings.Builder
	b.WriteString("─── tag cloud ───\n")
	shown := c.Tags[:maxTags]
	maxCount := 1
	for _, tc := range shown {
		if tc.Count > maxCount {
			maxCount = tc.Count
		}
	}
	// Alphabetical ordering "arranged in alphabetical order" like the
	// suggestion cloud of Fig. 3.
	byName := append([]TagCount(nil), shown...)
	sort.Slice(byName, func(i, j int) bool { return byName[i].Tag < byName[j].Tag })
	for i, tc := range byName {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(renderTag(tc, maxCount))
	}
	b.WriteString("\n\n")
	if len(c.Edges) > 0 {
		b.WriteString("strongest co-occurrences:\n")
		n := len(c.Edges)
		if n > 10 {
			n = 10
		}
		for _, e := range c.Edges[:n] {
			fmt.Fprintf(&b, "  %s ── %s (%d)\n", e.A, e.B, e.Weight)
		}
	}
	if len(c.Clusters) > 0 {
		fmt.Fprintf(&b, "concept clusters (support >= %d):\n", c.MinSupport)
		for i, cl := range c.Clusters {
			fmt.Fprintf(&b, "  #%d: %s\n", i+1, strings.Join(cl, ", "))
		}
	}
	if len(c.Bridges) > 0 {
		fmt.Fprintf(&b, "bridging tags: %s\n", strings.Join(c.Bridges, ", "))
	}
	return b.String()
}

// capitalize upper-cases the first byte of an ASCII tag.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	if s[0] >= 'a' && s[0] <= 'z' {
		return string(s[0]-'a'+'A') + s[1:]
	}
	return s
}

// renderTag scales a tag's visual weight into one of five text styles.
func renderTag(tc TagCount, maxCount int) string {
	ratio := float64(tc.Count) / float64(maxCount)
	switch {
	case ratio >= 0.8:
		return "◈" + strings.ToUpper(tc.Tag) + "◈"
	case ratio >= 0.6:
		return strings.ToUpper(tc.Tag)
	case ratio >= 0.4:
		return capitalize(tc.Tag)
	case ratio >= 0.2:
		return tc.Tag
	default:
		return "·" + tc.Tag
	}
}
