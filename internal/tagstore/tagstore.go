// Package tagstore implements the document library of P2PDocTagger's UI
// (Fig. 3/4): persistent tag metadata for files, tag-based search and
// filtering, and the tag cloud with co-occurrence edges and concept
// clusters. Tags are persisted in a JSON sidecar index — the portable
// substitute for the OS extended attributes the paper mentions.
package tagstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Entry is the stored metadata of one document.
type Entry struct {
	// Path identifies the document (absolute file path, or any unique id
	// for non-file documents).
	Path string `json:"path"`
	// Tags are the assigned tags, sorted.
	Tags []string `json:"tags"`
	// Auto marks tags assigned by the auto-tagger (vs manually); used by
	// the refinement UI to show provenance.
	Auto map[string]bool `json:"auto,omitempty"`
	// Updated is the last modification time.
	Updated time.Time `json:"updated"`
}

// Store is an in-memory tag index with JSON persistence. It is not safe
// for concurrent use; the CLI serializes access.
type Store struct {
	path    string
	entries map[string]*Entry
	now     func() time.Time
}

// ErrNotFound is returned when a document has no entry.
var ErrNotFound = errors.New("tagstore: document not found")

// Open loads a store from path, creating an empty one when the file does
// not exist yet.
func Open(path string) (*Store, error) {
	s := &Store{path: path, entries: make(map[string]*Entry), now: time.Now}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("tagstore: open: %w", err)
	}
	var list []*Entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("tagstore: parse %s: %w", path, err)
	}
	for _, e := range list {
		s.entries[e.Path] = e
	}
	return s, nil
}

// NewMemory returns an unpersisted store (Save is a no-op without a path).
func NewMemory() *Store {
	return &Store{entries: make(map[string]*Entry), now: time.Now}
}

// Save writes the store to its backing file atomically (write temp +
// rename).
func (s *Store) Save() error {
	if s.path == "" {
		return nil
	}
	list := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Path < list[j].Path })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return fmt.Errorf("tagstore: marshal: %w", err)
	}
	dir := filepath.Dir(s.path)
	tmp, err := os.CreateTemp(dir, ".tagstore-*")
	if err != nil {
		return fmt.Errorf("tagstore: save: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("tagstore: save: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tagstore: save: %w", err)
	}
	if err := os.Rename(tmpName, s.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("tagstore: save: %w", err)
	}
	return nil
}

// normalizeTag lower-cases and trims a tag; empty results are rejected by
// callers.
func normalizeTag(t string) string { return strings.ToLower(strings.TrimSpace(t)) }

// SetTags replaces a document's tags. Auto marks all of them as
// auto-assigned when true.
func (s *Store) SetTags(path string, tags []string, auto bool) {
	e := &Entry{Path: path, Updated: s.now(), Auto: map[string]bool{}}
	for _, t := range tags {
		if nt := normalizeTag(t); nt != "" {
			e.Tags = append(e.Tags, nt)
			if auto {
				e.Auto[nt] = true
			}
		}
	}
	e.Tags = dedupe(e.Tags)
	s.entries[path] = e
}

// AddTags merges tags into a document's entry.
func (s *Store) AddTags(path string, tags []string, auto bool) {
	e, ok := s.entries[path]
	if !ok {
		s.SetTags(path, tags, auto)
		return
	}
	existing := map[string]bool{}
	for _, t := range e.Tags {
		existing[t] = true
	}
	for _, t := range tags {
		nt := normalizeTag(t)
		if nt == "" {
			continue
		}
		e.Tags = append(e.Tags, nt)
		// Auto provenance only applies to newly introduced tags: re-adding
		// a manually assigned tag must not demote it to auto.
		if auto && !existing[nt] {
			e.Auto[nt] = true
		}
	}
	e.Tags = dedupe(e.Tags)
	e.Updated = s.now()
}

// RemoveTag deletes one tag from a document (the refinement action of
// Fig. 3); removing the last tag keeps an empty entry so the document
// stays in the library.
func (s *Store) RemoveTag(path, tag string) error {
	e, ok := s.entries[path]
	if !ok {
		return ErrNotFound
	}
	nt := normalizeTag(tag)
	out := e.Tags[:0]
	for _, t := range e.Tags {
		if t != nt {
			out = append(out, t)
		}
	}
	e.Tags = out
	delete(e.Auto, nt)
	e.Updated = s.now()
	return nil
}

// Get returns a document's entry.
func (s *Store) Get(path string) (*Entry, error) {
	e, ok := s.entries[path]
	if !ok {
		return nil, ErrNotFound
	}
	return e, nil
}

// Delete removes a document from the library entirely.
func (s *Store) Delete(path string) { delete(s.entries, path) }

// Len reports the number of documents in the library.
func (s *Store) Len() int { return len(s.entries) }

// All returns every entry sorted by path.
func (s *Store) All() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Search returns entries matching the query: every "tag" term must be
// present (AND semantics); terms prefixed with "-" must be absent. An
// empty query matches everything.
func (s *Store) Search(query []string) []*Entry {
	var must, mustNot []string
	for _, q := range query {
		if strings.HasPrefix(q, "-") {
			mustNot = append(mustNot, normalizeTag(q[1:]))
		} else {
			must = append(must, normalizeTag(q))
		}
	}
	var out []*Entry
	for _, e := range s.All() {
		tagSet := map[string]bool{}
		for _, t := range e.Tags {
			tagSet[t] = true
		}
		match := true
		for _, m := range must {
			if !tagSet[m] {
				match = false
				break
			}
		}
		for _, m := range mustNot {
			if tagSet[m] {
				match = false
				break
			}
		}
		if match {
			out = append(out, e)
		}
	}
	return out
}

// TagCounts returns every tag with its document count, most frequent
// first (ties by name).
func (s *Store) TagCounts() []TagCount {
	counts := map[string]int{}
	for _, e := range s.entries {
		for _, t := range e.Tags {
			counts[t]++
		}
	}
	out := make([]TagCount, 0, len(counts))
	for t, c := range counts {
		out = append(out, TagCount{Tag: t, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

// TagCount pairs a tag with its library frequency.
type TagCount struct {
	Tag   string
	Count int
}

func dedupe(tags []string) []string {
	sort.Strings(tags)
	out := tags[:0]
	for i, t := range tags {
		if i == 0 || t != tags[i-1] {
			out = append(out, t)
		}
	}
	return out
}
