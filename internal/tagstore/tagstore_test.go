package tagstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSetGetAddRemove(t *testing.T) {
	s := NewMemory()
	s.SetTags("/a.txt", []string{"Music", "  travel "}, false)
	e, err := s.Get("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Tags) != 2 || e.Tags[0] != "music" || e.Tags[1] != "travel" {
		t.Errorf("tags = %v (want normalized, sorted)", e.Tags)
	}
	s.AddTags("/a.txt", []string{"music", "food"}, true)
	e, _ = s.Get("/a.txt")
	if len(e.Tags) != 3 {
		t.Errorf("after add: %v", e.Tags)
	}
	if !e.Auto["food"] || e.Auto["music"] {
		t.Errorf("auto provenance wrong: %v", e.Auto)
	}
	if err := s.RemoveTag("/a.txt", "travel"); err != nil {
		t.Fatal(err)
	}
	e, _ = s.Get("/a.txt")
	for _, tag := range e.Tags {
		if tag == "travel" {
			t.Error("travel not removed")
		}
	}
	if err := s.RemoveTag("/missing", "x"); err != ErrNotFound {
		t.Errorf("RemoveTag missing = %v", err)
	}
	if _, err := s.Get("/missing"); err != ErrNotFound {
		t.Errorf("Get missing = %v", err)
	}
	s.Delete("/a.txt")
	if s.Len() != 0 {
		t.Error("delete failed")
	}
}

func TestSaveAndReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tags.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.SetTags("/doc1", []string{"alpha", "beta"}, false)
	s.SetTags("/doc2", []string{"beta"}, true)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d entries", re.Len())
	}
	e, err := re.Get("/doc2")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Auto["beta"] {
		t.Error("auto flag lost on reload")
	}
}

func TestOpenCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt file accepted")
	}
}

func TestMemorySaveNoop(t *testing.T) {
	s := NewMemory()
	s.SetTags("/x", []string{"a"}, false)
	if err := s.Save(); err != nil {
		t.Errorf("memory save = %v", err)
	}
}

func TestSearch(t *testing.T) {
	s := NewMemory()
	s.SetTags("/1", []string{"go", "databases"}, false)
	s.SetTags("/2", []string{"go", "web"}, false)
	s.SetTags("/3", []string{"rust", "databases"}, false)
	if got := s.Search([]string{"go"}); len(got) != 2 {
		t.Errorf("search go = %d results", len(got))
	}
	if got := s.Search([]string{"go", "databases"}); len(got) != 1 || got[0].Path != "/1" {
		t.Errorf("AND search = %v", got)
	}
	if got := s.Search([]string{"databases", "-go"}); len(got) != 1 || got[0].Path != "/3" {
		t.Errorf("negation search = %v", got)
	}
	if got := s.Search(nil); len(got) != 3 {
		t.Errorf("empty query = %d results", len(got))
	}
	if got := s.Search([]string{"missing"}); len(got) != 0 {
		t.Errorf("no-match = %v", got)
	}
}

func TestTagCounts(t *testing.T) {
	s := NewMemory()
	s.SetTags("/1", []string{"a", "b"}, false)
	s.SetTags("/2", []string{"a"}, false)
	counts := s.TagCounts()
	if len(counts) != 2 || counts[0].Tag != "a" || counts[0].Count != 2 {
		t.Errorf("counts = %v", counts)
	}
}

func TestBuildCloudEdgesAndClusters(t *testing.T) {
	s := NewMemory()
	// Two clusters: {code,go,test} and {photo,travel}, bridged by "blog".
	s.SetTags("/1", []string{"code", "go"}, false)
	s.SetTags("/2", []string{"go", "test"}, false)
	s.SetTags("/3", []string{"code", "test"}, false)
	s.SetTags("/4", []string{"photo", "travel"}, false)
	s.SetTags("/5", []string{"travel", "photo"}, false)
	s.SetTags("/6", []string{"go", "blog"}, false)
	s.SetTags("/7", []string{"blog", "photo"}, false)
	cloud := s.BuildCloud(1)
	if len(cloud.Clusters) != 1 {
		t.Fatalf("clusters = %v (bridge should connect everything)", cloud.Clusters)
	}
	// "blog" is the articulation point between the two concept groups.
	foundBridge := false
	for _, bridge := range cloud.Bridges {
		if bridge == "blog" {
			foundBridge = true
		}
	}
	if !foundBridge {
		t.Errorf("bridges = %v, want blog", cloud.Bridges)
	}
	// Edge weights: photo-travel co-occurs twice.
	top := cloud.Edges[0]
	if top.A != "photo" || top.B != "travel" || top.Weight != 2 {
		t.Errorf("top edge = %+v", top)
	}
}

func TestBuildCloudMinSupportSplitsClusters(t *testing.T) {
	s := NewMemory()
	s.SetTags("/1", []string{"a", "b"}, false)
	s.SetTags("/2", []string{"a", "b"}, false)
	s.SetTags("/3", []string{"c", "d"}, false)
	s.SetTags("/4", []string{"c", "d"}, false)
	s.SetTags("/5", []string{"b", "c"}, false) // weak link
	cloud := s.BuildCloud(2)
	if len(cloud.Clusters) != 2 {
		t.Errorf("clusters at support 2 = %v", cloud.Clusters)
	}
}

func TestRender(t *testing.T) {
	s := NewMemory()
	for i := 0; i < 10; i++ {
		s.SetTags(filepath.Join("/docs", string(rune('a'+i))), []string{"popular", "rare" + string(rune('a'+i))}, false)
	}
	out := s.BuildCloud(1).Render(0)
	if !strings.Contains(out, "POPULAR") {
		t.Errorf("popular tag not emphasized:\n%s", out)
	}
	if !strings.Contains(out, "tag cloud") {
		t.Error("missing header")
	}
	// Limited rendering.
	short := s.BuildCloud(1).Render(3)
	if len(short) >= len(out) {
		t.Error("maxTags did not shrink output")
	}
}

func TestCutVerticesSimplePath(t *testing.T) {
	// a - b - c: b is the only cut vertex.
	adj := map[string][]string{
		"a": {"b"},
		"b": {"a", "c"},
		"c": {"b"},
	}
	cuts := cutVertices(adj)
	if len(cuts) != 1 || cuts[0] != "b" {
		t.Errorf("cuts = %v", cuts)
	}
	// Triangle: no cut vertices.
	tri := map[string][]string{
		"a": {"b", "c"},
		"b": {"a", "c"},
		"c": {"a", "b"},
	}
	if cuts := cutVertices(tri); len(cuts) != 0 {
		t.Errorf("triangle cuts = %v", cuts)
	}
}

// TestBuildCloudDeterministic pins the byte-identical contract on the tag
// cloud's adjacency walks: pair counting iterates the entries map, cut
// vertices come out of a map-backed set, and clustering walks map-keyed
// adjacency lists — every one of those sites must end behind a total sort.
// The same library, inserted in any order, must render the same bytes.
func TestBuildCloudDeterministic(t *testing.T) {
	type doc struct {
		path string
		tags []string
	}
	// Two clusters ("go,db,perf" and "art,music") bridged by "notes", plus
	// a deliberate tie: art and music have equal counts, as do db and perf.
	docs := []doc{
		{"/a", []string{"go", "db", "perf"}},
		{"/b", []string{"go", "db"}},
		{"/c", []string{"go", "perf"}},
		{"/d", []string{"go", "notes"}},
		{"/e", []string{"notes", "art"}},
		{"/f", []string{"art", "music"}},
		{"/g", []string{"music", "art"}},
		{"/h", []string{"music"}},
	}
	build := func(order []int) *Store {
		s := NewMemory()
		for _, i := range order {
			s.SetTags(docs[i].path, docs[i].tags, false)
		}
		return s
	}
	forward := make([]int, len(docs))
	reverse := make([]int, len(docs))
	for i := range docs {
		forward[i] = i
		reverse[i] = len(docs) - 1 - i
	}
	ref := build(forward).BuildCloud(1)
	want := ref.Render(0)
	if len(ref.Clusters) < 1 || len(ref.Bridges) == 0 {
		t.Fatalf("test graph lost its structure: clusters %v bridges %v", ref.Clusters, ref.Bridges)
	}
	for trial := 0; trial < 20; trial++ {
		order := forward
		if trial%2 == 1 {
			order = reverse
		}
		cloud := build(order).BuildCloud(1)
		if got := cloud.Render(0); got != want {
			t.Fatalf("trial %d: render differs:\n got:\n%s\nwant:\n%s", trial, got, want)
		}
	}
}
