package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

// blobs generates k well-separated Gaussian clusters of n points each.
func blobs(rng *rand.Rand, k, n int) ([]*vector.Sparse, []int) {
	var data []*vector.Sparse
	var labels []int
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			data = append(data, vector.FromMap(map[int32]float64{
				0: float64(c)*10 + rng.NormFloat64(),
				1: float64(c)*10 + rng.NormFloat64(),
			}))
			labels = append(labels, c)
		}
	}
	return data, labels
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data, labels := blobs(rng, 3, 40)
	res, err := KMeans(data, Options{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Every true cluster should map to exactly one k-means cluster.
	seen := map[int]map[int]int{}
	for i, a := range res.Assignment {
		if seen[labels[i]] == nil {
			seen[labels[i]] = map[int]int{}
		}
		seen[labels[i]][a]++
	}
	for lbl, m := range seen {
		// Majority assignment should dominate.
		total, max := 0, 0
		for _, c := range m {
			total += c
			if c > max {
				max = c
			}
		}
		if float64(max)/float64(total) < 0.95 {
			t.Errorf("cluster %d split across k-means clusters: %v", lbl, m)
		}
	}
}

func TestKMeansErrorsAndClamping(t *testing.T) {
	if _, err := KMeans(nil, Options{K: 2}); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	one := []*vector.Sparse{vector.FromMap(map[int32]float64{0: 1})}
	res, err := KMeans(one, Options{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Errorf("K should clamp to len(data): got %d centroids", len(res.Centroids))
	}
	// K=0 clamps to 1.
	res, err = KMeans(one, Options{K: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 1 {
		t.Errorf("K=0 should clamp to 1, got %d", len(res.Centroids))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := blobs(rng, 2, 30)
	a, err := KMeans(data, Options{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(data, Options{K: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centroids {
		if !a.Centroids[i].Equal(b.Centroids[i]) {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	same := make([]*vector.Sparse, 10)
	for i := range same {
		same[i] = vector.FromMap(map[int32]float64{0: 5})
	}
	res, err := KMeans(same, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("inertia = %v, want 0", res.Inertia)
	}
}

func TestNearest(t *testing.T) {
	cents := []*vector.Sparse{
		vector.FromMap(map[int32]float64{0: 0}),
		vector.FromMap(map[int32]float64{0: 10}),
	}
	x := vector.FromMap(map[int32]float64{0: 8})
	if got := Nearest(cents, x); got != 1 {
		t.Errorf("Nearest = %d, want 1", got)
	}
	if got := Nearest(nil, x); got != -1 {
		t.Errorf("Nearest(empty) = %d, want -1", got)
	}
}

func TestPropertyAssignmentIsNearestCentroid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data, _ := blobs(rng, 2, 15)
		res, err := KMeans(data, Options{K: 2, Seed: seed})
		if err != nil {
			return false
		}
		// After convergence every point's assigned centroid must be (one
		// of) the nearest.
		for i, x := range data {
			got := x.EuclideanDistance(res.Centroids[res.Assignment[i]])
			for _, c := range res.Centroids {
				if x.EuclideanDistance(c) < got-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInertiaNonIncreasingInK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := blobs(rng, 3, 20)
	prev := -1.0
	for k := 1; k <= 4; k++ {
		res, err := KMeans(data, Options{K: k, Seed: 5, MaxIterations: 100})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && res.Inertia > prev*1.05 {
			t.Errorf("inertia rose sharply from k=%d (%v) to k=%d (%v)", k-1, prev, k, res.Inertia)
		}
		prev = res.Inertia
	}
}
