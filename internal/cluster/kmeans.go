// Package cluster implements k-means clustering with k-means++ seeding.
// PACE peers cluster their local training documents and ship the resulting
// centroids alongside their linear models; remote peers use the centroids to
// select which models are "near" a test document.
package cluster

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/vector"
)

// ErrNoData is returned when clustering is attempted on an empty set.
var ErrNoData = errors.New("cluster: no data")

// Options configures KMeans.
type Options struct {
	// K is the number of clusters; it is clamped to len(data).
	K int
	// MaxIterations bounds Lloyd iterations; default 50.
	MaxIterations int
	// Tol stops early when no centroid moves more than this; default 1e-6.
	Tol float64
	// Seed drives k-means++ seeding.
	Seed int64
}

// Result holds the output of a k-means run.
type Result struct {
	Centroids  []*vector.Sparse
	Assignment []int // Assignment[i] = centroid index of data[i]
	Inertia    float64
	Iterations int
}

// KMeans clusters data into at most opts.K groups using k-means++ seeding
// followed by Lloyd iterations.
func KMeans(data []*vector.Sparse, opts Options) (*Result, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	k := opts.K
	if k <= 0 {
		k = 1
	}
	if k > len(data) {
		k = len(data)
	}
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 50
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-6
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	centroids := seedPlusPlus(data, k, rng)
	assign := make([]int, len(data))
	res := &Result{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		inertia := 0.0
		for i, x := range data {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				d := x.EuclideanDistance(cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			inertia += bestD * bestD
		}
		res.Inertia = inertia
		// Update step.
		groups := make([][]*vector.Sparse, len(centroids))
		for i, x := range data {
			groups[assign[i]] = append(groups[assign[i]], x)
		}
		moved := 0.0
		for c := range centroids {
			if len(groups[c]) == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to avoid dead clusters.
				far, farD := 0, -1.0
				for i, x := range data {
					d := x.EuclideanDistance(centroids[assign[i]])
					if d > farD {
						far, farD = i, d
					}
				}
				groups[c] = []*vector.Sparse{data[far]}
			}
			next := vector.Mean(groups[c])
			moved = math.Max(moved, next.EuclideanDistance(centroids[c]))
			centroids[c] = next
		}
		if moved <= tol {
			break
		}
	}
	res.Centroids = centroids
	res.Assignment = assign
	return res, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(data []*vector.Sparse, k int, rng *rand.Rand) []*vector.Sparse {
	centroids := make([]*vector.Sparse, 0, k)
	centroids = append(centroids, data[rng.Intn(len(data))].Clone())
	d2 := make([]float64, len(data))
	for len(centroids) < k {
		total := 0.0
		last := centroids[len(centroids)-1]
		for i, x := range data {
			d := x.EuclideanDistance(last)
			if len(centroids) == 1 || d*d < d2[i] {
				d2[i] = d * d
			}
			total += d2[i]
		}
		if total == 0 {
			// All remaining points coincide with chosen centroids.
			centroids = append(centroids, data[rng.Intn(len(data))].Clone())
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, w := range d2 {
			r -= w
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, data[idx].Clone())
	}
	return centroids
}

// Nearest returns the index of the centroid closest to x (Euclidean), or -1
// for an empty centroid list.
func Nearest(centroids []*vector.Sparse, x *vector.Sparse) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range centroids {
		if d := x.EuclideanDistance(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
