package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewSortsAndMerges(t *testing.T) {
	v, err := New([]int32{5, 1, 5, 3}, []float64{2, 1, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{1, 1}, {5, 5}}
	got := v.Entries()
	if len(got) != len(want) {
		t.Fatalf("entries = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New([]int32{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths: want error")
	}
	if _, err := New([]int32{-1}, []float64{1}); err == nil {
		t.Error("negative index: want error")
	}
}

func TestFromEntriesValidation(t *testing.T) {
	if _, err := FromEntries([]Entry{{3, 1}, {1, 2}}); err == nil {
		t.Error("unsorted entries: want error")
	}
	if _, err := FromEntries([]Entry{{2, 1}, {2, 2}}); err == nil {
		t.Error("duplicate index: want error")
	}
	if _, err := FromEntries([]Entry{{-2, 1}}); err == nil {
		t.Error("negative index: want error")
	}
	v, err := FromEntries([]Entry{{0, 1}, {7, -2}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestAt(t *testing.T) {
	v := FromMap(map[int32]float64{2: 1.5, 9: -3})
	if got := v.At(2); got != 1.5 {
		t.Errorf("At(2) = %v, want 1.5", got)
	}
	if got := v.At(3); got != 0 {
		t.Errorf("At(3) = %v, want 0", got)
	}
	if got := v.At(9); got != -3 {
		t.Errorf("At(9) = %v, want -3", got)
	}
}

func TestDot(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1, 2: 2, 4: 3})
	b := FromMap(map[int32]float64{2: 5, 3: 7, 4: -1})
	if got := a.Dot(b); !almostEqual(got, 2*5+3*-1) {
		t.Errorf("Dot = %v, want 7", got)
	}
	if got := a.Dot(Zero()); got != 0 {
		t.Errorf("Dot with zero = %v, want 0", got)
	}
}

func TestDotDenseAndAddDense(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2, 3: 4})
	w := []float64{0, 10, 0, 100}
	if got := a.DotDense(w); !almostEqual(got, 2*10+4*100) {
		t.Errorf("DotDense = %v, want 420", got)
	}
	// Indices beyond the dense slice are treated as zero weight.
	short := []float64{0, 10}
	if got := a.DotDense(short); !almostEqual(got, 20) {
		t.Errorf("DotDense short = %v, want 20", got)
	}
	buf := make([]float64, 4)
	a.AddDense(buf, 0.5)
	if buf[1] != 1 || buf[3] != 2 {
		t.Errorf("AddDense result = %v", buf)
	}
}

func TestAxpyAddSub(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1, 2: 2})
	b := FromMap(map[int32]float64{2: 2, 5: 3})
	sum := a.Add(b)
	if got := sum.At(2); got != 4 {
		t.Errorf("Add At(2) = %v, want 4", got)
	}
	diff := a.Sub(b)
	if got := diff.At(2); got != 0 {
		t.Errorf("Sub At(2) = %v, want 0 (cancel)", got)
	}
	if diff.At(5) != -3 || diff.At(0) != 1 {
		t.Errorf("Sub = %v", diff)
	}
	// Exact cancellation must not leave explicit zeros.
	for _, e := range diff.Entries() {
		if e.Value == 0 {
			t.Errorf("explicit zero entry at %d", e.Index)
		}
	}
}

func TestNormalizeAndCosine(t *testing.T) {
	a := FromMap(map[int32]float64{0: 3, 1: 4})
	n := a.Normalize()
	if !almostEqual(n.Norm(), 1) {
		t.Errorf("normalized norm = %v", n.Norm())
	}
	if !almostEqual(a.Cosine(a), 1) {
		t.Errorf("self cosine = %v, want 1", a.Cosine(a))
	}
	orth := FromMap(map[int32]float64{2: 1})
	if got := a.Cosine(orth); got != 0 {
		t.Errorf("orthogonal cosine = %v, want 0", got)
	}
	if got := Zero().Cosine(a); got != 0 {
		t.Errorf("zero cosine = %v, want 0", got)
	}
}

func TestEuclideanDistance(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1})
	b := FromMap(map[int32]float64{1: 1})
	if got := a.EuclideanDistance(b); !almostEqual(got, math.Sqrt2) {
		t.Errorf("distance = %v, want sqrt(2)", got)
	}
	if got := a.EuclideanDistance(a); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestMean(t *testing.T) {
	a := FromMap(map[int32]float64{0: 2})
	b := FromMap(map[int32]float64{0: 4, 1: 2})
	m := Mean([]*Sparse{a, b})
	if !almostEqual(m.At(0), 3) || !almostEqual(m.At(1), 1) {
		t.Errorf("mean = %v", m)
	}
	if Mean(nil).Len() != 0 {
		t.Error("mean of empty set should be zero vector")
	}
}

func TestScale(t *testing.T) {
	a := FromMap(map[int32]float64{0: 2, 3: -1})
	if got := a.Scale(0); got.Len() != 0 {
		t.Errorf("scale by 0 = %v, want empty", got)
	}
	s := a.Scale(-2)
	if s.At(0) != -4 || s.At(3) != 2 {
		t.Errorf("scale = %v", s)
	}
	// Original untouched.
	if a.At(0) != 2 {
		t.Error("Scale mutated receiver")
	}
}

func TestWireSize(t *testing.T) {
	a := FromMap(map[int32]float64{0: 1, 1: 1, 2: 1})
	if got := a.WireSize(); got != 4+36 {
		t.Errorf("WireSize = %d, want 40", got)
	}
}

func TestStringAndEqualAndClone(t *testing.T) {
	a := FromMap(map[int32]float64{1: 2})
	if a.String() != "{1:2}" {
		t.Errorf("String = %q", a.String())
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone not equal")
	}
	c.entries[0].Value = 9
	if a.Equal(c) {
		t.Error("clone aliases original storage")
	}
	if a.Equal(Zero()) {
		t.Error("non-empty equals empty")
	}
}

func TestMaxIndex(t *testing.T) {
	if Zero().MaxIndex() != -1 {
		t.Error("empty MaxIndex should be -1")
	}
	a := FromMap(map[int32]float64{3: 1, 17: 2})
	if a.MaxIndex() != 17 {
		t.Errorf("MaxIndex = %d", a.MaxIndex())
	}
}

// randSparse builds a random sparse vector for property tests.
func randSparse(r *rand.Rand) *Sparse {
	n := r.Intn(20)
	m := make(map[int32]float64, n)
	for i := 0; i < n; i++ {
		m[int32(r.Intn(50))] = r.NormFloat64()
	}
	return FromMap(m)
}

func TestPropertyDotSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed ^ r.Int63()))
		a, b := randSparse(rr), randSparse(rr)
		return almostEqual(a.Dot(b), b.Dot(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyAxpyLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randSparse(rr), randSparse(rr), randSparse(rr)
		alpha := rr.NormFloat64()
		// <a+alpha*b, c> == <a,c> + alpha*<b,c>
		lhs := a.Axpy(alpha, b).Dot(c)
		rhs := a.Dot(c) + alpha*b.Dot(c)
		return math.Abs(lhs-rhs) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b, c := randSparse(rr), randSparse(rr), randSparse(rr)
		return a.EuclideanDistance(c) <= a.EuclideanDistance(b)+b.EuclideanDistance(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyEntriesSortedInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randSparse(rr), randSparse(rr)
		for _, v := range []*Sparse{a.Add(b), a.Sub(b), a.Scale(2), a.Normalize()} {
			es := v.Entries()
			for i := 1; i < len(es); i++ {
				if es[i].Index <= es[i-1].Index {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDot(b *testing.B) {
	rr := rand.New(rand.NewSource(42))
	m1, m2 := map[int32]float64{}, map[int32]float64{}
	for i := 0; i < 500; i++ {
		m1[int32(rr.Intn(10000))] = rr.NormFloat64()
		m2[int32(rr.Intn(10000))] = rr.NormFloat64()
	}
	v1, v2 := FromMap(m1), FromMap(m2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v1.Dot(v2)
	}
}
