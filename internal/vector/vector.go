// Package vector implements sparse feature vectors used throughout the
// tagging pipeline: documents, SVM weight vectors and cluster centroids are
// all Sparse values. Entries are kept sorted by feature id so that dot
// products, merges and serialization are deterministic and linear-time.
package vector

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Entry is a single (feature id, weight) pair of a sparse vector.
type Entry struct {
	Index int32
	Value float64
}

// Sparse is a sparse vector: a slice of entries sorted by ascending Index
// with no duplicate indices and (by convention) no explicit zeros. The zero
// value is an empty vector ready to use.
type Sparse struct {
	entries []Entry
}

// New returns a sparse vector built from parallel index/value slices.
// Duplicate indices are summed; zero values are dropped.
func New(indices []int32, values []float64) (*Sparse, error) {
	if len(indices) != len(values) {
		return nil, fmt.Errorf("vector: %d indices but %d values", len(indices), len(values))
	}
	m := make(map[int32]float64, len(indices))
	for i, idx := range indices {
		if idx < 0 {
			return nil, fmt.Errorf("vector: negative feature index %d", idx)
		}
		m[idx] += values[i]
	}
	return FromMap(m), nil
}

// FromMap returns a sparse vector with the non-zero entries of m.
func FromMap(m map[int32]float64) *Sparse {
	s := &Sparse{entries: make([]Entry, 0, len(m))}
	for idx, v := range m {
		if v != 0 {
			s.entries = append(s.entries, Entry{idx, v})
		}
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].Index < s.entries[j].Index })
	return s
}

// FromEntries returns a sparse vector from entries that must already be
// sorted by ascending index with no duplicates. It takes ownership of the
// slice. This is the fast path used by deserialization.
func FromEntries(entries []Entry) (*Sparse, error) {
	for i := 1; i < len(entries); i++ {
		if entries[i].Index <= entries[i-1].Index {
			return nil, fmt.Errorf("vector: entries not strictly sorted at position %d", i)
		}
	}
	if len(entries) > 0 && entries[0].Index < 0 {
		return nil, fmt.Errorf("vector: negative feature index %d", entries[0].Index)
	}
	return &Sparse{entries: entries}, nil
}

// Zero returns an empty sparse vector.
func Zero() *Sparse { return &Sparse{} }

// Borrow wraps entries — already sorted by ascending index with no
// duplicates, which is NOT validated — as a Sparse value without copying.
// It exists for the streaming score path, where entries live in pooled
// scratch: the view (and anything aliasing it) must not outlive the
// entries it borrows, so it is returned by value for callers to place on
// their own stack and never retain.
func Borrow(entries []Entry) Sparse { return Sparse{entries: entries} }

// Len reports the number of stored (non-zero) entries.
func (s *Sparse) Len() int { return len(s.entries) }

// Entries exposes the underlying sorted entries. Callers must not modify
// the returned slice.
func (s *Sparse) Entries() []Entry { return s.entries }

// MaxIndex returns the largest feature id present, or -1 for an empty vector.
func (s *Sparse) MaxIndex() int32 {
	if len(s.entries) == 0 {
		return -1
	}
	return s.entries[len(s.entries)-1].Index
}

// At returns the value stored at feature id idx (0 when absent).
func (s *Sparse) At(idx int32) float64 {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Index >= idx })
	if i < len(s.entries) && s.entries[i].Index == idx {
		return s.entries[i].Value
	}
	return 0
}

// Clone returns a deep copy.
func (s *Sparse) Clone() *Sparse {
	e := make([]Entry, len(s.entries))
	copy(e, s.entries)
	return &Sparse{entries: e}
}

// Dot returns the inner product <s, t>.
func (s *Sparse) Dot(t *Sparse) float64 {
	var sum float64
	a, b := s.entries, t.entries
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Index == b[j].Index:
			sum += a[i].Value * b[j].Value
			i++
			j++
		case a[i].Index < b[j].Index:
			i++
		default:
			j++
		}
	}
	return sum
}

// DotDense returns the inner product of s with a dense weight slice w,
// treating out-of-range indices as zero weight.
func (s *Sparse) DotDense(w []float64) float64 {
	var sum float64
	for _, e := range s.entries {
		if int(e.Index) < len(w) {
			sum += e.Value * w[e.Index]
		}
	}
	return sum
}

// AddDense accumulates alpha*s into the dense slice w, which must be long
// enough to hold MaxIndex()+1 entries.
func (s *Sparse) AddDense(w []float64, alpha float64) {
	for _, e := range s.entries {
		w[e.Index] += alpha * e.Value
	}
}

// Norm returns the Euclidean norm.
func (s *Sparse) Norm() float64 {
	var sum float64
	for _, e := range s.entries {
		sum += e.Value * e.Value
	}
	return math.Sqrt(sum)
}

// SquaredNorm returns the squared Euclidean norm.
func (s *Sparse) SquaredNorm() float64 {
	var sum float64
	for _, e := range s.entries {
		sum += e.Value * e.Value
	}
	return sum
}

// Scale returns a new vector alpha*s. Scaling by zero yields an empty vector.
func (s *Sparse) Scale(alpha float64) *Sparse {
	if alpha == 0 {
		return Zero()
	}
	out := s.Clone()
	for i := range out.entries {
		out.entries[i].Value *= alpha
	}
	return out
}

// Add returns s + t as a new vector.
func (s *Sparse) Add(t *Sparse) *Sparse { return s.Axpy(1, t) }

// Sub returns s - t as a new vector.
func (s *Sparse) Sub(t *Sparse) *Sparse { return s.Axpy(-1, t) }

// Axpy returns s + alpha*t as a new vector, dropping entries that cancel to
// exactly zero.
func (s *Sparse) Axpy(alpha float64, t *Sparse) *Sparse {
	a, b := s.entries, t.entries
	out := make([]Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Index < b[j].Index):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j].Index < a[i].Index:
			if v := alpha * b[j].Value; v != 0 {
				out = append(out, Entry{b[j].Index, v})
			}
			j++
		default:
			if v := a[i].Value + alpha*b[j].Value; v != 0 {
				out = append(out, Entry{a[i].Index, v})
			}
			i++
			j++
		}
	}
	return &Sparse{entries: out}
}

// Normalize returns s scaled to unit Euclidean norm; the empty vector
// normalizes to itself.
func (s *Sparse) Normalize() *Sparse {
	n := s.Norm()
	if n == 0 {
		return Zero()
	}
	return s.Scale(1 / n)
}

// Cosine returns the cosine similarity of s and t in [-1, 1]; it is 0 when
// either vector is empty.
func (s *Sparse) Cosine(t *Sparse) float64 {
	ns, nt := s.Norm(), t.Norm()
	if ns == 0 || nt == 0 {
		return 0
	}
	c := s.Dot(t) / (ns * nt)
	// Clamp rounding noise so downstream acos/threshold logic is safe.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// EuclideanDistance returns ||s - t||.
func (s *Sparse) EuclideanDistance(t *Sparse) float64 {
	d2 := s.SquaredNorm() + t.SquaredNorm() - 2*s.Dot(t)
	if d2 < 0 {
		d2 = 0 // rounding
	}
	return math.Sqrt(d2)
}

// Equal reports whether s and t store identical entries.
func (s *Sparse) Equal(t *Sparse) bool {
	if len(s.entries) != len(t.entries) {
		return false
	}
	for i := range s.entries {
		if s.entries[i] != t.entries[i] {
			return false
		}
	}
	return true
}

// WireSize returns the number of bytes this vector occupies in the
// simulator's serialized form (4-byte index + 8-byte value per entry plus a
// 4-byte length header). The network simulator charges this amount.
func (s *Sparse) WireSize() int { return 4 + 12*len(s.entries) }

// String renders the vector as "{idx:val, ...}" for debugging.
func (s *Sparse) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range s.entries {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", e.Index, e.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Mean returns the centroid (arithmetic mean) of vs; the mean of an empty
// set is the zero vector.
func Mean(vs []*Sparse) *Sparse {
	if len(vs) == 0 {
		return Zero()
	}
	acc := map[int32]float64{}
	for _, v := range vs {
		for _, e := range v.entries {
			acc[e.Index] += e.Value
		}
	}
	inv := 1 / float64(len(vs))
	for k := range acc {
		acc[k] *= inv
	}
	return FromMap(acc)
}
