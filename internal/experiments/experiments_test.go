package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// All experiment functions run at QuickScale in tests; the committed
// EXPERIMENTS.md numbers come from DefaultScale (see cmd/experiments).

func TestE1Shape(t *testing.T) {
	tbl, err := E1AccuracyVsPeers(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Shape assertion: centralized beats local-only at the largest N.
	var central, local float64
	for _, row := range tbl.Rows {
		switch row[1] {
		case "Centralized":
			central = parseF(t, row[2])
		case "Local-only":
			local = parseF(t, row[2])
		}
	}
	if central <= local {
		t.Errorf("centralized (%v) should beat local (%v)", central, local)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	if _, err := fmtSscan(s, &f); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return f
}

func TestE2Shape(t *testing.T) {
	tbl, err := E2CommunicationCost(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// PACE rows must report zero query bytes.
	for _, row := range tbl.Rows {
		if row[1] == "PACE" && row[6] != "0B" {
			t.Errorf("PACE query bytes = %v, want 0B", row[6])
		}
	}
}

func TestE3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full training-fraction sweep; run without -short")
	}
	tbl, err := E3TrainingFraction(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// CEMPaR accuracy at 40% labels should beat its accuracy at 5%.
	var low, high float64
	for _, row := range tbl.Rows {
		if row[1] != "CEMPaR" {
			continue
		}
		switch row[0] {
		case "0.0500":
			low = parseF(t, row[2])
		case "0.4000":
			high = parseF(t, row[2])
		}
	}
	if high <= low {
		t.Errorf("more labels should help: 5%%=%v 40%%=%v", low, high)
	}
}

func TestE4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full churn sweep; run without -short")
	}
	tbl, err := E4Churn(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// PACE must fail no issued queries at any churn level.
	for _, row := range tbl.Rows {
		if row[1] == "PACE" && row[3] != "0" {
			t.Errorf("PACE failed queries = %v at churn %v", row[3], row[0])
		}
	}
}

func TestE5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("full size-skew sweep; run without -short")
	}
	tbl, err := E5SizeSkew(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestE6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full class-skew sweep; run without -short")
	}
	tbl, err := E6ClassSkew(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Local-only improves (or holds) as users specialize.
	var diffuse, focused float64
	for _, row := range tbl.Rows {
		if row[1] != "Local-only" {
			continue
		}
		switch row[0] {
		case "10.0000":
			diffuse = parseF(t, row[2])
		case "0.3000":
			focused = parseF(t, row[2])
		}
	}
	if focused < diffuse-0.1 {
		t.Errorf("specialized users should not hurt local-only: diffuse=%v focused=%v", diffuse, focused)
	}
}

func TestE7Shape(t *testing.T) {
	tbl, err := E7Topology(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Flood coverage must be complete; gossip cheaper than flood.
	var floodMsgs, gossipMsgs float64
	for _, row := range tbl.Rows {
		if row[2] == "flood" {
			floodMsgs = parseF(t, row[3])
			if !strings.HasPrefix(row[4], row[0]+"/") {
				t.Errorf("flood coverage incomplete: %v", row)
			}
		}
		if row[2] == "gossip" {
			gossipMsgs = parseF(t, row[3])
		}
	}
	if gossipMsgs >= floodMsgs {
		t.Errorf("gossip (%v) should cost less than flood (%v)", gossipMsgs, floodMsgs)
	}
}

func TestE8Runs(t *testing.T) {
	tbl, err := E8PaceTopK(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 10 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestE9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full threshold sweep; run without -short")
	}
	tbl, err := E9ConfidenceSlider(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	// Precision must not decrease as the threshold rises; recall must not
	// increase. Allow small non-monotonic noise.
	var prevP, prevR float64 = -1, 2
	for _, row := range tbl.Rows {
		p, r := parseF(t, row[3]), parseF(t, row[4])
		if p < prevP-0.1 {
			t.Errorf("precision dropped sharply at threshold %v", row[0])
		}
		if r > prevR+0.1 {
			t.Errorf("recall rose sharply at threshold %v", row[0])
		}
		prevP, prevR = p, r
	}
}

func TestE10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full refinement sweep; run without -short")
	}
	tbl, err := E10Refinement(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tbl.Rows[0][2])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][2])
	if last < first {
		t.Errorf("refinement should not hurt: rounds0=%v rounds4=%v", first, last)
	}
}

func TestF4Runs(t *testing.T) {
	tbl, rendering, err := F4TagCloud(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	if !strings.Contains(rendering, "tag cloud") {
		t.Error("cloud rendering missing")
	}
}

// fmtSscan avoids importing fmt at top level solely for tests.
func fmtSscan(s string, f *float64) (int, error) { return fmt.Sscan(s, f) }
