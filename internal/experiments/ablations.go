package experiments

import (
	"fmt"

	"repro/internal/cempar"
	"repro/internal/p2pdmt"
	"repro/internal/pace"
	"repro/internal/textproc"
)

// A1CEMPaRAblations isolates CEMPaR's design choices: weighted vs
// unweighted regional voting, querying all regions vs only the peer's own,
// region count, and cascade fan-in. Expected shape: all-region weighted
// voting with few large regions wins; fan-in mainly trades merge depth for
// accuracy-neutral compute.
func A1CEMPaRAblations(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("A1: CEMPaR design ablations",
		"variant", "microF1", "precision", "recall", "queryBytes/query")
	n := midPeers(sc, 32)
	variants := []struct {
		name string
		cfg  cempar.Config
	}{
		{"base (R=4, weighted, all-regions)", cempar.Config{Regions: 4, Weighted: true}},
		{"unweighted voting", cempar.Config{Regions: 4, Weighted: false}},
		{"own-region queries", cempar.Config{Regions: 4, Weighted: true, OwnRegionOnly: true}},
		{"regions=2", cempar.Config{Regions: 2, Weighted: true}},
		{"regions=8", cempar.Config{Regions: 8, Weighted: true}},
		{"fan-in=2", cempar.Config{Regions: 4, Weighted: true, CascadeFanIn: 2}},
		{"fan-in=8", cempar.Config{Regions: 4, Weighted: true, CascadeFanIn: 8}},
	}
	var jobs []cellJob
	for _, v := range variants {
		jobs = append(jobs, func() ([][]any, error) {
			cfg := baseConfig(p2pdmt.ProtoCEMPaR, n, sc, "A1", v.name)
			cfg.CEMPaR = v.cfg
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("A1 %s: %w", v.name, err)
			}
			perQuery := int64(0)
			if res.TotalQueries > 0 {
				perQuery = res.QueryCost.Bytes / int64(res.TotalQueries)
			}
			return [][]any{{v.name, res.Eval.MicroF1(), res.Eval.MicroPrecision(),
				res.Eval.MicroRecall(), perQuery}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}

// A2Weighting compares term-weighting schemes in the preprocessing stage.
// Expected shape: all three work; TF-IDF helps precision slightly on
// Zipf-skewed vocabularies.
func A2Weighting(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("A2: term-weighting ablation (CEMPaR)",
		"weighting", "microF1", "precision", "recall")
	n := midPeers(sc, 16)
	var jobs []cellJob
	for _, w := range []textproc.Weighting{
		textproc.TermFrequency, textproc.LogTF, textproc.TFIDF,
	} {
		jobs = append(jobs, func() ([][]any, error) {
			cfg := baseConfig(p2pdmt.ProtoCEMPaR, n, sc, "A2", w.String())
			cfg.Weighting = w
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("A2 %s: %w", w, err)
			}
			return [][]any{{w.String(), res.Eval.MicroF1(), res.Eval.MicroPrecision(),
				res.Eval.MicroRecall()}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}

// A3DropRate injects random message loss — the failure mode the paper's
// "realistic P2P environments" phrase implies beyond churn. Expected
// shape: CEMPaR degrades gracefully (lost model uploads shrink the
// cascade; lost queries time out), PACE tolerates loss during training
// (peers just know fewer models).
func A3DropRate(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("A3: random message loss",
		"dropRate", "protocol", "answered", "failed", "microF1")
	n := midPeers(sc, 32)
	var jobs []cellJob
	for _, drop := range []float64{0, 0.05, 0.15, 0.3} {
		for _, proto := range []p2pdmt.ProtocolKind{p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR} {
			jobs = append(jobs, func() ([][]any, error) {
				cfg := baseConfig(proto, n, sc, "A3", string(proto), fmt.Sprint(drop))
				cfg.DropRate = drop
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("A3 %s drop=%v: %w", proto, drop, err)
				}
				return [][]any{{drop, res.Protocol, res.TotalQueries - res.FailedQueries,
					res.FailedQueries, res.Eval.MicroF1()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// A4Privacy sweeps PACE's model-perturbation noise — the pluggable privacy
// slot of §2 ("if we deploy a privacy preserving P2P classification
// algorithm, P2PDocTagger will then inherit the privacy preserving
// property"). Expected shape: the classic privacy-utility trade-off —
// mild noise costs little accuracy, heavy noise approaches chance.
func A4Privacy(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("A4: PACE privacy noise (privacy-utility trade-off)",
		"noiseScale", "microF1", "precision", "recall")
	n := midPeers(sc, 16)
	var jobs []cellJob
	for _, noise := range []float64{0, 0.1, 0.3, 1.0, 3.0} {
		jobs = append(jobs, func() ([][]any, error) {
			cfg := baseConfig(p2pdmt.ProtoPACE, n, sc, "A4", fmt.Sprint(noise))
			cfg.PACE = pace.Config{TopK: 5, NoiseScale: noise}
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("A4 noise=%v: %w", noise, err)
			}
			return [][]any{{noise, res.Eval.MicroF1(), res.Eval.MicroPrecision(),
				res.Eval.MicroRecall()}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}
