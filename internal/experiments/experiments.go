// Package experiments regenerates every evaluation scenario of the paper's
// demonstration section (§3) as a parameter sweep over the P2PDMT toolkit.
// Each function returns the result table the demo would have produced; the
// root bench_test.go exposes one benchmark per experiment and
// cmd/experiments regenerates EXPERIMENTS.md from the same code.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cempar"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/p2pdmt"
	"repro/internal/pace"
	"repro/internal/simnet"
)

// Scale trades experiment size for wall time: 1 = the sizes used in
// EXPERIMENTS.md; smaller values shrink sweeps for quick checks.
type Scale struct {
	// MaxPeers caps network sizes in sweeps.
	MaxPeers int
	// EvalDocs caps scored test documents per run.
	EvalDocs int
}

// DefaultScale reproduces the committed EXPERIMENTS.md numbers.
func DefaultScale() Scale { return Scale{MaxPeers: 64, EvalDocs: 50} }

// QuickScale is a fast smoke-test scale for CI.
func QuickScale() Scale { return Scale{MaxPeers: 16, EvalDocs: 20} }

const seed = 42

func baseConfig(proto p2pdmt.ProtocolKind, peers int, sc Scale) p2pdmt.Config {
	return p2pdmt.Config{
		Peers:    peers,
		Protocol: proto,
		EvalDocs: sc.EvalDocs,
		Seed:     seed,
	}
}

var allProtocols = []p2pdmt.ProtocolKind{
	p2pdmt.ProtoLocal, p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
}

func peerSweep(sc Scale) []int {
	all := []int{8, 16, 32, 64, 128, 256, 512}
	var out []int
	for _, n := range all {
		if n <= sc.MaxPeers {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{8}
	}
	return out
}

// E1AccuracyVsPeers sweeps network size for every protocol: the demo's
// ">500 peers" scaling scenario. Expected shape: CEMPaR tracks the
// centralized ceiling, PACE sits between centralized and local-only, and
// accuracy does not degrade as N grows.
func E1AccuracyVsPeers(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E1: tagging accuracy vs network size",
		"peers", "protocol", "microF1", "macroF1", "precision", "recall", "P@1")
	for _, n := range peerSweep(sc) {
		for _, proto := range allProtocols {
			res, err := p2pdmt.Run(baseConfig(proto, n, sc))
			if err != nil {
				return nil, fmt.Errorf("E1 %s N=%d: %w", proto, n, err)
			}
			tbl.AddRow(n, res.Protocol, res.Eval.MicroF1(), res.Eval.MacroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall(), res.MeanP1)
		}
	}
	return tbl, nil
}

// E2CommunicationCost sweeps network size and reports the traffic of the
// training and query phases. Expected shape: centralized training ships all
// raw documents to one coordinator (hotspot); CEMPaR ships each peer's
// support vectors once; PACE pays an O(N^2) model broadcast but zero bytes
// per query.
func E2CommunicationCost(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E2: communication cost vs network size",
		"peers", "protocol", "trainMsgs", "trainBytes", "trainBytes/peer",
		"queryMsgs", "queryBytes/query")
	for _, n := range peerSweep(sc) {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			res, err := p2pdmt.Run(baseConfig(proto, n, sc))
			if err != nil {
				return nil, fmt.Errorf("E2 %s N=%d: %w", proto, n, err)
			}
			perQuery := float64(0)
			if res.TotalQueries > 0 {
				perQuery = float64(res.QueryCost.Bytes) / float64(res.TotalQueries)
			}
			tbl.AddRow(n, res.Protocol, res.TrainCost.Messages,
				metrics.FormatBytes(res.TrainCost.Bytes),
				metrics.FormatBytes(int64(res.TrainCost.BytesPerPeer())),
				res.QueryCost.Messages, metrics.FormatBytes(int64(perQuery)))
		}
	}
	return tbl, nil
}

// E3TrainingFraction sweeps the labeled fraction around the demo's 20%
// split. Expected shape: accuracy rises with more labels and the
// collaborative protocols benefit more steeply than local-only (they pool
// everyone's labels).
func E3TrainingFraction(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E3: accuracy vs training fraction (demo used 20%)",
		"trainFrac", "protocol", "microF1", "precision", "recall")
	n := 32
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoLocal, p2pdmt.ProtoCentralized, p2pdmt.ProtoCEMPaR,
		} {
			cfg := baseConfig(proto, n, sc)
			cfg.TrainFrac = frac
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E3 %s frac=%v: %w", proto, frac, err)
			}
			tbl.AddRow(frac, res.Protocol, res.Eval.MicroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall())
		}
	}
	return tbl, nil
}

// E4Churn sweeps churn intensity (the demo's "churn/attrition rate"
// scenario). Expected shape: the centralized tagger fails whenever its
// coordinator is down (single point of failure); CEMPaR keeps answering
// after re-stabilization; PACE never fails an issued query because
// prediction is local.
func E4Churn(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E4: fault tolerance under churn",
		"meanUptime", "protocol", "answered", "failed", "skippedOffline", "microF1")
	n := 32
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	levels := []struct {
		name string
		mdl  simnet.SessionModel
	}{
		{"none", nil},
		{"10m", simnet.ExponentialChurn{MeanUptime: 10 * time.Minute, MeanDowntime: time.Minute}},
		{"4m", simnet.ExponentialChurn{MeanUptime: 4 * time.Minute, MeanDowntime: time.Minute}},
		{"2m", simnet.ExponentialChurn{MeanUptime: 2 * time.Minute, MeanDowntime: time.Minute}},
	}
	for _, lvl := range levels {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			cfg := baseConfig(proto, n, sc)
			cfg.Churn = lvl.mdl
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E4 %s churn=%s: %w", proto, lvl.name, err)
			}
			answered := res.TotalQueries - res.FailedQueries
			tbl.AddRow(lvl.name, res.Protocol, answered, res.FailedQueries,
				res.SkippedOffline, res.Eval.MicroF1())
		}
	}
	return tbl, nil
}

// E5SizeSkew sweeps the Zipf exponent of per-peer collection sizes (the
// demo's "size distribution of training data" scenario). Expected shape:
// collaborative protocols degrade gracefully as data concentrates on few
// peers, because pooled knowledge still reaches everyone.
func E5SizeSkew(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E5: accuracy vs per-peer data-size skew (Zipf)",
		"zipf", "protocol", "microF1", "precision", "recall")
	n := 32
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			cfg := baseConfig(proto, n, sc)
			cfg.Distribution = p2pdmt.Distribution{SizeZipf: z, Seed: seed + 5}
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E5 %s zipf=%v: %w", proto, z, err)
			}
			tbl.AddRow(z, res.Protocol, res.Eval.MicroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall())
		}
	}
	return tbl, nil
}

// E6ClassSkew sweeps per-user tag concentration (the demo's "class
// distribution" scenario). Measured shape (documented in EXPERIMENTS.md):
// as users specialize, local-only models improve — personal tag habits are
// easy to learn — while pooled global models suffer from conflicting
// contexts; this is precisely the conflict the paper's tag-refinement loop
// exists to resolve.
func E6ClassSkew(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E6: accuracy vs per-user class skew",
		"userBias", "protocol", "microF1", "precision", "recall")
	n := 16
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	for _, bias := range []float64{10, 1, 0.3} {
		for _, proto := range allProtocols {
			cfg := baseConfig(proto, n, sc)
			cfg.Corpus = dataset.DefaultConfig()
			cfg.Corpus.DocsPerUserMin = 40
			cfg.Corpus.DocsPerUserMax = 80
			cfg.Corpus.UserBias = bias
			cfg.Corpus.Seed = seed + 101
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E6 %s bias=%v: %w", proto, bias, err)
			}
			tbl.AddRow(bias, res.Protocol, res.Eval.MicroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall())
		}
	}
	return tbl, nil
}

// E7Topology compares the structured (DHT) and unstructured overlays on
// the two network primitives P2PDocTagger needs: disseminating a model to
// every peer and locating a specific peer (super-peer lookup). Expected
// shape: flooding reaches everyone at O(edges) messages, gossip is cheaper
// but probabilistic, and DHT lookups cost O(log N) messages.
func E7Topology(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E7: structured vs unstructured overlay primitives",
		"peers", "primitive", "mechanism", "messages", "coverage/hops")
	for _, n := range peerSweep(sc) {
		// Dissemination: flooding vs gossip on a random graph.
		for _, mode := range []string{"flood", "gossip"} {
			net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(20 * time.Millisecond), Seed: seed})
			ids := make([]simnet.NodeID, n)
			for i := range ids {
				ids[i] = simnet.NodeID(i)
			}
			ov := overlay.New(net, ids, nil, overlay.Options{Degree: 6, Seed: seed})
			if mode == "flood" {
				ov.Flood(0, "model", 1000, nil, 64)
			} else {
				ov.Gossip(0, "model", 1000, nil, 2)
			}
			net.Run(0)
			cov := ov.Coverage(ov.LastBroadcastID())
			tbl.AddRow(n, "disseminate", mode, net.Stats().MessagesSent,
				fmt.Sprintf("%d/%d peers", cov, n))
		}
		// Locate: DHT routed lookup.
		{
			net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(20 * time.Millisecond), Seed: seed})
			ids := make([]simnet.NodeID, n)
			for i := range ids {
				ids[i] = simnet.NodeID(i)
			}
			ring := newDHT(net, ids)
			net.Run(0)
			net.ResetStats()
			totalHops, lookups := 0, 20
			for q := 0; q < lookups; q++ {
				key := fmt.Sprintf("key-%d", q)
				_ = ring.lookup(simnet.NodeID(q%n), key, &totalHops)
			}
			net.Run(0)
			tbl.AddRow(n, "locate", "dht",
				net.Stats().MessagesSent/int64(lookups),
				fmt.Sprintf("%.1f hops avg", float64(totalHops)/float64(lookups)))
		}
	}
	return tbl, nil
}

// E8PaceTopK sweeps PACE's ensemble size and retrieval mechanism (LSH vs
// exact scan) — the top-k design choice of §2. Expected shape: small k
// wins (nearest models are the adapted ones); LSH matches the exact scan's
// accuracy while examining a fraction of the centroids.
func E8PaceTopK(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E8: PACE top-k model retrieval",
		"topK", "retrieval", "microF1", "precision", "recall")
	n := 16
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	for _, k := range []int{1, 3, 5, 8, 16} {
		for _, scan := range []bool{false, true} {
			cfg := baseConfig(p2pdmt.ProtoPACE, n, sc)
			cfg.PACE = pace.Config{TopK: k, DisableLSH: scan}
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E8 k=%d scan=%v: %w", k, scan, err)
			}
			mode := "lsh"
			if scan {
				mode = "scan"
			}
			tbl.AddRow(k, mode, res.Eval.MicroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall())
		}
	}
	return tbl, nil
}

// E9ConfidenceSlider sweeps the tag-assignment threshold — the
// "Confidence" slider of Fig. 3. Expected shape: the classic
// precision/recall trade-off, with F1 peaking near 0.4-0.5 for calibrated
// scores.
func E9ConfidenceSlider(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E9: confidence slider (threshold vs precision/recall)",
		"threshold", "protocol", "microF1", "precision", "recall", "tags/doc")
	n := 16
	if n > sc.MaxPeers {
		n = sc.MaxPeers
	}
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		cfg := baseConfig(p2pdmt.ProtoCEMPaR, n, sc)
		cfg.CEMPaR = cempar.Config{Regions: 2, Weighted: true}
		cfg.Threshold = th
		res, err := p2pdmt.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("E9 th=%v: %w", th, err)
		}
		// tags/doc approximated from recall vs precision balance is
		// noisy; report the direct measure instead.
		tbl.AddRow(th, res.Protocol, res.Eval.MicroF1(),
			res.Eval.MicroPrecision(), res.Eval.MicroRecall(),
			fmt.Sprintf("%.2f", tagsPerDoc(res)))
	}
	return tbl, nil
}

// tagsPerDoc is the average number of predicted tags per scored document:
// (TP+FP)/docs.
func tagsPerDoc(res *p2pdmt.Result) float64 {
	docs := float64(res.Eval.Docs())
	if docs == 0 {
		return 0
	}
	tp, fp, _ := res.Eval.Counts()
	return (tp + fp) / docs
}
