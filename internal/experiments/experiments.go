// Package experiments regenerates every evaluation scenario of the paper's
// demonstration section (§3) as a parameter sweep over the P2PDMT toolkit.
// Each function returns the result table the demo would have produced; the
// root bench_test.go exposes one benchmark per experiment and
// cmd/experiments regenerates EXPERIMENTS.md from the same code.
//
// Execution model: every (experiment, config) cell of a sweep is an
// independent job — it builds its own simulated network from its own seed —
// so the cells fan out over internal/runner's worker pool and the finished
// rows are appended in declaration order. A parallel sweep is therefore
// byte-identical to a serial one; see Scale.Parallel.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cempar"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/p2pdmt"
	"repro/internal/pace"
	"repro/internal/runner"
	"repro/internal/simnet"
)

// Scale trades experiment size for wall time: 1 = the sizes used in
// EXPERIMENTS.md; smaller values shrink sweeps for quick checks.
type Scale struct {
	// MaxPeers caps network sizes in sweeps.
	MaxPeers int
	// EvalDocs caps scored test documents per run.
	EvalDocs int
	// Parallel is the worker count for a sweep's cells: 0 (the default)
	// uses every core, 1 runs the sweep fully serially — including the
	// simulations' internal training phases — and any other value pins
	// the pool size. Tables are byte-identical at every setting.
	Parallel int
	// Seed, when non-zero, re-seeds the whole sweep: every cell derives
	// its own independent seed from it (and the cell's coordinates) via
	// runner.DeriveSeed, so trials of the same sweep never share random
	// streams. 0 reproduces the committed EXPERIMENTS.md tables, which
	// run every cell at the paper reproduction's fixed seed.
	Seed int64
	// Shards is the number of event-loop shards inside each cell's
	// simulated network (conservative PDES). 0 or 1 keeps the simulations
	// serial — the right choice when Parallel already fans the cells over
	// the cores; values > 1 parallelize within each simulation, which pays
	// off for few, very large networks. Tables are byte-identical at every
	// setting.
	Shards int
}

// DefaultScale reproduces the committed EXPERIMENTS.md numbers.
func DefaultScale() Scale { return Scale{MaxPeers: 64, EvalDocs: 50} }

// QuickScale is a fast smoke-test scale for CI.
func QuickScale() Scale { return Scale{MaxPeers: 16, EvalDocs: 20} }

const seed = 42

// cellSeed returns the base seed for one experiment cell, identified by
// its coordinates (experiment id, sweep variables, trial index). With the
// default Scale.Seed the committed tables' fixed seed is used everywhere;
// a custom Scale.Seed gives every cell an independent derived seed.
func (sc Scale) cellSeed(coords ...string) int64 {
	if sc.Seed == 0 {
		return seed
	}
	return runner.DeriveSeed(sc.Seed, coords...)
}

// cellJob computes one cell of a sweep and returns the rows it contributes
// to the experiment table.
type cellJob func() ([][]any, error)

// runCells executes jobs over the scale's worker pool and appends their
// rows to tbl in declaration order, so a parallel sweep renders the exact
// bytes of a serial one. Cells run their simulations' internal CPU phases
// serially (the sweep already owns the cores); the per-peer training
// parallelism of internal/p2pdmt serves direct library users instead.
func runCells(tbl *p2pdmt.Table, sc Scale, jobs []cellJob) error {
	rows, err := runner.Map(len(jobs), sc.Parallel, func(i int) ([][]any, error) {
		return jobs[i]()
	})
	if err != nil {
		return err
	}
	for _, cellRows := range rows {
		for _, row := range cellRows {
			tbl.AddRow(row...)
		}
	}
	return nil
}

func baseConfig(proto p2pdmt.ProtocolKind, peers int, sc Scale, coords ...string) p2pdmt.Config {
	return p2pdmt.Config{
		Peers:    peers,
		Protocol: proto,
		EvalDocs: sc.EvalDocs,
		Seed:     sc.cellSeed(coords...),
		Parallel: 1, // cells are the unit of parallelism in a sweep
		Shards:   sc.Shards,
	}
}

var allProtocols = []p2pdmt.ProtocolKind{
	p2pdmt.ProtoLocal, p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
}

func peerSweep(sc Scale) []int {
	all := []int{8, 16, 32, 64, 128, 256, 512}
	var out []int
	for _, n := range all {
		if n <= sc.MaxPeers {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{8}
	}
	return out
}

// midPeers caps the mid-sized network most single-variable sweeps use.
func midPeers(sc Scale, n int) int {
	if n > sc.MaxPeers {
		return sc.MaxPeers
	}
	return n
}

// E1AccuracyVsPeers sweeps network size for every protocol: the demo's
// ">500 peers" scaling scenario. Expected shape: CEMPaR tracks the
// centralized ceiling, PACE sits between centralized and local-only, and
// accuracy does not degrade as N grows.
func E1AccuracyVsPeers(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E1: tagging accuracy vs network size",
		"peers", "protocol", "microF1", "macroF1", "precision", "recall", "P@1")
	var jobs []cellJob
	for _, n := range peerSweep(sc) {
		for _, proto := range allProtocols {
			jobs = append(jobs, func() ([][]any, error) {
				res, err := p2pdmt.Run(baseConfig(proto, n, sc, "E1", string(proto), fmt.Sprint(n)))
				if err != nil {
					return nil, fmt.Errorf("E1 %s N=%d: %w", proto, n, err)
				}
				return [][]any{{n, res.Protocol, res.Eval.MicroF1(), res.Eval.MacroF1(),
					res.Eval.MicroPrecision(), res.Eval.MicroRecall(), res.MeanP1}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E2CommunicationCost sweeps network size and reports the traffic of the
// training and query phases. Expected shape: centralized training ships all
// raw documents to one coordinator (hotspot); CEMPaR ships each peer's
// support vectors once; PACE pays an O(N^2) model broadcast but zero bytes
// per query.
func E2CommunicationCost(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E2: communication cost vs network size",
		"peers", "protocol", "trainMsgs", "trainBytes", "trainBytes/peer",
		"queryMsgs", "queryBytes/query")
	var jobs []cellJob
	for _, n := range peerSweep(sc) {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			jobs = append(jobs, func() ([][]any, error) {
				res, err := p2pdmt.Run(baseConfig(proto, n, sc, "E2", string(proto), fmt.Sprint(n)))
				if err != nil {
					return nil, fmt.Errorf("E2 %s N=%d: %w", proto, n, err)
				}
				perQuery := float64(0)
				if res.TotalQueries > 0 {
					perQuery = float64(res.QueryCost.Bytes) / float64(res.TotalQueries)
				}
				return [][]any{{n, res.Protocol, res.TrainCost.Messages,
					metrics.FormatBytes(res.TrainCost.Bytes),
					metrics.FormatBytes(int64(res.TrainCost.BytesPerPeer())),
					res.QueryCost.Messages, metrics.FormatBytes(int64(perQuery))}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E3TrainingFraction sweeps the labeled fraction around the demo's 20%
// split. Expected shape: accuracy rises with more labels and the
// collaborative protocols benefit more steeply than local-only (they pool
// everyone's labels).
func E3TrainingFraction(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E3: accuracy vs training fraction (demo used 20%)",
		"trainFrac", "protocol", "microF1", "precision", "recall")
	n := midPeers(sc, 32)
	var jobs []cellJob
	for _, frac := range []float64{0.05, 0.1, 0.2, 0.4} {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoLocal, p2pdmt.ProtoCentralized, p2pdmt.ProtoCEMPaR,
		} {
			jobs = append(jobs, func() ([][]any, error) {
				cfg := baseConfig(proto, n, sc, "E3", string(proto), fmt.Sprint(frac))
				cfg.TrainFrac = frac
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("E3 %s frac=%v: %w", proto, frac, err)
				}
				return [][]any{{frac, res.Protocol, res.Eval.MicroF1(),
					res.Eval.MicroPrecision(), res.Eval.MicroRecall()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E4Churn sweeps churn intensity (the demo's "churn/attrition rate"
// scenario). Expected shape: the centralized tagger fails whenever its
// coordinator is down (single point of failure); CEMPaR keeps answering
// after re-stabilization; PACE never fails an issued query because
// prediction is local.
func E4Churn(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E4: fault tolerance under churn",
		"meanUptime", "protocol", "answered", "failed", "skippedOffline", "microF1")
	n := midPeers(sc, 32)
	levels := []struct {
		name string
		mdl  simnet.SessionModel
	}{
		{"none", nil},
		{"10m", simnet.ExponentialChurn{MeanUptime: 10 * time.Minute, MeanDowntime: time.Minute}},
		{"4m", simnet.ExponentialChurn{MeanUptime: 4 * time.Minute, MeanDowntime: time.Minute}},
		{"2m", simnet.ExponentialChurn{MeanUptime: 2 * time.Minute, MeanDowntime: time.Minute}},
	}
	var jobs []cellJob
	for _, lvl := range levels {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoCentralized, p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			jobs = append(jobs, func() ([][]any, error) {
				cfg := baseConfig(proto, n, sc, "E4", string(proto), lvl.name)
				cfg.Churn = lvl.mdl
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("E4 %s churn=%s: %w", proto, lvl.name, err)
				}
				answered := res.TotalQueries - res.FailedQueries
				return [][]any{{lvl.name, res.Protocol, answered, res.FailedQueries,
					res.SkippedOffline, res.Eval.MicroF1()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E5SizeSkew sweeps the Zipf exponent of per-peer collection sizes (the
// demo's "size distribution of training data" scenario). Expected shape:
// collaborative protocols degrade gracefully as data concentrates on few
// peers, because pooled knowledge still reaches everyone.
func E5SizeSkew(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E5: accuracy vs per-peer data-size skew (Zipf)",
		"zipf", "protocol", "microF1", "precision", "recall")
	n := midPeers(sc, 32)
	var jobs []cellJob
	for _, z := range []float64{0, 0.5, 1.0, 1.5} {
		for _, proto := range []p2pdmt.ProtocolKind{
			p2pdmt.ProtoPACE, p2pdmt.ProtoCEMPaR,
		} {
			jobs = append(jobs, func() ([][]any, error) {
				cfg := baseConfig(proto, n, sc, "E5", string(proto), fmt.Sprint(z))
				cfg.Distribution = p2pdmt.Distribution{SizeZipf: z, Seed: cfg.Seed + 5}
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("E5 %s zipf=%v: %w", proto, z, err)
				}
				return [][]any{{z, res.Protocol, res.Eval.MicroF1(),
					res.Eval.MicroPrecision(), res.Eval.MicroRecall()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E6ClassSkew sweeps per-user tag concentration (the demo's "class
// distribution" scenario). Measured shape (documented in EXPERIMENTS.md):
// as users specialize, local-only models improve — personal tag habits are
// easy to learn — while pooled global models suffer from conflicting
// contexts; this is precisely the conflict the paper's tag-refinement loop
// exists to resolve.
func E6ClassSkew(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E6: accuracy vs per-user class skew",
		"userBias", "protocol", "microF1", "precision", "recall")
	n := midPeers(sc, 16)
	var jobs []cellJob
	for _, bias := range []float64{10, 1, 0.3} {
		for _, proto := range allProtocols {
			jobs = append(jobs, func() ([][]any, error) {
				cfg := baseConfig(proto, n, sc, "E6", string(proto), fmt.Sprint(bias))
				cfg.Corpus = dataset.DefaultConfig()
				cfg.Corpus.DocsPerUserMin = 40
				cfg.Corpus.DocsPerUserMax = 80
				cfg.Corpus.UserBias = bias
				cfg.Corpus.Seed = cfg.Seed + 101
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("E6 %s bias=%v: %w", proto, bias, err)
				}
				return [][]any{{bias, res.Protocol, res.Eval.MicroF1(),
					res.Eval.MicroPrecision(), res.Eval.MicroRecall()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E7Topology compares the structured (DHT) and unstructured overlays on
// the two network primitives P2PDocTagger needs: disseminating a model to
// every peer and locating a specific peer (super-peer lookup). Expected
// shape: flooding reaches everyone at O(edges) messages, gossip is cheaper
// but probabilistic, and DHT lookups cost O(log N) messages.
func E7Topology(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E7: structured vs unstructured overlay primitives",
		"peers", "primitive", "mechanism", "messages", "coverage/hops")
	var jobs []cellJob
	for _, n := range peerSweep(sc) {
		// Dissemination: flooding vs gossip on a random graph.
		for _, mode := range []string{"flood", "gossip"} {
			jobs = append(jobs, func() ([][]any, error) {
				cellSeed := sc.cellSeed("E7", mode, fmt.Sprint(n))
				net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(20 * time.Millisecond), Seed: cellSeed, Shards: sc.Shards})
				ids := make([]simnet.NodeID, n)
				for i := range ids {
					ids[i] = simnet.NodeID(i)
				}
				ov := overlay.New(net, ids, nil, overlay.Options{Degree: 6, Seed: cellSeed})
				if mode == "flood" {
					ov.Flood(0, "model", 1000, nil, 64)
				} else {
					ov.Gossip(0, "model", 1000, nil, 2)
				}
				net.Run(0)
				cov := ov.Coverage(ov.LastBroadcastID())
				return [][]any{{n, "disseminate", mode, net.Stats().MessagesSent,
					fmt.Sprintf("%d/%d peers", cov, n)}}, nil
			})
		}
		// Locate: DHT routed lookup.
		jobs = append(jobs, func() ([][]any, error) {
			net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(20 * time.Millisecond), Seed: sc.cellSeed("E7", "dht", fmt.Sprint(n)), Shards: sc.Shards})
			ids := make([]simnet.NodeID, n)
			for i := range ids {
				ids[i] = simnet.NodeID(i)
			}
			ring := newDHT(net, ids)
			net.Run(0)
			net.ResetStats()
			totalHops, lookups := 0, 20
			for q := 0; q < lookups; q++ {
				key := fmt.Sprintf("key-%d", q)
				_ = ring.lookup(simnet.NodeID(q%n), key, &totalHops)
			}
			net.Run(0)
			return [][]any{{n, "locate", "dht",
				net.Stats().MessagesSent / int64(lookups),
				fmt.Sprintf("%.1f hops avg", float64(totalHops)/float64(lookups))}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E8PaceTopK sweeps PACE's ensemble size and retrieval mechanism (LSH vs
// exact scan) — the top-k design choice of §2. Expected shape: small k
// wins (nearest models are the adapted ones); LSH matches the exact scan's
// accuracy while examining a fraction of the centroids.
func E8PaceTopK(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E8: PACE top-k model retrieval",
		"topK", "retrieval", "microF1", "precision", "recall")
	n := midPeers(sc, 16)
	var jobs []cellJob
	for _, k := range []int{1, 3, 5, 8, 16} {
		for _, scan := range []bool{false, true} {
			jobs = append(jobs, func() ([][]any, error) {
				mode := "lsh"
				if scan {
					mode = "scan"
				}
				cfg := baseConfig(p2pdmt.ProtoPACE, n, sc, "E8", mode, fmt.Sprint(k))
				cfg.PACE = pace.Config{TopK: k, DisableLSH: scan}
				res, err := p2pdmt.Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("E8 k=%d scan=%v: %w", k, scan, err)
				}
				return [][]any{{k, mode, res.Eval.MicroF1(),
					res.Eval.MicroPrecision(), res.Eval.MicroRecall()}}, nil
			})
		}
	}
	return tbl, runCells(tbl, sc, jobs)
}

// E9ConfidenceSlider sweeps the tag-assignment threshold — the
// "Confidence" slider of Fig. 3. Expected shape: the classic
// precision/recall trade-off, with F1 peaking near 0.4-0.5 for calibrated
// scores.
func E9ConfidenceSlider(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E9: confidence slider (threshold vs precision/recall)",
		"threshold", "protocol", "microF1", "precision", "recall", "tags/doc")
	n := midPeers(sc, 16)
	var jobs []cellJob
	for _, th := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		jobs = append(jobs, func() ([][]any, error) {
			cfg := baseConfig(p2pdmt.ProtoCEMPaR, n, sc, "E9", fmt.Sprint(th))
			cfg.CEMPaR = cempar.Config{Regions: 2, Weighted: true}
			cfg.Threshold = th
			res, err := p2pdmt.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E9 th=%v: %w", th, err)
			}
			// tags/doc approximated from recall vs precision balance is
			// noisy; report the direct measure instead.
			return [][]any{{th, res.Protocol, res.Eval.MicroF1(),
				res.Eval.MicroPrecision(), res.Eval.MicroRecall(),
				fmt.Sprintf("%.2f", tagsPerDoc(res))}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}

// tagsPerDoc is the average number of predicted tags per scored document:
// (TP+FP)/docs.
func tagsPerDoc(res *p2pdmt.Result) float64 {
	docs := float64(res.Eval.Docs())
	if docs == 0 {
		return 0
	}
	tp, fp, _ := res.Eval.Counts()
	return (tp + fp) / docs
}
