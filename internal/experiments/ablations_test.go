package experiments

import (
	"strings"
	"testing"
)

// QuickScale smoke tests for the ablation sweeps (A1-A4), which shipped
// without direct coverage. The heavier ones skip under -short.

func TestA1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full CEMPaR ablation sweep; run without -short")
	}
	tbl, err := A1CEMPaRAblations(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows = %d, want one per variant", len(tbl.Rows))
	}
	// The base variant leads the table; every variant must have scored
	// documents (a 0 F1 across the board means the sweep silently broke).
	if !strings.HasPrefix(tbl.Rows[0][0], "base") {
		t.Errorf("first variant = %q", tbl.Rows[0][0])
	}
	anyPositive := false
	for _, row := range tbl.Rows {
		if parseF(t, row[1]) > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("every ablation variant scored 0 F1")
	}
}

func TestA2Shape(t *testing.T) {
	tbl, err := A2Weighting(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want one per weighting scheme", len(tbl.Rows))
	}
	for i, want := range []string{"tf", "logtf", "tfidf"} {
		if tbl.Rows[i][0] != want {
			t.Errorf("row %d scheme = %q, want %q", i, tbl.Rows[i][0], want)
		}
		if f := parseF(t, tbl.Rows[i][1]); f <= 0.2 || f > 1 {
			t.Errorf("%s: implausible F1 %v", want, f)
		}
	}
}

func TestA3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full drop-rate sweep; run without -short")
	}
	tbl, err := A3DropRate(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Without loss, no issued query may fail.
	for _, row := range tbl.Rows {
		if row[0] == "0.0000" && row[3] != "0" {
			t.Errorf("%s failed %s queries at zero drop rate", row[1], row[3])
		}
	}
}

func TestA4Shape(t *testing.T) {
	tbl, err := A4Privacy(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The privacy-utility trade-off: heavy noise must not beat the
	// noise-free model by more than test noise.
	clean, noisy := parseF(t, tbl.Rows[0][1]), parseF(t, tbl.Rows[len(tbl.Rows)-1][1])
	if noisy > clean+0.1 {
		t.Errorf("heavy noise (%v) should not beat noise-free (%v)", noisy, clean)
	}
}
