package experiments

import (
	"testing"

	"repro/internal/p2pdmt"
)

// TestParallelTablesByteIdentical is the determinism contract of the
// parallel experiment runner: for the same scale and seed, a sweep fanned
// out over many workers must render the exact bytes of a fully serial
// sweep — same rows, same order, same float formatting.
func TestParallelTablesByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func(Scale) (*p2pdmt.Table, error)
	}{
		{"E1", E1AccuracyVsPeers},
		{"E4", E4Churn},
	}
	// The byte-identity contract doesn't need the full QuickScale sweep;
	// under -short a reduced scale keeps the tier inside its time budget
	// while exercising the same code paths.
	baseScale := QuickScale()
	if testing.Short() {
		baseScale = Scale{MaxPeers: 8, EvalDocs: 12}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serialScale := baseScale
			serialScale.Parallel = 1
			serial, err := c.run(serialScale)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallelScale := baseScale
			parallelScale.Parallel = 8
			parallel, err := c.run(parallelScale)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("rendered tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
			if serial.CSV() != parallel.CSV() {
				t.Error("CSV renderings differ")
			}
		})
	}
}

// TestScaleSeedDerivesIndependentCells pins the runner's seed-derivation
// scheme: a custom Scale.Seed reproduces exactly on re-run, and changes
// the sweep relative to both the committed default and other seeds.
func TestScaleSeedDerivesIndependentCells(t *testing.T) {
	tiny := func(seed int64) Scale {
		return Scale{MaxPeers: 8, EvalDocs: 10, Seed: seed}
	}
	def, err := E1AccuracyVsPeers(tiny(0))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := E1AccuracyVsPeers(tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := E1AccuracyVsPeers(tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := E1AccuracyVsPeers(tiny(100))
	if err != nil {
		t.Fatal(err)
	}
	if a1.String() != a2.String() {
		t.Error("same Scale.Seed must reproduce the same table")
	}
	if a1.String() == def.String() {
		t.Error("custom Scale.Seed should re-seed the sweep away from the default")
	}
	if a1.String() == b.String() {
		t.Error("different Scale.Seeds should produce different sweeps")
	}
}
