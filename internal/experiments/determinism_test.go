package experiments

import (
	"testing"

	"repro/internal/p2pdmt"
)

// TestParallelTablesByteIdentical is the determinism contract of the
// parallel experiment runner: for the same scale and seed, a sweep fanned
// out over many workers must render the exact bytes of a fully serial
// sweep — same rows, same order, same float formatting.
func TestParallelTablesByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func(Scale) (*p2pdmt.Table, error)
	}{
		{"E1", E1AccuracyVsPeers},
		{"E4", E4Churn},
	}
	// The byte-identity contract doesn't need the full QuickScale sweep;
	// under -short a reduced scale keeps the tier inside its time budget
	// while exercising the same code paths.
	baseScale := QuickScale()
	if testing.Short() {
		baseScale = Scale{MaxPeers: 8, EvalDocs: 12}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serialScale := baseScale
			serialScale.Parallel = 1
			serial, err := c.run(serialScale)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallelScale := baseScale
			parallelScale.Parallel = 8
			parallel, err := c.run(parallelScale)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("rendered tables differ:\n--- serial ---\n%s--- parallel ---\n%s",
					serial, parallel)
			}
			if serial.CSV() != parallel.CSV() {
				t.Error("CSV renderings differ")
			}
		})
	}
}

// TestShardedTablesByteIdentical is the PDES determinism contract at the
// experiments layer: sharding the simulator inside every cell must render
// the exact bytes of the serial tables — including E4's churn sweeps and
// E7's overlay/DHT primitives, which build their networks directly.
func TestShardedTablesByteIdentical(t *testing.T) {
	cases := []struct {
		name string
		run  func(Scale) (*p2pdmt.Table, error)
	}{
		{"E1", E1AccuracyVsPeers},
		{"E7", E7Topology},
	}
	if !testing.Short() {
		// Churn sweeps are the slowest cells under -race; the short tier
		// keeps churn-under-sharding coverage via the simnet and p2pdmt
		// invariance tests instead.
		cases = append(cases, struct {
			name string
			run  func(Scale) (*p2pdmt.Table, error)
		}{"E4", E4Churn})
	}
	baseScale := Scale{MaxPeers: 8, EvalDocs: 12}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serialScale := baseScale
			serialScale.Shards = 1
			serial, err := c.run(serialScale)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			shardedScale := baseScale
			shardedScale.Shards = 4
			sharded, err := c.run(shardedScale)
			if err != nil {
				t.Fatalf("sharded: %v", err)
			}
			if serial.String() != sharded.String() {
				t.Errorf("rendered tables differ:\n--- shards=1 ---\n%s--- shards=4 ---\n%s",
					serial, sharded)
			}
		})
	}
}

// TestScaleSeedDerivesIndependentCells pins the runner's seed-derivation
// scheme: a custom Scale.Seed reproduces exactly on re-run, and changes
// the sweep relative to both the committed default and other seeds.
func TestScaleSeedDerivesIndependentCells(t *testing.T) {
	tiny := func(seed int64) Scale {
		return Scale{MaxPeers: 8, EvalDocs: 10, Seed: seed}
	}
	def, err := E1AccuracyVsPeers(tiny(0))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := E1AccuracyVsPeers(tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := E1AccuracyVsPeers(tiny(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := E1AccuracyVsPeers(tiny(100))
	if err != nil {
		t.Fatal(err)
	}
	if a1.String() != a2.String() {
		t.Error("same Scale.Seed must reproduce the same table")
	}
	if a1.String() == def.String() {
		t.Error("custom Scale.Seed should re-seed the sweep away from the default")
	}
	if a1.String() == b.String() {
		t.Error("different Scale.Seeds should produce different sweeps")
	}
}
