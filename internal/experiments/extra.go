package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/p2pdmt"
	"repro/internal/simnet"

	doctagger "repro"
)

// dhtHarness wraps a Chord ring for the E7 locate primitive.
type dhtHarness struct {
	ring *dht.DHT
	net  *simnet.Network
}

func newDHT(net *simnet.Network, ids []simnet.NodeID) *dhtHarness {
	return &dhtHarness{ring: dht.New(net, ids, nil), net: net}
}

// lookup routes one key lookup and accumulates its hop count.
func (h *dhtHarness) lookup(from simnet.NodeID, key string, hops *int) error {
	return h.ring.Lookup(from, dht.HashString(key), func(r dht.LookupResult) {
		*hops += r.Hops
	})
}

// E10Refinement measures the tag-refinement loop of §2: a deliberately
// under-trained swarm (5% labels) is improved by rounds of user
// corrections, each round feeding gold-tagged documents back through
// Refine. Expected shape: accuracy climbs monotonically with refinement
// rounds — the "adapt to their personal preference for future tagging"
// claim. It exercises the public doctagger API end to end; each
// rounds-count is an independent cell building its own swarm, so the
// cells fan out over the sweep's worker pool.
func E10Refinement(sc Scale) (*p2pdmt.Table, error) {
	tbl := p2pdmt.NewTable("E10: accuracy vs tag-refinement rounds",
		"rounds", "refinedDocs", "microF1", "precision", "recall")
	const peers = 8
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Users = peers
	corpusCfg.DocsPerUserMin = 40
	corpusCfg.DocsPerUserMax = 60
	corpusCfg.NumTags = 12
	corpusCfg.Seed = sc.cellSeed("E10", "corpus") + 777
	corpus, err := dataset.Generate(corpusCfg)
	if err != nil {
		return nil, err
	}
	// 5% bootstrap labels; the remainder split into a refinement pool and
	// a fixed evaluation set. All cells share the corpus read-only.
	train, rest := dataset.SplitTrainTest(corpus.Docs, 0.05, sc.cellSeed("E10", "split"))
	poolSize := len(rest) / 2
	pool, eval := rest[:poolSize], rest[poolSize:]
	if len(eval) > sc.EvalDocs*2 {
		eval = eval[:sc.EvalDocs*2]
	}
	perRound := 20

	var jobs []cellJob
	for _, rounds := range []int{0, 1, 2, 4} {
		jobs = append(jobs, func() ([][]any, error) {
			tg, err := doctagger.New(doctagger.Config{
				Protocol: doctagger.ProtocolCEMPaR,
				Peers:    peers,
				Regions:  2,
				Seed:     sc.cellSeed("E10", fmt.Sprint(rounds)),
				Parallel: 1, // the sweep's cells own the cores
				Shards:   sc.Shards,
			})
			if err != nil {
				return nil, err
			}
			for _, d := range train {
				if err := tg.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
					return nil, err
				}
			}
			if err := tg.Train(); err != nil {
				return nil, err
			}
			refined := 0
			for r := 0; r < rounds; r++ {
				for i := r * perRound; i < (r+1)*perRound && i < len(pool); i++ {
					d := pool[i]
					// The user corrects the auto-tagger's output to the gold
					// tags (the Fig. 3 refinement action).
					if err := tg.Refine(d.Text, d.Tags...); err != nil {
						return nil, err
					}
					refined++
				}
			}
			f1, p, rcl, err := scoreTagger(tg, eval)
			if err != nil {
				return nil, err
			}
			return [][]any{{rounds, refined, f1, p, rcl}}, nil
		})
	}
	return tbl, runCells(tbl, sc, jobs)
}

// scoreTagger evaluates a trained public-API tagger on gold documents,
// tagging the whole evaluation set in one AutoTagBatch pass.
func scoreTagger(tg *doctagger.Tagger, eval []dataset.Document) (f1, precision, recall float64, err error) {
	texts := make([]string, len(eval))
	for i, d := range eval {
		texts[i] = d.Text
	}
	tagged, err := tg.AutoTagBatch(texts)
	if err != nil {
		return 0, 0, 0, err
	}
	var tp, fp, fn float64
	for i, d := range eval {
		gold := map[string]bool{}
		for _, t := range d.Tags {
			gold[t] = true
		}
		pred := map[string]bool{}
		for _, t := range tagged[i] {
			pred[t] = true
		}
		for t := range pred {
			if gold[t] {
				tp++
			} else {
				fp++
			}
		}
		for t := range gold {
			if !pred[t] {
				fn++
			}
		}
	}
	if tp+fp > 0 {
		precision = tp / (tp + fp)
	}
	if tp+fn > 0 {
		recall = tp / (tp + fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return f1, precision, recall, nil
}

// F4TagCloud reproduces the Fig. 4 walk-through: auto-tag a corpus into a
// library, then build the co-occurrence tag cloud and report its concept
// clusters and bridging tags. Expected shape: tags that share topics
// cluster together and at least one bridging tag connects concepts.
func F4TagCloud(sc Scale) (*p2pdmt.Table, string, error) {
	tbl := p2pdmt.NewTable("F4: tag-cloud structure after auto-tagging",
		"measure", "value")
	const peers = 8
	tg, err := doctagger.New(doctagger.Config{
		Protocol: doctagger.ProtocolCEMPaR, Peers: peers, Regions: 2,
		Seed: sc.cellSeed("F4"), Parallel: 1, // sweep cells own the cores
		Shards: sc.Shards,
	})
	if err != nil {
		return nil, "", err
	}
	corpusCfg := dataset.DefaultConfig()
	corpusCfg.Users = peers
	corpusCfg.NumTags = 10
	corpusCfg.DocsPerUserMin = 30
	corpusCfg.DocsPerUserMax = 50
	corpusCfg.Seed = sc.cellSeed("F4", "corpus") + 4242
	corpus, err := dataset.Generate(corpusCfg)
	if err != nil {
		return nil, "", err
	}
	train, test := dataset.SplitTrainTest(corpus.Docs, 0.3, sc.cellSeed("F4", "split"))
	for _, d := range train {
		if err := tg.AddDocument(d.User%peers, d.Text, d.Tags...); err != nil {
			return nil, "", err
		}
	}
	if err := tg.Train(); err != nil {
		return nil, "", err
	}
	lib := doctagger.NewMemoryLibrary()
	limit := sc.EvalDocs * 3
	if limit > len(test) {
		limit = len(test)
	}
	texts := make([]string, limit)
	for i := 0; i < limit; i++ {
		texts[i] = test[i].Text
	}
	tagged, err := tg.AutoTagBatch(texts)
	if err != nil {
		return nil, "", err
	}
	for i := 0; i < limit; i++ {
		lib.SetTags(fmt.Sprintf("doc-%d", test[i].ID), tagged[i], true)
	}
	cloud := lib.Cloud(2)
	tbl.AddRow("documents auto-tagged", limit)
	tbl.AddRow("distinct tags in cloud", len(cloud.Tags))
	tbl.AddRow("co-occurrence edges", len(cloud.Edges))
	tbl.AddRow("concept clusters (support>=2)", len(cloud.Clusters))
	tbl.AddRow("bridging tags", len(cloud.Bridges))
	return tbl, cloud.String(), nil
}
