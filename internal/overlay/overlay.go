// Package overlay implements an unstructured P2P overlay — a random
// k-regular neighbor graph with TTL-limited flooding and rumor-mongering
// gossip broadcast. P2PDMT's topology experiments compare it against the
// structured DHT overlay (the "Generate structured / unstructured P2P
// network" boxes of Fig. 2).
package overlay

import (
	"math/rand"
	"sort"
	"strconv"

	"repro/internal/runner"
	"repro/internal/simnet"
)

// Options configures an unstructured overlay.
type Options struct {
	// Degree is the number of neighbors per peer; default 4.
	Degree int
	// Seed drives graph construction.
	Seed int64
}

// Broadcast payloads are wrapped in an envelope carrying flood bookkeeping.
type envelope struct {
	ID      uint64
	TTL     int
	Kind    string
	Size    int
	Payload any
	Origin  simnet.NodeID
}

// Handler receives application broadcasts delivered by the overlay.
type Handler func(net *simnet.Network, from simnet.NodeID, kind string, payload any)

// Overlay is an unstructured random-graph overlay. Like the DHT, all peers
// share one Overlay object but each keeps only local state (its neighbor
// list, duplicate-suppression cache and gossip stream), so peers on
// different simulator shards can forward broadcasts concurrently.
type Overlay struct {
	net       *simnet.Network
	neighbors map[simnet.NodeID][]simnet.NodeID
	seen      map[simnet.NodeID]map[uint64]bool
	handler   Handler
	nextID    uint64
	rng       *rand.Rand // graph construction only
	// gossipRng holds each peer's private fanout-selection stream, derived
	// from the overlay seed and the peer id so gossip routes are
	// independent of shard placement.
	gossipRng map[simnet.NodeID]*rand.Rand
}

// New builds a connected random graph over ids and registers message
// handlers on the network. The graph starts from a ring (guaranteeing
// connectivity) and adds random chords until every node has at least
// Degree neighbors.
func New(net *simnet.Network, ids []simnet.NodeID, h Handler, opts Options) *Overlay {
	deg := opts.Degree
	if deg < 2 {
		deg = 4
	}
	o := &Overlay{
		net:       net,
		neighbors: make(map[simnet.NodeID][]simnet.NodeID, len(ids)),
		seen:      make(map[simnet.NodeID]map[uint64]bool, len(ids)),
		handler:   h,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		gossipRng: make(map[simnet.NodeID]*rand.Rand, len(ids)),
	}
	sorted := append([]simnet.NodeID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	// Ring edges.
	n := len(sorted)
	for i, id := range sorted {
		next := sorted[(i+1)%n]
		if id != next && !o.hasEdge(id, next) {
			o.addEdge(id, next)
		}
	}
	// Random chords until min degree reached.
	if n > 2 {
		for _, id := range sorted {
			guard := 0
			for len(o.neighbors[id]) < deg && guard < 100 {
				peer := sorted[o.rng.Intn(n)]
				if peer != id && !o.hasEdge(id, peer) {
					o.addEdge(id, peer)
				}
				guard++
			}
		}
	}
	for _, id := range sorted {
		o.seen[id] = make(map[uint64]bool)
		o.gossipRng[id] = rand.New(rand.NewSource(runner.DeriveSeed(opts.Seed, "gossip", strconv.Itoa(int(id)))))
		nodeID := id
		net.AddNode(id, simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
			o.handle(nodeID, nn, m)
		}))
	}
	return o
}

func (o *Overlay) addEdge(a, b simnet.NodeID) {
	o.neighbors[a] = append(o.neighbors[a], b)
	o.neighbors[b] = append(o.neighbors[b], a)
}

func (o *Overlay) hasEdge(a, b simnet.NodeID) bool {
	for _, x := range o.neighbors[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Neighbors returns a copy of a peer's neighbor list.
func (o *Overlay) Neighbors(id simnet.NodeID) []simnet.NodeID {
	return append([]simnet.NodeID(nil), o.neighbors[id]...)
}

// Network returns the underlying simulated network.
func (o *Overlay) Network() *simnet.Network { return o.net }

// Flood broadcasts payload from origin with a TTL: every peer forwards an
// unseen envelope to all neighbors except the one it arrived from. With
// TTL >= graph diameter this reaches every connected alive peer; the cost
// is O(edges) messages — the price unstructured overlays pay versus DHTs.
func (o *Overlay) Flood(origin simnet.NodeID, kind string, size int, payload any, ttl int) {
	env := envelope{
		ID: o.nextID, TTL: ttl, Kind: kind, Size: size,
		Payload: payload, Origin: origin,
	}
	o.nextID++
	o.seen[origin][env.ID] = true
	o.forward(origin, origin, env)
}

func (o *Overlay) forward(self, from simnet.NodeID, env envelope) {
	if env.TTL <= 0 {
		return
	}
	env.TTL--
	for _, nb := range o.neighbors[self] {
		if nb == from {
			continue
		}
		o.net.Send(simnet.Message{
			From: self, To: nb, Kind: "overlay." + env.Kind, Size: env.Size + 16,
			Payload: env,
		})
	}
}

// Gossip broadcasts payload with rumor mongering: each round an infected
// peer pushes to fanout random neighbors; duplicates are suppressed.
// Cheaper than flooding on dense graphs, probabilistic coverage.
func (o *Overlay) Gossip(origin simnet.NodeID, kind string, size int, payload any, fanout int) {
	if fanout <= 0 {
		fanout = 2
	}
	env := envelope{
		ID: o.nextID, TTL: -fanout, Kind: kind, Size: size,
		Payload: payload, Origin: origin,
	}
	o.nextID++
	o.seen[origin][env.ID] = true
	o.push(origin, env, fanout)
}

func (o *Overlay) push(self simnet.NodeID, env envelope, fanout int) {
	nbs := o.neighbors[self]
	if len(nbs) == 0 {
		return
	}
	perm := o.gossipRng[self].Perm(len(nbs))
	for i := 0; i < fanout && i < len(nbs); i++ {
		nb := nbs[perm[i]]
		o.net.Send(simnet.Message{
			From: self, To: nb, Kind: "overlay." + env.Kind, Size: env.Size + 16,
			Payload: env,
		})
	}
}

func (o *Overlay) handle(self simnet.NodeID, net *simnet.Network, m simnet.Message) {
	env, ok := m.Payload.(envelope)
	if !ok {
		return
	}
	key := env.ID
	if o.seen[self][key] {
		return
	}
	o.seen[self][key] = true
	if o.handler != nil {
		o.handler(net, env.Origin, env.Kind, env.Payload)
	}
	if env.TTL < 0 {
		// Gossip envelope: TTL field carries -fanout.
		o.push(self, env, -env.TTL)
		return
	}
	o.forward(self, m.From, env)
}

// Coverage reports how many alive peers have seen a given broadcast id.
// Experiments use it to compare flood vs gossip reliability.
func (o *Overlay) Coverage(broadcastID uint64) int {
	n := 0
	for id, seen := range o.seen {
		if o.net.Alive(id) && seen[broadcastID] {
			n++
		}
	}
	return n
}

// LastBroadcastID returns the id assigned to the most recent broadcast.
func (o *Overlay) LastBroadcastID() uint64 {
	if o.nextID == 0 {
		return 0
	}
	return o.nextID - 1
}
