package overlay

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

func build(t *testing.T, n, degree int) (*simnet.Network, *Overlay, *[]simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	var delivered []simnet.NodeID
	handlerTarget := &delivered
	o := New(net, ids, func(_ *simnet.Network, from simnet.NodeID, kind string, payload any) {
		*handlerTarget = append(*handlerTarget, from)
	}, Options{Degree: degree, Seed: 2})
	return net, o, handlerTarget
}

func TestGraphConnectivityAndDegree(t *testing.T) {
	_, o, _ := build(t, 50, 4)
	// BFS from node 0 must reach everyone.
	visited := map[simnet.NodeID]bool{0: true}
	queue := []simnet.NodeID{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range o.Neighbors(cur) {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(visited) != 50 {
		t.Fatalf("graph disconnected: reached %d of 50", len(visited))
	}
	for i := 0; i < 50; i++ {
		if d := len(o.Neighbors(simnet.NodeID(i))); d < 4 {
			t.Errorf("node %d degree %d < 4", i, d)
		}
	}
}

func TestFloodReachesAllPeers(t *testing.T) {
	net, o, _ := build(t, 40, 4)
	o.Flood(0, "model", 100, "payload", 32)
	net.Run(0)
	id := o.LastBroadcastID()
	if cov := o.Coverage(id); cov != 40 {
		t.Errorf("flood coverage = %d of 40", cov)
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	net, o, _ := build(t, 40, 2) // ring-heavy graph, long paths
	o.Flood(0, "model", 10, nil, 2)
	net.Run(0)
	id := o.LastBroadcastID()
	if cov := o.Coverage(id); cov >= 40 {
		t.Errorf("TTL=2 flood covered the whole 40-node ring (coverage %d)", cov)
	}
}

func TestFloodSkipsDeadPeers(t *testing.T) {
	net, o, _ := build(t, 30, 4)
	for i := 10; i < 15; i++ {
		net.Kill(simnet.NodeID(i))
	}
	o.Flood(0, "model", 10, nil, 32)
	net.Run(0)
	id := o.LastBroadcastID()
	cov := o.Coverage(id)
	// All alive peers reachable around the dead region via chords.
	if cov < 20 {
		t.Errorf("coverage = %d, want most of the 25 alive peers", cov)
	}
	for i := 10; i < 15; i++ {
		if net.Alive(simnet.NodeID(i)) {
			t.Fatal("test setup wrong")
		}
	}
}

func TestGossipCoversMostPeers(t *testing.T) {
	net, o, _ := build(t, 60, 6)
	o.Gossip(0, "model", 50, nil, 3)
	net.Run(0)
	id := o.LastBroadcastID()
	cov := o.Coverage(id)
	if cov < 45 {
		t.Errorf("gossip coverage = %d of 60, want >= 45", cov)
	}
}

func TestGossipCheaperThanFlood(t *testing.T) {
	netF, oF, _ := build(t, 60, 8)
	oF.Flood(0, "m", 100, nil, 32)
	netF.Run(0)
	floodMsgs := netF.Stats().MessagesSent

	netG, oG, _ := build(t, 60, 8)
	oG.Gossip(0, "m", 100, nil, 2)
	netG.Run(0)
	gossipMsgs := netG.Stats().MessagesSent

	if gossipMsgs >= floodMsgs {
		t.Errorf("gossip (%d msgs) not cheaper than flood (%d msgs)", gossipMsgs, floodMsgs)
	}
}

func TestHandlerSeesOriginAndPayload(t *testing.T) {
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond), Seed: 1})
	ids := []simnet.NodeID{0, 1, 2, 3}
	type rec struct {
		from simnet.NodeID
		kind string
		pl   any
	}
	var got []rec
	o := New(net, ids, func(_ *simnet.Network, from simnet.NodeID, kind string, pl any) {
		got = append(got, rec{from, kind, pl})
	}, Options{Degree: 2, Seed: 3})
	o.Flood(2, "tagmodel", 64, "hello", 8)
	net.Run(0)
	if len(got) != 3 { // everyone except the origin
		t.Fatalf("handler fired %d times, want 3", len(got))
	}
	for _, r := range got {
		if r.from != 2 || r.kind != "tagmodel" || r.pl != "hello" {
			t.Errorf("bad delivery %+v", r)
		}
	}
}

func TestDuplicateSuppression(t *testing.T) {
	net, o, delivered := build(t, 20, 6)
	o.Flood(0, "m", 10, nil, 32)
	net.Run(0)
	// Each peer's handler must fire exactly once despite receiving the
	// envelope from several neighbors.
	if len(*delivered) != 19 {
		t.Errorf("handler fired %d times, want 19 (once per non-origin peer)", len(*delivered))
	}
}

func TestTwoNodeOverlay(t *testing.T) {
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond)})
	fired := 0
	New(net, []simnet.NodeID{0, 1}, func(_ *simnet.Network, _ simnet.NodeID, _ string, _ any) {
		fired++
	}, Options{Degree: 4, Seed: 1}).Flood(0, "m", 1, nil, 4)
	net.Run(0)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}
