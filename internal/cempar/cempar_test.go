package cempar

import (
	"testing"
	"time"

	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/vector"
)

// topicDoc builds a document vector concentrated on a topic's feature block
// (features [topic*8, topic*8+8)), labeled with the topic's tag.
func topicDoc(topic int, variant int) protocol.Doc {
	m := map[int32]float64{}
	for j := 0; j < 4; j++ {
		m[int32(topic*8+(variant+j)%8)] = 1
	}
	// Shared background feature.
	m[100] = 0.5
	return protocol.Doc{
		X:    vector.FromMap(m).Normalize(),
		Tags: []string{tagOf(topic)},
	}
}

func tagOf(topic int) string { return []string{"music", "travel", "food"}[topic] }

// build creates a CEMPaR deployment over n peers where peer i holds
// documents of topic i%3.
func build(t *testing.T, n int, cfg Config) (*simnet.Network, *System) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(5 * time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	var s *System
	ring := dht.New(net, ids, func(id simnet.NodeID) simnet.Handler {
		return simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
			if s != nil {
				s.Handler(id).HandleMessage(nn, m)
			}
		})
	})
	s = New(ring, cfg)
	for i := range ids {
		var docs []protocol.Doc
		// Each peer holds several docs of its main topic and a few of the
		// next topic, so every peer sees at least two classes.
		for v := 0; v < 6; v++ {
			docs = append(docs, topicDoc(i%3, v))
		}
		for v := 0; v < 3; v++ {
			docs = append(docs, topicDoc((i+1)%3, v))
		}
		s.SetDocs(ids[i], docs)
	}
	return net, s
}

func predict(t *testing.T, net *simnet.Network, s *System, from simnet.NodeID, x *vector.Sparse) ([]metrics.ScoredTag, bool) {
	t.Helper()
	var scores []metrics.ScoredTag
	ok, fired := false, false
	s.Predict(from, x, func(sc []metrics.ScoredTag, o bool) {
		scores, ok, fired = sc, o, true
	})
	net.RunFor(30 * time.Second)
	if !fired {
		t.Fatal("prediction callback never fired")
	}
	return scores, ok
}

func TestFitAndPredict(t *testing.T) {
	net, s := build(t, 12, Config{Regions: 2, Weighted: true, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	// Query a fresh music document.
	q := topicDoc(0, 2).X
	scores, ok := predict(t, net, s, 5, q)
	if !ok {
		t.Fatal("prediction failed")
	}
	sm := protocol.ScoreMap(scores)
	if sm["music"] <= sm["travel"] || sm["music"] <= sm["food"] {
		t.Errorf("music should score highest: %v", sm)
	}
	best := protocol.SelectTags(scores, 0.5, 1)
	if len(best) != 1 || best[0] != "music" {
		t.Errorf("SelectTags = %v", best)
	}
}

func TestModelsReachSuperPeers(t *testing.T) {
	net, s := build(t, 12, Config{Regions: 2, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	sps := s.SuperPeers()
	if len(sps) != 2 {
		t.Fatalf("super-peers = %v", sps)
	}
	total := 0
	for _, sp := range sps {
		total += s.RegionalTagCount(sp)
	}
	if total == 0 {
		t.Fatal("no regional models cascaded")
	}
}

func TestPredictFromDeadPeerFails(t *testing.T) {
	net, s := build(t, 8, Config{Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	net.Kill(2)
	fired := false
	s.Predict(2, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, ok bool) {
		fired = true
		if ok {
			t.Error("dead peer prediction reported ok")
		}
	})
	if !fired {
		t.Fatal("callback not fired synchronously for dead peer")
	}
}

func TestQueryTimesOutWhenSuperPeersDie(t *testing.T) {
	net, s := build(t, 8, Config{Regions: 2, QueryTimeout: 5 * time.Second, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	for _, sp := range s.SuperPeers() {
		net.Kill(sp)
	}
	// Pick a querying peer that is still alive.
	var from simnet.NodeID = -1
	for _, id := range net.AliveNodes() {
		from = id
		break
	}
	if from < 0 {
		t.Skip("all peers were super-peers")
	}
	scores, ok := predict(t, net, s, from, topicDoc(0, 0).X)
	if ok && len(scores) > 0 {
		t.Error("query to dead super-peers should fail or return empty")
	}
}

func TestRefreshAfterSuperPeerFailureRestoresService(t *testing.T) {
	net, s := build(t, 12, Config{Regions: 2, QueryTimeout: 5 * time.Second, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	before := s.SuperPeers()
	for _, sp := range before {
		net.Kill(sp)
	}
	// Restabilize the ring and re-propagate models to the new super-peers.
	// (The p2pdmt harness does this periodically under churn.)
	s.d.Stabilize()
	net.RunFor(10 * time.Second)
	s.Refresh()
	net.RunFor(time.Minute)
	var from simnet.NodeID = -1
	for _, id := range net.AliveNodes() {
		from = id
		break
	}
	scores, ok := predict(t, net, s, from, topicDoc(1, 1).X)
	if !ok {
		t.Fatal("prediction still failing after refresh")
	}
	sm := protocol.ScoreMap(scores)
	if sm["travel"] <= sm["food"] {
		t.Errorf("travel should outscore food: %v", sm)
	}
}

func TestRefineImprovesCoverage(t *testing.T) {
	net, s := build(t, 9, Config{Regions: 2, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	// Introduce a brand-new tag via refinement at one peer.
	novel := protocol.Doc{
		X:    vector.FromMap(map[int32]float64{200: 1, 201: 1}).Normalize(),
		Tags: []string{"quantum"},
	}
	// Refine with several positives so a model can exist.
	for v := 0; v < 4; v++ {
		d := protocol.Doc{
			X:    vector.FromMap(map[int32]float64{200: 1, 201: 1, 202 + int32(v): 0.5}).Normalize(),
			Tags: []string{"quantum"},
		}
		s.Refine(3, d)
	}
	net.RunFor(time.Minute)
	scores, ok := predict(t, net, s, 4, novel.X)
	if !ok {
		t.Fatal("prediction failed after refine")
	}
	if _, found := protocol.ScoreMap(scores)["quantum"]; !found {
		t.Error("refined tag never became predictable")
	}
}

func TestWeightedVsUnweightedDiffer(t *testing.T) {
	netW, sw := build(t, 12, Config{Regions: 3, Weighted: true, Seed: 3})
	sw.Fit()
	netW.RunFor(time.Minute)
	netU, su := build(t, 12, Config{Regions: 3, Weighted: false, Seed: 3})
	su.Fit()
	netU.RunFor(time.Minute)
	q := topicDoc(0, 3).X
	a, okA := predict(t, netW, sw, 1, q)
	b, okB := predict(t, netU, su, 1, q)
	if !okA || !okB {
		t.Fatal("predictions failed")
	}
	// Both should still rank music first.
	if protocol.SelectTags(a, 0, 1)[0] != "music" || protocol.SelectTags(b, 0, 1)[0] != "music" {
		t.Error("voting mode changed the top-1 on an easy query")
	}
}

func TestTrainCostCountedOnce(t *testing.T) {
	net, s := build(t, 8, Config{Regions: 2, Seed: 3})
	s.Fit()
	net.RunFor(time.Minute)
	sent := net.Stats().MessagesByKind["cempar.models"]
	if sent == 0 || sent > 8 {
		t.Errorf("model messages = %d, want one per peer at most", sent)
	}
	// A refresh without super-peer change must not re-send models.
	s.Refresh()
	net.RunFor(time.Minute)
	if again := net.Stats().MessagesByKind["cempar.models"]; again != sent {
		t.Errorf("refresh re-sent models: %d -> %d", sent, again)
	}
}

func TestString(t *testing.T) {
	_, s := build(t, 4, Config{Regions: 2, Seed: 1})
	if s.String() == "" || s.Name() != "CEMPaR" {
		t.Error("bad name/string")
	}
}
