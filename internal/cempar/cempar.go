// Package cempar implements CEMPaR (Communication-Efficient Multi-Party
// classification in P2P networks, Ang et al., ECML/PKDD 2009) as used by
// P2PDocTagger: every peer trains a non-linear SVM per tag on its local
// documents, propagates the support vectors once to a deterministically
// elected super-peer, and the super-peers cascade the collected models into
// regional models. Untagged documents are classified by routing their
// vectors to super-peers, whose regional models vote.
package cempar

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/runner"
	"repro/internal/simnet"
	"repro/internal/svm"
	"repro/internal/vector"
)

// Config tunes the protocol.
type Config struct {
	// Regions is the number of super-peer regions; default 4.
	Regions int
	// Kernel is the base-learner kernel; default RBF with gamma 1 (the
	// cascade-SVM paradigm requires a non-linear learner).
	Kernel svm.Kernel
	// C is the SVM penalty; default 1.
	C float64
	// CascadeFanIn controls how many models merge per cascade layer.
	CascadeFanIn int
	// Weighted enables weighting each regional model's vote by the number
	// of training examples behind it (the paper's "(weighted) majority
	// voting"); unweighted voting is the ablation.
	Weighted bool
	// OwnRegionOnly restricts queries to the querying peer's regional
	// super-peer (cheaper, less accurate). The default queries every
	// region's super-peer and aggregates with the paper's "(weighted)
	// majority voting".
	OwnRegionOnly bool
	// SettleDelay is how long a super-peer waits after model arrivals
	// before (re)cascading; default 2s of simulated time.
	SettleDelay time.Duration
	// QueryTimeout bounds how long a querying peer waits for super-peer
	// answers before concluding with whatever arrived; default 10s.
	QueryTimeout time.Duration
	// Seed drives SVM training.
	Seed int64
	// Parallel is the worker count for the local-training phase of Fit:
	// each peer trains from its own shard, so peers fan out over real
	// cores while the protocol's message exchange stays on the virtual
	// clock. 1 means serial; other values <= 0 mean GOMAXPROCS. The
	// result is bit-identical at any worker count.
	Parallel int
}

func (c *Config) defaults() {
	if c.Regions <= 0 {
		c.Regions = 4
	}
	if c.Kernel == (svm.Kernel{}) {
		c.Kernel = svm.Kernel{Kind: svm.KernelRBF, Gamma: 1}
	}
	if c.C == 0 {
		c.C = 1
	}
	if c.SettleDelay == 0 {
		c.SettleDelay = 2 * time.Second
	}
	if c.QueryTimeout == 0 {
		c.QueryTimeout = 10 * time.Second
	}
}

// peerState holds one peer's protocol state, including its super-peer role
// (any peer may become one).
type peerState struct {
	id   simnet.NodeID
	docs []protocol.Doc
	// Local per-tag models (trained during Fit).
	local map[string]*svm.KernelModel
	// sendSamples marks peers whose local data was one-class for some tag;
	// they ship labeled documents alongside (or instead of) models.
	sendSamples bool
	// outMsg caches the last propagated model message so re-propagation
	// after churn ships an identical (pointer-comparable) payload, letting
	// super-peers skip redundant cascades.
	outMsg *modelsMsg
	// lastSuperPeer remembers where models were last shipped; Refresh only
	// re-sends when the elected super-peer changed.
	lastSuperPeer simnet.NodeID
	// Super-peer role: latest model set received from each peer.
	collected map[simnet.NodeID]*modelsMsg
	// Regional cascaded models per tag, with their pooled example counts
	// and Platt calibration fitted on the pooled support examples.
	regional       map[string]*svm.KernelModel
	regionalWeight map[string]float64
	regionalPlatt  map[string]svm.PlattParams
	cascadePending bool
	// Querying role: outstanding Predict aggregations. Kept per peer (not
	// on the System) so answers and timeouts — which always execute at the
	// origin — touch only the origin's state under the sharded simulator.
	pending map[uint64]*pendingQuery
	nextReq uint64
}

type modelsMsg struct {
	from   simnet.NodeID
	models map[string]*svm.KernelModel
	counts map[string]int // training examples per tag at the sender
	// samples carries the peer's labeled documents when some local tag
	// was one-class (untrainable locally): the super-peer pools them into
	// the cascade as raw support examples. They are charged like support
	// vectors — which, for such small peers, they effectively are.
	samples  []protocol.Doc
	wireSize int
}

type queryMsg struct {
	x      *vector.Sparse
	origin simnet.NodeID
	req    uint64
}

type answerMsg struct {
	req    uint64
	scores map[string]float64
	weight map[string]float64
}

type pendingQuery struct {
	expected  int
	received  int
	scoreSum  map[string]float64
	weightSum map[string]float64
	cb        func([]metrics.ScoredTag, bool)
	done      bool
}

// System is a CEMPaR deployment over a DHT ring.
type System struct {
	cfg   Config
	d     *dht.DHT
	net   *simnet.Network
	peers map[simnet.NodeID]*peerState
}

// New builds the protocol over an existing DHT whose application messages
// it will consume. docs maps each peer to its local labeled documents.
// Construct the DHT with this system's Handler: see Attach.
func New(d *dht.DHT, cfg Config) *System {
	cfg.defaults()
	s := &System{
		cfg:   cfg,
		d:     d,
		net:   d.Network(),
		peers: make(map[simnet.NodeID]*peerState),
	}
	for _, id := range d.Peers() {
		s.peers[id] = &peerState{
			id:             id,
			lastSuperPeer:  -1,
			collected:      make(map[simnet.NodeID]*modelsMsg),
			regional:       make(map[string]*svm.KernelModel),
			regionalWeight: make(map[string]float64),
			regionalPlatt:  make(map[string]svm.PlattParams),
			pending:        make(map[uint64]*pendingQuery),
		}
	}
	return s
}

// Handler returns the application-message handler for peer id; pass it to
// dht.New's app callback.
func (s *System) Handler(id simnet.NodeID) simnet.Handler {
	return simnet.HandlerFunc(func(net *simnet.Network, m simnet.Message) {
		s.handle(id, m)
	})
}

// SetDocs installs a peer's local training documents (before Fit).
func (s *System) SetDocs(id simnet.NodeID, docs []protocol.Doc) {
	s.peers[id].docs = docs
}

// Name implements protocol.Classifier.
func (s *System) Name() string { return "CEMPaR" }

// Fit trains local models at every alive peer and propagates them to the
// peers' regional super-peers via DHT lookups. Run the network to complete.
//
// Training is pure per-peer CPU work that touches neither the network nor
// the virtual clock, so the peers train concurrently (cfg.Parallel
// workers); propagation then runs serially in peer order, producing
// exactly the message schedule of a serial Fit.
func (s *System) Fit() {
	var alive []simnet.NodeID
	for _, id := range s.d.Peers() {
		if s.net.Alive(id) {
			alive = append(alive, id)
		}
	}
	_ = runner.ForEach(len(alive), s.cfg.Parallel, func(i int) error {
		s.trainLocal(alive[i])
		return nil
	})
	for _, id := range alive {
		s.propagate(id)
	}
}

// Refresh re-propagates local models (e.g. after churn re-elected
// super-peers) without retraining.
func (s *System) Refresh() {
	for _, id := range s.d.Peers() {
		if !s.net.Alive(id) || s.peers[id].local == nil {
			continue
		}
		s.propagate(id)
	}
}

// trainLocal fits one kernel SVM per locally observed tag. Tags that are
// one-class locally (every document carries them, or the peer holds a
// single tag) cannot be trained here; the peer marks itself a sample
// contributor instead so its labeled documents still enter the cascade.
func (s *System) trainLocal(id simnet.NodeID) {
	p := s.peers[id]
	p.local = make(map[string]*svm.KernelModel)
	p.sendSamples = false
	p.outMsg = nil
	p.lastSuperPeer = -1
	for _, tag := range protocol.TagUniverse(p.docs) {
		exs := protocol.BinaryExamples(p.docs, tag)
		m, err := svm.TrainKernel(exs, svm.KernelOptions{
			Kernel: s.cfg.Kernel, C: s.cfg.C, Seed: s.cfg.Seed + int64(id),
		})
		if err != nil {
			p.sendSamples = true // untrainable locally: contribute raw examples
			continue
		}
		p.local[tag] = m
	}
}

// propagate looks up the peer's regional super-peer and ships the local
// models there ("these SVM models (support vectors) are propagated once to
// one of the super-peers").
func (s *System) propagate(id simnet.NodeID) {
	p := s.peers[id]
	if len(p.local) == 0 && !p.sendSamples {
		return
	}
	region := dht.Region(s.d.NodeHash(id), s.cfg.Regions)
	key := dht.SuperPeerKey(region, s.cfg.Regions)
	if p.outMsg == nil {
		msg := &modelsMsg{from: id, models: p.local, counts: make(map[string]int)}
		// Wire size: each distinct support vector crosses the network once
		// (per-tag models share the same local documents, so the sender
		// ships the SV union plus per-tag coefficient lists).
		distinct := make(map[*vector.Sparse]bool)
		size := 16
		for tag, m := range p.local {
			msg.counts[tag] = len(p.docs)
			size += len(tag) + 16 // tag header + bias/kernel params
			for _, sv := range m.SVs {
				size += 8 // coefficient
				if !distinct[sv.X] {
					distinct[sv.X] = true
					size += sv.X.WireSize()
				}
			}
		}
		if p.sendSamples {
			msg.samples = p.docs
			for _, d := range p.docs {
				if !distinct[d.X] {
					distinct[d.X] = true
					size += d.X.WireSize()
				}
				for _, tag := range d.Tags {
					size += len(tag) + 1
				}
			}
		}
		msg.wireSize = size
		p.outMsg = msg
	}
	msg := p.outMsg
	_ = s.d.Lookup(id, key, func(r dht.LookupResult) {
		if r.Failed || !s.net.Alive(id) {
			return
		}
		if r.Owner == p.lastSuperPeer {
			return // models already live at this super-peer
		}
		p.lastSuperPeer = r.Owner
		s.net.Send(simnet.Message{
			From: id, To: r.Owner, Kind: "cempar.models", Size: msg.wireSize, Payload: msg,
		})
	})
}

func (s *System) handle(self simnet.NodeID, m simnet.Message) {
	switch m.Kind {
	case "cempar.models":
		s.onModels(self, m.Payload.(*modelsMsg))
	case "cempar.query":
		s.onQuery(self, m.Payload.(queryMsg))
	case "cempar.answer":
		s.onAnswer(self, m.Payload.(answerMsg))
	}
}

// onModels stores a peer's models at the super-peer and schedules a
// (re)cascade after the settle delay.
func (s *System) onModels(self simnet.NodeID, msg *modelsMsg) {
	p := s.peers[self]
	if p.collected[msg.from] == msg {
		return // identical re-propagation (e.g. periodic refresh): no-op
	}
	p.collected[msg.from] = msg
	if p.cascadePending {
		return
	}
	p.cascadePending = true
	s.net.Schedule(self, s.cfg.SettleDelay, func() {
		p.cascadePending = false
		s.cascade(self)
	})
}

// cascade merges all collected models per tag into regional models
// ("super-peers which collect the local models of peers cascade them to
// construct regional cascaded models").
func (s *System) cascade(self simnet.NodeID) {
	p := s.peers[self]
	byTag := make(map[string][]*svm.KernelModel)
	weight := make(map[string]float64)
	var samples []protocol.Doc
	// Iterate senders in id order: map order would vary run to run and
	// change floating-point summation and cascade grouping, breaking
	// reproducibility.
	senders := make([]simnet.NodeID, 0, len(p.collected))
	for id := range p.collected {
		senders = append(senders, id)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, id := range senders {
		msg := p.collected[id]
		tags := make([]string, 0, len(msg.models))
		for tag := range msg.models {
			tags = append(tags, tag)
		}
		sort.Strings(tags)
		for _, tag := range tags {
			byTag[tag] = append(byTag[tag], msg.models[tag])
			weight[tag] += float64(msg.counts[tag])
		}
		samples = append(samples, msg.samples...)
	}
	// Raw samples from one-class peers extend every tag's pool: they are
	// positives for their own tags and negatives elsewhere.
	for _, tag := range protocol.TagUniverse(samples) {
		if _, ok := byTag[tag]; !ok {
			byTag[tag] = nil
		}
	}
	// Cascade and calibrate each tag's models concurrently: tags are
	// independent one-vs-all problems, samples and byTag are read-only
	// here, and every job is seeded from the config alone, so the merged
	// models are identical at any worker count. The results install
	// serially in sorted-tag order.
	tags := make([]string, 0, len(byTag))
	for tag := range byTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	type regionalModel struct {
		model  *svm.KernelModel
		platt  svm.PlattParams
		weight float64
	}
	merged, _ := runner.Map(len(tags), s.cfg.Parallel, func(i int) (regionalModel, error) {
		tag := tags[i]
		models := byTag[tag]
		w := weight[tag]
		// Samples from one-class peers join the cascade as one degenerate
		// "model" whose support vectors are exactly the labeled examples.
		if len(samples) > 0 {
			if sm := sampleModel(samples, tag, s.cfg.Kernel, s.cfg.C); sm != nil {
				models = append(models, sm)
				w += float64(len(samples))
			}
		}
		if len(models) == 0 {
			return regionalModel{}, nil
		}
		m, err := svm.Cascade(models, svm.CascadeOptions{
			KernelOptions: svm.KernelOptions{
				Kernel: s.cfg.Kernel, C: s.cfg.C, Seed: s.cfg.Seed + 7777,
			},
			FanIn: s.cfg.CascadeFanIn,
		})
		if err != nil {
			return regionalModel{}, nil
		}
		// Calibrate on the pooled support examples so votes from different
		// regions are on a common probability scale.
		var pool []svm.Example
		for _, mm := range models {
			pool = append(pool, mm.SupportExamples()...)
		}
		platt := svm.CalibrateKernelCV(pool, svm.KernelOptions{
			Kernel: s.cfg.Kernel, C: s.cfg.C, Seed: s.cfg.Seed + 8888,
		}, m, 3)
		return regionalModel{model: m, platt: platt, weight: w}, nil
	})
	p.regional = make(map[string]*svm.KernelModel, len(tags))
	p.regionalWeight = make(map[string]float64, len(tags))
	p.regionalPlatt = make(map[string]svm.PlattParams, len(tags))
	for i, tag := range tags {
		if merged[i].model == nil {
			continue
		}
		p.regional[tag] = merged[i].model
		p.regionalWeight[tag] = merged[i].weight
		p.regionalPlatt[tag] = merged[i].platt
	}
}

// sampleModel wraps raw labeled documents as a degenerate kernel model so
// the cascade can pool them: every document becomes a support vector with
// coefficient ±C according to whether it carries the tag. Returns nil when
// no document mentions anything (empty input).
func sampleModel(samples []protocol.Doc, tag string, k svm.Kernel, c float64) *svm.KernelModel {
	if len(samples) == 0 {
		return nil
	}
	m := &svm.KernelModel{Kernel: k}
	for _, ex := range protocol.BinaryExamples(samples, tag) {
		m.SVs = append(m.SVs, svm.SupportVector{X: ex.X, Coeff: ex.Y * c})
	}
	m.Precompute()
	return m
}

// Predict implements protocol.Classifier: the untagged vector travels to
// super-peers, whose regional models score every known tag; the origin
// aggregates with (weighted) majority voting.
func (s *System) Predict(from simnet.NodeID, x *vector.Sparse, cb func([]metrics.ScoredTag, bool)) {
	if !s.net.Alive(from) {
		cb(nil, false)
		return
	}
	var regions []int
	if s.cfg.OwnRegionOnly {
		regions = []int{dht.Region(s.d.NodeHash(from), s.cfg.Regions)}
	} else {
		for r := 0; r < s.cfg.Regions; r++ {
			regions = append(regions, r)
		}
	}
	origin := s.peers[from]
	req := origin.nextReq
	origin.nextReq++
	pq := &pendingQuery{
		expected:  len(regions),
		scoreSum:  make(map[string]float64),
		weightSum: make(map[string]float64),
		cb:        cb,
	}
	origin.pending[req] = pq
	for _, r := range regions {
		key := dht.SuperPeerKey(r, s.cfg.Regions)
		_ = s.d.Lookup(from, key, func(lr dht.LookupResult) {
			if lr.Failed || !s.net.Alive(from) {
				return
			}
			s.net.Send(simnet.Message{
				From: from, To: lr.Owner, Kind: "cempar.query",
				Size:    x.WireSize() + 16,
				Payload: queryMsg{x: x, origin: from, req: req},
			})
		})
	}
	// Conclude after the timeout with whatever answers arrived.
	s.net.Schedule(from, s.cfg.QueryTimeout, func() { s.finalize(from, req) })
}

// onQuery evaluates the regional models at a super-peer and replies.
func (s *System) onQuery(self simnet.NodeID, q queryMsg) {
	p := s.peers[self]
	ans := answerMsg{
		req:    q.req,
		scores: make(map[string]float64, len(p.regional)),
		weight: make(map[string]float64, len(p.regional)),
	}
	for tag, m := range p.regional {
		ans.scores[tag] = p.regionalPlatt[tag].Prob(m.Decision(q.x))
		if s.cfg.Weighted {
			ans.weight[tag] = p.regionalWeight[tag]
		} else {
			ans.weight[tag] = 1
		}
	}
	size := 16 + 20*len(ans.scores)
	s.net.Send(simnet.Message{
		From: self, To: q.origin, Kind: "cempar.answer", Size: size, Payload: ans,
	})
}

// onAnswer accumulates one super-peer's vote at the origin.
func (s *System) onAnswer(self simnet.NodeID, a answerMsg) {
	pq, ok := s.peers[self].pending[a.req]
	if !ok || pq.done {
		return
	}
	for tag, sc := range a.scores {
		w := a.weight[tag]
		pq.scoreSum[tag] += w * sc
		pq.weightSum[tag] += w
	}
	pq.received++
	if pq.received >= pq.expected {
		s.finalize(self, a.req)
	}
}

func (s *System) finalize(origin simnet.NodeID, req uint64) {
	p := s.peers[origin]
	pq, ok := p.pending[req]
	if !ok || pq.done {
		return
	}
	pq.done = true
	delete(p.pending, req)
	if pq.received == 0 {
		pq.cb(nil, false)
		return
	}
	out := make([]metrics.ScoredTag, 0, len(pq.scoreSum))
	for tag, sum := range pq.scoreSum {
		out = append(out, metrics.ScoredTag{Tag: tag, Score: sum / pq.weightSum[tag]})
	}
	// Canonical tag order: every downstream consumer re-sorts with a
	// full tie-break, but the callback contract itself should not leak
	// map iteration order (dmtvet/maprange).
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	pq.cb(out, true)
}

// Refine implements protocol.Refiner: the corrected document joins the
// peer's training set, the affected tag models retrain and re-propagate.
func (s *System) Refine(peer simnet.NodeID, doc protocol.Doc) {
	p := s.peers[peer]
	p.docs = append(p.docs, doc)
	if !s.net.Alive(peer) {
		return
	}
	s.trainLocal(peer)
	s.propagate(peer)
}

// SuperPeers reports the current ground-truth super-peer of every region
// (for experiment introspection).
func (s *System) SuperPeers() []simnet.NodeID { return s.d.ElectSuperPeers(s.cfg.Regions) }

// RegionalTagCount reports how many tags have a regional model at node id;
// 0 for non-super-peers.
func (s *System) RegionalTagCount(id simnet.NodeID) int { return len(s.peers[id].regional) }

// String describes the configuration.
func (s *System) String() string {
	return fmt.Sprintf("CEMPaR(regions=%d kernel=%s weighted=%v)", s.cfg.Regions, s.cfg.Kernel.Kind, s.cfg.Weighted)
}

// DebugRegional exposes a super-peer's regional decision, calibration and
// vote weight for one tag — used by diagnostic tools and tests.
func (s *System) DebugRegional(id simnet.NodeID, tag string, x *vector.Sparse) (decision float64, platt svm.PlattParams, weight float64, ok bool) {
	p := s.peers[id]
	m, ok := p.regional[tag]
	if !ok {
		return 0, svm.PlattParams{}, 0, false
	}
	return m.Decision(x), p.regionalPlatt[tag], p.regionalWeight[tag], true
}
