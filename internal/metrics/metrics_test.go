package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMicroMetricsKnownValues(t *testing.T) {
	m := NewMultiLabel(4)
	// gold {a,b}, pred {a,c}: tp=1 fp=1 fn=1
	m.Add(NewLabelSet([]string{"a", "b"}), NewLabelSet([]string{"a", "c"}))
	if p := m.MicroPrecision(); p != 0.5 {
		t.Errorf("P = %v, want 0.5", p)
	}
	if r := m.MicroRecall(); r != 0.5 {
		t.Errorf("R = %v, want 0.5", r)
	}
	if f := m.MicroF1(); f != 0.5 {
		t.Errorf("F1 = %v, want 0.5", f)
	}
	// Hamming: symmetric difference {b,c} = 2 over universe 4.
	if h := m.HammingLoss(); h != 0.5 {
		t.Errorf("Hamming = %v, want 0.5", h)
	}
	if s := m.SubsetAccuracy(); s != 0 {
		t.Errorf("subset = %v, want 0", s)
	}
}

func TestPerfectPrediction(t *testing.T) {
	m := NewMultiLabel(10)
	m.Add(NewLabelSet([]string{"x", "y"}), NewLabelSet([]string{"x", "y"}))
	if m.MicroF1() != 1 || m.SubsetAccuracy() != 1 || m.HammingLoss() != 0 {
		t.Errorf("perfect prediction scored %v", m)
	}
}

func TestEmptyPredictions(t *testing.T) {
	m := NewMultiLabel(5)
	m.Add(NewLabelSet([]string{"a"}), NewLabelSet(nil))
	if p := m.MicroPrecision(); p != 1 {
		t.Errorf("precision with no predictions = %v, want 1 (vacuous)", p)
	}
	if r := m.MicroRecall(); r != 0 {
		t.Errorf("recall = %v, want 0", r)
	}
}

func TestHammingNaNWithoutUniverse(t *testing.T) {
	m := NewMultiLabel(0)
	m.Add(NewLabelSet([]string{"a"}), NewLabelSet([]string{"a"}))
	if !math.IsNaN(m.HammingLoss()) {
		t.Error("Hamming should be NaN without universe size")
	}
}

func TestMacroF1WeightsTagsEqually(t *testing.T) {
	m := NewMultiLabel(0)
	// Tag "big" predicted perfectly 9 times; tag "small" always missed.
	for i := 0; i < 9; i++ {
		m.Add(NewLabelSet([]string{"big"}), NewLabelSet([]string{"big"}))
	}
	m.Add(NewLabelSet([]string{"small"}), NewLabelSet(nil))
	micro, macro := m.MicroF1(), m.MacroF1()
	if macro >= micro {
		t.Errorf("macro (%v) should punish the rare-tag failure more than micro (%v)", macro, micro)
	}
	if macro != 0.5 {
		t.Errorf("macro = %v, want 0.5 (perfect on one tag, zero on the other)", macro)
	}
}

func TestLabelSetSlice(t *testing.T) {
	s := NewLabelSet([]string{"z", "a", "m"})
	got := s.Slice()
	want := []string{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v", got)
		}
	}
}

func TestPrecisionAtK(t *testing.T) {
	gold := NewLabelSet([]string{"a", "b"})
	scored := []ScoredTag{{"a", 0.9}, {"c", 0.8}, {"b", 0.7}, {"d", 0.1}}
	if p := PrecisionAtK(gold, scored, 1); p != 1 {
		t.Errorf("P@1 = %v", p)
	}
	if p := PrecisionAtK(gold, scored, 2); p != 0.5 {
		t.Errorf("P@2 = %v", p)
	}
	if p := PrecisionAtK(gold, scored, 3); math.Abs(p-2.0/3) > 1e-12 {
		t.Errorf("P@3 = %v", p)
	}
	if p := PrecisionAtK(gold, scored, 0); p != 0 {
		t.Errorf("P@0 = %v", p)
	}
	if p := PrecisionAtK(gold, scored, 100); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("P@100 = %v (clamps to len)", p)
	}
	if p := PrecisionAtK(gold, nil, 3); p != 0 {
		t.Errorf("P@k empty = %v", p)
	}
}

func TestOneError(t *testing.T) {
	gold := NewLabelSet([]string{"a"})
	if e := OneError(gold, []ScoredTag{{"a", 0.9}, {"b", 0.5}}); e != 0 {
		t.Errorf("OneError = %v, want 0", e)
	}
	if e := OneError(gold, []ScoredTag{{"b", 0.9}, {"a", 0.5}}); e != 1 {
		t.Errorf("OneError = %v, want 1", e)
	}
	if e := OneError(gold, nil); e != 1 {
		t.Errorf("OneError empty = %v, want 1", e)
	}
}

func TestCommCost(t *testing.T) {
	c := CommCost{Messages: 10, Bytes: 2048, Peers: 4}
	if c.BytesPerPeer() != 512 {
		t.Errorf("BytesPerPeer = %v", c.BytesPerPeer())
	}
	if (CommCost{}).BytesPerPeer() != 0 {
		t.Error("zero peers should yield 0")
	}
	if s := c.String(); s == "" {
		t.Error("empty String")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512B",
		2048:    "2.0KB",
		1 << 20: "1.0MB",
		1 << 30: "1.0GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPropertyF1Bounds(t *testing.T) {
	f := func(goldTags, predTags []uint8) bool {
		gold, pred := LabelSet{}, LabelSet{}
		for _, g := range goldTags {
			gold[string(rune('a'+g%26))] = true
		}
		for _, p := range predTags {
			pred[string(rune('a'+p%26))] = true
		}
		m := NewMultiLabel(26)
		m.Add(gold, pred)
		f1 := m.MicroF1()
		h := m.HammingLoss()
		return f1 >= 0 && f1 <= 1 && h >= 0 && h <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyPrecisionRecallSymmetry(t *testing.T) {
	// Swapping gold and pred swaps precision and recall.
	f := func(goldTags, predTags []uint8) bool {
		gold, pred := LabelSet{}, LabelSet{}
		for _, g := range goldTags {
			gold[string(rune('a'+g%26))] = true
		}
		for _, p := range predTags {
			pred[string(rune('a'+p%26))] = true
		}
		a := NewMultiLabel(0)
		a.Add(gold, pred)
		b := NewMultiLabel(0)
		b.Add(pred, gold)
		return math.Abs(a.MicroPrecision()-b.MicroRecall()) < 1e-12 &&
			math.Abs(a.MicroRecall()-b.MicroPrecision()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
