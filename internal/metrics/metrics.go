// Package metrics computes multi-label classification quality measures and
// aggregates communication-cost statistics for the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// LabelSet is a set of assigned tags.
type LabelSet map[string]bool

// NewLabelSet builds a set from a tag slice.
func NewLabelSet(tags []string) LabelSet {
	s := make(LabelSet, len(tags))
	for _, t := range tags {
		s[t] = true
	}
	return s
}

// Slice returns the tags in sorted order.
func (s LabelSet) Slice() []string {
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// MultiLabel accumulates per-document predictions and computes the standard
// multi-label measures. Add every (gold, predicted) pair, then read the
// measures.
type MultiLabel struct {
	docs          int
	tp, fp, fn    float64 // micro counts
	perTag        map[string]*tagCounts
	hammingNum    float64
	hammingDenom  float64
	exactMatches  int
	universeKnown bool
	universeSize  int
}

type tagCounts struct{ tp, fp, fn float64 }

// NewMultiLabel returns an empty accumulator. universeSize (the number of
// possible tags) is needed for Hamming loss; pass 0 to skip it.
func NewMultiLabel(universeSize int) *MultiLabel {
	return &MultiLabel{
		perTag:        make(map[string]*tagCounts),
		universeKnown: universeSize > 0,
		universeSize:  universeSize,
	}
}

// Add records one document's gold and predicted tag sets.
func (m *MultiLabel) Add(gold, pred LabelSet) {
	m.docs++
	exact := true
	for t := range pred {
		c := m.tag(t)
		if gold[t] {
			m.tp++
			c.tp++
		} else {
			m.fp++
			c.fp++
			exact = false
		}
	}
	for t := range gold {
		if !pred[t] {
			m.fn++
			m.tag(t).fn++
			exact = false
		}
	}
	if exact {
		m.exactMatches++
	}
	if m.universeKnown {
		// Hamming loss: symmetric difference / universe size.
		diff := 0
		for t := range pred {
			if !gold[t] {
				diff++
			}
		}
		for t := range gold {
			if !pred[t] {
				diff++
			}
		}
		m.hammingNum += float64(diff)
		m.hammingDenom += float64(m.universeSize)
	}
}

func (m *MultiLabel) tag(t string) *tagCounts {
	c, ok := m.perTag[t]
	if !ok {
		c = &tagCounts{}
		m.perTag[t] = c
	}
	return c
}

// Docs returns the number of documents scored.
func (m *MultiLabel) Docs() int { return m.docs }

// Counts returns the pooled true-positive, false-positive and
// false-negative tag counts.
func (m *MultiLabel) Counts() (tp, fp, fn float64) { return m.tp, m.fp, m.fn }

// MicroPrecision returns TP/(TP+FP) pooled over all tags (1 when nothing
// was predicted).
func (m *MultiLabel) MicroPrecision() float64 {
	if m.tp+m.fp == 0 {
		return 1
	}
	return m.tp / (m.tp + m.fp)
}

// MicroRecall returns TP/(TP+FN) pooled over all tags (1 when there was
// nothing to find).
func (m *MultiLabel) MicroRecall() float64 {
	if m.tp+m.fn == 0 {
		return 1
	}
	return m.tp / (m.tp + m.fn)
}

// MicroF1 returns the harmonic mean of micro precision and recall.
func (m *MultiLabel) MicroF1() float64 {
	p, r := m.MicroPrecision(), m.MicroRecall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages per-tag F1 over every tag seen in gold or predictions.
func (m *MultiLabel) MacroF1() float64 {
	if len(m.perTag) == 0 {
		return 0
	}
	// Sum in sorted-tag order: float addition is order-sensitive at the
	// ulp, and map iteration order would make repeated calls disagree in
	// the last digit — breaking byte-identical experiment tables.
	tags := make([]string, 0, len(m.perTag))
	for tag := range m.perTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	var sum float64
	for _, tag := range tags {
		c := m.perTag[tag]
		var p, r float64
		if c.tp+c.fp > 0 {
			p = c.tp / (c.tp + c.fp)
		}
		if c.tp+c.fn > 0 {
			r = c.tp / (c.tp + c.fn)
		}
		if p+r > 0 {
			sum += 2 * p * r / (p + r)
		}
	}
	return sum / float64(len(m.perTag))
}

// HammingLoss returns the average per-tag disagreement rate, or NaN when
// the universe size was unknown.
func (m *MultiLabel) HammingLoss() float64 {
	if !m.universeKnown || m.hammingDenom == 0 {
		return math.NaN()
	}
	return m.hammingNum / m.hammingDenom
}

// SubsetAccuracy returns the fraction of documents whose predicted set
// exactly equals the gold set.
func (m *MultiLabel) SubsetAccuracy() float64 {
	if m.docs == 0 {
		return 0
	}
	return float64(m.exactMatches) / float64(m.docs)
}

// String renders a one-line summary.
func (m *MultiLabel) String() string {
	return fmt.Sprintf("docs=%d microF1=%.4f macroF1=%.4f P=%.4f R=%.4f subset=%.4f",
		m.docs, m.MicroF1(), m.MacroF1(), m.MicroPrecision(), m.MicroRecall(), m.SubsetAccuracy())
}

// ---------------------------------------------------------------------------
// Ranking metrics for confidence-scored predictions

// ScoredTag is a tag with a prediction confidence.
type ScoredTag struct {
	Tag   string
	Score float64
}

// PrecisionAtK returns the fraction of the top-k scored tags that are in
// gold. Ties break by tag name for determinism.
func PrecisionAtK(gold LabelSet, scored []ScoredTag, k int) float64 {
	if k <= 0 {
		return 0
	}
	s := append([]ScoredTag(nil), scored...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Tag < s[j].Tag
	})
	if k > len(s) {
		k = len(s)
	}
	if k == 0 {
		return 0
	}
	hit := 0
	for _, st := range s[:k] {
		if gold[st.Tag] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// OneError returns 1 when the single highest-scored tag is not in gold,
// 0 when it is (averaged by callers over documents).
func OneError(gold LabelSet, scored []ScoredTag) float64 {
	if len(scored) == 0 {
		return 1
	}
	best := scored[0]
	for _, st := range scored[1:] {
		if st.Score > best.Score || (st.Score == best.Score && st.Tag < best.Tag) {
			best = st
		}
	}
	if gold[best.Tag] {
		return 0
	}
	return 1
}

// ---------------------------------------------------------------------------
// Communication cost aggregation

// CommCost summarizes network traffic for one experiment phase.
type CommCost struct {
	Messages int64
	Bytes    int64
	Peers    int
}

// BytesPerPeer returns average bytes sent per peer.
func (c CommCost) BytesPerPeer() float64 {
	if c.Peers == 0 {
		return 0
	}
	return float64(c.Bytes) / float64(c.Peers)
}

// String renders the cost with human-scaled byte units.
func (c CommCost) String() string {
	return fmt.Sprintf("msgs=%d bytes=%s (%s/peer)", c.Messages, FormatBytes(c.Bytes),
		FormatBytes(int64(c.BytesPerPeer())))
}

// FormatBytes renders a byte count with binary units.
func FormatBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(b)/float64(div), "KMGTPE"[exp])
}
