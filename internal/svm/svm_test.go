package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

// gaussianBlobs generates two linearly separable Gaussian clouds in dim
// dimensions, centered at ±sep along every axis.
func gaussianBlobs(rng *rand.Rand, n, dim int, sep float64) []Example {
	data := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		y := 1.0
		if i%2 == 1 {
			y = -1
		}
		m := make(map[int32]float64, dim)
		for d := 0; d < dim; d++ {
			m[int32(d)] = y*sep + rng.NormFloat64()
		}
		data = append(data, Example{X: vector.FromMap(m), Y: y})
	}
	return data
}

// xorData generates the classic non-linearly-separable XOR pattern.
func xorData(rng *rand.Rand, n int) []Example {
	data := make([]Example, 0, n)
	for i := 0; i < n; i++ {
		x0 := float64(rng.Intn(2))*2 - 1
		x1 := float64(rng.Intn(2))*2 - 1
		y := x0 * x1
		m := map[int32]float64{
			0: x0 + 0.15*rng.NormFloat64(),
			1: x1 + 0.15*rng.NormFloat64(),
		}
		data = append(data, Example{X: vector.FromMap(m), Y: y})
	}
	return data
}

func TestValidate(t *testing.T) {
	if _, err := TrainLinear(nil, LinearOptions{}); err != ErrNoData {
		t.Errorf("empty data: err = %v, want ErrNoData", err)
	}
	one := []Example{{X: vector.FromMap(map[int32]float64{0: 1}), Y: 1}}
	if _, err := TrainLinear(one, LinearOptions{}); err != ErrOneClass {
		t.Errorf("one class: err = %v, want ErrOneClass", err)
	}
	bad := []Example{
		{X: vector.FromMap(map[int32]float64{0: 1}), Y: 1},
		{X: vector.FromMap(map[int32]float64{0: -1}), Y: 0.5},
	}
	if _, err := TrainLinear(bad, LinearOptions{}); err == nil {
		t.Error("bad label accepted")
	}
}

func TestTrainLinearSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := gaussianBlobs(rng, 200, 5, 2.0)
	test := gaussianBlobs(rng, 200, 5, 2.0)
	m, err := TrainLinear(train, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.95 {
		t.Errorf("linear accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainPegasosSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	train := gaussianBlobs(rng, 300, 5, 2.0)
	test := gaussianBlobs(rng, 200, 5, 2.0)
	m, err := TrainPegasos(train, PegasosOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, test); acc < 0.9 {
		t.Errorf("pegasos accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainKernelRBFSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train := xorData(rng, 120)
	test := xorData(rng, 120)
	// Linear SVM cannot beat chance by much on XOR.
	lin, err := TrainLinear(train, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A linear separator can classify at most 3 of the 4 XOR quadrants
	// (~75%); anything near that bound means it did not actually solve it.
	linAcc := Accuracy(lin, test)
	if linAcc > 0.85 {
		t.Errorf("linear XOR accuracy suspiciously high: %v", linAcc)
	}
	// RBF SVM separates it.
	k, err := TrainKernel(train, KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(k, test); acc < 0.9 {
		t.Errorf("rbf XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainKernelLinearKind(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	train := gaussianBlobs(rng, 100, 4, 2.0)
	m, err := TrainKernel(train, KernelOptions{Kernel: Kernel{Kind: KernelLinear}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(m, train); acc < 0.9 {
		t.Errorf("train accuracy = %v", acc)
	}
	if len(m.SVs) == 0 {
		t.Error("no support vectors retained")
	}
	if len(m.SVs) >= len(train) {
		t.Errorf("all %d examples kept as SVs; expected sparsity", len(m.SVs))
	}
}

func TestKernelEval(t *testing.T) {
	a := vector.FromMap(map[int32]float64{0: 1})
	b := vector.FromMap(map[int32]float64{0: 1})
	c := vector.FromMap(map[int32]float64{1: 1})
	rbf := Kernel{Kind: KernelRBF, Gamma: 0.5}
	if got := rbf.Eval(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("rbf(a,a) = %v, want 1", got)
	}
	want := math.Exp(-0.5 * 2)
	if got := rbf.Eval(a, c); math.Abs(got-want) > 1e-12 {
		t.Errorf("rbf(a,c) = %v, want %v", got, want)
	}
	poly := Kernel{Kind: KernelPoly, Gamma: 1, Coef0: 1, Degree: 2}
	if got := poly.Eval(a, b); math.Abs(got-4) > 1e-12 {
		t.Errorf("poly = %v, want 4", got)
	}
	lin := Kernel{Kind: KernelLinear}
	if got := lin.Eval(a, c); got != 0 {
		t.Errorf("linear = %v, want 0", got)
	}
}

func TestKernelKindString(t *testing.T) {
	if KernelRBF.String() != "rbf" || KernelLinear.String() != "linear" || KernelPoly.String() != "poly" {
		t.Error("kernel names wrong")
	}
	if KernelKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestCascadePreservesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	test := gaussianBlobs(rng, 200, 4, 2.0)
	// Train 8 small models on disjoint chunks and cascade them.
	var models []*KernelModel
	for p := 0; p < 8; p++ {
		chunk := gaussianBlobs(rng, 40, 4, 2.0)
		m, err := TrainKernel(chunk, KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 0.5}, Seed: int64(p)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	merged, err := Cascade(models, CascadeOptions{
		KernelOptions: KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 0.5}, Seed: 99},
		FanIn:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(merged, test); acc < 0.9 {
		t.Errorf("cascade accuracy = %v, want >= 0.9", acc)
	}
}

func TestCascadeSingleAndEmpty(t *testing.T) {
	if _, err := Cascade(nil, CascadeOptions{}); err != ErrNoData {
		t.Errorf("empty cascade err = %v", err)
	}
	rng := rand.New(rand.NewSource(12))
	m, err := TrainKernel(gaussianBlobs(rng, 30, 3, 2), KernelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Cascade([]*KernelModel{m}, CascadeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Error("single-model cascade should return the model unchanged")
	}
}

func TestSupportExamplesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, err := TrainKernel(gaussianBlobs(rng, 60, 3, 2), KernelOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exs := m.SupportExamples()
	if len(exs) != len(m.SVs) {
		t.Fatalf("got %d examples for %d SVs", len(exs), len(m.SVs))
	}
	for i, ex := range exs {
		if ex.Y != 1 && ex.Y != -1 {
			t.Errorf("example %d label %v", i, ex.Y)
		}
		if (ex.Y > 0) != (m.SVs[i].Coeff > 0) {
			t.Errorf("example %d label sign mismatch", i)
		}
	}
}

func TestWireSizes(t *testing.T) {
	lm := &LinearModel{W: []float64{1, 0, 2}, Bias: 0.5}
	if got := lm.WireSize(); got != 16+24 {
		t.Errorf("linear wire size = %d, want 40", got)
	}
	sv := vector.FromMap(map[int32]float64{0: 1, 1: 1})
	km := &KernelModel{SVs: []SupportVector{{X: sv, Coeff: 1}}}
	want := 32 + sv.WireSize() + 8
	if got := km.WireSize(); got != want {
		t.Errorf("kernel wire size = %d, want %d", got, want)
	}
}

func TestWeightVector(t *testing.T) {
	lm := &LinearModel{W: []float64{0, 3, 0, -1}}
	wv := lm.WeightVector()
	if wv.Len() != 2 || wv.At(1) != 3 || wv.At(3) != -1 {
		t.Errorf("WeightVector = %v", wv)
	}
}

func TestTrainLinearDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	data := gaussianBlobs(rng, 100, 4, 1.5)
	a, err := TrainLinear(data, LinearOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainLinear(data, LinearOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestPropertyDecisionMarginAgreesWithPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	data := gaussianBlobs(rng, 120, 4, 2)
	m, err := TrainLinear(data, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		x := vector.FromMap(map[int32]float64{
			0: rr.NormFloat64(), 1: rr.NormFloat64(),
			2: rr.NormFloat64(), 3: rr.NormFloat64(),
		})
		d := m.Decision(x)
		p := Predict(m, x)
		return (d >= 0 && p == 1) || (d < 0 && p == -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCascadeDecisionFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	var models []*KernelModel
	for p := 0; p < 4; p++ {
		m, err := TrainKernel(gaussianBlobs(rng, 24, 3, 2), KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}, Seed: int64(p)})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	merged, err := Cascade(models, CascadeOptions{KernelOptions: KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		x := vector.FromMap(map[int32]float64{0: a, 1: b, 2: c})
		d := merged.Decision(x)
		return !math.IsNaN(d) && !math.IsInf(d, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTrainLinear(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := gaussianBlobs(rng, 200, 20, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainLinear(data, LinearOptions{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainKernelRBF(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := gaussianBlobs(rng, 100, 20, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TrainKernel(data, KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 0.5}, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPruned(t *testing.T) {
	m := &LinearModel{W: []float64{10, 0.01, -5, 0.001, 0}, Bias: 1}
	p := m.Pruned(0.05) // cut = 0.5
	if p.W[0] != 10 || p.W[2] != -5 {
		t.Errorf("large weights pruned: %v", p.W)
	}
	if p.W[1] != 0 || p.W[3] != 0 {
		t.Errorf("small weights kept: %v", p.W)
	}
	if p.Bias != 1 {
		t.Error("bias changed")
	}
	if m.W[1] != 0.01 {
		t.Error("Pruned mutated the receiver")
	}
	// Pruning must shrink the wire size.
	if p.WireSize() >= m.WireSize() {
		t.Error("pruning did not shrink wire size")
	}
}

func TestNoised(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &LinearModel{W: []float64{1, 0, -2, 3}, Bias: 0.5}
	n := m.Noised(0.1, rng)
	if n == m {
		t.Fatal("noise requested but same model returned")
	}
	// Zero weights stay zero (sparsity pattern is not leaked further).
	if n.W[1] != 0 {
		t.Error("zero weight became non-zero")
	}
	changed := 0
	for i := range m.W {
		if n.W[i] != m.W[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no weight perturbed")
	}
	// Zero scale is the identity.
	if m.Noised(0, rng) != m {
		t.Error("zero noise should return the receiver")
	}
	// Mild noise barely moves decisions on separable data.
	rng2 := rand.New(rand.NewSource(2))
	data := gaussianBlobs(rng2, 200, 5, 2.0)
	trained, err := TrainLinear(data, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	noisy := trained.Noised(0.1, rng2)
	if acc := Accuracy(noisy, data); acc < 0.9 {
		t.Errorf("mild noise destroyed accuracy: %v", acc)
	}
}
