package svm

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vector"
)

// randSparse builds a deterministic random sparse vector with nnz entries
// below dim.
func randSparse(rng *rand.Rand, dim, nnz int) *vector.Sparse {
	m := make(map[int32]float64, nnz)
	for len(m) < nnz {
		m[int32(rng.Intn(dim))] = rng.NormFloat64()
	}
	return vector.FromMap(m)
}

// randBank builds a per-tag LinearModel bank with weights of varying
// dimensionality (some tags deliberately shorter than the widest,
// exercising the out-of-range skip). fill is the fraction of non-zero
// weights per model: low fill selects the CSR layout, high fill the
// dense-row layout.
func randBank(rng *rand.Rand, tags, dim int, fill float64) map[string]*LinearModel {
	bank := make(map[string]*LinearModel, tags)
	for t := 0; t < tags; t++ {
		d := dim/2 + rng.Intn(dim/2+1)
		w := make([]float64, d)
		for i := range w {
			if rng.Float64() < fill {
				w[i] = rng.NormFloat64()
			}
		}
		bank[fmt.Sprintf("tag%02d", t)] = &LinearModel{W: w, Bias: rng.NormFloat64()}
	}
	return bank
}

// TestFusedScoresPinnedToDecision is the fused-scoring identity pin: for
// random banks and documents, under automatic layout selection, ScoreInto
// must equal per-tag Decision on exact float64 comparison — same
// accumulation order, not a tolerance — and the auto rule must pick the
// expected layout for each bank shape.
func TestFusedScoresPinnedToDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		fill := 0.05 // CSR layout
		if trial%2 == 1 {
			fill = 0.9 // dense: blocked at >= blockedMinTags tags, scalar rows below
		}
		nt := 1 + rng.Intn(24)
		bank := randBank(rng, nt, 64+rng.Intn(192), fill)
		f := NewFusedLinear(bank)
		if f.NumTags() != len(bank) {
			t.Fatalf("trial %d: %d fused tags for a %d-tag bank", trial, f.NumTags(), len(bank))
		}
		want := LayoutCSR
		if fill > 0.5 {
			if nt >= blockedMinTags {
				want = LayoutBlocked
			} else {
				want = LayoutDense
			}
		}
		if got := f.Layout(); got != want {
			t.Fatalf("trial %d: fill %.2f tags %d chose layout %v, want %v", trial, fill, nt, got, want)
		}
		var buf []float64
		for q := 0; q < 8; q++ {
			x := randSparse(rng, 300, 1+rng.Intn(40))
			buf = f.ScoreInto(x, buf)
			for i, tag := range f.Tags() {
				want := bank[tag].Decision(x)
				if buf[i] != want {
					t.Fatalf("trial %d tag %s: fused %v != Decision %v (diff %g)",
						trial, tag, buf[i], want, buf[i]-want)
				}
			}
		}
	}
}

// TestFusedLayoutsPinnedToDecision forces every layout over the same
// randomized banks and pins each one bit-identical to per-tag Decision,
// and the layouts to each other. Tag counts straddle the block-width
// boundaries (1, 4, 7, 8, 9, 16, 23) to exercise zero-padded tails.
func TestFusedLayoutsPinnedToDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	layouts := []Layout{LayoutCSR, LayoutDense, LayoutBlocked}
	for _, nt := range []int{1, 4, 7, 8, 9, 16, 23} {
		for _, fill := range []float64{0.1, 0.5, 0.95} {
			bank := randBank(rng, nt, 48+rng.Intn(160), fill)
			fused := make([]*FusedLinear, len(layouts))
			for i, l := range layouts {
				fused[i] = NewFusedLinearLayout(bank, l)
				if got := fused[i].Layout(); got != l {
					t.Fatalf("tags %d fill %.2f: forced %v, built %v", nt, fill, l, got)
				}
			}
			bufs := make([][]float64, len(layouts))
			for q := 0; q < 6; q++ {
				x := randSparse(rng, 280, 1+rng.Intn(50))
				for i, f := range fused {
					bufs[i] = f.ScoreInto(x, bufs[i])
					if len(bufs[i]) != nt {
						t.Fatalf("layout %v: %d scores for %d tags", layouts[i], len(bufs[i]), nt)
					}
				}
				for ti, tag := range fused[0].Tags() {
					want := bank[tag].Decision(x)
					for i, l := range layouts {
						if bufs[i][ti] != want {
							t.Fatalf("tags %d fill %.2f layout %v tag %s: %v != Decision %v",
								nt, fill, l, tag, bufs[i][ti], want)
						}
					}
				}
			}
		}
	}
}

// TestScoreEntriesIntoStreaming: the streaming terminal over raw entries
// equals ScoreInto over the materialized vector, including entries beyond
// every model's dimension and the empty document.
func TestScoreEntriesIntoStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bank := randBank(rng, 12, 128, 0.8)
	for _, l := range []Layout{LayoutCSR, LayoutDense, LayoutBlocked} {
		f := NewFusedLinearLayout(bank, l)
		var a, b []float64
		for q := 0; q < 10; q++ {
			x := randSparse(rng, 400, 1+rng.Intn(60))
			a = f.ScoreInto(x, a)
			b = f.ScoreEntriesInto(x.Entries(), b)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("layout %v: ScoreEntriesInto[%d]=%v != ScoreInto %v", l, i, b[i], a[i])
				}
			}
		}
		b = f.ScoreEntriesInto(nil, b)
		for i, tag := range f.Tags() {
			if want := bank[tag].Bias; b[i] != want {
				t.Fatalf("layout %v empty doc tag %s: %v != bias %v", l, tag, b[i], want)
			}
		}
	}
}

// TestFusedEdgeCases: empty bank, empty document, document wider than
// every model.
func TestFusedEdgeCases(t *testing.T) {
	if f := NewFusedLinear(nil); f != nil {
		t.Error("NewFusedLinear(empty) != nil")
	}
	bank := map[string]*LinearModel{
		"a": {W: []float64{1, 0, 2}, Bias: 0.5},
		"b": {W: []float64{0, -3}, Bias: -1},
	}
	f := NewFusedLinear(bank)
	empty := vector.Zero()
	got := f.Score(empty)
	for i, tag := range f.Tags() {
		if want := bank[tag].Decision(empty); got[i] != want {
			t.Errorf("empty doc, tag %s: %v != %v", tag, got[i], want)
		}
	}
	wide, _ := vector.New([]int32{1, 2, 500}, []float64{2, 3, 4})
	got = f.Score(wide)
	for i, tag := range f.Tags() {
		if want := bank[tag].Decision(wide); got[i] != want {
			t.Errorf("wide doc, tag %s: %v != %v", tag, got[i], want)
		}
	}
}

// refKernelDecision is the seed KernelModel.Decision: per-SV Kernel.Eval
// with no cached norms.
func refKernelDecision(m *KernelModel, x *vector.Sparse) float64 {
	sum := m.Bias
	for _, sv := range m.SVs {
		sum += sv.Coeff * m.Kernel.Eval(sv.X, x)
	}
	return sum
}

// TestKernelDecisionPinnedToReference: the cached-norm RBF fast path (and
// the untouched linear/poly paths) must match the naive per-SV evaluation
// bit for bit, with and without Precompute.
func TestKernelDecisionPinnedToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kernels := []Kernel{
		{Kind: KernelRBF, Gamma: 1},
		{Kind: KernelRBF, Gamma: 0.25},
		{Kind: KernelRBF}, // Gamma 0 defaults to 1
		{Kind: KernelLinear},
		{Kind: KernelPoly, Gamma: 0.5, Coef0: 1, Degree: 3},
	}
	for _, k := range kernels {
		m := &KernelModel{Kernel: k, Bias: rng.NormFloat64()}
		for i := 0; i < 20; i++ {
			m.SVs = append(m.SVs, SupportVector{
				X:     randSparse(rng, 120, 1+rng.Intn(25)),
				Coeff: rng.NormFloat64(),
			})
		}
		for q := 0; q < 10; q++ {
			x := randSparse(rng, 150, 1+rng.Intn(30))
			want := refKernelDecision(m, x)
			if got := m.Decision(x); got != want {
				t.Fatalf("kernel %v (no cache): Decision %v != reference %v", k, got, want)
			}
			m.Precompute()
			if got := m.Decision(x); got != want {
				t.Fatalf("kernel %v (cached norms): Decision %v != reference %v", k, got, want)
			}
		}
	}
}

// TestTrainKernelPrecomputes: models from TrainKernel carry the norm cache.
func TestTrainKernelPrecomputes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var data []Example
	for i := 0; i < 30; i++ {
		y := 1.0
		if i%2 == 0 {
			y = -1
		}
		data = append(data, Example{X: randSparse(rng, 40, 5), Y: y})
	}
	m, err := TrainKernel(data, KernelOptions{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.svNorms) != len(m.SVs) {
		t.Fatalf("TrainKernel left %d cached norms for %d SVs", len(m.svNorms), len(m.SVs))
	}
	for i, sv := range m.SVs {
		if m.svNorms[i] != sv.X.SquaredNorm() {
			t.Fatalf("cached norm %d = %v, want %v", i, m.svNorms[i], sv.X.SquaredNorm())
		}
	}
	// A stale cache (SVs mutated after Precompute) must not corrupt
	// decisions: Decision falls back to per-query norms.
	m.SVs = append(m.SVs, SupportVector{X: randSparse(rng, 40, 5), Coeff: 0.5})
	x := randSparse(rng, 40, 8)
	if got, want := m.Decision(x), refKernelDecision(m, x); got != want {
		t.Fatalf("stale cache: Decision %v != reference %v", got, want)
	}
}

// BenchmarkFusedScoring compares scoring a T-tag bank per tag against the
// fused single-pass matrix, for both bank shapes: "sparse" is a pruned
// wide-universe ensemble (CSR layout), "dense" a shared-pool bank where
// nearly every feature carries a weight in every tag (dense-row layout).
func BenchmarkFusedScoring(b *testing.B) {
	for _, shape := range []struct {
		name string
		fill float64
	}{
		{"sparse", 0.12},
		{"dense", 0.95},
	} {
		rng := rand.New(rand.NewSource(5))
		const tags, dim = 32, 4096
		bank := make(map[string]*LinearModel, tags)
		for t := 0; t < tags; t++ {
			w := make([]float64, dim)
			for i := range w {
				if rng.Float64() < shape.fill {
					w[i] = rng.NormFloat64()
				}
			}
			bank[fmt.Sprintf("tag%02d", t)] = &LinearModel{W: w, Bias: rng.NormFloat64()}
		}
		f := NewFusedLinear(bank)
		doc := randSparse(rng, dim, 120)
		order := f.Tags()

		b.Run(shape.name+"/pertag", func(b *testing.B) {
			b.ReportAllocs()
			var sink float64
			for i := 0; i < b.N; i++ {
				for _, tag := range order {
					sink += bank[tag].Decision(doc)
				}
			}
			if math.IsNaN(sink) {
				b.Fatal("nan")
			}
		})
		b.Run(shape.name+"/fused", func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]float64, tags)
			var sink float64
			for i := 0; i < b.N; i++ {
				buf = f.ScoreInto(doc, buf)
				sink += buf[0]
			}
			if math.IsNaN(sink) {
				b.Fatal("nan")
			}
		})
	}
}

// BenchmarkFusedLayouts scores the same dense bank through the scalar
// dense rows and the 8-wide blocked layout — the head-to-head the blocked
// layout exists for.
func BenchmarkFusedLayouts(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	const tags, dim = 32, 4096
	bank := make(map[string]*LinearModel, tags)
	for t := 0; t < tags; t++ {
		w := make([]float64, dim)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		bank[fmt.Sprintf("tag%02d", t)] = &LinearModel{W: w, Bias: rng.NormFloat64()}
	}
	doc := randSparse(rng, dim, 120)
	for _, l := range []Layout{LayoutDense, LayoutBlocked} {
		f := NewFusedLinearLayout(bank, l)
		b.Run(l.String(), func(b *testing.B) {
			b.ReportAllocs()
			buf := make([]float64, 0, tags+blockWidth)
			var sink float64
			for i := 0; i < b.N; i++ {
				buf = f.ScoreInto(doc, buf)
				sink += buf[0]
			}
			if math.IsNaN(sink) {
				b.Fatal("nan")
			}
		})
	}
}

// BenchmarkKernelDecision measures the RBF decision with and without the
// support-vector norm cache.
func BenchmarkKernelDecision(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := &KernelModel{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}}
	for i := 0; i < 64; i++ {
		m.SVs = append(m.SVs, SupportVector{X: randSparse(rng, 2048, 80), Coeff: rng.NormFloat64()})
	}
	doc := randSparse(rng, 2048, 120)
	b.Run("uncached", func(b *testing.B) {
		m.svNorms = nil
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			refKernelDecision(m, doc)
		}
	})
	b.Run("cached", func(b *testing.B) {
		m.Precompute()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Decision(doc)
		}
	})
}
