package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vector"
)

func TestPlattProbBounds(t *testing.T) {
	p := PlattParams{A: -1, B: 0}
	if got := p.Prob(0); got != 0.5 {
		t.Errorf("Prob(0) = %v", got)
	}
	if got := p.Prob(100); got < 0.999 {
		t.Errorf("Prob(100) = %v", got)
	}
	if got := p.Prob(-100); got > 0.001 {
		t.Errorf("Prob(-100) = %v", got)
	}
	// Extreme inputs stay finite and in [0,1].
	for _, f := range []float64{1e300, -1e300, 0} {
		got := p.Prob(f)
		if math.IsNaN(got) || got < 0 || got > 1 {
			t.Errorf("Prob(%v) = %v", f, got)
		}
	}
}

func TestPlattCalibrateSeparatedData(t *testing.T) {
	// Decisions +2 for positives, -2 for negatives: the fitted sigmoid
	// must give high probability to positive decisions.
	var dec, lab []float64
	for i := 0; i < 50; i++ {
		dec = append(dec, 2, -2)
		lab = append(lab, 1, -1)
	}
	p := PlattCalibrate(dec, lab)
	if p.A >= 0 {
		t.Fatalf("A = %v, want negative (monotone increasing prob)", p.A)
	}
	if p.Prob(2) < 0.8 || p.Prob(-2) > 0.2 {
		t.Errorf("calibration weak: P(+2)=%v P(-2)=%v", p.Prob(2), p.Prob(-2))
	}
	if p.Prob(0) < 0.3 || p.Prob(0) > 0.7 {
		t.Errorf("P(0) = %v, want near 0.5 for balanced data", p.Prob(0))
	}
}

func TestPlattCalibrateSkewedPrior(t *testing.T) {
	// 10% positives: a zero decision should map below 0.5.
	var dec, lab []float64
	for i := 0; i < 100; i++ {
		if i < 10 {
			dec = append(dec, 1+0.1*float64(i%5))
			lab = append(lab, 1)
		} else {
			dec = append(dec, -1-0.1*float64(i%5))
			lab = append(lab, -1)
		}
	}
	p := PlattCalibrate(dec, lab)
	if p.Prob(0) >= 0.5 {
		t.Errorf("P(0) = %v with 10%% positives, want < 0.5", p.Prob(0))
	}
}

func TestPlattCalibrateDegenerate(t *testing.T) {
	if p := PlattCalibrate(nil, nil); p != DefaultPlatt {
		t.Error("empty input should yield DefaultPlatt")
	}
	if p := PlattCalibrate([]float64{1, 2}, []float64{1, 1}); p != DefaultPlatt {
		t.Error("one-class input should yield DefaultPlatt")
	}
	if p := PlattCalibrate([]float64{1}, []float64{1, -1}); p != DefaultPlatt {
		t.Error("mismatched lengths should yield DefaultPlatt")
	}
}

func TestGuardPlatt(t *testing.T) {
	good := PlattParams{A: -2, B: 0.1}
	if got := guardPlatt(good, 100); got != good {
		t.Error("healthy calibration rejected")
	}
	if got := guardPlatt(PlattParams{A: 1, B: 0}, 100); got != DefaultPlatt {
		t.Error("inverted calibration accepted")
	}
	if got := guardPlatt(good, 5); got != DefaultPlatt {
		t.Error("tiny-sample calibration accepted")
	}
}

func TestCrossValDecisionsOutOfSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := gaussianBlobs(rng, 90, 4, 2.0)
	full, err := TrainLinear(data, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dec := CrossValDecisions(data, 3, full, func(tr []Example) (Classifier, error) {
		return TrainLinear(tr, LinearOptions{Seed: 1})
	})
	if len(dec) != len(data) {
		t.Fatalf("got %d decisions", len(dec))
	}
	// Separable data: CV accuracy should be high.
	labels := make([]float64, len(data))
	for i, ex := range data {
		labels[i] = ex.Y
	}
	if acc := CVAccuracy(dec, labels); acc < 0.9 {
		t.Errorf("CV accuracy = %v", acc)
	}
}

func TestCrossValDecisionsFallback(t *testing.T) {
	// A train function that always fails must fall back to the provided
	// classifier.
	fallback := &LinearModel{W: []float64{1}, Bias: 0}
	data := []Example{
		{X: vector.FromMap(map[int32]float64{0: 1}), Y: 1},
		{X: vector.FromMap(map[int32]float64{0: -1}), Y: -1},
	}
	dec := CrossValDecisions(data, 2, fallback, func([]Example) (Classifier, error) {
		return nil, ErrOneClass
	})
	if dec[0] != 1 || dec[1] != -1 {
		t.Errorf("fallback decisions = %v", dec)
	}
	// Nil fallback: decisions stay zero, no panic.
	dec = CrossValDecisions(data, 2, nil, func([]Example) (Classifier, error) {
		return nil, ErrOneClass
	})
	if dec[0] != 0 || dec[1] != 0 {
		t.Errorf("nil-fallback decisions = %v", dec)
	}
}

func TestCVAccuracyEmpty(t *testing.T) {
	if CVAccuracy(nil, nil) != 0 {
		t.Error("empty CVAccuracy should be 0")
	}
}

func TestCalibrateLinearCVReturnsAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := gaussianBlobs(rng, 80, 4, 2.0)
	full, err := TrainLinear(data, LinearOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	platt, acc := CalibrateLinearCV(data, LinearOptions{Seed: 1}, full, 3)
	if acc < 0.9 {
		t.Errorf("cv accuracy = %v", acc)
	}
	if platt.A >= 0 {
		t.Errorf("A = %v, want negative", platt.A)
	}
}

func TestPropertyPlattMonotone(t *testing.T) {
	// A fitted (non-inverted) sigmoid must be monotone increasing in the
	// decision value.
	var dec, lab []float64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 60; i++ {
		y := 1.0
		if i%2 == 0 {
			y = -1
		}
		dec = append(dec, y+0.5*rng.NormFloat64())
		lab = append(lab, y)
	}
	p := PlattCalibrate(dec, lab)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return p.Prob(a) <= p.Prob(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
