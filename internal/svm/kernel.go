package svm

import (
	"fmt"
	"math"

	"repro/internal/vector"
)

// KernelKind selects the kernel function of a KernelModel.
type KernelKind int

const (
	// KernelLinear is <x, y>.
	KernelLinear KernelKind = iota
	// KernelRBF is exp(-gamma*||x-y||^2), the non-linear kernel CEMPaR's
	// cascade uses.
	KernelRBF
	// KernelPoly is (gamma*<x,y> + coef0)^degree.
	KernelPoly
)

func (k KernelKind) String() string {
	switch k {
	case KernelLinear:
		return "linear"
	case KernelRBF:
		return "rbf"
	case KernelPoly:
		return "poly"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// Kernel bundles a kernel kind with its parameters.
type Kernel struct {
	Kind   KernelKind
	Gamma  float64 // RBF/poly scale; default 1
	Coef0  float64 // poly offset
	Degree int     // poly degree; default 3
}

// Eval computes k(a, b).
func (k Kernel) Eval(a, b *vector.Sparse) float64 {
	gamma := k.Gamma
	if gamma == 0 {
		gamma = 1
	}
	switch k.Kind {
	case KernelRBF:
		d := a.SquaredNorm() + b.SquaredNorm() - 2*a.Dot(b)
		if d < 0 {
			d = 0
		}
		if math.IsNaN(d) {
			// Inf-Inf from overflow-scale inputs: the distance is
			// effectively infinite, so the kernel value is 0.
			return 0
		}
		return math.Exp(-gamma * d)
	case KernelPoly:
		deg := k.Degree
		if deg == 0 {
			deg = 3
		}
		return math.Pow(gamma*a.Dot(b)+k.Coef0, float64(deg))
	default:
		return a.Dot(b)
	}
}

// SupportVector is one retained training example with its dual coefficient
// alpha*y. These are exactly what CEMPaR peers propagate to super-peers.
type SupportVector struct {
	X     *vector.Sparse
	Coeff float64 // alpha_i * y_i
}

// KernelModel is a kernel SVM decision function
// f(x) = sum_i coeff_i k(sv_i, x) + b.
type KernelModel struct {
	Kernel Kernel
	SVs    []SupportVector
	Bias   float64
	// svNorms caches each support vector's squared norm for the RBF fast
	// path (set by Precompute; nil means recompute per query). It is
	// derived data: serialization ignores it and deserialization rebuilds
	// it.
	svNorms []float64
}

// Precompute caches the support vectors' squared norms so RBF Decision
// stops recomputing them for every query. Call it after the SV set is
// final; every construction site in this module does (TrainKernel, the
// cascade, wire decoding). It rebuilds unconditionally — norms are cheap
// next to training — so calling it again after mutating SVs always
// refreshes the cache. Decision additionally falls back to per-query
// norms when the cache length no longer matches the SV count (SVs
// appended without a Precompute); replacing a vector in place without
// calling Precompute is the one misuse neither guard catches.
func (m *KernelModel) Precompute() {
	norms := make([]float64, len(m.SVs))
	for i, sv := range m.SVs {
		norms[i] = sv.X.SquaredNorm()
	}
	m.svNorms = norms
}

// Decision evaluates the kernel expansion at x. For RBF kernels the
// query's squared norm is computed once and the support vectors' squared
// norms come from the Precompute cache, turning each kernel evaluation
// into a single sparse dot product; the floating-point operation order is
// unchanged from the naive evaluation, so decision values are
// bit-identical (pinned by the svm tests).
func (m *KernelModel) Decision(x *vector.Sparse) float64 {
	if m.Kernel.Kind == KernelRBF {
		gamma := m.Kernel.Gamma
		if gamma == 0 {
			gamma = 1
		}
		xn := x.SquaredNorm()
		norms := m.svNorms
		if len(norms) != len(m.SVs) {
			norms = nil
		}
		sum := m.Bias
		for i, sv := range m.SVs {
			svn := 0.0
			if norms != nil {
				svn = norms[i]
			} else {
				svn = sv.X.SquaredNorm()
			}
			d := svn + xn - 2*sv.X.Dot(x)
			if d < 0 {
				d = 0
			}
			k := 0.0
			if !math.IsNaN(d) {
				k = math.Exp(-gamma * d)
			}
			sum += sv.Coeff * k
		}
		return sum
	}
	sum := m.Bias
	for _, sv := range m.SVs {
		sum += sv.Coeff * m.Kernel.Eval(sv.X, x)
	}
	return sum
}

// WireSize charges the sparse encoding of every support vector plus its
// coefficient — the payload a CEMPaR peer ships to its super-peer.
func (m *KernelModel) WireSize() int {
	n := 32 // kernel params + bias header
	for _, sv := range m.SVs {
		n += sv.X.WireSize() + 8
	}
	return n
}

// SupportExamples converts the retained support vectors back into labeled
// examples (label = sign of the dual coefficient), the form in which the
// cascade retrains at super-peers.
func (m *KernelModel) SupportExamples() []Example {
	out := make([]Example, 0, len(m.SVs))
	for _, sv := range m.SVs {
		y := 1.0
		if sv.Coeff < 0 {
			y = -1
		}
		out = append(out, Example{X: sv.X, Y: y})
	}
	return out
}

// KernelOptions configures SMO training.
type KernelOptions struct {
	Kernel Kernel
	// C is the soft-margin penalty; default 1.
	C float64
	// PositiveWeight multiplies C for positive examples to counter class
	// imbalance; 0 selects the #neg/#pos auto-balance, 1 disables
	// weighting.
	PositiveWeight float64
	// Tol is the KKT violation tolerance; default 1e-3.
	Tol float64
	// MaxPasses is the number of full no-progress passes before stopping;
	// default 5.
	MaxPasses int
	// MaxIterations caps total optimization sweeps; default 200.
	MaxIterations int
	// Seed drives the second-alpha choice.
	Seed int64
}

func (o *KernelOptions) defaults() {
	if o.C == 0 {
		o.C = 1
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 5
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 200
	}
}

// TrainKernel fits a kernel SVM with simplified SMO (Platt's algorithm in
// the form popularized by the Stanford CS229 notes): repeatedly pick pairs
// of multipliers violating the KKT conditions and solve the two-variable
// subproblem analytically.
func TrainKernel(data []Example, opts KernelOptions) (*KernelModel, error) {
	opts.defaults()
	if err := validate(data); err != nil {
		return nil, err
	}
	n := len(data)
	alpha := make([]float64, n)
	var b float64

	pos := 0
	for _, ex := range data {
		if ex.Y > 0 {
			pos++
		}
	}
	posW := opts.PositiveWeight
	if posW == 0 {
		posW = float64(n-pos) / float64(pos)
	}
	cbound := make([]float64, n)
	for i, ex := range data {
		cbound[i] = opts.C
		if ex.Y > 0 {
			cbound[i] = opts.C * posW
		}
	}

	// Cache the kernel diagonal and precompute rows lazily. For the data
	// sizes per peer (tens to low hundreds of documents) a full cache is
	// affordable and keeps training O(iterations * n).
	kcache := make([][]float64, n)
	krow := func(i int) []float64 {
		if kcache[i] == nil {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = opts.Kernel.Eval(data[i].X, data[j].X)
			}
			kcache[i] = row
		}
		return kcache[i]
	}
	f := func(i int) float64 {
		sum := b
		row := krow(i)
		for j := 0; j < n; j++ {
			if alpha[j] != 0 {
				sum += alpha[j] * data[j].Y * row[j]
			}
		}
		return sum
	}

	rng := newLCG(uint64(opts.Seed)*2654435761 + 1)
	passes, iter := 0, 0
	for passes < opts.MaxPasses && iter < opts.MaxIterations {
		changed := 0
		for i := 0; i < n; i++ {
			Ei := f(i) - data[i].Y
			ri := Ei * data[i].Y
			if (ri < -opts.Tol && alpha[i] < cbound[i]) || (ri > opts.Tol && alpha[i] > 0) {
				j := int(rng.next() % uint64(n-1))
				if j >= i {
					j++
				}
				Ej := f(j) - data[j].Y
				ai, aj := alpha[i], alpha[j]
				ci, cj := cbound[i], cbound[j]
				var L, H float64
				if data[i].Y != data[j].Y {
					L = math.Max(0, aj-ai)
					H = math.Min(cj, ci+aj-ai)
				} else {
					L = math.Max(0, ai+aj-cj)
					H = math.Min(cj, ai+aj)
				}
				if L == H {
					continue
				}
				kii, kjj, kij := krow(i)[i], krow(j)[j], krow(i)[j]
				eta := 2*kij - kii - kjj
				if eta >= 0 {
					continue
				}
				na := aj - data[j].Y*(Ei-Ej)/eta
				if na > H {
					na = H
				} else if na < L {
					na = L
				}
				if math.Abs(na-aj) < 1e-7 {
					continue
				}
				alpha[j] = na
				alpha[i] = ai + data[i].Y*data[j].Y*(aj-na)
				b1 := b - Ei - data[i].Y*(alpha[i]-ai)*kii - data[j].Y*(alpha[j]-aj)*kij
				b2 := b - Ej - data[i].Y*(alpha[i]-ai)*kij - data[j].Y*(alpha[j]-aj)*kjj
				switch {
				case alpha[i] > 0 && alpha[i] < ci:
					b = b1
				case alpha[j] > 0 && alpha[j] < cj:
					b = b2
				default:
					b = (b1 + b2) / 2
				}
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	m := &KernelModel{Kernel: opts.Kernel, Bias: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			m.SVs = append(m.SVs, SupportVector{X: data[i].X, Coeff: alpha[i] * data[i].Y})
		}
	}
	if len(m.SVs) == 0 {
		// Degenerate but separable-at-zero data; keep one vector from each
		// class so the model is non-trivial.
		for _, want := range []float64{1, -1} {
			for _, ex := range data {
				if ex.Y == want {
					m.SVs = append(m.SVs, SupportVector{X: ex.X, Coeff: want * opts.C})
					break
				}
			}
		}
	}
	m.Precompute()
	return m, nil
}

// lcg is a tiny deterministic linear congruential generator. SMO only needs
// cheap pseudo-random pair selection; a full rand.Rand would be fine too,
// but this keeps the hot loop allocation-free.
type lcg struct{ state uint64 }

func newLCG(seed uint64) *lcg { return &lcg{state: seed | 1} }

func (l *lcg) next() uint64 {
	l.state = l.state*6364136223846793005 + 1442695040888963407
	return l.state >> 33
}

// ---------------------------------------------------------------------------
// Cascade SVM

// CascadeOptions configures the cascade merge performed at super-peers.
type CascadeOptions struct {
	KernelOptions
	// FanIn is how many child models merge per cascade layer; default 4.
	FanIn int
}

// Cascade merges kernel models by retraining on the union of their support
// vectors, layer by layer, until one model remains — the cascade-SVM
// paradigm CEMPaR builds on. Merging a single model returns it unchanged.
func Cascade(models []*KernelModel, opts CascadeOptions) (*KernelModel, error) {
	if len(models) == 0 {
		return nil, ErrNoData
	}
	if opts.FanIn < 2 {
		opts.FanIn = 4
	}
	layer := models
	for len(layer) > 1 {
		var next []*KernelModel
		for lo := 0; lo < len(layer); lo += opts.FanIn {
			hi := lo + opts.FanIn
			if hi > len(layer) {
				hi = len(layer)
			}
			group := layer[lo:hi]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			var pool []Example
			for _, m := range group {
				pool = append(pool, m.SupportExamples()...)
			}
			merged, err := TrainKernel(pool, opts.KernelOptions)
			if err == ErrOneClass {
				// All SVs from one class (can happen with tiny peers):
				// keep the largest child model instead of failing.
				merged = group[0]
				for _, m := range group[1:] {
					if len(m.SVs) > len(merged.SVs) {
						merged = m
					}
				}
			} else if err != nil {
				return nil, fmt.Errorf("svm: cascade merge: %w", err)
			}
			next = append(next, merged)
		}
		layer = next
	}
	return layer[0], nil
}
