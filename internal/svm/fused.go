package svm

import (
	"sort"

	"repro/internal/vector"
)

// FusedLinear scores a whole bank of one-vs-all LinearModels in a single
// pass over a document. The per-tag weight vectors are packed into one
// inverted score matrix mapping feature id -> per-tag weights, so scoring
// T tags costs one walk over the document's non-zero entries instead of T
// sparse-times-dense dot products over the same document — the dominant
// per-query cost once preprocessing is pooled.
//
// Three layouts share the contract, chosen by bank density and tag count
// at construction (see Layout):
//
//   - CSR: per feature, the (tag, weight) cells with non-zero weight.
//     Wins when weights are sparse relative to the tag count — the shape
//     of pruned per-peer ensembles (PACE, realnet) and of large tag
//     universes, where most features matter to few tags.
//   - Dense rows: per feature, a contiguous []float64 of every tag's
//     weight (zeros included). The scalar fallback for dense banks too
//     narrow to block (fewer than blockedMinTags tags), where padding to
//     a full block would outweigh the blocked walk's savings.
//   - Blocked: dense rows padded to a multiple of blockWidth tags, scored
//     blockWidth lanes at a time through fixed-size array pointers. The
//     inner loop is fully unrolled with no bounds checks — the shape the
//     compiler (and the hardware's superscalar units) exploit best — and
//     the zero-padded tail lanes cost one multiply-by-zero each. This is
//     the default for every dense bank wide enough to fill a block.
//
// Scores are bit-identical to calling (*LinearModel).Decision per tag in
// every layout: the outer loop visits the document's entries in ascending
// feature-id order, so every tag's partial sums accumulate in exactly the
// order DotDense uses, and the bias is added after the sum just as
// Decision does. Blocking happens across tags, never across features, so
// the blocked walk changes which tags advance together but not the order
// any single tag's sum accumulates in. (CSR skips zero weights, the dense
// layouts multiply by them, and the blocked tail lanes add exact zeros;
// none of these changes an IEEE-754 running sum DotDense could produce.)
// The svm tests pin this equality on randomized banks in all layouts.
//
// A FusedLinear is immutable after construction and safe for concurrent
// use; it is rebuilt whenever its underlying model bank changes
// (retraining, refine, serving Swap/Refresh).
type FusedLinear struct {
	tags []string
	bias []float64
	dim  int

	// CSR layout: cells[rowStart[f]:rowStart[f+1]] are feature f's
	// non-zero (tag, weight) cells.
	rowStart []int32
	cells    []fusedCell

	// Dense layout: rows[f*len(tags) : (f+1)*len(tags)] is feature f's
	// weight per tag.
	rows []float64

	// Blocked layout: blocks[f*ntPad : (f+1)*ntPad] is feature f's weight
	// per tag, zero-padded to ntPad (len(tags) rounded up to a multiple
	// of blockWidth).
	blocks []float64
	ntPad  int
}

// fusedCell is one non-zero weight: the tag (as an index into Tags) it
// belongs to and its value.
type fusedCell struct {
	tag int32
	w   float64
}

// Layout identifies the physical packing of a FusedLinear score matrix.
type Layout int

const (
	// LayoutAuto lets the constructor choose by bank density and width:
	// CSR below denseLayoutThreshold fill, blocked at or above it with at
	// least blockedMinTags tags, scalar dense rows otherwise.
	LayoutAuto Layout = iota
	// LayoutCSR forces the sparse cell layout.
	LayoutCSR
	// LayoutDense forces scalar dense rows.
	LayoutDense
	// LayoutBlocked forces the blockWidth-padded blocked rows.
	LayoutBlocked
)

func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutCSR:
		return "csr"
	case LayoutDense:
		return "dense"
	case LayoutBlocked:
		return "blocked"
	default:
		return "unknown"
	}
}

const (
	// denseLayoutThreshold is the bank fill fraction (non-zero weights
	// over dim*tags) above which a dense layout replaces CSR: a 16-byte
	// CSR cell costs two dense slots, so well before half fill the dense
	// walk is both smaller per element and branch-free.
	denseLayoutThreshold = 0.25

	// blockWidth is the tag-block width of the blocked layout. Eight
	// float64 lanes span a whole cache line and unroll into straight-line
	// code the compiler schedules without bounds checks.
	blockWidth = 8

	// blockedMinTags is the minimum bank width for the blocked layout
	// under LayoutAuto: below it the zero-padded tail lanes outnumber the
	// real ones and the scalar dense walk is cheaper.
	blockedMinTags = 4
)

// NewFusedLinear packs models (a per-tag one-vs-all bank) into a fused
// score matrix, choosing the layout automatically. Returns nil for an
// empty bank, which callers treat as "no models".
func NewFusedLinear(models map[string]*LinearModel) *FusedLinear {
	return NewFusedLinearLayout(models, LayoutAuto)
}

// NewFusedLinearLayout is NewFusedLinear with an explicit layout — the
// escape hatch benchmarks and layout-equality tests use to score the same
// bank through every packing. Production callers want NewFusedLinear.
func NewFusedLinearLayout(models map[string]*LinearModel, layout Layout) *FusedLinear {
	if len(models) == 0 {
		return nil
	}
	tags := make([]string, 0, len(models))
	for tag := range models {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	dim := 0
	nnz := 0
	for _, tag := range tags {
		m := models[tag]
		if len(m.W) > dim {
			dim = len(m.W)
		}
		for _, w := range m.W {
			if w != 0 {
				nnz++
			}
		}
	}
	f := &FusedLinear{
		tags: tags,
		bias: make([]float64, len(tags)),
		dim:  dim,
	}
	for ti, tag := range tags {
		f.bias[ti] = models[tag].Bias
	}
	if layout == LayoutAuto {
		switch {
		case float64(nnz) < denseLayoutThreshold*float64(dim)*float64(len(tags)):
			layout = LayoutCSR
		case len(tags) >= blockedMinTags:
			layout = LayoutBlocked
		default:
			layout = LayoutDense
		}
	}
	switch layout {
	case LayoutDense:
		f.rows = make([]float64, dim*len(tags))
		for ti, tag := range tags {
			for fid, w := range models[tag].W {
				f.rows[fid*len(tags)+ti] = w
			}
		}
	case LayoutBlocked:
		f.ntPad = (len(tags) + blockWidth - 1) / blockWidth * blockWidth
		f.blocks = make([]float64, dim*f.ntPad)
		for ti, tag := range tags {
			for fid, w := range models[tag].W {
				f.blocks[fid*f.ntPad+ti] = w
			}
		}
	default: // LayoutCSR
		f.rowStart = make([]int32, dim+1)
		f.cells = make([]fusedCell, nnz)
		// Counting pass: cells per feature row.
		for _, tag := range tags {
			for fid, w := range models[tag].W {
				if w != 0 {
					f.rowStart[fid+1]++
				}
			}
		}
		for fid := 0; fid < dim; fid++ {
			f.rowStart[fid+1] += f.rowStart[fid]
		}
		// Fill pass: tags in sorted order, so each row lists its cells in
		// ascending tag index (a stable, deterministic layout).
		next := make([]int32, dim)
		copy(next, f.rowStart[:dim])
		for ti, tag := range tags {
			for fid, w := range models[tag].W {
				if w != 0 {
					f.cells[next[fid]] = fusedCell{tag: int32(ti), w: w}
					next[fid]++
				}
			}
		}
	}
	return f
}

// Tags returns the tag names in score order (sorted ascending). Callers
// must not modify the returned slice.
func (f *FusedLinear) Tags() []string { return f.tags }

// NumTags reports the bank size.
func (f *FusedLinear) NumTags() int { return len(f.tags) }

// Layout reports the physical packing this matrix was built with.
func (f *FusedLinear) Layout() Layout {
	switch {
	case f.blocks != nil:
		return LayoutBlocked
	case f.rows != nil:
		return LayoutDense
	default:
		return LayoutCSR
	}
}

// ScoreEntriesInto computes the raw decision value w_t·x + b_t for every
// tag in one ascending pass over the document's entries, writing the
// results into dst (grown if needed) indexed like Tags(). The entries
// must be sorted by ascending feature id with no duplicates — the
// vector.Sparse invariant — and are only read, never retained: this is
// the streaming terminal's entry point, fed directly from pooled
// preprocessing scratch without materializing a *vector.Sparse. It
// allocates only when dst is too small; pass a reused buffer for a
// zero-allocation steady state.
func (f *FusedLinear) ScoreEntriesInto(entries []vector.Entry, dst []float64) []float64 {
	nt := len(f.tags)
	need := nt
	if f.blocks != nil {
		// The blocked walk accumulates into the padded tail lanes too, so
		// the scratch must span whole blocks; the result is still dst[:nt].
		need = f.ntPad
	}
	if cap(dst) < need {
		dst = make([]float64, need)
	}
	dim := int32(f.dim)
	switch {
	case f.blocks != nil:
		pad := dst[:f.ntPad]
		clear(pad)
		ntPad := f.ntPad
		blocks := f.blocks
		// Entries are sorted ascending, so indices past the training dim
		// form a suffix: trim it once instead of branching per entry.
		ents := entries
		for len(ents) > 0 && ents[len(ents)-1].Index >= dim {
			ents = ents[:len(ents)-1]
		}
		// Loop order: blocks outer, entries inner. Each 8-tag block keeps
		// its eight partial sums in registers for the whole entry walk, so
		// the hot loop issues no accumulator loads/stores — only the weight
		// reads; the walk is unrolled two entries deep to amortize loop
		// overhead. Per tag the adds still consume entries in ascending-id
		// order (the paired statements stay separate, never fused into
		// v0*r0+v1*r1), so every running sum is the same IEEE-754 sequence
		// as the scalar dense walk and per-tag Decision.
		for b := 0; b < ntPad; b += blockWidth {
			var a0, a1, a2, a3, a4, a5, a6, a7 float64
			i := 0
			for ; i+1 < len(ents); i += 2 {
				e0, e1 := ents[i], ents[i+1]
				r0 := (*[blockWidth]float64)(blocks[int(e0.Index)*ntPad+b:])
				r1 := (*[blockWidth]float64)(blocks[int(e1.Index)*ntPad+b:])
				v0, v1 := e0.Value, e1.Value
				a0 += v0 * r0[0]
				a0 += v1 * r1[0]
				a1 += v0 * r0[1]
				a1 += v1 * r1[1]
				a2 += v0 * r0[2]
				a2 += v1 * r1[2]
				a3 += v0 * r0[3]
				a3 += v1 * r1[3]
				a4 += v0 * r0[4]
				a4 += v1 * r1[4]
				a5 += v0 * r0[5]
				a5 += v1 * r1[5]
				a6 += v0 * r0[6]
				a6 += v1 * r1[6]
				a7 += v0 * r0[7]
				a7 += v1 * r1[7]
			}
			if i < len(ents) {
				e := ents[i]
				r := (*[blockWidth]float64)(blocks[int(e.Index)*ntPad+b:])
				v := e.Value
				a0 += v * r[0]
				a1 += v * r[1]
				a2 += v * r[2]
				a3 += v * r[3]
				a4 += v * r[4]
				a5 += v * r[5]
				a6 += v * r[6]
				a7 += v * r[7]
			}
			d := (*[blockWidth]float64)(pad[b:])
			d[0], d[1], d[2], d[3] = a0, a1, a2, a3
			d[4], d[5], d[6], d[7] = a4, a5, a6, a7
		}
		dst = dst[:nt]
	case f.rows != nil:
		dst = dst[:nt]
		clear(dst)
		for _, e := range entries {
			if e.Index >= dim {
				continue
			}
			row := f.rows[int(e.Index)*nt : int(e.Index)*nt+nt]
			v := e.Value
			for t, w := range row {
				dst[t] += v * w
			}
		}
	default:
		dst = dst[:nt]
		clear(dst)
		cells, rowStart := f.cells, f.rowStart
		for _, e := range entries {
			if e.Index >= dim {
				continue
			}
			hi := rowStart[e.Index+1]
			for k := rowStart[e.Index]; k < hi; k++ {
				c := cells[k]
				dst[c.tag] += e.Value * c.w
			}
		}
	}
	for i := range dst {
		dst[i] += f.bias[i]
	}
	return dst
}

// ScoreInto is ScoreEntriesInto over a materialized sparse vector.
func (f *FusedLinear) ScoreInto(x *vector.Sparse, dst []float64) []float64 {
	return f.ScoreEntriesInto(x.Entries(), dst)
}

// Score is ScoreInto with a fresh result slice.
func (f *FusedLinear) Score(x *vector.Sparse) []float64 {
	return f.ScoreInto(x, nil)
}
