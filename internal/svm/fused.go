package svm

import (
	"sort"

	"repro/internal/vector"
)

// FusedLinear scores a whole bank of one-vs-all LinearModels in a single
// pass over a document. The per-tag weight vectors are packed into one
// inverted score matrix mapping feature id -> per-tag weights, so scoring
// T tags costs one walk over the document's non-zero entries instead of T
// sparse-times-dense dot products over the same document — the dominant
// per-query cost once preprocessing is pooled.
//
// Two layouts share the contract, chosen by bank density at construction:
//
//   - CSR: per feature, the (tag, weight) cells with non-zero weight.
//     Wins when weights are sparse relative to the tag count — the shape
//     of pruned per-peer ensembles (PACE, realnet) and of large tag
//     universes, where most features matter to few tags.
//   - Dense rows: per feature, a contiguous []float64 of every tag's
//     weight (zeros included). Wins for banks trained on a shared pool
//     (Centralized, Local), where almost every feature has a weight in
//     every tag's model and CSR's 16-byte cells would only add overhead.
//
// Scores are bit-identical to calling (*LinearModel).Decision per tag in
// either layout: the outer loop visits the document's entries in
// ascending feature-id order, so every tag's partial sums accumulate in
// exactly the order DotDense uses, and the bias is added after the sum
// just as Decision does. (CSR skips zero weights and the dense layout
// multiplies by them; neither changes an IEEE-754 running sum DotDense
// could produce.) The svm tests pin this equality on randomized banks in
// both layouts.
//
// A FusedLinear is immutable after New and safe for concurrent use; it is
// rebuilt whenever its underlying model bank changes (retraining, refine,
// serving Swap/Refresh).
type FusedLinear struct {
	tags []string
	bias []float64
	dim  int

	// CSR layout (rows == nil): cells[rowStart[f]:rowStart[f+1]] are
	// feature f's non-zero (tag, weight) cells.
	rowStart []int32
	cells    []fusedCell

	// Dense layout (rows != nil): rows[f*len(tags) : (f+1)*len(tags)]
	// is feature f's weight per tag.
	rows []float64
}

// fusedCell is one non-zero weight: the tag (as an index into Tags) it
// belongs to and its value.
type fusedCell struct {
	tag int32
	w   float64
}

// denseLayoutThreshold is the bank fill fraction (non-zero weights over
// dim*tags) above which the dense row layout replaces CSR: a 16-byte CSR
// cell costs two dense slots, so well before half fill the dense walk is
// both smaller per element and branch-free.
const denseLayoutThreshold = 0.25

// NewFusedLinear packs models (a per-tag one-vs-all bank) into a fused
// score matrix. Returns nil for an empty bank, which callers treat as "no
// models".
func NewFusedLinear(models map[string]*LinearModel) *FusedLinear {
	if len(models) == 0 {
		return nil
	}
	tags := make([]string, 0, len(models))
	for tag := range models {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	dim := 0
	nnz := 0
	for _, tag := range tags {
		m := models[tag]
		if len(m.W) > dim {
			dim = len(m.W)
		}
		for _, w := range m.W {
			if w != 0 {
				nnz++
			}
		}
	}
	f := &FusedLinear{
		tags: tags,
		bias: make([]float64, len(tags)),
		dim:  dim,
	}
	for ti, tag := range tags {
		f.bias[ti] = models[tag].Bias
	}
	if float64(nnz) >= denseLayoutThreshold*float64(dim)*float64(len(tags)) {
		f.rows = make([]float64, dim*len(tags))
		for ti, tag := range tags {
			for fid, w := range models[tag].W {
				f.rows[fid*len(tags)+ti] = w
			}
		}
		return f
	}
	f.rowStart = make([]int32, dim+1)
	f.cells = make([]fusedCell, nnz)
	// Counting pass: cells per feature row.
	for _, tag := range tags {
		for fid, w := range models[tag].W {
			if w != 0 {
				f.rowStart[fid+1]++
			}
		}
	}
	for fid := 0; fid < dim; fid++ {
		f.rowStart[fid+1] += f.rowStart[fid]
	}
	// Fill pass: tags in sorted order, so each row lists its cells in
	// ascending tag index (a stable, deterministic layout).
	next := make([]int32, dim)
	copy(next, f.rowStart[:dim])
	for ti, tag := range tags {
		for fid, w := range models[tag].W {
			if w != 0 {
				f.cells[next[fid]] = fusedCell{tag: int32(ti), w: w}
				next[fid]++
			}
		}
	}
	return f
}

// Tags returns the tag names in score order (sorted ascending). Callers
// must not modify the returned slice.
func (f *FusedLinear) Tags() []string { return f.tags }

// NumTags reports the bank size.
func (f *FusedLinear) NumTags() int { return len(f.tags) }

// ScoreInto computes the raw decision value w_t·x + b_t for every tag in
// one ascending pass over x's non-zero entries, writing the results into
// dst (grown if needed) indexed like Tags(). It allocates only when dst is
// too small; pass a reused buffer for a zero-allocation steady state.
func (f *FusedLinear) ScoreInto(x *vector.Sparse, dst []float64) []float64 {
	nt := len(f.tags)
	if cap(dst) < nt {
		dst = make([]float64, nt)
	}
	dst = dst[:nt]
	for i := range dst {
		dst[i] = 0
	}
	dim := int32(f.dim)
	if f.rows != nil {
		for _, e := range x.Entries() {
			if e.Index >= dim {
				continue
			}
			row := f.rows[int(e.Index)*nt : int(e.Index)*nt+nt]
			v := e.Value
			for t, w := range row {
				dst[t] += v * w
			}
		}
	} else {
		cells, rowStart := f.cells, f.rowStart
		for _, e := range x.Entries() {
			if e.Index >= dim {
				continue
			}
			hi := rowStart[e.Index+1]
			for k := rowStart[e.Index]; k < hi; k++ {
				c := cells[k]
				dst[c.tag] += e.Value * c.w
			}
		}
	}
	for i := range dst {
		dst[i] += f.bias[i]
	}
	return dst
}

// Score is ScoreInto with a fresh result slice.
func (f *FusedLinear) Score(x *vector.Sparse) []float64 {
	return f.ScoreInto(x, nil)
}
