// Package svm implements the base learners of CEMPaR and PACE from scratch:
// a linear SVM trained by dual coordinate descent (with a Pegasos SGD
// alternative), a kernel SVM trained by SMO, and the cascade-SVM merge step
// used at CEMPaR super-peers, plus Platt calibration, weight pruning and
// noise perturbation for shipped models. The binary wire encoding lives in
// internal/wire; WireSize methods here are the analytic size estimates the
// network simulator charges.
package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/vector"
)

// Example is a labeled training instance with label y ∈ {-1, +1}.
type Example struct {
	X *vector.Sparse
	Y float64
}

// ErrNoData is returned when training is attempted on an empty set.
var ErrNoData = errors.New("svm: no training data")

// ErrOneClass is returned when all training labels are identical; callers
// typically fall back to a constant predictor.
var ErrOneClass = errors.New("svm: all labels identical")

func validate(data []Example) error {
	if len(data) == 0 {
		return ErrNoData
	}
	pos, neg := 0, 0
	for i, ex := range data {
		switch ex.Y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return fmt.Errorf("svm: example %d has label %v, want ±1", i, ex.Y)
		}
	}
	if pos == 0 || neg == 0 {
		return ErrOneClass
	}
	return nil
}

// Classifier is a binary decision function. Decision returns a signed score
// whose sign is the predicted label.
type Classifier interface {
	Decision(x *vector.Sparse) float64
	// WireSize is the serialized size in bytes charged by the simulator
	// when the model crosses the network.
	WireSize() int
}

// Predict converts a decision score to a ±1 label.
func Predict(c Classifier, x *vector.Sparse) float64 {
	if c.Decision(x) >= 0 {
		return 1
	}
	return -1
}

// Accuracy returns the fraction of data classified correctly by c.
func Accuracy(c Classifier, data []Example) float64 {
	if len(data) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range data {
		if Predict(c, ex.X) == ex.Y {
			correct++
		}
	}
	return float64(correct) / float64(len(data))
}

// ---------------------------------------------------------------------------
// Linear SVM

// LinearModel is a linear decision function w·x + b.
type LinearModel struct {
	W    []float64
	Bias float64
}

// Decision returns w·x + b.
func (m *LinearModel) Decision(x *vector.Sparse) float64 {
	return x.DotDense(m.W) + m.Bias
}

// WireSize counts 8 bytes per non-zero weight plus index and header
// overhead, matching the sparse encoding peers would ship.
func (m *LinearModel) WireSize() int {
	nnz := 0
	for _, w := range m.W {
		if w != 0 {
			nnz++
		}
	}
	return 16 + 12*nnz
}

// Pruned returns a copy of the model with weights below rel*max|w| zeroed —
// the standard compression applied before shipping linear text models:
// coordinate-descent training leaves long tails of tiny weights that cost
// wire bytes but contribute nothing to decisions.
func (m *LinearModel) Pruned(rel float64) *LinearModel {
	maxAbs := 0.0
	for _, w := range m.W {
		if a := math.Abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	cut := rel * maxAbs
	out := &LinearModel{W: make([]float64, len(m.W)), Bias: m.Bias}
	for i, w := range m.W {
		if math.Abs(w) >= cut {
			out.W[i] = w
		}
	}
	return out
}

// Noised returns a copy of the model with Laplace noise added to every
// non-zero weight and the bias — simplified output perturbation (in the
// spirit of Chaudhuri & Monteleoni's privacy-preserving ERM): the shared
// model no longer reveals exact training-data directions. The noise scale
// b is relative*mean|w| over non-zero weights, so callers reason in
// fractions of typical weight magnitude. rng keeps it deterministic.
func (m *LinearModel) Noised(relative float64, rng *rand.Rand) *LinearModel {
	if relative <= 0 {
		return m
	}
	var sum float64
	nnz := 0
	for _, w := range m.W {
		if w != 0 {
			sum += math.Abs(w)
			nnz++
		}
	}
	if nnz == 0 {
		return m
	}
	b := relative * sum / float64(nnz)
	laplace := func() float64 {
		u := rng.Float64() - 0.5
		if u >= 0 {
			return -b * math.Log(1-2*u)
		}
		return b * math.Log(1+2*u)
	}
	out := &LinearModel{W: make([]float64, len(m.W)), Bias: m.Bias + laplace()}
	for i, w := range m.W {
		if w != 0 {
			out.W[i] = w + laplace()
		}
	}
	return out
}

// WeightVector returns the weights as a sparse vector (used by PACE's model
// index to compute distances between models and documents).
func (m *LinearModel) WeightVector() *vector.Sparse {
	acc := make(map[int32]float64)
	for i, w := range m.W {
		if w != 0 {
			acc[int32(i)] = w
		}
	}
	return vector.FromMap(acc)
}

// LinearOptions configures linear SVM training.
type LinearOptions struct {
	// C is the soft-margin penalty; default 1.
	C float64
	// PositiveWeight multiplies C for positive examples to counter class
	// imbalance; 0 selects the standard #neg/#pos auto-balance. Set to 1
	// for unweighted training. One-against-all tag models are heavily
	// imbalanced, so balancing matters.
	PositiveWeight float64
	// Epochs bounds dual coordinate descent passes; default 50.
	Epochs int
	// Tol is the projected-gradient stopping tolerance; default 1e-3.
	Tol float64
	// Dim forces the weight-vector dimensionality; 0 infers it from data.
	Dim int
	// Seed drives the permutation order, keeping training deterministic.
	Seed int64
}

func (o *LinearOptions) defaults() {
	if o.C == 0 {
		o.C = 1
	}
	if o.Epochs == 0 {
		o.Epochs = 50
	}
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
}

// TrainLinear fits a linear L1-loss SVM with dual coordinate descent
// (Hsieh et al., the algorithm behind LIBLINEAR), the learner PACE
// specifies for its low computation cost.
func TrainLinear(data []Example, opts LinearOptions) (*LinearModel, error) {
	opts.defaults()
	if err := validate(data); err != nil {
		return nil, err
	}
	dim := opts.Dim
	pos := 0
	for _, ex := range data {
		if int(ex.X.MaxIndex())+1 > dim {
			dim = int(ex.X.MaxIndex()) + 1
		}
		if ex.Y > 0 {
			pos++
		}
	}
	posW := opts.PositiveWeight
	if posW == 0 {
		posW = float64(len(data)-pos) / float64(pos)
	}
	// Append a constant feature for the bias via augmentation.
	w := make([]float64, dim)
	var bias float64
	alpha := make([]float64, len(data))
	qdiag := make([]float64, len(data))
	cbound := make([]float64, len(data))
	for i, ex := range data {
		qdiag[i] = ex.X.SquaredNorm() + 1 // +1 for the bias feature
		cbound[i] = opts.C
		if ex.Y > 0 {
			cbound[i] = opts.C * posW
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(data))

	for epoch := 0; epoch < opts.Epochs; epoch++ {
		maxPG := 0.0
		// Reshuffle each epoch for faster convergence.
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, i := range perm {
			ex := data[i]
			g := ex.Y*(ex.X.DotDense(w)+bias) - 1
			var pg float64
			switch {
			case alpha[i] == 0:
				pg = math.Min(g, 0)
			case alpha[i] == cbound[i]:
				pg = math.Max(g, 0)
			default:
				pg = g
			}
			if math.Abs(pg) > maxPG {
				maxPG = math.Abs(pg)
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qdiag[i]
			if na < 0 {
				na = 0
			} else if na > cbound[i] {
				na = cbound[i]
			}
			alpha[i] = na
			d := (na - old) * ex.Y
			if d != 0 {
				ex.X.AddDense(w, d)
				bias += d
			}
		}
		if maxPG < opts.Tol {
			break
		}
	}
	return &LinearModel{W: w, Bias: bias}, nil
}

// PegasosOptions configures stochastic sub-gradient training.
type PegasosOptions struct {
	// Lambda is the regularization strength; default 1e-4.
	Lambda float64
	// Iterations is the number of SGD steps; default 20*len(data).
	Iterations int
	// Dim forces dimensionality; 0 infers from data.
	Dim int
	// Seed drives sampling.
	Seed int64
}

// TrainPegasos fits a linear SVM with the Pegasos primal sub-gradient
// method (Shalev-Shwartz et al.). It is cheaper per step than coordinate
// descent and is offered as the low-resource alternative for weak peers.
func TrainPegasos(data []Example, opts PegasosOptions) (*LinearModel, error) {
	if err := validate(data); err != nil {
		return nil, err
	}
	if opts.Lambda == 0 {
		opts.Lambda = 1e-4
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20 * len(data)
	}
	dim := opts.Dim
	for _, ex := range data {
		if int(ex.X.MaxIndex())+1 > dim {
			dim = int(ex.X.MaxIndex()) + 1
		}
	}
	w := make([]float64, dim)
	var bias float64
	rng := rand.New(rand.NewSource(opts.Seed))
	for t := 1; t <= opts.Iterations; t++ {
		ex := data[rng.Intn(len(data))]
		eta := 1 / (opts.Lambda * float64(t))
		margin := ex.Y * (ex.X.DotDense(w) + bias)
		scale := 1 - eta*opts.Lambda
		for i := range w {
			w[i] *= scale
		}
		if margin < 1 {
			ex.X.AddDense(w, eta*ex.Y)
			bias += eta * ex.Y
		}
	}
	return &LinearModel{W: w, Bias: bias}, nil
}
