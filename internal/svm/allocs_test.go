//go:build !race

package svm

import (
	"fmt"
	"math/rand"
	"testing"
)

// Allocation-regression pins for the inference hot path (build-gated out
// under -race, which instruments allocations).

// TestFusedScoreIntoZeroAlloc: steady-state fused scoring into a reused
// buffer allocates nothing.
func TestFusedScoreIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	bank := make(map[string]*LinearModel, 16)
	for i := 0; i < 16; i++ {
		w := make([]float64, 512)
		for j := 0; j < 64; j++ {
			w[rng.Intn(512)] = rng.NormFloat64()
		}
		bank[fmt.Sprintf("t%02d", i)] = &LinearModel{W: w, Bias: 0.1}
	}
	f := NewFusedLinear(bank)
	doc := randSparse(rng, 512, 40)
	buf := make([]float64, f.NumTags())
	got := testing.AllocsPerRun(200, func() { buf = f.ScoreInto(doc, buf) })
	if got > 0 {
		t.Errorf("ScoreInto: %.1f allocs/op, want 0", got)
	}
}

// TestBlockedScoreIntoZeroAlloc: the blocked layout's streaming terminal
// allocates nothing once the padded scratch has been grown, for every
// entry point (ScoreInto and ScoreEntriesInto) and a tag count with a
// zero-padded tail.
func TestBlockedScoreIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bank := make(map[string]*LinearModel, 12)
	for i := 0; i < 12; i++ {
		w := make([]float64, 512)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		bank[fmt.Sprintf("t%02d", i)] = &LinearModel{W: w, Bias: 0.1}
	}
	f := NewFusedLinearLayout(bank, LayoutBlocked)
	if f.Layout() != LayoutBlocked {
		t.Fatalf("layout %v, want blocked", f.Layout())
	}
	doc := randSparse(rng, 512, 40)
	var buf []float64
	buf = f.ScoreInto(doc, buf) // grow the padded scratch once
	got := testing.AllocsPerRun(200, func() { buf = f.ScoreInto(doc, buf) })
	if got > 0 {
		t.Errorf("blocked ScoreInto: %.1f allocs/op, want 0", got)
	}
	entries := doc.Entries()
	got = testing.AllocsPerRun(200, func() { buf = f.ScoreEntriesInto(entries, buf) })
	if got > 0 {
		t.Errorf("blocked ScoreEntriesInto: %.1f allocs/op, want 0", got)
	}
}

// TestKernelDecisionZeroAlloc: the RBF decision with precomputed norms
// allocates nothing per query.
func TestKernelDecisionZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := &KernelModel{Kernel: Kernel{Kind: KernelRBF, Gamma: 1}}
	for i := 0; i < 32; i++ {
		m.SVs = append(m.SVs, SupportVector{X: randSparse(rng, 256, 30), Coeff: rng.NormFloat64()})
	}
	m.Precompute()
	doc := randSparse(rng, 256, 40)
	got := testing.AllocsPerRun(200, func() { m.Decision(doc) })
	if got > 0 {
		t.Errorf("Decision: %.1f allocs/op, want 0", got)
	}
}
