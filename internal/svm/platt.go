package svm

import "math"

// PlattParams calibrate raw SVM decision values into probabilities with a
// fitted sigmoid P(y=1|f) = 1/(1+exp(A*f+B)) — Platt scaling, as LibSVM
// applies for probability outputs. Ensemble protocols calibrate each model
// on its training data so that votes from differently scaled models are
// comparable and the tagging threshold has a consistent meaning.
type PlattParams struct {
	A, B float64
}

// DefaultPlatt is the identity-ish calibration sigma(f) used when no
// calibration data is available.
var DefaultPlatt = PlattParams{A: -1, B: 0}

// Prob maps a decision value to a calibrated probability.
func (p PlattParams) Prob(f float64) float64 {
	fApB := p.A*f + p.B
	// Numerically stable logistic.
	if fApB >= 0 {
		e := math.Exp(-fApB)
		return e / (1 + e)
	}
	return 1 / (1 + math.Exp(fApB))
}

// PlattCalibrate fits sigmoid parameters to (decision, label) pairs with
// the improved Newton method of Lin, Lin & Weng (2007). Labels are ±1.
// Degenerate inputs (one class, no data) fall back to DefaultPlatt.
func PlattCalibrate(decisions []float64, labels []float64) PlattParams {
	n := len(decisions)
	if n == 0 || n != len(labels) {
		return DefaultPlatt
	}
	prior1, prior0 := 0.0, 0.0
	for _, y := range labels {
		if y > 0 {
			prior1++
		} else {
			prior0++
		}
	}
	if prior1 == 0 || prior0 == 0 {
		return DefaultPlatt
	}

	const (
		maxIter = 100
		minStep = 1e-10
		sigma   = 1e-12 // Hessian ridge
		eps     = 1e-5
	)
	hiTarget := (prior1 + 1) / (prior1 + 2)
	loTarget := 1 / (prior0 + 2)
	t := make([]float64, n)
	for i, y := range labels {
		if y > 0 {
			t[i] = hiTarget
		} else {
			t[i] = loTarget
		}
	}

	A := 0.0
	B := math.Log((prior0 + 1) / (prior1 + 1))
	fval := 0.0
	for i := 0; i < n; i++ {
		fApB := A*decisions[i] + B
		if fApB >= 0 {
			fval += t[i]*fApB + math.Log(1+math.Exp(-fApB))
		} else {
			fval += (t[i]-1)*fApB + math.Log(1+math.Exp(fApB))
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		h11, h22 := sigma, sigma
		h21, g1, g2 := 0.0, 0.0, 0.0
		for i := 0; i < n; i++ {
			fApB := A*decisions[i] + B
			var p, q float64
			if fApB >= 0 {
				e := math.Exp(-fApB)
				p = e / (1 + e)
				q = 1 / (1 + e)
			} else {
				e := math.Exp(fApB)
				p = 1 / (1 + e)
				q = e / (1 + e)
			}
			d2 := p * q
			h11 += decisions[i] * decisions[i] * d2
			h22 += d2
			h21 += decisions[i] * d2
			d1 := t[i] - p
			g1 += decisions[i] * d1
			g2 += d1
		}
		if math.Abs(g1) < eps && math.Abs(g2) < eps {
			break
		}
		det := h11*h22 - h21*h21
		dA := -(h22*g1 - h21*g2) / det
		dB := -(-h21*g1 + h11*g2) / det
		gd := g1*dA + g2*dB
		stepSize := 1.0
		for stepSize >= minStep {
			newA := A + stepSize*dA
			newB := B + stepSize*dB
			newf := 0.0
			for i := 0; i < n; i++ {
				fApB := newA*decisions[i] + newB
				if fApB >= 0 {
					newf += t[i]*fApB + math.Log(1+math.Exp(-fApB))
				} else {
					newf += (t[i]-1)*fApB + math.Log(1+math.Exp(fApB))
				}
			}
			if newf < fval+1e-4*stepSize*gd {
				A, B, fval = newA, newB, newf
				break
			}
			stepSize /= 2
		}
		if stepSize < minStep {
			break
		}
	}
	return PlattParams{A: A, B: B}
}

// CalibrateOn fits Platt parameters for classifier c using its decisions on
// the given examples. NOTE: calibrating on the model's own training data
// biases the sigmoid steep (the model is overconfident in-sample); prefer
// the CrossVal variants, which reproduce LibSVM's internal-CV calibration.
func CalibrateOn(c Classifier, data []Example) PlattParams {
	decisions := make([]float64, len(data))
	labels := make([]float64, len(data))
	for i, ex := range data {
		decisions[i] = c.Decision(ex.X)
		labels[i] = ex.Y
	}
	return PlattCalibrate(decisions, labels)
}

// CrossValDecisions produces out-of-sample decision values for every
// example via stratified k-fold cross-validation: each example is scored by
// a model that did not train on it. train returns a classifier for a
// subset; when a fold cannot be trained (e.g. one-class), those examples
// fall back to the fallback classifier's (in-sample) decisions.
func CrossValDecisions(data []Example, folds int, fallback Classifier,
	train func([]Example) (Classifier, error)) []float64 {

	n := len(data)
	out := make([]float64, n)
	if folds < 2 {
		folds = 2
	}
	if folds > n {
		folds = n
	}
	// Stratified fold assignment: deal positives and negatives round-robin
	// so every fold keeps both classes whenever possible.
	foldOf := make([]int, n)
	pc, nc := 0, 0
	for i, ex := range data {
		if ex.Y > 0 {
			foldOf[i] = pc % folds
			pc++
		} else {
			foldOf[i] = nc % folds
			nc++
		}
	}
	for f := 0; f < folds; f++ {
		var tr []Example
		var te []int
		for i := range data {
			if foldOf[i] == f {
				te = append(te, i)
			} else {
				tr = append(tr, data[i])
			}
		}
		m, err := train(tr)
		if err != nil || m == nil {
			m = fallback
		}
		if m == nil {
			continue
		}
		for _, i := range te {
			out[i] = m.Decision(data[i].X)
		}
	}
	return out
}

// CVAccuracy returns the fraction of decisions whose sign matches labels —
// an honest (out-of-sample) accuracy estimate when the decisions came from
// CrossValDecisions.
func CVAccuracy(decisions, labels []float64) float64 {
	if len(decisions) == 0 {
		return 0
	}
	correct := 0
	for i, d := range decisions {
		if (d >= 0 && labels[i] > 0) || (d < 0 && labels[i] < 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(decisions))
}

// CalibrateLinearCV fits Platt parameters from cross-validated decisions of
// a linear SVM on data (full is the model trained on all of data, used as
// the degenerate-fold fallback). folds defaults to 3. It also returns the
// cross-validated accuracy, the honest model weight for ensemble voting.
func CalibrateLinearCV(data []Example, opts LinearOptions, full Classifier, folds int) (PlattParams, float64) {
	if folds == 0 {
		folds = 3
	}
	dec := CrossValDecisions(data, folds, full, func(tr []Example) (Classifier, error) {
		return TrainLinear(tr, opts)
	})
	labels := make([]float64, len(data))
	for i, ex := range data {
		labels[i] = ex.Y
	}
	return guardPlatt(PlattCalibrate(dec, labels), len(data)), CVAccuracy(dec, labels)
}

// guardPlatt rejects calibrations that are untrustworthy: fitted on too few
// points, or inverted (A >= 0 means higher decisions map to LOWER
// probabilities, contradicting the SVM's own decision rule — it only
// happens when tiny cross-validation folds produce noise). Such fits fall
// back to the neutral sigmoid.
func guardPlatt(p PlattParams, n int) PlattParams {
	const minCalibrationPoints = 12
	if n < minCalibrationPoints || p.A >= 0 {
		return DefaultPlatt
	}
	return p
}

// CalibrateKernelCV fits Platt parameters from cross-validated decisions of
// a kernel SVM on data. folds defaults to 3.
func CalibrateKernelCV(data []Example, opts KernelOptions, full Classifier, folds int) PlattParams {
	if folds == 0 {
		folds = 3
	}
	dec := CrossValDecisions(data, folds, full, func(tr []Example) (Classifier, error) {
		return TrainKernel(tr, opts)
	})
	labels := make([]float64, len(data))
	for i, ex := range data {
		labels[i] = ex.Y
	}
	return guardPlatt(PlattCalibrate(dec, labels), len(data))
}
