package dht

import (
	"testing"
	"time"

	"repro/internal/simnet"
)

func newRing(t *testing.T, n int) (*simnet.Network, *DHT) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(5 * time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	return net, New(net, ids, nil)
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x Hash
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},
		{10, 20, 10, false},
		{10, 20, 25, false},
		{20, 10, 25, true},  // wrap
		{20, 10, 5, true},   // wrap
		{20, 10, 15, false}, // wrap
		{5, 5, 7, true},     // single-node ring owns everything
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	if HashString("x") != HashString("x") {
		t.Error("HashString not deterministic")
	}
	if HashString("x") == HashString("y") {
		t.Error("collision on trivial inputs")
	}
	if HashNode(1) == HashNode(2) {
		t.Error("node hash collision")
	}
}

func TestLookupFindsTrueOwner(t *testing.T) {
	net, d := newRing(t, 64)
	net.Run(0) // drain stabilization traffic
	keys := []Hash{0, 1 << 60, HashString("alpha"), HashString("beta"), ^Hash(0)}
	for _, key := range keys {
		want, ok := d.Owner(key)
		if !ok {
			t.Fatal("no owner")
		}
		var got simnet.NodeID = -1
		var hops int
		if err := d.Lookup(3, key, func(r LookupResult) {
			if r.Failed {
				t.Fatalf("lookup failed for key %d", key)
			}
			got, hops = r.Owner, r.Hops
		}); err != nil {
			t.Fatal(err)
		}
		net.Run(0)
		if got != want {
			t.Errorf("key %d: owner = %d, want %d", key, got, want)
		}
		if hops > 10 {
			t.Errorf("key %d took %d hops in a 64-node ring", key, hops)
		}
	}
}

func TestLookupOwnKeyReturnsSelfRange(t *testing.T) {
	net, d := newRing(t, 16)
	net.Run(0)
	// A node's own hash must be owned by that node.
	for id := simnet.NodeID(0); id < 16; id++ {
		key := d.NodeHash(id)
		var got simnet.NodeID = -1
		if err := d.Lookup(0, key, func(r LookupResult) { got = r.Owner }); err != nil {
			t.Fatal(err)
		}
		net.Run(0)
		if got != id {
			t.Errorf("own hash of node %d resolved to %d", id, got)
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	net, d := newRing(t, 256)
	net.Run(0)
	total, count := 0, 0
	for i := 0; i < 50; i++ {
		key := HashString(string(rune('a'+i)) + "key")
		if err := d.Lookup(simnet.NodeID(i%256), key, func(r LookupResult) {
			total += r.Hops
			count++
		}); err != nil {
			t.Fatal(err)
		}
	}
	net.Run(0)
	if count != 50 {
		t.Fatalf("only %d lookups completed", count)
	}
	avg := float64(total) / float64(count)
	// log2(256) = 8; average should be around half that, allow slack.
	if avg > 10 {
		t.Errorf("average hops = %v, want O(log n) ~ <= 10", avg)
	}
}

func TestLookupSurvivesFailuresAfterStabilize(t *testing.T) {
	net, d := newRing(t, 64)
	net.Run(0)
	// Kill a quarter of the ring, then restabilize.
	for i := 0; i < 16; i++ {
		net.Kill(simnet.NodeID(i * 4))
	}
	d.Stabilize()
	net.Run(0)
	key := HashString("after-failures")
	want, _ := d.Owner(key)
	var got simnet.NodeID = -1
	if err := d.Lookup(1, key, func(r LookupResult) {
		if r.Failed {
			t.Fatal("lookup failed")
		}
		got = r.Owner
	}); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if got != want {
		t.Errorf("owner = %d, want %d", got, want)
	}
	if !net.Alive(got) {
		t.Error("lookup returned a dead owner")
	}
}

func TestLookupWithStaleFingers(t *testing.T) {
	// Kill nodes WITHOUT stabilizing: routing must still make progress via
	// alive-finger selection, and the result must be an alive node that
	// the true ring (among alive nodes) owns.
	net, d := newRing(t, 64)
	net.Run(0)
	for i := 0; i < 8; i++ {
		net.Kill(simnet.NodeID(i * 8))
	}
	key := HashString("stale")
	completed := false
	if err := d.Lookup(1, key, func(r LookupResult) {
		completed = true
		if r.Failed {
			return // acceptable under stale state
		}
		if !net.Alive(r.Owner) {
			t.Errorf("stale lookup returned dead owner %d", r.Owner)
		}
	}); err != nil {
		t.Fatal(err)
	}
	net.Run(0)
	if !completed {
		t.Log("lookup lost to a dead hop (acceptable under churn without stabilization)")
	}
}

func TestLookupFromDeadOriginErrors(t *testing.T) {
	net, d := newRing(t, 8)
	net.Run(0)
	net.Kill(3)
	if err := d.Lookup(3, 42, func(LookupResult) {}); err == nil {
		t.Error("lookup from dead origin should error")
	}
	if err := d.Lookup(99, 42, func(LookupResult) {}); err == nil {
		t.Error("lookup from unknown origin should error")
	}
}

func TestOwnerNoneAlive(t *testing.T) {
	net, d := newRing(t, 4)
	for i := 0; i < 4; i++ {
		net.Kill(simnet.NodeID(i))
	}
	if _, ok := d.Owner(1); ok {
		t.Error("Owner should report no owner when all dead")
	}
}

func TestRegionPartitionsRingUniformly(t *testing.T) {
	const regions = 8
	counts := make([]int, regions)
	for i := 0; i < 10000; i++ {
		h := HashNode(simnet.NodeID(i))
		r := Region(h, regions)
		if r < 0 || r >= regions {
			t.Fatalf("region %d out of range", r)
		}
		counts[r]++
	}
	for r, c := range counts {
		if c < 800 || c > 1800 {
			t.Errorf("region %d has %d of 10000 hashes (poor uniformity)", r, c)
		}
	}
	if Region(12345, 1) != 0 {
		t.Error("single region must be 0")
	}
	if Region(12345, 0) != 0 {
		t.Error("zero regions must clamp to 0")
	}
}

func TestElectSuperPeersDeterministicAndAlive(t *testing.T) {
	net, d := newRing(t, 32)
	net.Run(0)
	a := d.ElectSuperPeers(4)
	b := d.ElectSuperPeers(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("election not deterministic")
		}
		if !net.Alive(a[i]) {
			t.Errorf("super-peer %d is dead", a[i])
		}
	}
	// Killing a super-peer must elect a different one for its region.
	net.Kill(a[0])
	c := d.ElectSuperPeers(4)
	if c[0] == a[0] {
		t.Error("dead super-peer re-elected")
	}
	if !net.Alive(c[0]) {
		t.Error("replacement super-peer is dead")
	}
}

func TestStartStabilizerRunsPeriodically(t *testing.T) {
	net, d := newRing(t, 16)
	net.Run(0)
	before := net.Stats().MessagesByKind["dht.stabilize"]
	d.StartStabilizer(time.Second)
	net.Run(5 * time.Second)
	after := net.Stats().MessagesByKind["dht.stabilize"]
	if after <= before {
		t.Errorf("stabilizer sent no traffic: %d -> %d", before, after)
	}
}

func TestSuperPeerKeyDistinct(t *testing.T) {
	seen := map[Hash]bool{}
	for r := 0; r < 16; r++ {
		k := SuperPeerKey(r, 16)
		if seen[k] {
			t.Fatalf("duplicate super-peer key for region %d", r)
		}
		seen[k] = true
	}
}

func TestPeersSorted(t *testing.T) {
	_, d := newRing(t, 10)
	ps := d.Peers()
	if len(ps) != 10 {
		t.Fatalf("Peers = %v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Error("Peers not sorted")
		}
	}
}

func TestAppHandlerReceivesNonDHTMessages(t *testing.T) {
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond)})
	var got []simnet.Message
	ids := []simnet.NodeID{0, 1}
	New(net, ids, func(id simnet.NodeID) simnet.Handler {
		return simnet.HandlerFunc(func(_ *simnet.Network, m simnet.Message) {
			got = append(got, m)
		})
	})
	net.Run(0)
	net.Send(simnet.Message{From: 0, To: 1, Kind: "app.data", Size: 5})
	net.Run(0)
	if len(got) != 1 || got[0].Kind != "app.data" {
		t.Errorf("app messages = %v", got)
	}
}
