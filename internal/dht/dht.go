// Package dht implements a Chord-style structured overlay on top of the
// simnet physical network: a 64-bit hash ring, finger tables, successor
// lists, hop-by-hop routed lookups (each hop is a real simulated message
// with latency and byte cost) and the deterministic super-peer election
// CEMPaR relies on ("super-peers are automatically elected ... located in a
// deterministic manner, made possible through the use of the DHT-based P2P
// network").
package dht

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/simnet"
)

// Hash is a position on the 64-bit ring.
type Hash uint64

// HashBytes maps arbitrary bytes onto the ring with SHA-1 (truncated to 64
// bits), as Chord specifies.
func HashBytes(b []byte) Hash {
	sum := sha1.Sum(b)
	return Hash(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string key onto the ring.
func HashString(s string) Hash { return HashBytes([]byte(s)) }

// HashNode maps a node id onto the ring.
func HashNode(id simnet.NodeID) Hash {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(id))
	return HashBytes(buf[:])
}

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, b, x Hash) bool {
	if a < b {
		return x > a && x <= b
	}
	// Interval wraps around zero.
	return x > a || x <= b
}

const (
	fingerBits    = 64
	successorList = 8
	// lookupMsgSize approximates a Chord lookup packet: key, origin,
	// request id and headers.
	lookupMsgSize = 40
	// stabilizeMsgSize approximates one successor-exchange packet.
	stabilizeMsgSize = 24
)

// peer is the per-node DHT state. Lookup bookkeeping lives here rather
// than on the DHT so that, under the sharded simulator, a reply handled at
// its origin touches only the origin's own state.
type peer struct {
	id         simnet.NodeID
	hash       Hash
	fingers    []simnet.NodeID // fingers[i] = successor(hash + 2^i)
	successors []simnet.NodeID
	app        simnet.Handler // application handler for non-DHT messages
	pending    map[uint64]func(LookupResult)
	nextReq    uint64
}

// LookupResult is delivered to the lookup origin.
type LookupResult struct {
	Key   Hash
	Owner simnet.NodeID
	Hops  int
	// Failed is set when routing ran out of alive candidates (possible
	// under extreme churn before restabilization).
	Failed bool
}

// DHT manages the ring. All peers live in one simulation process; each
// keeps its own finger-table snapshot, so routing state can go stale under
// churn until Stabilize runs — exactly the failure mode the churn
// experiments probe. While the clock runs, a peer's handlers mutate only
// that peer's state (other peers' fingers are read-only between
// stabilization rounds), which is what lets the sharded simulator execute
// peers concurrently.
type DHT struct {
	net   *simnet.Network
	peers map[simnet.NodeID]*peer
}

// lookupPayload travels inside simnet messages.
type lookupPayload struct {
	key    Hash
	origin simnet.NodeID
	req    uint64
	hops   int
}

type replyPayload struct {
	res LookupResult
	req uint64
}

// New builds a ring over the given nodes, registering a handler for each on
// the network. App handlers receive every non-"dht.*" message addressed to
// the node. Finger tables are built immediately (equivalent to a completed
// join protocol).
func New(net *simnet.Network, ids []simnet.NodeID, app func(id simnet.NodeID) simnet.Handler) *DHT {
	d := &DHT{
		net:   net,
		peers: make(map[simnet.NodeID]*peer, len(ids)),
	}
	for _, id := range ids {
		p := &peer{id: id, hash: HashNode(id), pending: make(map[uint64]func(LookupResult))}
		if app != nil {
			p.app = app(id)
		}
		d.peers[id] = p
		nodeID := id
		net.AddNode(id, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) {
			d.handle(nodeID, n, m)
		}))
	}
	d.Stabilize()
	return d
}

// Stabilize rebuilds every alive peer's fingers and successor list from the
// current alive membership, charging the per-peer maintenance traffic that
// a real Chord stabilization round would send. Call it periodically in
// churn experiments.
func (d *DHT) Stabilize() {
	type entry struct {
		hash Hash
		id   simnet.NodeID
	}
	var ring []entry
	for id, p := range d.peers {
		if d.net.Alive(id) {
			ring = append(ring, entry{p.hash, id})
		}
	}
	if len(ring) == 0 {
		return
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].hash != ring[j].hash {
			return ring[i].hash < ring[j].hash
		}
		return ring[i].id < ring[j].id
	})
	succ := func(h Hash) simnet.NodeID {
		i := sort.Search(len(ring), func(i int) bool { return ring[i].hash >= h })
		if i == len(ring) {
			i = 0
		}
		return ring[i].id
	}
	for _, p := range d.peers {
		if !d.net.Alive(p.id) {
			continue
		}
		if p.fingers == nil {
			p.fingers = make([]simnet.NodeID, fingerBits)
		}
		for i := 0; i < fingerBits; i++ {
			p.fingers[i] = succ(p.hash + 1<<uint(i))
		}
		p.successors = p.successors[:0]
		start := sort.Search(len(ring), func(i int) bool {
			return ring[i].hash > p.hash || (ring[i].hash == p.hash && ring[i].id > p.id)
		})
		for k := 0; k < successorList && k < len(ring); k++ {
			p.successors = append(p.successors, ring[(start+k)%len(ring)].id)
		}
		// Charge stabilization traffic: one successor-exchange with each
		// live successor-list entry.
		for range p.successors {
			d.net.Send(simnet.Message{
				From: p.id, To: p.successors[0], Kind: "dht.stabilize",
				Size: stabilizeMsgSize,
			})
		}
	}
}

// handle dispatches a delivered message to DHT routing or the app handler.
func (d *DHT) handle(self simnet.NodeID, net *simnet.Network, m simnet.Message) {
	switch m.Kind {
	case "dht.lookup":
		d.route(self, m.Payload.(lookupPayload))
	case "dht.reply":
		pl := m.Payload.(replyPayload)
		if p := d.peers[self]; p != nil {
			if cb, ok := p.pending[pl.req]; ok {
				delete(p.pending, pl.req)
				cb(pl.res)
			}
		}
	case "dht.stabilize":
		// Maintenance traffic carries no application action.
	default:
		if p := d.peers[self]; p != nil && p.app != nil {
			p.app.HandleMessage(net, m)
		}
	}
}

// Lookup resolves the owner of key starting at origin, invoking cb at the
// origin when the reply returns. Each hop is a simulated message; run the
// network to make progress.
func (d *DHT) Lookup(origin simnet.NodeID, key Hash, cb func(LookupResult)) error {
	p, ok := d.peers[origin]
	if !ok {
		return fmt.Errorf("dht: unknown origin %d", origin)
	}
	if !d.net.Alive(origin) {
		return fmt.Errorf("dht: origin %d is down", origin)
	}
	req := p.nextReq
	p.nextReq++
	p.pending[req] = cb
	d.routeFrom(p, lookupPayload{key: key, origin: origin, req: req})
	return nil
}

// route continues a lookup at node self.
func (d *DHT) route(self simnet.NodeID, pl lookupPayload) {
	p := d.peers[self]
	if p == nil || !d.net.Alive(self) {
		return // message raced a failure; origin will never hear back
	}
	d.routeFrom(p, pl)
}

func (d *DHT) routeFrom(p *peer, pl lookupPayload) {
	// Chord's routing rule: if key ∈ (p, successor] the successor owns it;
	// otherwise forward to the closest alive finger preceding the key. A
	// single-node ring owns everything (the interval test wraps to true).
	succ, ok := p.firstAliveSuccessor(d)
	if !ok {
		d.reply(p, pl, LookupResult{Key: pl.key, Failed: true, Hops: pl.hops})
		return
	}
	sp := d.peers[succ]
	if succ == p.id || between(p.hash, sp.hash, pl.key) {
		d.reply(p, pl, LookupResult{Key: pl.key, Owner: succ, Hops: pl.hops})
		return
	}
	next := p.closestPreceding(d, pl.key)
	if next == p.id {
		// No finger precedes the key: hand to the successor.
		next = succ
	}
	pl.hops++
	d.net.Send(simnet.Message{
		From: p.id, To: next, Kind: "dht.lookup", Size: lookupMsgSize, Payload: pl,
	})
}

// reply sends the result back to the origin (or invokes the callback
// directly when the origin answered its own query).
func (d *DHT) reply(p *peer, pl lookupPayload, res LookupResult) {
	if pl.origin == p.id {
		if cb, ok := p.pending[pl.req]; ok {
			delete(p.pending, pl.req)
			cb(res)
		}
		return
	}
	d.net.Send(simnet.Message{
		From: p.id, To: pl.origin, Kind: "dht.reply", Size: lookupMsgSize,
		Payload: replyPayload{res: res, req: pl.req},
	})
}

// firstAliveSuccessor returns the first alive entry of the successor list,
// charging one probe message per dead entry skipped (the timeout cost a
// real node would pay). ok is false when the whole list is dead.
func (p *peer) firstAliveSuccessor(d *DHT) (id simnet.NodeID, ok bool) {
	for i, s := range p.successors {
		if d.net.Alive(s) {
			return s, true
		}
		if i == 0 { // charge one failed probe; deeper scans batch
			d.net.Send(simnet.Message{From: p.id, To: p.id, Kind: "dht.probe", Size: 16})
		}
	}
	return 0, false
}

// closestPreceding returns the alive finger whose hash most closely
// precedes key, per Chord's greedy routing rule.
func (p *peer) closestPreceding(d *DHT, key Hash) simnet.NodeID {
	for i := fingerBits - 1; i >= 0; i-- {
		f := p.fingers[i]
		if f == p.id {
			continue
		}
		fp := d.peers[f]
		if fp == nil || !d.net.Alive(f) {
			continue
		}
		if between(p.hash, key-1, fp.hash) && fp.hash != key {
			return f
		}
	}
	return p.id
}

// Owner returns the ground-truth owner of key among alive nodes (successor
// of key on the ring), or false when no node is alive. Experiments use it
// to validate routed lookups.
func (d *DHT) Owner(key Hash) (simnet.NodeID, bool) {
	var best simnet.NodeID
	bestDist := ^Hash(0)
	found := false
	for id, p := range d.peers {
		if !d.net.Alive(id) {
			continue
		}
		dist := p.hash - key // ring distance from key forward to p
		if !found || dist < bestDist || (dist == bestDist && id < best) {
			best, bestDist, found = id, dist, true
		}
	}
	return best, found
}

// Send routes an application message directly (point-to-point, not via the
// ring). It exists so higher layers do not need to keep both the network
// and the DHT handle.
func (d *DHT) Send(msg simnet.Message) { d.net.Send(msg) }

// Network returns the underlying simulated network.
func (d *DHT) Network() *simnet.Network { return d.net }

// NodeHash returns the ring position of a node.
func (d *DHT) NodeHash(id simnet.NodeID) Hash { return d.peers[id].hash }

// Peers returns all node ids in the ring (alive or not), ascending.
func (d *DHT) Peers() []simnet.NodeID {
	ids := make([]simnet.NodeID, 0, len(d.peers))
	for id := range d.peers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---------------------------------------------------------------------------
// Super-peer election

// SuperPeerKey returns the deterministic ring key of region r out of n
// regions. Every peer can compute it locally, which is what makes the
// election deterministic.
func SuperPeerKey(r, n int) Hash {
	return HashString(fmt.Sprintf("p2pdoctagger/super-peer/%d/%d", r, n))
}

// Region assigns a peer to one of n regions by slicing the ring uniformly.
func Region(h Hash, n int) int {
	if n <= 1 {
		return 0
	}
	width := ^Hash(0)/Hash(n) + 1
	r := int(h / width)
	if r >= n {
		r = n - 1
	}
	return r
}

// ElectSuperPeers returns the ground-truth super-peer of every region
// (successor of the region key among alive nodes). Peers discover their
// own region's super-peer with a routed Lookup; this helper gives
// experiments the expected answer.
func (d *DHT) ElectSuperPeers(regions int) []simnet.NodeID {
	out := make([]simnet.NodeID, regions)
	for r := 0; r < regions; r++ {
		owner, ok := d.Owner(SuperPeerKey(r, regions))
		if !ok {
			out[r] = -1
			continue
		}
		out[r] = owner
	}
	return out
}

// StartStabilizer schedules Stabilize every interval using system events,
// mirroring Chord's periodic maintenance under churn.
func (d *DHT) StartStabilizer(interval time.Duration) {
	var tick func()
	tick = func() {
		d.Stabilize()
		d.net.ScheduleSystem(interval, tick)
	}
	d.net.ScheduleSystem(interval, tick)
}
