package protocol

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/vector"
)

func TestSigmoid(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(10); s < 0.99 {
		t.Errorf("Sigmoid(10) = %v", s)
	}
	if s := Sigmoid(-10); s > 0.01 {
		t.Errorf("Sigmoid(-10) = %v", s)
	}
	// Symmetry.
	if math.Abs(Sigmoid(2)+Sigmoid(-2)-1) > 1e-12 {
		t.Error("sigmoid not symmetric")
	}
}

func TestSelectTags(t *testing.T) {
	scores := []metrics.ScoredTag{
		{Tag: "a", Score: 0.9}, {Tag: "b", Score: 0.6},
		{Tag: "c", Score: 0.4}, {Tag: "d", Score: 0.1},
	}
	got := SelectTags(scores, 0.5, 0)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("SelectTags = %v", got)
	}
	// Fallback to best single tag when nothing clears the threshold.
	got = SelectTags(scores, 0.95, 0)
	if len(got) != 1 || got[0] != "a" {
		t.Errorf("fallback = %v", got)
	}
	// MaxTags caps.
	got = SelectTags(scores, 0.05, 2)
	if len(got) != 2 {
		t.Errorf("maxTags = %v", got)
	}
	// Empty input.
	if got := SelectTags(nil, 0.5, 0); got != nil {
		t.Errorf("empty = %v", got)
	}
	// Deterministic tie-break by name.
	tie := []metrics.ScoredTag{{Tag: "z", Score: 0.7}, {Tag: "a", Score: 0.7}}
	got = SelectTags(tie, 0.5, 1)
	if got[0] != "a" {
		t.Errorf("tie-break = %v", got)
	}
}

func TestBinaryExamples(t *testing.T) {
	x1 := vector.FromMap(map[int32]float64{0: 1})
	x2 := vector.FromMap(map[int32]float64{1: 1})
	docs := []Doc{
		{X: x1, Tags: []string{"music", "travel"}},
		{X: x2, Tags: []string{"food"}},
	}
	exs := BinaryExamples(docs, "music")
	if len(exs) != 2 {
		t.Fatalf("got %d examples", len(exs))
	}
	if exs[0].Y != 1 || exs[1].Y != -1 {
		t.Errorf("labels = %v, %v", exs[0].Y, exs[1].Y)
	}
	if exs[0].X != x1 {
		t.Error("example should reference the same vector")
	}
}

func TestTagUniverse(t *testing.T) {
	docs := []Doc{
		{Tags: []string{"b", "a"}},
		{Tags: []string{"a", "c"}},
		{Tags: nil},
	}
	got := TagUniverse(docs)
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("universe = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("universe = %v, want %v", got, want)
		}
	}
	if u := TagUniverse(nil); len(u) != 0 {
		t.Errorf("empty universe = %v", u)
	}
}

func TestScoreMap(t *testing.T) {
	m := ScoreMap([]metrics.ScoredTag{{Tag: "x", Score: 0.3}})
	if m["x"] != 0.3 || len(m) != 1 {
		t.Errorf("ScoreMap = %v", m)
	}
}
