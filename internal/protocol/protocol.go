// Package protocol defines the pluggable P2P classification interface of
// P2PDocTagger ("the P2P classification algorithm in P2PDocTagger is a
// pluggable component") together with helpers shared by its
// implementations (CEMPaR, PACE and the centralized/local baselines).
package protocol

import (
	"math"
	"slices"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/simnet"
	"repro/internal/svm"
	"repro/internal/vector"
)

// Doc is one training document: its preprocessed feature vector and the
// tags assigned (manually or by refinement) by its owning peer.
type Doc struct {
	X    *vector.Sparse
	Tags []string
}

// Classifier is a distributed multi-label classification protocol running
// on a simulated network. Implementations register their per-peer state at
// construction; Fit schedules the collaborative training traffic, and
// Predict schedules a query from one peer. The caller drives the network
// (net.Run) to make either complete.
type Classifier interface {
	// Name identifies the protocol in experiment reports.
	Name() string
	// Fit starts collaborative training from each peer's local documents.
	Fit()
	// Predict requests tag scores for x as seen from peer `from`,
	// invoking cb exactly once when the answer is available (which may be
	// synchronously for local protocols). cb receives scores in [0,1] for
	// every tag the protocol knows; absent tags mean score 0. If the
	// query cannot be answered (e.g. the responsible node is down), ok is
	// false.
	Predict(from simnet.NodeID, x *vector.Sparse, cb func(scores []metrics.ScoredTag, ok bool))
}

// Refiner is implemented by protocols that support the paper's tag
// refinement loop: a user correction becomes new labeled data that updates
// the local and global models.
type Refiner interface {
	Refine(peer simnet.NodeID, doc Doc)
}

// StreamScorer is implemented by protocols whose Predict can run over raw
// sorted entries without a materialized *vector.Sparse — the streaming
// fast path. PredictEntries has Predict's exact semantics (cb invoked
// exactly once, same scores bit for bit), with a stricter borrow
// contract: the entries slice is only valid for the duration of the call
// (it typically lives in pooled preprocessing scratch), so an
// implementation that must defer the answer — e.g. forward the query over
// the network — copies the entries first. Likewise the scores slice
// handed to cb may be reused scratch: cb must consume it synchronously.
type StreamScorer interface {
	// StreamsFrom reports whether PredictEntries answers synchronously
	// (cb fires before it returns) for queries originating at from. Only
	// then can a caller drive a whole batch through reused scratch with
	// O(1) intermediate state; otherwise it falls back to materialized
	// vectors that survive until the network delivers the answer.
	StreamsFrom(from simnet.NodeID) bool
	PredictEntries(from simnet.NodeID, entries []vector.Entry, cb func(scores []metrics.ScoredTag, ok bool))
}

// Sigmoid squashes an SVM decision value into a (0,1) confidence.
func Sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SelectTags applies P2PDocTagger's tag-assignment rule to scores: keep
// every tag at or above threshold; if none clears it, fall back to the
// single best tag (a document always receives at least one tag, as in the
// demo UI). maxTags caps the result (0 = unlimited). Ties break by name.
func SelectTags(scores []metrics.ScoredTag, threshold float64, maxTags int) []string {
	tags, _ := SelectTagsInto(nil, scores, nil, threshold, maxTags)
	return tags
}

// SelectTagsInto is SelectTags with caller-owned storage, for the
// streaming batch path: the selected tags append into dst[:0] and the
// sort runs in scratch (grown as needed), so a tagging loop reusing both
// allocates only when a document needs more room than any predecessor.
// Returns the tags and the (possibly regrown) scratch. scores itself is
// never reordered. Semantics are pinned to SelectTags: same ordering rule
// (score desc, name asc — a total order, so the unstable sort is
// deterministic), same fallback, same nil result for empty scores.
func SelectTagsInto(dst []string, scores []metrics.ScoredTag, scratch []metrics.ScoredTag, threshold float64, maxTags int) ([]string, []metrics.ScoredTag) {
	scratch = append(scratch[:0], scores...)
	slices.SortFunc(scratch, func(a, b metrics.ScoredTag) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		}
		return strings.Compare(a.Tag, b.Tag)
	})
	if cap(dst) == 0 && len(scratch) > 0 {
		// One right-sized allocation instead of append's doubling walk.
		n := len(scratch)
		if maxTags > 0 && maxTags < n {
			n = maxTags
		}
		dst = make([]string, 0, n)
	}
	out := dst[:0]
	for _, st := range scratch {
		if st.Score >= threshold {
			if maxTags > 0 && len(out) == maxTags {
				break
			}
			out = append(out, st.Tag)
		}
	}
	if len(out) == 0 {
		if len(scratch) == 0 {
			return nil, scratch
		}
		out = append(out, scratch[0].Tag)
	}
	return out, scratch
}

// BinaryExamples converts docs into one-against-all training examples for
// tag: documents carrying the tag are positive, the rest negative — the
// multi-label → binary reduction of §2.
func BinaryExamples(docs []Doc, tag string) []svm.Example {
	out := make([]svm.Example, 0, len(docs))
	for _, d := range docs {
		y := -1.0
		for _, t := range d.Tags {
			if t == tag {
				y = 1
				break
			}
		}
		out = append(out, svm.Example{X: d.X, Y: y})
	}
	return out
}

// TagUniverse returns the sorted set of tags present in docs.
func TagUniverse(docs []Doc) []string {
	seen := map[string]bool{}
	for _, d := range docs {
		for _, t := range d.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ScoreMap converts scored tags to a map for easy lookup.
func ScoreMap(scores []metrics.ScoredTag) map[string]float64 {
	m := make(map[string]float64, len(scores))
	for _, s := range scores {
		m[s.Tag] = s.Score
	}
	return m
}
