// Package lsh implements a random-hyperplane locality-sensitive-hash index
// for cosine similarity (Charikar's SimHash family). PACE peers index the
// centroids of remote models with it and, given a test document, retrieve
// the top-k "nearest" models cheaply.
package lsh

import (
	"math"
	"sort"
	"sync"

	"repro/internal/vector"
)

// Options configures an Index.
type Options struct {
	// Planes is the number of random hyperplanes per table (signature
	// bits); default 12.
	Planes int
	// Tables is the number of independent hash tables; more tables raise
	// recall at the cost of memory; default 4.
	Tables int
	// Dim is the expected dimensionality of indexed vectors. Hyperplanes
	// are drawn lazily up to the highest index seen, so Dim is only a
	// capacity hint.
	Dim int
	// Seed drives hyperplane generation.
	Seed int64
}

// Neighbor is one query result: the indexed item id and its cosine
// similarity to the query.
type Neighbor struct {
	ID     int
	Cosine float64
}

// Index maps item ids to vectors and answers approximate top-k cosine
// queries. It is safe for concurrent use.
type Index struct {
	opts   Options
	mu     sync.RWMutex
	planes [][]planeEntry // [table*planes+p] sparse random hyperplane coeffs
	tables []map[uint64][]int
	items  map[int]*vector.Sparse
}

// planeEntry caches the Gaussian coefficient of a hyperplane for one
// feature dimension, drawn on demand so the index works with unbounded
// vocabularies.
type planeEntry struct {
	dim   int32
	coeff float64
}

// New returns an empty index.
func New(opts Options) *Index {
	if opts.Planes <= 0 {
		opts.Planes = 12
	}
	if opts.Planes > 64 {
		opts.Planes = 64
	}
	if opts.Tables <= 0 {
		opts.Tables = 4
	}
	idx := &Index{
		opts:   opts,
		planes: make([][]planeEntry, opts.Tables*opts.Planes),
		tables: make([]map[uint64][]int, opts.Tables),
		items:  make(map[int]*vector.Sparse),
	}
	for i := range idx.tables {
		idx.tables[i] = make(map[uint64][]int)
	}
	return idx
}

// coeff returns the hyperplane coefficient for plane p at dimension d,
// generating coefficients deterministically in dimension order.
func (ix *Index) coeff(p int, d int32) float64 {
	entries := ix.planes[p]
	// Binary search the cached entries.
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].dim >= d })
	if lo < len(entries) && entries[lo].dim == d {
		return entries[lo].coeff
	}
	// Coefficients must depend only on (seed, p, d) so every vector sees
	// the same hyperplane regardless of insertion order; derive them from
	// a per-(p, d) hash rather than a sequential random stream.
	h := (uint64(p+1)*0x9E3779B97F4A7C15 ^ uint64(uint32(d))*0xBF58476D1CE4E5B9) + uint64(ix.opts.Seed)*0xD6E8FEB86659FD93
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	// Box-Muller on two uniform halves of h for an approximately Gaussian
	// coefficient; exact Gaussianity is not required by the LSH guarantee,
	// any symmetric distribution with full support works.
	u1 := float64(h&0xFFFFFFFF)/4294967296.0 + 1e-12
	u2 := float64(h>>32) / 4294967296.0
	g := gauss(u1, u2)
	ix.planes[p] = append(entries, planeEntry{}) // grow
	copy(ix.planes[p][lo+1:], ix.planes[p][lo:])
	ix.planes[p][lo] = planeEntry{dim: d, coeff: g}
	return g
}

// gauss maps two uniforms in (0,1] to a standard normal via Box-Muller.
func gauss(u1, u2 float64) float64 {
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// sigScratch holds the pooled scratch of signature computation: per-plane
// dot accumulators and the per-table signatures a Query reuses between its
// exact and Hamming-widened candidate phases (previously recomputed).
// Scratch never escapes the call that took it from the pool.
type sigScratch struct {
	dots []float64
	sigs []uint64
}

var sigPool = sync.Pool{New: func() any { return new(sigScratch) }}

// signature computes the bit signature of v under table t.
func (ix *Index) signature(t int, v *vector.Sparse) uint64 {
	sc := sigPool.Get().(*sigScratch)
	sig := ix.signatureInto(t, v, sc)
	sigPool.Put(sc)
	return sig
}

// signatureInto is signature with caller-provided scratch. Per plane, the
// dot product accumulates over v's entries in ascending feature order —
// the same order as the historical per-plane loop, so signatures are
// unchanged.
func (ix *Index) signatureInto(t int, v *vector.Sparse, sc *sigScratch) uint64 {
	planes := ix.opts.Planes
	if cap(sc.dots) < planes {
		sc.dots = make([]float64, planes)
	}
	dots := sc.dots[:planes]
	for p := range dots {
		dots[p] = 0
	}
	base := t * planes
	for _, e := range v.Entries() {
		for p := 0; p < planes; p++ {
			dots[p] += e.Value * ix.coeff(base+p, e.Index)
		}
	}
	var sig uint64
	for p, dot := range dots {
		if dot >= 0 {
			sig |= 1 << uint(p)
		}
	}
	return sig
}

// Add indexes vector v under id, replacing any previous vector with the
// same id.
func (ix *Index) Add(id int, v *vector.Sparse) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, exists := ix.items[id]; exists {
		ix.removeLocked(id)
	}
	ix.items[id] = v
	for t := range ix.tables {
		sig := ix.signature(t, v)
		ix.tables[t][sig] = append(ix.tables[t][sig], id)
	}
}

// Remove deletes id from the index; removing an absent id is a no-op.
func (ix *Index) Remove(id int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(id)
}

func (ix *Index) removeLocked(id int) {
	v, ok := ix.items[id]
	if !ok {
		return
	}
	delete(ix.items, id)
	for t := range ix.tables {
		sig := ix.signature(t, v)
		bucket := ix.tables[t][sig]
		for i, got := range bucket {
			if got == id {
				ix.tables[t][sig] = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(ix.tables[t][sig]) == 0 {
			delete(ix.tables[t], sig)
		}
	}
}

// Len reports the number of indexed items.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.items)
}

// Query returns up to k indexed items most cosine-similar to q. Candidates
// are drawn from matching LSH buckets in every table; when the buckets
// yield fewer than k candidates the search widens to signatures at Hamming
// distance 1, and finally falls back to a linear scan so the result is
// never empty while items exist. Exact cosine re-ranking orders the final
// candidates, with ties broken by ascending id for determinism.
func (ix *Index) Query(q *vector.Sparse, k int) []Neighbor {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 || len(ix.items) == 0 {
		return nil
	}
	// Compute each table's query signature once into pooled scratch; the
	// Hamming-distance-1 widening below reuses them instead of redoing
	// the planes*nnz dot products per table.
	sc := sigPool.Get().(*sigScratch)
	if cap(sc.sigs) < len(ix.tables) {
		sc.sigs = make([]uint64, len(ix.tables))
	}
	sigs := sc.sigs[:len(ix.tables)]
	for t := range ix.tables {
		sigs[t] = ix.signatureInto(t, q, sc)
	}
	cand := make(map[int]bool)
	for t := range ix.tables {
		for _, id := range ix.tables[t][sigs[t]] {
			cand[id] = true
		}
	}
	if len(cand) < k {
		for t := range ix.tables {
			for p := 0; p < ix.opts.Planes; p++ {
				for _, id := range ix.tables[t][sigs[t]^(1<<uint(p))] {
					cand[id] = true
				}
			}
		}
	}
	sigPool.Put(sc)
	if len(cand) < k {
		for id := range ix.items {
			cand[id] = true
		}
	}
	out := make([]Neighbor, 0, len(cand))
	for id := range cand {
		out = append(out, Neighbor{ID: id, Cosine: q.Cosine(ix.items[id])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cosine != out[j].Cosine {
			return out[i].Cosine > out[j].Cosine
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
