package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/vector"
)

func randomUnit(rng *rand.Rand, dim int) *vector.Sparse {
	m := make(map[int32]float64, dim)
	for d := 0; d < dim; d++ {
		m[int32(d)] = rng.NormFloat64()
	}
	return vector.FromMap(m).Normalize()
}

func TestQueryFindsExactMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ix := New(Options{Planes: 10, Tables: 4, Seed: 1})
	vs := make([]*vector.Sparse, 50)
	for i := range vs {
		vs[i] = randomUnit(rng, 16)
		ix.Add(i, vs[i])
	}
	for i, v := range vs {
		res := ix.Query(v, 1)
		if len(res) != 1 {
			t.Fatalf("query %d returned %d results", i, len(res))
		}
		if res[0].ID != i {
			// The exact vector has cosine 1; anything else winning means a
			// duplicate vector, which random Gaussians make vanishingly
			// unlikely.
			t.Errorf("query %d: top id = %d (cos %v)", i, res[0].ID, res[0].Cosine)
		}
	}
}

func TestQueryPrefersNearbyVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ix := New(Options{Planes: 8, Tables: 6, Seed: 3})
	base := randomUnit(rng, 16)
	// id 0: a small perturbation of base; ids 1..30: random.
	near := base.Axpy(0.1, randomUnit(rng, 16)).Normalize()
	ix.Add(0, near)
	for i := 1; i <= 30; i++ {
		ix.Add(i, randomUnit(rng, 16))
	}
	res := ix.Query(base, 3)
	if len(res) == 0 || res[0].ID != 0 {
		t.Errorf("expected near vector first, got %+v", res)
	}
}

func TestQueryKLargerThanIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ix := New(Options{Seed: 1})
	for i := 0; i < 5; i++ {
		ix.Add(i, randomUnit(rng, 8))
	}
	res := ix.Query(randomUnit(rng, 8), 50)
	if len(res) != 5 {
		t.Errorf("got %d results, want all 5", len(res))
	}
	// Results must be sorted by descending cosine.
	for i := 1; i < len(res); i++ {
		if res[i].Cosine > res[i-1].Cosine {
			t.Error("results not sorted")
		}
	}
}

func TestQueryEmptyAndZeroK(t *testing.T) {
	ix := New(Options{Seed: 1})
	q := vector.FromMap(map[int32]float64{0: 1})
	if res := ix.Query(q, 3); res != nil {
		t.Errorf("empty index returned %v", res)
	}
	ix.Add(1, q)
	if res := ix.Query(q, 0); res != nil {
		t.Errorf("k=0 returned %v", res)
	}
}

func TestRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ix := New(Options{Seed: 2})
	v := randomUnit(rng, 8)
	ix.Add(7, v)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	ix.Remove(7)
	if ix.Len() != 0 {
		t.Fatalf("Len after remove = %d", ix.Len())
	}
	if res := ix.Query(v, 1); len(res) != 0 {
		t.Errorf("removed item still returned: %v", res)
	}
	ix.Remove(7) // absent: no-op, no panic
}

func TestAddReplaces(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ix := New(Options{Seed: 2})
	ix.Add(1, randomUnit(rng, 8))
	v2 := randomUnit(rng, 8)
	ix.Add(1, v2)
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after replace", ix.Len())
	}
	res := ix.Query(v2, 1)
	if len(res) != 1 || res[0].Cosine < 0.999 {
		t.Errorf("replaced vector not found: %v", res)
	}
}

func TestSignatureInsertionOrderIndependent(t *testing.T) {
	// Hyperplane coefficients must depend only on (seed, plane, dim) so
	// the same vector hashes identically no matter what was added before.
	rng := rand.New(rand.NewSource(6))
	v := randomUnit(rng, 32)
	a := New(Options{Planes: 16, Tables: 2, Seed: 9})
	b := New(Options{Planes: 16, Tables: 2, Seed: 9})
	// Warm b with other vectors first.
	for i := 0; i < 10; i++ {
		b.Add(100+i, randomUnit(rng, 32))
	}
	for tbl := 0; tbl < 2; tbl++ {
		if a.signature(tbl, v) != b.signature(tbl, v) {
			t.Fatalf("table %d signature differs with warm cache", tbl)
		}
	}
}

func TestDifferentSeedsDifferentPlanes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := randomUnit(rng, 32)
	a := New(Options{Planes: 32, Tables: 1, Seed: 1})
	b := New(Options{Planes: 32, Tables: 1, Seed: 2})
	if a.signature(0, v) == b.signature(0, v) {
		t.Error("different seeds produced identical 32-bit signatures (unlikely)")
	}
}

func TestRecallAgainstLinearScan(t *testing.T) {
	// Clustered data (PACE's actual workload: model centroids from topical
	// document collections). Uniformly random high-dimensional vectors all
	// have near-zero pairwise cosine, so recall there is meaningless.
	rng := rand.New(rand.NewSource(8))
	ix := New(Options{Planes: 10, Tables: 8, Seed: 4})
	centers := make([]*vector.Sparse, 10)
	for i := range centers {
		centers[i] = randomUnit(rng, 24)
	}
	vs := make([]*vector.Sparse, 200)
	for i := range vs {
		c := centers[i%len(centers)]
		vs[i] = c.Axpy(0.3, randomUnit(rng, 24)).Normalize()
		ix.Add(i, vs[i])
	}
	const k = 10
	hits, total := 0, 0
	for trial := 0; trial < 20; trial++ {
		q := centers[trial%len(centers)].Axpy(0.3, randomUnit(rng, 24)).Normalize()
		// Exact top-k by linear scan.
		type pair struct {
			id  int
			cos float64
		}
		exact := make([]pair, len(vs))
		for i, v := range vs {
			exact[i] = pair{i, q.Cosine(v)}
		}
		for i := 0; i < k; i++ { // partial selection sort
			best := i
			for j := i + 1; j < len(exact); j++ {
				if exact[j].cos > exact[best].cos {
					best = j
				}
			}
			exact[i], exact[best] = exact[best], exact[i]
		}
		want := map[int]bool{}
		for i := 0; i < k; i++ {
			want[exact[i].id] = true
		}
		for _, n := range ix.Query(q, k) {
			if want[n.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.5 {
		t.Errorf("top-%d recall = %v, want >= 0.5", k, recall)
	}
}

func BenchmarkQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ix := New(Options{Planes: 12, Tables: 4, Seed: 1})
	for i := 0; i < 1000; i++ {
		ix.Add(i, randomUnit(rng, 32))
	}
	q := randomUnit(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Query(q, 10)
	}
}

// TestQueryFallbackDeterministic pins the byte-identical contract on the
// linear-scan fallback: candidates are collected by iterating the items
// map, so only the total (cosine, id) re-ranking order keeps map iteration
// from leaking into results. Repeated queries — and indexes built in
// different insertion orders — must return the exact same neighbor list.
func TestQueryFallbackDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const items = 12
	vs := make([]*vector.Sparse, items)
	for i := range vs {
		vs[i] = randomUnit(rng, 8)
	}
	build := func(order []int) *Index {
		ix := New(Options{Planes: 8, Tables: 2, Seed: 5})
		for _, i := range order {
			ix.Add(i, vs[i])
		}
		return ix
	}
	forward := make([]int, items)
	reverse := make([]int, items)
	for i := range forward {
		forward[i] = i
		reverse[i] = items - 1 - i
	}
	q := randomUnit(rng, 8)
	// k > items forces the widening cascade all the way to the full-scan
	// fallback, the map-iteration site under audit.
	const k = items + 5
	want := build(forward).Query(q, k)
	if len(want) != items {
		t.Fatalf("fallback returned %d of %d items", len(want), items)
	}
	for trial := 0; trial < 20; trial++ {
		order := forward
		if trial%2 == 1 {
			order = reverse
		}
		got := build(order).Query(q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}
