package baseline

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/vector"
)

func topicDoc(topic, variant int) protocol.Doc {
	m := map[int32]float64{}
	for j := 0; j < 4; j++ {
		m[int32(topic*8+(variant+j)%8)] = 1
	}
	return protocol.Doc{
		X:    vector.FromMap(m).Normalize(),
		Tags: []string{[]string{"music", "travel", "food"}[topic]},
	}
}

func setupCentral(t *testing.T, n int) (*simnet.Network, *Centralized) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(5 * time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	c := NewCentralized(net, ids, CentralizedConfig{Coordinator: 0, Seed: 2})
	for i := range ids {
		var docs []protocol.Doc
		for v := 0; v < 6; v++ {
			docs = append(docs, topicDoc(i%3, v))
		}
		for v := 0; v < 3; v++ {
			docs = append(docs, topicDoc((i+1)%3, v))
		}
		c.SetDocs(ids[i], docs)
	}
	return net, c
}

func TestCentralizedFitAndPredict(t *testing.T) {
	net, c := setupCentral(t, 9)
	c.Fit()
	net.RunFor(time.Minute)
	var scores []metrics.ScoredTag
	ok := false
	c.Predict(4, topicDoc(2, 1).X, func(sc []metrics.ScoredTag, o bool) { scores, ok = sc, o })
	net.RunFor(time.Minute)
	if !ok {
		t.Fatal("prediction failed")
	}
	if protocol.SelectTags(scores, 0, 1)[0] != "food" {
		t.Errorf("prediction = %v", scores)
	}
}

func TestCentralizedPredictFromCoordinator(t *testing.T) {
	net, c := setupCentral(t, 6)
	c.Fit()
	net.RunFor(time.Minute)
	ok := false
	c.Predict(0, topicDoc(0, 1).X, func(_ []metrics.ScoredTag, o bool) { ok = o })
	// Coordinator answers synchronously.
	if !ok {
		t.Fatal("coordinator self-query failed")
	}
}

func setupLocal(t *testing.T, n int) (*simnet.Network, *Local) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	l := NewLocal(net, ids, 1, 2)
	for i := range ids {
		var docs []protocol.Doc
		for v := 0; v < 6; v++ {
			docs = append(docs, topicDoc(i%3, v))
		}
		for v := 0; v < 3; v++ {
			docs = append(docs, topicDoc((i+1)%3, v))
		}
		l.SetDocs(ids[i], docs)
	}
	return net, l
}

// TestPredictEntriesMatchesPredict pins the streaming entry point to the
// materialized one for both baselines and both centralized origins: the
// same query must score bit-identically through either path.
func TestPredictEntriesMatchesPredict(t *testing.T) {
	predict := func(clf protocol.Classifier, net *simnet.Network, from simnet.NodeID, x *vector.Sparse) ([]metrics.ScoredTag, bool) {
		var scores []metrics.ScoredTag
		ok := false
		clf.Predict(from, x, func(sc []metrics.ScoredTag, o bool) {
			scores = append([]metrics.ScoredTag(nil), sc...)
			ok = o
		})
		net.RunFor(time.Minute)
		return scores, ok
	}
	stream := func(ss protocol.StreamScorer, net *simnet.Network, from simnet.NodeID, x *vector.Sparse) ([]metrics.ScoredTag, bool) {
		var scores []metrics.ScoredTag
		ok := false
		ss.PredictEntries(from, x.Entries(), func(sc []metrics.ScoredTag, o bool) {
			scores = append([]metrics.ScoredTag(nil), sc...)
			ok = o
		})
		net.RunFor(time.Minute)
		return scores, ok
	}
	compare := func(t *testing.T, name string, got, want []metrics.ScoredTag, gotOK, wantOK bool) {
		t.Helper()
		if gotOK != wantOK {
			t.Fatalf("%s: streaming ok=%v, materialized ok=%v", name, gotOK, wantOK)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d streamed scores, %d materialized", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("%s score %d: streamed %+v != materialized %+v", name, i, got[i], want[i])
			}
		}
	}

	t.Run("centralized", func(t *testing.T) {
		netA, a := setupCentral(t, 6)
		a.Fit()
		netA.RunFor(time.Minute)
		netB, b := setupCentral(t, 6)
		b.Fit()
		netB.RunFor(time.Minute)
		if !a.StreamsFrom(0) || a.StreamsFrom(3) {
			t.Fatal("Centralized must stream only coordinator-origin queries")
		}
		for _, from := range []simnet.NodeID{0, 3} { // coordinator and remote origin
			for topic := 0; topic < 3; topic++ {
				x := topicDoc(topic, 1).X
				want, wantOK := predict(a, netA, from, x)
				got, gotOK := stream(b, netB, from, x)
				compare(t, "centralized", got, want, gotOK, wantOK)
			}
		}
	})
	t.Run("local", func(t *testing.T) {
		net, l := setupLocal(t, 6)
		l.Fit()
		if !l.StreamsFrom(2) {
			t.Fatal("Local must stream every query")
		}
		for topic := 0; topic < 3; topic++ {
			x := topicDoc(topic, 2).X
			want, wantOK := predict(l, net, 2, x)
			got, gotOK := stream(l, net, 2, x)
			compare(t, "local", got, want, gotOK, wantOK)
		}
	})
}

func TestCentralizedSinglePointOfFailure(t *testing.T) {
	net, c := setupCentral(t, 6)
	c.Fit()
	net.RunFor(time.Minute)
	net.Kill(0) // the coordinator
	fired := false
	c.Predict(3, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, ok bool) {
		fired = true
		if ok {
			t.Error("query succeeded with dead coordinator")
		}
	})
	if !fired {
		t.Fatal("callback not fired")
	}
}

func TestCentralizedUploadCostDominatedByData(t *testing.T) {
	net, c := setupCentral(t, 8)
	c.Fit()
	net.RunFor(time.Minute)
	s := net.Stats()
	if s.MessagesByKind["central.upload"] != 7 {
		t.Errorf("uploads = %d, want 7 (everyone but the coordinator)", s.MessagesByKind["central.upload"])
	}
	// The coordinator is the hotspot: it receives everything.
	if s.BytesByKind["central.upload"] == 0 {
		t.Error("no upload bytes charged")
	}
}

func TestCentralizedRefine(t *testing.T) {
	net, c := setupCentral(t, 5)
	c.Fit()
	net.RunFor(time.Minute)
	for v := 0; v < 4; v++ {
		c.Refine(2, protocol.Doc{
			X:    vector.FromMap(map[int32]float64{400 + int32(v): 1, 450: 1}).Normalize(),
			Tags: []string{"niche"},
		})
	}
	net.RunFor(time.Minute)
	found := false
	c.Predict(1, vector.FromMap(map[int32]float64{450: 1}).Normalize(), func(sc []metrics.ScoredTag, ok bool) {
		if !ok {
			return
		}
		_, found = protocol.ScoreMap(sc)["niche"]
	})
	net.RunFor(time.Minute)
	if !found {
		t.Error("refined tag not learned by coordinator")
	}
}

func TestLocalPredictsOwnTopicsOnly(t *testing.T) {
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(time.Millisecond), Seed: 1})
	ids := []simnet.NodeID{0, 1}
	l := NewLocal(net, ids, 1, 2)
	// Peer 0 has music and travel docs; peer 1 food and music.
	var d0, d1 []protocol.Doc
	for v := 0; v < 6; v++ {
		d0 = append(d0, topicDoc(0, v))
		d1 = append(d1, topicDoc(2, v))
	}
	for v := 0; v < 3; v++ {
		d0 = append(d0, topicDoc(1, v))
		d1 = append(d1, topicDoc(0, v))
	}
	l.SetDocs(0, d0)
	l.SetDocs(1, d1)
	l.Fit()
	if s := net.Stats(); s.MessagesSent != 0 {
		t.Errorf("local baseline sent %d messages", s.MessagesSent)
	}
	// Peer 0 cannot know the "food" tag at all.
	var tags []string
	l.Predict(0, topicDoc(2, 1).X, func(sc []metrics.ScoredTag, ok bool) {
		if !ok {
			t.Fatal("prediction failed")
		}
		for _, st := range sc {
			tags = append(tags, st.Tag)
		}
	})
	for _, tag := range tags {
		if tag == "food" {
			t.Error("local peer predicted a tag it never saw")
		}
	}
}

func TestLocalDeadPeerFails(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	l := NewLocal(net, []simnet.NodeID{0}, 1, 2)
	var docs []protocol.Doc
	for v := 0; v < 6; v++ {
		docs = append(docs, topicDoc(0, v))
		docs = append(docs, topicDoc(1, v))
	}
	l.SetDocs(0, docs)
	l.Fit()
	net.Kill(0)
	fired := false
	l.Predict(0, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, ok bool) {
		fired = true
		if ok {
			t.Error("dead peer answered")
		}
	})
	if !fired {
		t.Fatal("callback not fired")
	}
}

func TestLocalRefine(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	l := NewLocal(net, []simnet.NodeID{0}, 1, 2)
	var docs []protocol.Doc
	for v := 0; v < 6; v++ {
		docs = append(docs, topicDoc(0, v), topicDoc(1, v))
	}
	l.SetDocs(0, docs)
	l.Fit()
	for v := 0; v < 4; v++ {
		l.Refine(0, protocol.Doc{
			X:    vector.FromMap(map[int32]float64{500 + int32(v): 1, 550: 1}).Normalize(),
			Tags: []string{"hobby"},
		})
	}
	found := false
	l.Predict(0, vector.FromMap(map[int32]float64{550: 1}).Normalize(), func(sc []metrics.ScoredTag, ok bool) {
		if !ok {
			return
		}
		_, found = protocol.ScoreMap(sc)["hobby"]
	})
	if !found {
		t.Error("refined tag not learned locally")
	}
}

func TestNames(t *testing.T) {
	net := simnet.New(simnet.Options{Seed: 1})
	c := NewCentralized(net, []simnet.NodeID{0}, CentralizedConfig{})
	l := NewLocal(net, []simnet.NodeID{1}, 0, 0)
	if c.Name() != "Centralized" || l.Name() != "Local-only" {
		t.Error("bad names")
	}
}
