// Package baseline implements the two comparison points of every
// experiment: a centralized tagger (all peers ship their labeled documents
// to one coordinator that trains global models and answers every query —
// the architecture the paper argues against) and a local-only tagger (each
// peer learns from its own documents alone — the floor that collaboration
// must beat).
package baseline

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/runner"
	"repro/internal/simnet"
	"repro/internal/svm"
	"repro/internal/vector"
)

// CentralizedConfig tunes the centralized baseline.
type CentralizedConfig struct {
	// Coordinator is the node all data and queries flow to.
	Coordinator simnet.NodeID
	// C is the linear SVM penalty; default 1.
	C float64
	// QueryTimeout is unused by the simulator's lossless default paths but
	// kept for symmetry; queries to a dead coordinator fail via lost
	// messages and the caller's run horizon.
	Seed int64
	// Parallel is the worker count for the coordinator's global training:
	// the one-vs-all models are independent per tag, so they train
	// concurrently. 1 means serial; other values <= 0 mean GOMAXPROCS.
	// The result is bit-identical at any worker count.
	Parallel int
}

// Centralized is the centralized collaborative tagger.
type Centralized struct {
	cfg    CentralizedConfig
	net    *simnet.Network
	order  []simnet.NodeID
	docs   map[simnet.NodeID][]protocol.Doc
	pool   []protocol.Doc // coordinator's accumulated training data
	dirty  bool           // pool changed since last training
	models map[string]*svm.LinearModel
	platt  map[string]svm.PlattParams
	// fused packs the one-vs-all bank into a single inverted score matrix
	// so a query scores every tag in one pass over its features (rebuilt
	// by retrainIfDirty); scoreBuf is its reused output buffer — safe
	// without a lock because all scoring happens either in the
	// coordinator's handler (serial per node under the sharded simulator)
	// or in Predict while the simulated clock is stopped.
	fused    *svm.FusedLinear
	scoreBuf []float64
	// scored is PredictEntries' reused answer slice: the streaming
	// contract says cb consumes it synchronously, so one buffer serves
	// every coordinator-origin query.
	scored []metrics.ScoredTag
	// pending queries awaiting coordinator answers, bucketed by origin so
	// an answer handled at its origin touches only that origin's bucket
	// (required by the sharded simulator).
	pending map[simnet.NodeID]map[uint64]func([]metrics.ScoredTag, bool)
	nextReq map[simnet.NodeID]uint64
}

type uploadMsg struct{ docs []protocol.Doc }

type centralQuery struct {
	x      *vector.Sparse
	origin simnet.NodeID
	req    uint64
}

type centralAnswer struct {
	req    uint64
	scores map[string]float64
}

// NewCentralized registers handlers for ids on net.
func NewCentralized(net *simnet.Network, ids []simnet.NodeID, cfg CentralizedConfig) *Centralized {
	if cfg.C == 0 {
		cfg.C = 1
	}
	c := &Centralized{
		cfg:     cfg,
		net:     net,
		docs:    make(map[simnet.NodeID][]protocol.Doc),
		pending: make(map[simnet.NodeID]map[uint64]func([]metrics.ScoredTag, bool), len(ids)),
		nextReq: make(map[simnet.NodeID]uint64, len(ids)),
	}
	c.order = append(c.order, ids...)
	sort.Slice(c.order, func(i, j int) bool { return c.order[i] < c.order[j] })
	for _, id := range c.order {
		c.pending[id] = make(map[uint64]func([]metrics.ScoredTag, bool))
		nodeID := id
		net.AddNode(id, simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
			c.handle(nodeID, m)
		}))
	}
	return c
}

// SetDocs installs a peer's local training documents (before Fit).
func (c *Centralized) SetDocs(id simnet.NodeID, docs []protocol.Doc) { c.docs[id] = docs }

// Name implements protocol.Classifier.
func (c *Centralized) Name() string { return "Centralized" }

// Fit ships every peer's labeled documents to the coordinator (this is the
// data-centralization cost the paper criticizes) and trains the global
// models when the uploads arrive.
func (c *Centralized) Fit() {
	for _, id := range c.order {
		if !c.net.Alive(id) {
			continue
		}
		docs := c.docs[id]
		if len(docs) == 0 {
			continue
		}
		if id == c.cfg.Coordinator {
			c.pool = append(c.pool, docs...)
			c.dirty = true
			continue
		}
		size := 16
		for _, d := range docs {
			size += d.X.WireSize() + 8*len(d.Tags)
		}
		c.net.Send(simnet.Message{
			From: id, To: c.cfg.Coordinator, Kind: "central.upload", Size: size,
			Payload: uploadMsg{docs: docs},
		})
	}
}

func (c *Centralized) handle(self simnet.NodeID, m simnet.Message) {
	switch m.Kind {
	case "central.upload":
		if self != c.cfg.Coordinator {
			return
		}
		c.pool = append(c.pool, m.Payload.(uploadMsg).docs...)
		c.dirty = true
	case "central.query":
		if self != c.cfg.Coordinator {
			return
		}
		c.retrainIfDirty()
		q := m.Payload.(centralQuery)
		scores := make(map[string]float64, len(c.models))
		if c.fused != nil {
			c.scoreBuf = c.fused.ScoreInto(q.x, c.scoreBuf)
			for i, tag := range c.fused.Tags() {
				scores[tag] = c.platt[tag].Prob(c.scoreBuf[i])
			}
		}
		c.net.Send(simnet.Message{
			From: self, To: q.origin, Kind: "central.answer",
			Size:    16 + 12*len(scores),
			Payload: centralAnswer{req: q.req, scores: scores},
		})
	case "central.answer":
		a := m.Payload.(centralAnswer)
		cb, ok := c.pending[self][a.req]
		if !ok {
			return
		}
		delete(c.pending[self], a.req)
		out := make([]metrics.ScoredTag, 0, len(a.scores))
		for tag, sc := range a.scores {
			out = append(out, metrics.ScoredTag{Tag: tag, Score: sc})
		}
		// Canonical tag order: every downstream consumer re-sorts with a
		// full tie-break, but the callback contract itself should not
		// leak map iteration order (dmtvet/maprange).
		sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
		cb(out, true)
	}
}

// retrainIfDirty rebuilds the global one-vs-all models from the
// accumulated pool when uploads arrived since the last training run. Real
// systems would train incrementally; deferring one batch retrain to the
// first query is equivalent under the simulator (which charges no CPU
// time) and avoids quadratic retraining during Fit.
func (c *Centralized) retrainIfDirty() {
	if !c.dirty {
		return
	}
	c.dirty = false
	// Each tag is an independent one-vs-all problem over the shared
	// read-only pool, so the tags train concurrently; results install
	// serially in sorted-tag order, identical at any worker count.
	tags := protocol.TagUniverse(c.pool)
	type trained struct {
		model *svm.LinearModel
		platt svm.PlattParams
	}
	models, _ := runner.Map(len(tags), c.cfg.Parallel, func(i int) (trained, error) {
		exs := protocol.BinaryExamples(c.pool, tags[i])
		m, err := svm.TrainLinear(exs, svm.LinearOptions{C: c.cfg.C, Seed: c.cfg.Seed})
		if err != nil {
			return trained{}, nil
		}
		platt, _ := svm.CalibrateLinearCV(exs,
			svm.LinearOptions{C: c.cfg.C, Seed: c.cfg.Seed}, m, 3)
		return trained{model: m, platt: platt}, nil
	})
	c.models = make(map[string]*svm.LinearModel, len(tags))
	c.platt = make(map[string]svm.PlattParams, len(tags))
	for i, tag := range tags {
		if models[i].model == nil {
			continue
		}
		c.models[tag] = models[i].model
		c.platt[tag] = models[i].platt
	}
	c.fused = svm.NewFusedLinear(c.models)
}

// Predict implements protocol.Classifier: the vector travels to the
// coordinator and the scored answer returns. When the coordinator is down
// the query is lost — the single point of failure the paper highlights —
// and cb fires with ok=false after the run drains (via a scheduled check).
func (c *Centralized) Predict(from simnet.NodeID, x *vector.Sparse, cb func([]metrics.ScoredTag, bool)) {
	if !c.net.Alive(from) {
		cb(nil, false)
		return
	}
	if !c.net.Alive(c.cfg.Coordinator) {
		cb(nil, false)
		return
	}
	if from == c.cfg.Coordinator {
		c.retrainIfDirty()
		scores := make([]metrics.ScoredTag, 0, len(c.models))
		if c.fused != nil {
			c.scoreBuf = c.fused.ScoreInto(x, c.scoreBuf)
			for i, tag := range c.fused.Tags() {
				scores = append(scores, metrics.ScoredTag{Tag: tag, Score: c.platt[tag].Prob(c.scoreBuf[i])})
			}
		}
		cb(scores, true)
		return
	}
	req := c.nextReq[from]
	c.nextReq[from]++
	c.pending[from][req] = cb
	c.net.Send(simnet.Message{
		From: from, To: c.cfg.Coordinator, Kind: "central.query",
		Size:    x.WireSize() + 16,
		Payload: centralQuery{x: x, origin: from, req: req},
	})
}

// StreamsFrom implements protocol.StreamScorer: only coordinator-origin
// queries answer synchronously; everything else crosses the simulated
// network and resolves when the caller drives it.
func (c *Centralized) StreamsFrom(from simnet.NodeID) bool {
	return from == c.cfg.Coordinator
}

// PredictEntries implements protocol.StreamScorer. Coordinator-origin
// queries score straight off the borrowed entries into reused scratch
// (scores handed to cb are valid only during the call); queries from any
// other peer must outlive this call in a network payload, so the entries
// are copied into a materialized vector and the query delegates to
// Predict.
func (c *Centralized) PredictEntries(from simnet.NodeID, entries []vector.Entry, cb func([]metrics.ScoredTag, bool)) {
	if !c.net.Alive(from) || !c.net.Alive(c.cfg.Coordinator) {
		cb(nil, false)
		return
	}
	if from != c.cfg.Coordinator {
		e := make([]vector.Entry, len(entries))
		copy(e, entries)
		x, err := vector.FromEntries(e)
		if err != nil {
			cb(nil, false)
			return
		}
		c.Predict(from, x, cb)
		return
	}
	c.retrainIfDirty()
	c.scored = c.scored[:0]
	if c.fused != nil {
		c.scoreBuf = c.fused.ScoreEntriesInto(entries, c.scoreBuf)
		for i, tag := range c.fused.Tags() {
			c.scored = append(c.scored, metrics.ScoredTag{Tag: tag, Score: c.platt[tag].Prob(c.scoreBuf[i])})
		}
	}
	cb(c.scored, true)
}

// Refine implements protocol.Refiner by uploading the corrected document.
func (c *Centralized) Refine(peer simnet.NodeID, doc protocol.Doc) {
	c.docs[peer] = append(c.docs[peer], doc)
	if !c.net.Alive(peer) || !c.net.Alive(c.cfg.Coordinator) {
		return
	}
	if peer == c.cfg.Coordinator {
		c.pool = append(c.pool, doc)
		c.dirty = true
		return
	}
	c.net.Send(simnet.Message{
		From: peer, To: c.cfg.Coordinator, Kind: "central.upload",
		Size:    doc.X.WireSize() + 8*len(doc.Tags) + 16,
		Payload: uploadMsg{docs: []protocol.Doc{doc}},
	})
}

// ---------------------------------------------------------------------------

// Local is the no-collaboration floor: every peer trains only on its own
// documents and predicts locally. It sends no messages at all.
type Local struct {
	// Parallel is the worker count for Fit: peers train independently
	// from their own shards and fan out over it. Set it before Fit; 1
	// means serial, other values <= 0 mean GOMAXPROCS. The result is
	// bit-identical at any worker count.
	Parallel int

	net    *simnet.Network
	models map[simnet.NodeID]map[string]*svm.LinearModel
	platt  map[simnet.NodeID]map[string]svm.PlattParams
	docs   map[simnet.NodeID][]protocol.Doc
	c      float64
	seed   int64
	// fused holds each peer's bank as an inverted score matrix (rebuilt
	// with the models on Fit/Refine); scoreBuf is the reused scoring
	// buffer — Predict runs serially per System, like every protocol here.
	fused    map[simnet.NodeID]*svm.FusedLinear
	scoreBuf []float64
	// scored is PredictEntries' reused answer slice (consumed
	// synchronously by cb per the streaming contract).
	scored []metrics.ScoredTag
}

// NewLocal registers no-op handlers for ids on net (so the same node set
// works across protocols).
func NewLocal(net *simnet.Network, ids []simnet.NodeID, c float64, seed int64) *Local {
	if c == 0 {
		c = 1
	}
	l := &Local{
		net:    net,
		models: make(map[simnet.NodeID]map[string]*svm.LinearModel),
		platt:  make(map[simnet.NodeID]map[string]svm.PlattParams),
		docs:   make(map[simnet.NodeID][]protocol.Doc),
		c:      c,
		seed:   seed,
		fused:  make(map[simnet.NodeID]*svm.FusedLinear),
	}
	for _, id := range ids {
		net.AddNode(id, simnet.HandlerFunc(func(*simnet.Network, simnet.Message) {}))
	}
	return l
}

// SetDocs installs a peer's local training documents (before Fit).
func (l *Local) SetDocs(id simnet.NodeID, docs []protocol.Doc) { l.docs[id] = docs }

// Name implements protocol.Classifier.
func (l *Local) Name() string { return "Local-only" }

// Fit trains every peer's private models concurrently (each peer reads
// only its own shard and the trained maps install serially afterwards, so
// any worker count yields the same models). No traffic.
func (l *Local) Fit() {
	ids := make([]simnet.NodeID, 0, len(l.docs))
	for id := range l.docs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type peerModels struct {
		models map[string]*svm.LinearModel
		platt  map[string]svm.PlattParams
	}
	trained, _ := runner.Map(len(ids), l.Parallel, func(i int) (peerModels, error) {
		ms, ps := l.trainPeer(ids[i])
		return peerModels{models: ms, platt: ps}, nil
	})
	for i, id := range ids {
		l.models[id] = trained[i].models
		l.platt[id] = trained[i].platt
		l.fused[id] = svm.NewFusedLinear(trained[i].models)
	}
}

func (l *Local) trainPeer(id simnet.NodeID) (map[string]*svm.LinearModel, map[string]svm.PlattParams) {
	docs := l.docs[id]
	ms := make(map[string]*svm.LinearModel)
	ps := make(map[string]svm.PlattParams)
	for _, tag := range protocol.TagUniverse(docs) {
		exs := protocol.BinaryExamples(docs, tag)
		m, err := svm.TrainLinear(exs, svm.LinearOptions{C: l.c, Seed: l.seed + int64(id)})
		if err != nil {
			continue
		}
		ms[tag] = m
		ps[tag], _ = svm.CalibrateLinearCV(exs,
			svm.LinearOptions{C: l.c, Seed: l.seed + int64(id)}, m, 3)
	}
	return ms, ps
}

// Predict implements protocol.Classifier, synchronously and locally.
func (l *Local) Predict(from simnet.NodeID, x *vector.Sparse, cb func([]metrics.ScoredTag, bool)) {
	if !l.net.Alive(from) {
		cb(nil, false)
		return
	}
	fu := l.fused[from]
	if fu == nil {
		cb(nil, false)
		return
	}
	l.scoreBuf = fu.ScoreInto(x, l.scoreBuf)
	out := make([]metrics.ScoredTag, 0, fu.NumTags())
	platt := l.platt[from]
	for i, tag := range fu.Tags() {
		out = append(out, metrics.ScoredTag{Tag: tag, Score: platt[tag].Prob(l.scoreBuf[i])})
	}
	cb(out, true)
}

// StreamsFrom implements protocol.StreamScorer: Local answers every query
// synchronously.
func (l *Local) StreamsFrom(simnet.NodeID) bool { return true }

// PredictEntries implements protocol.StreamScorer: Predict's exact
// scores, computed straight off the borrowed entries into reused scratch.
// The scores handed to cb are valid only during the call.
func (l *Local) PredictEntries(from simnet.NodeID, entries []vector.Entry, cb func([]metrics.ScoredTag, bool)) {
	if !l.net.Alive(from) {
		cb(nil, false)
		return
	}
	fu := l.fused[from]
	if fu == nil {
		cb(nil, false)
		return
	}
	l.scoreBuf = fu.ScoreEntriesInto(entries, l.scoreBuf)
	l.scored = l.scored[:0]
	platt := l.platt[from]
	for i, tag := range fu.Tags() {
		l.scored = append(l.scored, metrics.ScoredTag{Tag: tag, Score: platt[tag].Prob(l.scoreBuf[i])})
	}
	cb(l.scored, true)
}

// Refine implements protocol.Refiner locally.
func (l *Local) Refine(peer simnet.NodeID, doc protocol.Doc) {
	l.docs[peer] = append(l.docs[peer], doc)
	l.models[peer], l.platt[peer] = l.trainPeer(peer)
	l.fused[peer] = svm.NewFusedLinear(l.models[peer])
}
