// Package pace implements PACE (adaPtive Classifier Ensemble, Ang et al.,
// DASFAA 2010) as used by P2PDocTagger: every peer trains a linear SVM per
// tag plus k-means centroids of its training data, propagates models and
// centroids to all other peers once, and each peer indexes the received
// models by centroid with locality-sensitive hashing. A document is tagged
// locally by retrieving the top-k nearest models and taking an
// accuracy- and distance-weighted vote — no network traffic at prediction
// time, which is what makes PACE robust to churn.
package pace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/lsh"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/runner"
	"repro/internal/simnet"
	"repro/internal/svm"
	"repro/internal/vector"
)

// Config tunes the protocol.
type Config struct {
	// TopK is the number of nearest models consulted per prediction;
	// default 5.
	TopK int
	// Clusters is the number of k-means centroids each peer publishes;
	// default 3.
	Clusters int
	// DisableLSH switches model retrieval from the paper's LSH index to
	// an exact scan over all centroids — the ablation for experiment E8.
	DisableLSH bool
	// LSHPlanes and LSHTables parameterize the index.
	LSHPlanes, LSHTables int
	// C is the linear SVM penalty; default 1.
	C float64
	// PruneRel zeroes model weights below this fraction of the largest
	// weight before broadcast, compressing the wire payload; default 0.02,
	// negative disables pruning.
	PruneRel float64
	// NoiseScale adds Laplace noise (relative to mean weight magnitude)
	// to every model before it leaves the peer — the privacy-preserving
	// plug-in slot of §2 ("if we deploy a privacy preserving P2P
	// classification algorithm, P2PDocTagger will then inherit the
	// privacy preserving property"). 0 disables.
	NoiseScale float64
	// Seed drives training, clustering and hashing.
	Seed int64
	// Parallel is the worker count for Fit's local-training phase: each
	// peer trains and clusters its own shard, so peers fan out over real
	// cores while the model broadcast stays on the virtual clock. 1 means
	// serial; other values <= 0 mean GOMAXPROCS. The result is
	// bit-identical at any worker count.
	Parallel int
}

func (c *Config) defaults() {
	if c.TopK <= 0 {
		c.TopK = 5
	}
	if c.Clusters <= 0 {
		c.Clusters = 3
	}
	if c.LSHPlanes <= 0 {
		c.LSHPlanes = 10
	}
	if c.LSHTables <= 0 {
		c.LSHTables = 6
	}
	if c.C == 0 {
		c.C = 1
	}
	if c.PruneRel == 0 {
		c.PruneRel = 0.02
	}
}

// modelSet is what one peer publishes: its per-tag linear models with
// their training accuracies, and its data centroids. fused is derived
// data built once by the sender (after pruning/noising): the per-tag bank
// packed into one inverted score matrix so a prediction scores every tag
// of the set in a single pass over the document. It is read-only after
// construction — receivers on any simulator shard share it safely — and
// contributes nothing to the wire size.
type modelSet struct {
	from      simnet.NodeID
	models    map[string]*svm.LinearModel
	accuracy  map[string]float64
	platt     map[string]svm.PlattParams
	centroids []*vector.Sparse
	fused     *svm.FusedLinear
}

func (ms *modelSet) wireSize() int {
	n := 16
	for tag, m := range ms.models {
		n += m.WireSize() + len(tag) + 8
	}
	for _, c := range ms.centroids {
		n += c.WireSize()
	}
	return n
}

// peerState is one peer's local protocol state.
type peerState struct {
	id     simnet.NodeID
	docs   []protocol.Doc
	own    *modelSet
	remote map[simnet.NodeID]*modelSet
}

type centroidRef struct {
	peer     simnet.NodeID
	centroid *vector.Sparse
}

// System is a PACE deployment. It registers its own handlers directly on
// the network (PACE needs no DHT).
//
// Semantically every peer maintains its own LSH index of the centroids it
// has received; because all peers hash with the same seed those indexes
// hold identical entries for identical inputs, so the simulation stores the
// centroid index once and keeps only the per-peer knowledge set (`remote`)
// separate. Queries filter index hits through the querying peer's knowledge
// set, preserving per-peer semantics under churn (a peer that missed a
// broadcast cannot use those models).
type System struct {
	cfg   Config
	net   *simnet.Network
	peers map[simnet.NodeID]*peerState
	order []simnet.NodeID

	index       *lsh.Index
	centroidRef []centroidRef
	indexed     map[simnet.NodeID]*indexedSet // per-sender index bookkeeping
	scoreBuf    []float64                     // reused fused-scoring buffer (Predict is serial per System)
}

// indexedSet records which model-set version of a sender is in the shared
// index and under which LSH ids, so a refined re-broadcast replaces it.
type indexedSet struct {
	ms  *modelSet
	ids []int
}

// New builds the protocol over the given network nodes and registers their
// message handlers.
func New(net *simnet.Network, ids []simnet.NodeID, cfg Config) *System {
	cfg.defaults()
	s := &System{
		cfg:   cfg,
		net:   net,
		peers: make(map[simnet.NodeID]*peerState, len(ids)),
		index: lsh.New(lsh.Options{
			Planes: cfg.LSHPlanes, Tables: cfg.LSHTables, Seed: cfg.Seed,
		}),
		indexed: make(map[simnet.NodeID]*indexedSet),
	}
	s.order = append(s.order, ids...)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	for _, id := range s.order {
		p := &peerState{
			id:     id,
			remote: make(map[simnet.NodeID]*modelSet),
		}
		s.peers[id] = p
		nodeID := id
		net.AddNode(id, simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
			s.handle(nodeID, m)
		}))
	}
	return s
}

// SetDocs installs a peer's local training documents (before Fit).
func (s *System) SetDocs(id simnet.NodeID, docs []protocol.Doc) {
	s.peers[id].docs = docs
}

// Name implements protocol.Classifier.
func (s *System) Name() string { return "PACE" }

// Fit trains local models and centroids at every alive peer and broadcasts
// them to all other alive peers. Run the network to complete delivery.
//
// Per-peer training is pure CPU work on the peer's own shard (no network,
// no virtual clock), so peers train concurrently over cfg.Parallel
// workers; the broadcast then runs serially in peer order, producing
// exactly the message schedule of a serial Fit.
func (s *System) Fit() {
	var alive []simnet.NodeID
	for _, id := range s.order {
		if s.net.Alive(id) {
			alive = append(alive, id)
		}
	}
	_ = runner.ForEach(len(alive), s.cfg.Parallel, func(i int) error {
		s.trainLocal(alive[i])
		return nil
	})
	for _, id := range s.order {
		p := s.peers[id]
		if !s.net.Alive(id) || p.own == nil {
			continue
		}
		s.ingest(id, p.own) // index own models locally
		size := p.own.wireSize()
		for _, dst := range s.order {
			if dst == id {
				continue
			}
			s.net.Send(simnet.Message{
				From: id, To: dst, Kind: "pace.models", Size: size, Payload: p.own,
			})
		}
	}
}

// trainLocal fits a linear SVM per locally observed tag, measures its
// training accuracy (the weight PACE ships with the model), and clusters
// the local documents.
func (s *System) trainLocal(id simnet.NodeID) {
	p := s.peers[id]
	if len(p.docs) == 0 {
		return
	}
	ms := &modelSet{
		from:     id,
		models:   make(map[string]*svm.LinearModel),
		accuracy: make(map[string]float64),
		platt:    make(map[string]svm.PlattParams),
	}
	for _, tag := range protocol.TagUniverse(p.docs) {
		exs := protocol.BinaryExamples(p.docs, tag)
		m, err := svm.TrainLinear(exs, svm.LinearOptions{C: s.cfg.C, Seed: s.cfg.Seed + int64(id)})
		if err != nil {
			continue
		}
		if s.cfg.PruneRel > 0 {
			m = m.Pruned(s.cfg.PruneRel)
		}
		if s.cfg.NoiseScale > 0 {
			noiseRng := rand.New(rand.NewSource(s.cfg.Seed + 31*int64(id)))
			m = m.Noised(s.cfg.NoiseScale, noiseRng)
		}
		ms.models[tag] = m
		// The model's ensemble weight is its cross-validated accuracy —
		// training accuracy is ~1 for every overfit small-data model and
		// discriminates nothing.
		platt, cvAcc := svm.CalibrateLinearCV(exs,
			svm.LinearOptions{C: s.cfg.C, Seed: s.cfg.Seed + int64(id)}, m, 3)
		ms.platt[tag] = platt
		ms.accuracy[tag] = cvAcc
	}
	xs := make([]*vector.Sparse, len(p.docs))
	for i, d := range p.docs {
		xs[i] = d.X
	}
	res, err := cluster.KMeans(xs, cluster.Options{K: s.cfg.Clusters, Seed: s.cfg.Seed + int64(id)})
	if err == nil {
		ms.centroids = res.Centroids
	}
	ms.fused = svm.NewFusedLinear(ms.models)
	p.own = ms
}

func (s *System) handle(self simnet.NodeID, m simnet.Message) {
	if m.Kind != "pace.models" {
		return
	}
	s.ingest(self, m.Payload.(*modelSet))
}

// ingest stores a model set in the receiving peer's knowledge set and
// indexes its centroids ("peers index the models using the centroids
// (based on locality sensitive hashing)"). Centroids are hashed once
// globally; see the System doc comment.
//
// Shard-safety invariant: the shared index only changes when a model-set
// version is first seen, which happens at serial points (Fit and Refine
// index the sender's own set before broadcasting it). A delivery-time
// ingest always finds the version already indexed and touches only the
// receiving peer's knowledge set, so concurrent deliveries on different
// simulator shards never race on the index.
func (s *System) ingest(self simnet.NodeID, ms *modelSet) {
	p := s.peers[self]
	p.remote[ms.from] = ms
	if prev := s.indexed[ms.from]; prev != nil {
		if prev.ms == ms {
			return // this version already indexed
		}
		for _, id := range prev.ids {
			s.index.Remove(id)
			s.centroidRef[id] = centroidRef{} // tombstone
		}
	}
	rec := &indexedSet{ms: ms}
	for _, c := range ms.centroids {
		id := len(s.centroidRef)
		s.centroidRef = append(s.centroidRef, centroidRef{peer: ms.from, centroid: c})
		s.index.Add(id, c.Normalize())
		rec.ids = append(rec.ids, id)
	}
	s.indexed[ms.from] = rec
}

// Predict implements protocol.Classifier. PACE predicts entirely locally:
// retrieve the top-k nearest models by centroid, then take an accuracy- and
// distance-weighted vote per tag. cb is invoked synchronously.
func (s *System) Predict(from simnet.NodeID, x *vector.Sparse, cb func([]metrics.ScoredTag, bool)) {
	p, ok := s.peers[from]
	if !ok || !s.net.Alive(from) {
		cb(nil, false)
		return
	}
	type sel struct {
		ms   *modelSet
		dist float64
	}
	chosen := make(map[simnet.NodeID]sel)
	consider := func(peer simnet.NodeID, dist float64) {
		ms, ok := p.remote[peer]
		if !ok {
			return
		}
		if cur, ok := chosen[peer]; !ok || dist < cur.dist {
			chosen[peer] = sel{ms: ms, dist: dist}
		}
	}
	// The querying peer's own models always participate: its local data is
	// the test distribution PACE adapts to (tag queries come from the
	// peer's own collection).
	if p.own != nil {
		best := math.Inf(1)
		for _, c := range p.own.centroids {
			if d := x.EuclideanDistance(c); d < best {
				best = d
			}
		}
		if !math.IsInf(best, 1) {
			consider(from, best)
		}
	}
	if !s.cfg.DisableLSH {
		// Retrieve more than TopK candidates since several centroids can
		// belong to one peer, and hits from senders this peer never heard
		// from are filtered out by consider().
		for _, nb := range s.index.Query(x.Normalize(), 2*s.cfg.TopK*s.cfg.Clusters) {
			ref := s.centroidRef[nb.ID]
			if ref.centroid == nil {
				continue // tombstone from a replaced model set
			}
			consider(ref.peer, x.EuclideanDistance(ref.centroid))
			if len(chosen) >= s.cfg.TopK {
				break
			}
		}
	} else {
		// Exact scan over every centroid (ablation).
		type cand struct {
			peer simnet.NodeID
			dist float64
		}
		var cands []cand
		for _, ref := range s.centroidRef {
			if ref.centroid == nil {
				continue
			}
			cands = append(cands, cand{ref.peer, x.EuclideanDistance(ref.centroid)})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].dist != cands[j].dist {
				return cands[i].dist < cands[j].dist
			}
			return cands[i].peer < cands[j].peer
		})
		for _, c := range cands {
			consider(c.peer, c.dist)
			if len(chosen) >= s.cfg.TopK {
				break
			}
		}
	}
	if len(chosen) == 0 {
		cb(nil, false)
		return
	}
	logitSum := make(map[string]float64)
	weightSum := make(map[string]float64)
	// Vote in peer-id order so floating-point accumulation is
	// deterministic across runs.
	order := make([]simnet.NodeID, 0, len(chosen))
	for id := range chosen {
		order = append(order, id)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, id := range order {
		sl := chosen[id]
		if sl.ms.fused == nil {
			continue
		}
		// Weight models "according to their accuracy and distance from
		// the test data"; models no better than chance are excluded.
		// The fused matrix scores every tag of the set in one pass over
		// x; its Tags() are sorted, preserving the historical per-tag
		// iteration order.
		proximity := 1 / (1 + sl.dist)
		s.scoreBuf = sl.ms.fused.ScoreInto(x, s.scoreBuf)
		for i, tag := range sl.ms.fused.Tags() {
			w := (sl.ms.accuracy[tag] - 0.5) * proximity
			if w <= 0 {
				continue
			}
			p := sl.ms.platt[tag].Prob(s.scoreBuf[i])
			logitSum[tag] += w * logit(p)
			weightSum[tag] += w
		}
	}
	out := make([]metrics.ScoredTag, 0, len(logitSum))
	for tag, sum := range logitSum {
		// Log-opinion pooling: average calibrated log-odds, then squash.
		// Sharper than averaging probabilities, which dilutes confident
		// minority votes toward 0.5.
		out = append(out, metrics.ScoredTag{Tag: tag, Score: protocol.Sigmoid(sum / weightSum[tag])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag < out[j].Tag })
	cb(out, true)
}

// StreamsFrom implements protocol.StreamScorer: PACE predicts entirely
// locally, so every query answers synchronously.
func (s *System) StreamsFrom(simnet.NodeID) bool { return true }

// PredictEntries implements protocol.StreamScorer by wrapping the
// borrowed entries as a stack-local vector view: Predict reads the query
// synchronously (distances, LSH lookup, fused scoring) and retains
// nothing, so the borrow never outlives the call.
func (s *System) PredictEntries(from simnet.NodeID, entries []vector.Entry, cb func([]metrics.ScoredTag, bool)) {
	x := vector.Borrow(entries)
	s.Predict(from, &x, cb)
}

// Refine implements protocol.Refiner: retrain the local models with the
// corrected document and re-broadcast.
func (s *System) Refine(peer simnet.NodeID, doc protocol.Doc) {
	p := s.peers[peer]
	p.docs = append(p.docs, doc)
	if !s.net.Alive(peer) {
		return
	}
	s.trainLocal(peer)
	if p.own == nil {
		return
	}
	s.ingest(peer, p.own)
	size := p.own.wireSize()
	for _, dst := range s.order {
		if dst == peer {
			continue
		}
		s.net.Send(simnet.Message{
			From: peer, To: dst, Kind: "pace.models", Size: size, Payload: p.own,
		})
	}
}

// ModelsKnown reports how many peers' model sets node id holds (including
// its own) — experiments use it to verify propagation.
func (s *System) ModelsKnown(id simnet.NodeID) int { return len(s.peers[id].remote) }

// String describes the configuration.
func (s *System) String() string {
	retrieval := "lsh"
	if s.cfg.DisableLSH {
		retrieval = "scan"
	}
	return fmt.Sprintf("PACE(k=%d clusters=%d retrieval=%s)", s.cfg.TopK, s.cfg.Clusters, retrieval)
}

// logit is the inverse of the logistic function, clamped for stability.
func logit(p float64) float64 {
	const cap = 6.0
	if p < 1e-9 {
		return -cap
	}
	if p > 1-1e-9 {
		return cap
	}
	l := math.Log(p / (1 - p))
	if l > cap {
		return cap
	}
	if l < -cap {
		return -cap
	}
	return l
}
