package pace

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/vector"
)

func topicDoc(topic, variant int) protocol.Doc {
	m := map[int32]float64{}
	for j := 0; j < 4; j++ {
		m[int32(topic*8+(variant+j)%8)] = 1
	}
	m[100] = 0.5
	return protocol.Doc{
		X:    vector.FromMap(m).Normalize(),
		Tags: []string{[]string{"music", "travel", "food"}[topic]},
	}
}

func build(t *testing.T, n int, cfg Config) (*simnet.Network, *System) {
	t.Helper()
	net := simnet.New(simnet.Options{Latency: simnet.FixedLatency(5 * time.Millisecond), Seed: 1})
	ids := make([]simnet.NodeID, n)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	s := New(net, ids, cfg)
	for i := range ids {
		var docs []protocol.Doc
		for v := 0; v < 6; v++ {
			docs = append(docs, topicDoc(i%3, v))
		}
		for v := 0; v < 3; v++ {
			docs = append(docs, topicDoc((i+1)%3, v))
		}
		s.SetDocs(ids[i], docs)
	}
	return net, s
}

func TestFitBroadcastsToAllPeers(t *testing.T) {
	net, s := build(t, 10, Config{Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	for i := 0; i < 10; i++ {
		if got := s.ModelsKnown(simnet.NodeID(i)); got != 10 {
			t.Errorf("peer %d knows %d model sets, want 10", i, got)
		}
	}
	// Broadcast cost is one message per (sender, receiver) pair.
	if msgs := net.Stats().MessagesByKind["pace.models"]; msgs != 90 {
		t.Errorf("model messages = %d, want 90", msgs)
	}
}

func TestPredictIsLocalAndCorrect(t *testing.T) {
	net, s := build(t, 9, Config{TopK: 3, Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	net.ResetStats()
	q := topicDoc(1, 2).X
	var scores []metrics.ScoredTag
	ok := false
	s.Predict(4, q, func(sc []metrics.ScoredTag, o bool) { scores, ok = sc, o })
	if !ok {
		t.Fatal("prediction failed")
	}
	// No network traffic at prediction time — PACE's key property.
	if msgs := net.Stats().MessagesSent; msgs != 0 {
		t.Errorf("prediction sent %d messages, want 0", msgs)
	}
	sm := protocol.ScoreMap(scores)
	if sm["travel"] <= sm["music"] || sm["travel"] <= sm["food"] {
		t.Errorf("travel should score highest: %v", sm)
	}
}

// TestPredictEntriesMatchesPredict pins the streaming entry point to the
// materialized one: identical scores, bit for bit, on every query.
func TestPredictEntriesMatchesPredict(t *testing.T) {
	net, s := build(t, 9, Config{TopK: 3, Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	if !s.StreamsFrom(4) {
		t.Fatal("PACE must stream every query")
	}
	for topic := 0; topic < 3; topic++ {
		q := topicDoc(topic, 2).X
		var want, got []metrics.ScoredTag
		wantOK, gotOK := false, false
		s.Predict(4, q, func(sc []metrics.ScoredTag, o bool) { want, wantOK = sc, o })
		s.PredictEntries(4, q.Entries(), func(sc []metrics.ScoredTag, o bool) {
			got = append([]metrics.ScoredTag(nil), sc...)
			gotOK = o
		})
		if wantOK != gotOK {
			t.Fatalf("topic %d: streaming ok=%v, materialized ok=%v", topic, gotOK, wantOK)
		}
		if len(got) != len(want) {
			t.Fatalf("topic %d: %d streamed scores, %d materialized", topic, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("topic %d score %d: streamed %+v != materialized %+v", topic, i, got[i], want[i])
			}
		}
	}
}

func TestPredictSurvivesMassFailure(t *testing.T) {
	net, s := build(t, 9, Config{TopK: 3, Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	// Kill everyone except peer 0: prediction still works from local
	// copies of the models.
	for i := 1; i < 9; i++ {
		net.Kill(simnet.NodeID(i))
	}
	ok := false
	var scores []metrics.ScoredTag
	s.Predict(0, topicDoc(0, 1).X, func(sc []metrics.ScoredTag, o bool) { scores, ok = sc, o })
	if !ok {
		t.Fatal("prediction failed after mass failure")
	}
	if protocol.SelectTags(scores, 0, 1)[0] != "music" {
		t.Errorf("wrong prediction after failure: %v", scores)
	}
}

func TestPredictFromDeadPeerFails(t *testing.T) {
	net, s := build(t, 6, Config{Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	net.Kill(3)
	fired := false
	s.Predict(3, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, ok bool) {
		fired = true
		if ok {
			t.Error("dead peer prediction reported ok")
		}
	})
	if !fired {
		t.Fatal("callback not fired")
	}
}

func TestPeerMissingBroadcastCannotUseModels(t *testing.T) {
	net, s := build(t, 6, Config{TopK: 6, Seed: 2})
	// Peer 5 is down during propagation.
	net.Kill(5)
	s.Fit()
	net.RunFor(time.Minute)
	net.Revive(5)
	// Peer 5 has no remote models (it missed every broadcast and, being
	// down at Fit time, trained no own models either).
	if got := s.ModelsKnown(5); got != 0 {
		t.Errorf("revived peer knows %d model sets, want 0", got)
	}
	fired := false
	s.Predict(5, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, ok bool) {
		fired = true
		if ok {
			t.Error("peer without models answered a query")
		}
	})
	if !fired {
		t.Fatal("callback not fired")
	}
	// Other peers are unaffected.
	ok := false
	s.Predict(1, topicDoc(0, 0).X, func(_ []metrics.ScoredTag, o bool) { ok = o })
	if !ok {
		t.Error("healthy peer failed")
	}
}

func TestLSHAndScanAgreeOnEasyQueries(t *testing.T) {
	netA, sa := build(t, 9, Config{TopK: 3, Seed: 2})
	sa.Fit()
	netA.RunFor(time.Minute)
	netB, sb := build(t, 9, Config{TopK: 3, DisableLSH: true, Seed: 2})
	sb.Fit()
	netB.RunFor(time.Minute)
	for topic := 0; topic < 3; topic++ {
		q := topicDoc(topic, 4).X
		var top1A, top1B string
		sa.Predict(1, q, func(sc []metrics.ScoredTag, ok bool) {
			if ok {
				top1A = protocol.SelectTags(sc, 0, 1)[0]
			}
		})
		sb.Predict(1, q, func(sc []metrics.ScoredTag, ok bool) {
			if ok {
				top1B = protocol.SelectTags(sc, 0, 1)[0]
			}
		})
		if top1A != top1B {
			t.Errorf("topic %d: lsh=%q scan=%q", topic, top1A, top1B)
		}
	}
}

func TestRefineRebroadcasts(t *testing.T) {
	net, s := build(t, 6, Config{Seed: 2})
	s.Fit()
	net.RunFor(time.Minute)
	before := net.Stats().MessagesByKind["pace.models"]
	doc := protocol.Doc{
		X:    vector.FromMap(map[int32]float64{300: 1}).Normalize(),
		Tags: []string{"newtag"},
	}
	s.Refine(2, doc)
	net.RunFor(time.Minute)
	after := net.Stats().MessagesByKind["pace.models"]
	if after != before+5 {
		t.Errorf("refine broadcast %d messages, want 5", after-before)
	}
	// The refined tag is now predictable from another peer... it needs at
	// least one more positive to be learnable; add them.
	for v := 0; v < 3; v++ {
		s.Refine(2, protocol.Doc{
			X:    vector.FromMap(map[int32]float64{300: 1, 301 + int32(v): 0.4}).Normalize(),
			Tags: []string{"newtag"},
		})
	}
	net.RunFor(time.Minute)
	found := false
	s.Predict(4, vector.FromMap(map[int32]float64{300: 1}).Normalize(), func(sc []metrics.ScoredTag, ok bool) {
		if !ok {
			return
		}
		_, found = protocol.ScoreMap(sc)["newtag"]
	})
	if !found {
		t.Error("refined tag not visible to other peers")
	}
}

func TestString(t *testing.T) {
	_, s := build(t, 4, Config{Seed: 1})
	if s.Name() != "PACE" || s.String() == "" {
		t.Error("bad name/string")
	}
	_, s2 := build(t, 4, Config{DisableLSH: true, Seed: 1})
	if s2.String() == s.String() {
		t.Error("retrieval mode should show in String")
	}
}

func TestLogitClamps(t *testing.T) {
	if logit(0) != -6 || logit(1) != 6 {
		t.Errorf("logit bounds: %v %v", logit(0), logit(1))
	}
	if logit(0.5) != 0 {
		t.Errorf("logit(0.5) = %v", logit(0.5))
	}
}
