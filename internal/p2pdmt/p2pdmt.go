// Package p2pdmt is the P2P Data Mining Toolkit of the paper (Fig. 2): it
// wires a corpus, a data distribution, a physical network with optional
// churn, an overlay, and a pluggable P2P classification protocol into one
// reproducible experiment, collecting accuracy and communication-cost
// measurements and rendering result tables.
package p2pdmt

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/cempar"
	"repro/internal/dataset"
	"repro/internal/dht"
	"repro/internal/metrics"
	"repro/internal/pace"
	"repro/internal/protocol"
	"repro/internal/simnet"
	"repro/internal/textproc"
	"repro/internal/vector"
)

// ProtocolKind selects the classification protocol under test.
type ProtocolKind string

// The supported protocols.
const (
	ProtoCEMPaR      ProtocolKind = "cempar"
	ProtoPACE        ProtocolKind = "pace"
	ProtoCentralized ProtocolKind = "centralized"
	ProtoLocal       ProtocolKind = "local"
)

// Config describes one simulation run. Zero values get sensible defaults
// from Defaults.
type Config struct {
	// Peers is the network size.
	Peers int
	// Protocol selects the classifier.
	Protocol ProtocolKind
	// Corpus configures the synthetic delicious-style dataset; its Users
	// field is overridden to Peers.
	Corpus dataset.Config
	// TrainFrac is the labeled fraction (the demo used 0.2).
	TrainFrac float64
	// Distribution spreads training documents over peers.
	Distribution Distribution
	// Latency is the physical-network delay model.
	Latency simnet.LatencyModel
	// DropRate is random message loss.
	DropRate float64
	// Churn drives node failures; nil means no churn.
	Churn simnet.SessionModel
	// StabilizeEvery re-runs DHT stabilization and protocol refresh under
	// churn; default 20s.
	StabilizeEvery time.Duration
	// TrainWindow is simulated time allowed for collaborative training;
	// default 2m.
	TrainWindow time.Duration
	// QueryWindow is simulated time allowed per query batch; default 30s.
	QueryWindow time.Duration
	// EvalDocs caps how many test documents are scored (0 = all).
	EvalDocs int
	// Threshold is the tag-assignment confidence threshold; default 0.5.
	Threshold float64
	// Weighting selects the term-weighting scheme of the preprocessing
	// stage; default TermFrequency (the paper's representation).
	Weighting textproc.Weighting
	// MaxTags caps assigned tags per document; default 4.
	MaxTags int
	// CEMPaR and PACE tune the respective protocols.
	CEMPaR cempar.Config
	PACE   pace.Config
	// Seed drives everything.
	Seed int64
	// Parallel is the worker count for the run's CPU-bound phases — each
	// peer's local SVM training, the coordinator's per-tag training, and
	// CEMPaR's per-tag regional cascades — which are independent jobs off
	// the virtual clock. Only the protocol message exchange stays
	// single-threaded on the simulated network. 1 means serial; other
	// values <= 0 mean GOMAXPROCS. Results are bit-identical at any
	// worker count.
	Parallel int
	// Shards is the number of event-loop shards the simulated network is
	// partitioned over (conservative PDES): values > 1 execute the
	// simulator's lookahead windows concurrently, which is what makes
	// >512-peer message-heavy runs tractable. 0 or 1 keeps the event loop
	// serial. Stats, result tables and tag assignments are byte-identical
	// at every setting.
	Shards int
	// Logf, when set, receives the simulator's per-event activity log
	// (message drops, node failures/recoveries) — the "Log activities"
	// feature of the toolkit.
	Logf func(format string, args ...any)
}

// Defaults fills zero fields with standard values and returns the config.
func Defaults(cfg Config) Config {
	if cfg.Peers == 0 {
		cfg.Peers = 32
	}
	if cfg.Protocol == "" {
		cfg.Protocol = ProtoCEMPaR
	}
	if cfg.Corpus.Users == 0 {
		cfg.Corpus = dataset.DefaultConfig()
		// Keep per-peer collections moderate so large sweeps stay fast;
		// the demo's 50..200 range is available by overriding. At the
		// default 20% training fraction each peer labels 8-16 documents.
		cfg.Corpus.DocsPerUserMin = 40
		cfg.Corpus.DocsPerUserMax = 80
	}
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.2
	}
	if cfg.Latency == nil {
		cfg.Latency = simnet.UniformLatency{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	}
	if cfg.StabilizeEvery == 0 {
		cfg.StabilizeEvery = 20 * time.Second
	}
	if cfg.TrainWindow == 0 {
		cfg.TrainWindow = 2 * time.Minute
	}
	if cfg.QueryWindow == 0 {
		cfg.QueryWindow = 30 * time.Second
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.5
	}
	if cfg.MaxTags == 0 {
		cfg.MaxTags = 4
	}
	if cfg.Corpus.Seed == 0 {
		cfg.Corpus.Seed = cfg.Seed + 101
	}
	if cfg.Distribution.Seed == 0 {
		cfg.Distribution.Seed = cfg.Seed + 202
	}
	cfg.Corpus.Users = cfg.Peers
	return cfg
}

// Result is what one run measures.
type Result struct {
	Protocol      string
	Peers         int
	Eval          *metrics.MultiLabel
	FailedQueries int
	TotalQueries  int
	// TrainCost and QueryCost split traffic by phase.
	TrainCost metrics.CommCost
	QueryCost metrics.CommCost
	// TrainSimTime is the virtual time training took to quiesce.
	TrainSimTime time.Duration
	// SkippedOffline counts test documents whose owning peer was offline
	// when the query would have been issued: no query exists in that case
	// (the user's machine is off), so they are excluded from TotalQueries.
	SkippedOffline int
	// MeanP1 is mean precision@1 over answered queries (the quality of
	// the single best suggestion in the Fig. 3 suggestion cloud).
	MeanP1 float64
	// OneError is the fraction of answered queries whose top suggestion
	// was wrong.
	OneError float64
	// LivenessMap is the node liveness visualization at the end of the
	// run ("Visualize network").
	LivenessMap string
}

// String renders a compact summary row.
func (r *Result) String() string {
	return fmt.Sprintf("%-12s N=%-4d microF1=%.4f failed=%d/%d train[%s] query[%s]",
		r.Protocol, r.Peers, r.Eval.MicroF1(), r.FailedQueries, r.TotalQueries,
		r.TrainCost, r.QueryCost)
}

// Run executes one full experiment: generate → distribute → train →
// evaluate. It is deterministic for a given config.
func Run(cfg Config) (*Result, error) {
	cfg = Defaults(cfg)
	corpus, err := dataset.Generate(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	train, test := dataset.SplitTrainTest(corpus.Docs, cfg.TrainFrac, cfg.Seed+303)
	return RunWithData(cfg, corpus, train, test)
}

// RunWithData executes an experiment on pre-generated data, so sweeps can
// hold the corpus fixed while varying the network.
func RunWithData(cfg Config, corpus *dataset.Corpus, train, test []dataset.Document) (*Result, error) {
	cfg = Defaults(cfg)

	// Preprocess with a shared lexicon (peers agree on word ids; in
	// deployment the id space is the word's hash, which needs no
	// coordination).
	pre := textproc.NewPreprocessor(nil, textproc.Options{
		Weighting: cfg.Weighting,
		Normalize: true,
	})
	trainDocs := make([]protocol.Doc, len(train))
	for i, d := range train {
		trainDocs[i] = protocol.Doc{X: pre.Vectorize(d.Text), Tags: d.Tags}
	}
	// SplitTrainTest returns test documents grouped by user; shuffle so a
	// capped evaluation samples all peers instead of the first user's
	// backlog (which would alias one peer's churn luck into the results).
	test = append([]dataset.Document(nil), test...)
	shuf := rand.New(rand.NewSource(cfg.Seed + 909))
	shuf.Shuffle(len(test), func(i, j int) { test[i], test[j] = test[j], test[i] })
	testVecs := make([]*vector.Sparse, len(test))
	for i, d := range test {
		testVecs[i] = pre.Vectorize(d.Text)
	}

	// Physical network.
	net := simnet.New(simnet.Options{Latency: cfg.Latency, DropRate: cfg.DropRate, Seed: cfg.Seed + 404, Shards: cfg.Shards})
	if cfg.Logf != nil {
		net.SetLogf(cfg.Logf)
	}
	ids := make([]simnet.NodeID, cfg.Peers)
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}

	// Distribute training data over peers.
	perPeerRaw := cfg.Distribution.Assign(train, cfg.Peers)
	perPeer := make([][]protocol.Doc, cfg.Peers)
	// Re-vectorize through the doc index to avoid re-running textproc.
	docByID := make(map[int]protocol.Doc, len(train))
	for i, d := range train {
		docByID[d.ID] = trainDocs[i]
	}
	for p, ds := range perPeerRaw {
		for _, d := range ds {
			perPeer[p] = append(perPeer[p], docByID[d.ID])
		}
	}

	// Protocol under test.
	var clf protocol.Classifier
	var ring *dht.DHT
	switch cfg.Protocol {
	case ProtoCEMPaR:
		cem := cfg.CEMPaR
		if cem.Seed == 0 {
			cem.Seed = cfg.Seed + 505
		}
		if cem.Parallel == 0 {
			cem.Parallel = cfg.Parallel
		}
		// CEMPaR needs the DHT to exist first, and the DHT needs the app
		// handler; tie the knot with a late-bound closure.
		var s *cempar.System
		ring = dht.New(net, ids, func(id simnet.NodeID) simnet.Handler {
			return simnet.HandlerFunc(func(nn *simnet.Network, m simnet.Message) {
				if s != nil {
					s.Handler(id).HandleMessage(nn, m)
				}
			})
		})
		s = cempar.New(ring, cem)
		for i, docs := range perPeer {
			s.SetDocs(ids[i], docs)
		}
		clf = s
	case ProtoPACE:
		pc := cfg.PACE
		if pc.Seed == 0 {
			pc.Seed = cfg.Seed + 606
		}
		if pc.Parallel == 0 {
			pc.Parallel = cfg.Parallel
		}
		s := pace.New(net, ids, pc)
		for i, docs := range perPeer {
			s.SetDocs(ids[i], docs)
		}
		clf = s
	case ProtoCentralized:
		s := baseline.NewCentralized(net, ids, baseline.CentralizedConfig{
			Coordinator: ids[0], Seed: cfg.Seed + 707, Parallel: cfg.Parallel,
		})
		for i, docs := range perPeer {
			s.SetDocs(ids[i], docs)
		}
		clf = s
	case ProtoLocal:
		s := baseline.NewLocal(net, ids, 1, cfg.Seed+808)
		s.Parallel = cfg.Parallel
		for i, docs := range perPeer {
			s.SetDocs(ids[i], docs)
		}
		clf = s
	default:
		return nil, fmt.Errorf("p2pdmt: unknown protocol %q", cfg.Protocol)
	}

	// Churn and maintenance.
	if cfg.Churn != nil {
		simnet.StartChurn(net, cfg.Churn, ids)
		if ring != nil {
			ring.StartStabilizer(cfg.StabilizeEvery)
		}
		if s, ok := clf.(*cempar.System); ok {
			var refresh func()
			refresh = func() {
				s.Refresh()
				net.ScheduleSystem(cfg.StabilizeEvery, refresh)
			}
			net.ScheduleSystem(cfg.StabilizeEvery, refresh)
		}
	}

	// Phase 1: collaborative training.
	clf.Fit()
	net.RunFor(cfg.TrainWindow)
	trainStats := net.Stats()
	res := &Result{
		Protocol:     clf.Name(),
		Peers:        cfg.Peers,
		TrainSimTime: net.Now(),
		TrainCost: metrics.CommCost{
			Messages: trainStats.MessagesSent,
			Bytes:    trainStats.BytesSent,
			Peers:    cfg.Peers,
		},
	}
	net.ResetStats()

	// Phase 2: evaluation queries. Each test document is queried from the
	// peer that owns it (its original user mapped onto the ring).
	eval := metrics.NewMultiLabel(len(corpus.Tags))
	nEval := len(test)
	if cfg.EvalDocs > 0 && cfg.EvalDocs < nEval {
		nEval = cfg.EvalDocs
	}
	var p1Sum, oneErrSum float64
	answered := 0
	for i := 0; i < nEval; i++ {
		doc := test[i]
		x := testVecs[i]
		from := simnet.NodeID(doc.User % cfg.Peers)
		if !net.Alive(from) {
			// The owner is offline: there is no query to make (the user's
			// machine is off), so this measures nothing about the
			// protocol. Track it separately.
			res.SkippedOffline++
			continue
		}
		var scores []metrics.ScoredTag
		ok := false
		fired := false
		clf.Predict(from, x, func(s []metrics.ScoredTag, o bool) {
			scores, ok, fired = s, o, true
		})
		net.RunFor(cfg.QueryWindow)
		res.TotalQueries++
		if !fired || !ok {
			res.FailedQueries++
			continue
		}
		answered++
		gold := metrics.NewLabelSet(doc.Tags)
		pred := metrics.NewLabelSet(protocol.SelectTags(scores, cfg.Threshold, cfg.MaxTags))
		eval.Add(gold, pred)
		p1Sum += metrics.PrecisionAtK(gold, scores, 1)
		oneErrSum += metrics.OneError(gold, scores)
	}
	queryStats := net.Stats()
	res.QueryCost = metrics.CommCost{
		Messages: queryStats.MessagesSent,
		Bytes:    queryStats.BytesSent,
		Peers:    cfg.Peers,
	}
	res.Eval = eval
	res.LivenessMap = VisualizeRing(net)
	if answered > 0 {
		res.MeanP1 = p1Sum / float64(answered)
		res.OneError = oneErrSum / float64(answered)
	}
	return res, nil
}
