package p2pdmt

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Distribution selects how training documents are spread over peers — the
// "Distribute data" box of the toolkit architecture (Fig. 2) and the
// demo's "size and class distributions" knobs.
type Distribution struct {
	// SizeZipf skews per-peer collection sizes with a Zipf exponent: 0
	// keeps the corpus's natural per-user assignment, larger values
	// concentrate documents on few peers.
	SizeZipf float64
	// ClassSort groups documents of the same tags onto the same peers
	// (extreme class skew) when true; combined with SizeZipf it builds
	// the hardest non-IID settings.
	ClassSort bool
	// Seed drives the reassignment shuffle.
	Seed int64
}

// Assign maps documents onto n peers according to the distribution,
// returning one document slice per peer index. The natural assignment
// (doc.User % n) is used when no skew is configured.
func (d Distribution) Assign(docs []dataset.Document, n int) [][]dataset.Document {
	out := make([][]dataset.Document, n)
	if d.SizeZipf == 0 && !d.ClassSort {
		for _, doc := range docs {
			p := doc.User % n
			out[p] = append(out[p], doc)
		}
		return out
	}
	rng := rand.New(rand.NewSource(d.Seed))
	pool := append([]dataset.Document(nil), docs...)
	if d.ClassSort {
		// Order documents by their first tag so contiguous chunks share
		// topics, then deal chunks to peers.
		sort.SliceStable(pool, func(i, j int) bool {
			ti, tj := "", ""
			if len(pool[i].Tags) > 0 {
				ti = pool[i].Tags[0]
			}
			if len(pool[j].Tags) > 0 {
				tj = pool[j].Tags[0]
			}
			if ti != tj {
				return ti < tj
			}
			return pool[i].ID < pool[j].ID
		})
	} else {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	// Per-peer quota from Zipf weights (uniform when SizeZipf is 0).
	weights := make([]float64, n)
	var total float64
	for i := range weights {
		if d.SizeZipf == 0 {
			weights[i] = 1
		} else {
			weights[i] = 1 / math.Pow(float64(i+1), d.SizeZipf)
		}
		total += weights[i]
	}
	quota := make([]int, n)
	assigned := 0
	for i := range quota {
		quota[i] = int(float64(len(pool)) * weights[i] / total)
		if quota[i] < 1 {
			quota[i] = 1 // every peer holds at least one training doc
		}
		assigned += quota[i]
	}
	// Fix rounding drift on the largest quota.
	quota[0] += len(pool) - assigned
	if quota[0] < 1 {
		quota[0] = 1
	}
	idx := 0
	for p := 0; p < n && idx < len(pool); p++ {
		take := quota[p]
		if idx+take > len(pool) {
			take = len(pool) - idx
		}
		out[p] = append(out[p], pool[idx:idx+take]...)
		idx += take
	}
	// Any remainder (possible when quotas were clamped) round-robins.
	for p := 0; idx < len(pool); p, idx = (p+1)%n, idx+1 {
		out[p] = append(out[p], pool[idx])
	}
	return out
}
