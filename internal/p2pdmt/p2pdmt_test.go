package p2pdmt

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/simnet"
)

// fastConfig returns a small, quick experiment configuration.
func fastConfig(proto ProtocolKind) Config {
	corpus := dataset.DefaultConfig()
	corpus.DocsPerUserMin = 20
	corpus.DocsPerUserMax = 40
	corpus.NumTags = 8
	return Config{
		Peers:    8,
		Protocol: proto,
		Corpus:   corpus,
		EvalDocs: 30,
		Seed:     7,
	}
}

func TestRunAllProtocols(t *testing.T) {
	results := map[ProtocolKind]*Result{}
	for _, proto := range []ProtocolKind{ProtoLocal, ProtoCentralized, ProtoPACE, ProtoCEMPaR} {
		res, err := Run(fastConfig(proto))
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.TotalQueries == 0 || res.Eval.Docs() == 0 {
			t.Fatalf("%s: no queries evaluated", proto)
		}
		if res.FailedQueries > 0 {
			t.Errorf("%s: %d failed queries without churn", proto, res.FailedQueries)
		}
		if f1 := res.Eval.MicroF1(); f1 <= 0.2 || f1 > 1 {
			t.Errorf("%s: implausible F1 %v", proto, f1)
		}
		results[proto] = res
	}
	// Expected shape: collaborative protocols beat chance and the
	// centralized baseline beats local-only.
	if results[ProtoCentralized].Eval.MicroF1() <= results[ProtoLocal].Eval.MicroF1() {
		t.Errorf("centralized (%v) should beat local (%v)",
			results[ProtoCentralized].Eval.MicroF1(), results[ProtoLocal].Eval.MicroF1())
	}
	// Traffic shape: local sends nothing, PACE queries are free.
	if results[ProtoLocal].TrainCost.Bytes != 0 {
		t.Error("local baseline should send no training traffic")
	}
	if results[ProtoPACE].QueryCost.Bytes != 0 {
		t.Error("PACE queries should be local (0 bytes)")
	}
	if results[ProtoPACE].TrainCost.Bytes == 0 || results[ProtoCEMPaR].TrainCost.Bytes == 0 {
		t.Error("P2P protocols must pay training traffic")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastConfig(ProtoCEMPaR))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig(ProtoCEMPaR))
	if err != nil {
		t.Fatal(err)
	}
	if a.Eval.MicroF1() != b.Eval.MicroF1() || a.TrainCost.Bytes != b.TrainCost.Bytes {
		t.Error("same config produced different results")
	}
}

// TestRunParallelMatchesSerial is the determinism contract of the parallel
// training phases: for every protocol, a run whose CPU-bound work fans out
// over many workers must be bit-identical to a fully serial run of the
// same config.
func TestRunParallelMatchesSerial(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoLocal, ProtoCentralized, ProtoPACE, ProtoCEMPaR} {
		serialCfg := fastConfig(proto)
		serialCfg.Parallel = 1
		serial, err := Run(serialCfg)
		if err != nil {
			t.Fatalf("%s serial: %v", proto, err)
		}
		parallelCfg := fastConfig(proto)
		parallelCfg.Parallel = 8
		parallel, err := Run(parallelCfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", proto, err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s diverged:\nserial:   %s\nparallel: %s", proto, serial, parallel)
		}
		if serial.Eval.MicroF1() != parallel.Eval.MicroF1() ||
			serial.Eval.MacroF1() != parallel.Eval.MacroF1() ||
			serial.MeanP1 != parallel.MeanP1 ||
			serial.TrainCost != parallel.TrainCost ||
			serial.QueryCost != parallel.QueryCost ||
			serial.TrainSimTime != parallel.TrainSimTime {
			t.Errorf("%s: parallel run not bit-identical to serial", proto)
		}
	}
}

// digest flattens every observable of a Result into one comparable string.
func digest(r *Result) string {
	return fmt.Sprintf("%s|microF1=%v|macroF1=%v|P@1=%v|oneErr=%v|train=%+v|query=%+v|simTime=%v|failed=%d|total=%d|skipped=%d|liveness=%q",
		r.String(), r.Eval.MicroF1(), r.Eval.MacroF1(), r.MeanP1, r.OneError,
		r.TrainCost, r.QueryCost, r.TrainSimTime, r.FailedQueries, r.TotalQueries,
		r.SkippedOffline, r.LivenessMap)
}

// TestRunShardInvariant is the PDES determinism contract at the toolkit
// layer: a full experiment — corpus, training traffic, churn, queries —
// must produce byte-identical results at every simulator shard count, for
// a DHT-routed protocol (CEMPaR) and a broadcast protocol (PACE) alike.
func TestRunShardInvariant(t *testing.T) {
	for _, proto := range []ProtocolKind{ProtoCEMPaR, ProtoPACE} {
		ref := ""
		for _, shards := range []int{1, 2, 4} {
			cfg := fastConfig(proto)
			cfg.Shards = shards
			cfg.Churn = simnet.ExponentialChurn{MeanUptime: 2 * time.Minute, MeanDowntime: 30 * time.Second}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", proto, shards, err)
			}
			d := digest(res)
			if shards == 1 {
				ref = d
				continue
			}
			if d != ref {
				t.Errorf("%s: shards=%d diverges from shards=1:\n got %s\nwant %s", proto, shards, d, ref)
			}
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	cfg := fastConfig("nope")
	if _, err := Run(cfg); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestRunWithChurn(t *testing.T) {
	cfg := fastConfig(ProtoPACE)
	cfg.Churn = simnet.ExponentialChurn{MeanUptime: 2 * time.Minute, MeanDowntime: time.Minute}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkippedOffline == 0 {
		t.Log("no owners offline during eval (possible but unlikely)")
	}
	if res.FailedQueries > 0 {
		t.Errorf("PACE should not fail issued queries under churn: %d", res.FailedQueries)
	}
}

func TestDistributionNatural(t *testing.T) {
	docs := []dataset.Document{
		{ID: 0, User: 0}, {ID: 1, User: 1}, {ID: 2, User: 2}, {ID: 3, User: 0},
	}
	per := Distribution{}.Assign(docs, 3)
	if len(per[0]) != 2 || len(per[1]) != 1 || len(per[2]) != 1 {
		t.Errorf("natural assignment = %v", per)
	}
}

func TestDistributionSizeSkew(t *testing.T) {
	var docs []dataset.Document
	for i := 0; i < 300; i++ {
		docs = append(docs, dataset.Document{ID: i, User: i % 10})
	}
	per := Distribution{SizeZipf: 1.2, Seed: 3}.Assign(docs, 10)
	total := 0
	for p, ds := range per {
		if len(ds) == 0 {
			t.Errorf("peer %d got no documents", p)
		}
		total += len(ds)
	}
	if total != 300 {
		t.Errorf("lost documents: %d", total)
	}
	if len(per[0]) <= len(per[9]) {
		t.Errorf("zipf skew failed: peer0=%d peer9=%d", len(per[0]), len(per[9]))
	}
}

func TestDistributionClassSort(t *testing.T) {
	var docs []dataset.Document
	tags := []string{"a", "b", "c", "d"}
	for i := 0; i < 200; i++ {
		docs = append(docs, dataset.Document{ID: i, User: i % 4, Tags: []string{tags[i%4]}})
	}
	per := Distribution{ClassSort: true, Seed: 3}.Assign(docs, 4)
	// Each peer should be dominated by few tags.
	for p, ds := range per {
		counts := map[string]int{}
		for _, d := range ds {
			counts[d.Tags[0]]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		if float64(max)/float64(len(ds)) < 0.5 {
			t.Errorf("peer %d not class-skewed: %v", p, counts)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "col1", "col2")
	tbl.AddRow("x", 0.12345)
	tbl.AddRow(7, "y")
	out := tbl.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "0.1235") {
		t.Errorf("table output:\n%s", out)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "col1,col2\n") {
		t.Errorf("csv output:\n%s", csv)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Errorf("csv rows = %d", len(lines))
	}
}

func TestVisualizeRing(t *testing.T) {
	net := simnet.New(simnet.Options{})
	for i := 0; i < 70; i++ {
		net.AddNode(simnet.NodeID(i), simnet.HandlerFunc(func(*simnet.Network, simnet.Message) {}))
	}
	net.Kill(3)
	out := VisualizeRing(net)
	if !strings.Contains(out, "69/70 nodes alive") {
		t.Errorf("viz:\n%s", out)
	}
	if !strings.Contains(out, "·") || !strings.Contains(out, "●") {
		t.Error("viz missing glyphs")
	}
	// 70 nodes should wrap onto two lines.
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 3 {
		t.Errorf("viz lines = %d", len(lines))
	}
}

func TestDefaultsFillEverything(t *testing.T) {
	cfg := Defaults(Config{})
	if cfg.Peers == 0 || cfg.Protocol == "" || cfg.TrainFrac == 0 ||
		cfg.Latency == nil || cfg.Threshold == 0 || cfg.MaxTags == 0 ||
		cfg.Corpus.Users != cfg.Peers {
		t.Errorf("defaults incomplete: %+v", cfg)
	}
}
