package p2pdmt

import (
	"fmt"
	"strings"

	"repro/internal/simnet"
)

// Table collects experiment rows and renders them aligned for terminals or
// as CSV — the "Visualize statistics" box of Fig. 2.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the numeric/identifier cells experiments produce).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// VisualizeRing renders an ASCII view of node liveness ('●' up, '·' down),
// 64 nodes per line — the toolkit's "Visualize network" feature.
func VisualizeRing(net *simnet.Network) string {
	var b strings.Builder
	ids := net.Nodes()
	alive := 0
	for i, id := range ids {
		if i > 0 && i%64 == 0 {
			b.WriteByte('\n')
		}
		if net.Alive(id) {
			b.WriteRune('●')
			alive++
		} else {
			b.WriteRune('·')
		}
	}
	fmt.Fprintf(&b, "\n%d/%d nodes alive\n", alive, len(ids))
	return b.String()
}
